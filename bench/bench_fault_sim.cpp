// Simulation-bound fault-injection benchmark.
//
// Exhaustive single-stuck-at fault simulation: for every combinational gate
// and both polarities, override the gate, resimulate 64 random patterns, and
// check detection at the observation points. This is the diagnosis engines'
// inner loop shape (one small change per candidate, full readback), so it
// measures exactly what dirty-cone incremental resimulation accelerates:
// a full-resim simulator pays O(|circuit|) per candidate, a cone-limited one
// O(|fanout cone|).
//
// Uses only the public ParallelSimulator API so the same driver binary is
// meaningful before and after engine changes (see tools/bench_runner.py).
//
// Run:  ./bench_fault_sim [--profile s5378_like] [--scale 1.0] [--seed 1]
//       [--rounds 2] [--json]
#include <cstdio>
#include <vector>

#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const std::string profile_name = args.get_string("profile", "s5378_like");
  const double scale = args.get_double("scale", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 2));
  const bool json = args.get_bool("json", false);
  // A typo'd flag must not silently fall back to a default workload: the
  // recorded BENCH_*.json timings would compare different work.
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const auto profile = find_profile(profile_name);
  if (!profile) {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 1;
  }
  const Netlist nl =
      make_full_scan(make_profile_circuit(*profile, scale, seed)).comb;

  std::vector<GateId> sites;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) sites.push_back(g);
  }

  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  ParallelSimulator sim(nl);
  std::vector<std::uint64_t> golden(nl.outputs().size());

  std::size_t faults = 0;
  std::size_t detected = 0;
  Timer timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
    sim.run();
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      golden[i] = sim.value(nl.outputs()[i]);
    }
    for (GateId g : sites) {
      for (int polarity = 0; polarity < 2; ++polarity) {
        sim.set_value_override(g, polarity ? ~0ULL : 0ULL);
        sim.run();
        ++faults;
        std::uint64_t diff = 0;
        for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
          diff |= golden[i] ^ sim.value(nl.outputs()[i]);
        }
        if (diff != 0) ++detected;
        sim.clear_overrides();
      }
    }
  }
  const double seconds = timer.seconds();

  const double fault_patterns =
      static_cast<double>(faults) * 64.0;  // 64 patterns per word
  if (json) {
    std::printf(
        "{\"bench\":\"fault_sim\",\"profile\":\"%s\",\"scale\":%.3f,"
        "\"gates\":%zu,\"faults\":%zu,\"detected\":%zu,\"rounds\":%zu,"
        "\"seconds\":%.6f,\"fault_patterns_per_second\":%.0f}\n",
        profile_name.c_str(), scale, nl.size(), faults, detected, rounds,
        seconds, fault_patterns / seconds);
  } else {
    std::printf("# exhaustive stuck-at fault simulation on %s (%zu gates)\n",
                profile_name.c_str(), nl.size());
    std::printf("faults simulated:   %zu (x64 patterns)\n", faults);
    std::printf("faults detected:    %zu\n", detected);
    std::printf("elapsed:            %.3f s\n", seconds);
    std::printf("fault-patterns/s:   %.0f\n", fault_patterns / seconds);
  }
  return 0;
}
