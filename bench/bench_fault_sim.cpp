// Simulation-bound fault-injection benchmark.
//
// Exhaustive single-stuck-at fault simulation: for every combinational gate
// and both polarities, override the gate, resimulate 64 random patterns, and
// check detection at the observation points. This is the diagnosis engines'
// inner loop shape (one small change per candidate, full readback), so it
// measures exactly what dirty-cone incremental resimulation accelerates:
// a full-resim simulator pays O(|circuit|) per candidate, a cone-limited one
// O(|fanout cone|).
//
// Uses only the public fault-simulation API (fault/fault_sim.hpp, hosted on
// the exec/ runtime) so the same driver binary is meaningful before and
// after engine changes (see tools/bench_runner.py). --threads N shards the
// candidate axis across the pool; detection counts are bit-identical for
// every thread count.
//
// Run:  ./bench_fault_sim [--profile s5378_like] [--scale 1.0] [--seed 1]
//       [--rounds 2] [--threads 1] [--json]
#include <cstdio>
#include <vector>

#include "fault/fault_sim.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const std::string profile_name = args.get_string("profile", "s5378_like");
  const double scale = args.get_double("scale", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 2));
  const std::int64_t threads = args.get_int("threads", 1);
  const bool json = args.get_bool("json", false);
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }
  // A typo'd flag must not silently fall back to a default workload: the
  // recorded BENCH_*.json timings would compare different work.
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const auto profile = find_profile(profile_name);
  if (!profile) {
    std::fprintf(stderr, "unknown profile '%s'\n", profile_name.c_str());
    return 1;
  }
  const Netlist nl =
      make_full_scan(make_profile_circuit(*profile, scale, seed)).comb;
  const std::vector<GateId> sites = stuck_at_sites(nl);

  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  StuckAtFaultSimOptions options;
  options.rounds = rounds;
  options.num_threads = static_cast<std::size_t>(threads);
  // The timed region includes the pool spawn and the prototype simulator's
  // opcode-stream compilation (the pre-PR4 driver compiled before timing);
  // at the pinned s38417 workload this is <2% of the row and BENCH_pr3 ->
  // BENCH_pr4 measured 0.99x, but at toy scales the fixed setup dominates.
  Timer timer;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);
  const double seconds = timer.seconds();

  const double fault_patterns =
      static_cast<double>(result.faults) * 64.0;  // 64 patterns per word
  if (json) {
    std::printf(
        "{\"bench\":\"fault_sim\",\"profile\":\"%s\",\"scale\":%.3f,"
        "\"gates\":%zu,\"faults\":%zu,\"detected\":%zu,\"rounds\":%zu,"
        "\"threads\":%lld,\"seconds\":%.6f,"
        "\"fault_patterns_per_second\":%.0f}\n",
        profile_name.c_str(), scale, nl.size(), result.faults,
        result.detected, rounds, static_cast<long long>(threads), seconds,
        fault_patterns / seconds);
  } else {
    std::printf("# exhaustive stuck-at fault simulation on %s (%zu gates)\n",
                profile_name.c_str(), nl.size());
    std::printf("faults simulated:   %zu (x64 patterns)\n", result.faults);
    std::printf("faults detected:    %zu\n", result.detected);
    std::printf("threads:            %lld\n", static_cast<long long>(threads));
    std::printf("elapsed:            %.3f s\n", seconds);
    std::printf("fault-patterns/s:   %.0f\n", fault_patterns / seconds);
  }
  return 0;
}
