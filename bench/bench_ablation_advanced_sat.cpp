// Ablation: the advanced SAT-based diagnosis heuristics (Sec. 2.3).
//
// The paper reports the advanced techniques "do not change the solution
// space, but dramatically decrease the runtime ... speed-up factors of more
// than 100 times". This bench isolates each ingredient:
//
//   base      — BSAT, no gating clauses, internal vars are decisions
//   +gating   — add the (s_g | ~c_g) clauses
//   +nodecide — additionally restrict decisions to selects/corrections
//   two-pass  — region-head first pass + refined second pass
//
// Two solver-core ablation knobs ride along:
//   --no-inprocess   disable the inprocessing pipeline in every variant
//                    (probing / vivification / subsumption / BVE),
//   --card ENC       cardinality encoding: sequential | totalizer | pairwise
//                    (pairwise substitutes the sequential tracker, see
//                    cnf/cardinality.hpp).
//
// Run:  ./bench_ablation_advanced_sat [--circuit s1423_like] [--scale 0.5]
//       [--tests 8] [--errors 1] [--seed 3] [--limit 120]
//       [--no-inprocess] [--card sequential]
#include <cstdio>
#include <string>

#include "diag/advanced_sat.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s1423_like");
  config.scale = args.get_double("scale", 1.0);
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
  config.num_tests = static_cast<std::size_t>(args.get_int("tests", 16));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const double limit = args.get_double("limit", 120.0);
  config.time_limit_seconds = limit;
  const bool inprocess = !args.get_bool("no-inprocess", false);
  const std::string card_name = args.get_string("card", "sequential");
  CardEncoding card = CardEncoding::kSequential;
  if (card_name == "totalizer") {
    card = CardEncoding::kTotalizer;
  } else if (card_name == "pairwise") {
    card = CardEncoding::kPairwise;
  } else if (card_name != "sequential") {
    std::fprintf(stderr, "unknown --card '%s'\n", card_name.c_str());
    return 1;
  }

  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "preparation failed\n");
    return 1;
  }
  const unsigned k = static_cast<unsigned>(config.num_errors);
  std::printf(
      "# advanced-SAT ablation on %s (%zu gates), p=%zu, m=%zu,"
      " inprocess=%s, card=%s\n",
      config.circuit.c_str(), prepared->faulty.size(), config.num_errors,
      prepared->tests.size(), inprocess ? "on" : "off",
      card_encoding_name(card));

  TablePrinter table({"variant", "CNF s", "first s", "all s", "#sol",
                      "decisions", "complete"});
  auto run_variant = [&](const char* name, bool gating, bool decisions) {
    BsatOptions options;
    options.k = k;
    options.deadline = Deadline::after_seconds(limit);
    options.instance.gating_clauses = gating;
    options.instance.internal_decisions = decisions;
    options.instance.inprocess = inprocess;
    options.instance.card_encoding = card;
    const BsatResult r =
        basic_sat_diagnose(prepared->faulty, prepared->tests, options);
    table.add_row({name, strprintf("%.3f", r.build_seconds),
                   strprintf("%.3f", r.first_seconds),
                   strprintf("%.3f", r.all_seconds),
                   std::to_string(r.solutions.size()),
                   std::to_string(r.solver_stats.decisions),
                   r.complete ? "yes" : "no"});
    return r;
  };

  const BsatResult base = run_variant("base", false, true);
  run_variant("+gating", true, true);
  const BsatResult tuned = run_variant("+gating+nodecide", true, false);

  {
    AdvancedSatOptions options;
    options.k = k;
    options.card_encoding = card;
    options.deadline = Deadline::after_seconds(limit);
    Timer t;
    const AdvancedSatResult adv =
        advanced_sat_diagnose(prepared->faulty, prepared->tests, options);
    table.add_row({"two-pass(regions)",
                   "-",
                   strprintf("%.3f", adv.pass1_seconds),
                   strprintf("%.3f", t.seconds()),
                   std::to_string(adv.solutions.size()),
                   strprintf("%zu->%zu gates", adv.pass1_instrumented,
                             adv.pass2_instrumented),
                   adv.complete ? "yes" : "no"});
  }

  std::printf("%s", table.to_string().c_str());
  if (base.complete && tuned.complete) {
    std::printf("\n# solution space unchanged: %s (base %zu vs tuned %zu)\n",
                base.solutions.size() == tuned.solutions.size() ? "yes" : "NO",
                base.solutions.size(), tuned.solutions.size());
    if (tuned.all_seconds > 0) {
      std::printf("# wall-clock all-solutions (base/tuned): %.1fx\n",
                  base.all_seconds / tuned.all_seconds);
    }
    if (tuned.solver_stats.decisions > 0) {
      std::printf(
          "# decision reduction (base/tuned): %.1fx\n"
          "# (the paper's >100x wall-clock claim was measured against a\n"
          "#  2004-era Zchaff on full-size instances; a modern CDCL core\n"
          "#  with VSIDS+learning absorbs much of the benefit, but the\n"
          "#  pruning mechanism shows in the decision counts)\n",
          static_cast<double>(base.solver_stats.decisions) /
              static_cast<double>(tuned.solver_stats.decisions));
    }
  }
  return 0;
}
