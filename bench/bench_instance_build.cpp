// Diagnosis-instance construction benchmark: walk vs template stamping.
//
// Builds the same multi-test BSAT instance three ways and times each:
//  * walk — the reference per-copy encoder (template_stamped=false),
//  * cold — template stamping with an empty artifact cache (pays one
//    encoder walk to build the template, then stamps every copy),
//  * warm — template stamping with the template already cached (the state
//    every repeat build, parallel shard, and effect-analyzer sees).
//
// Before timing, the walk-built and stamped instances are checked for an
// identical clause database (variable count, clause count, and the full
// sorted-clause multiset via sat::Solver::snapshot_clauses) — a speedup on a
// different instance would be meaningless.
//
// Run:  ./bench_instance_build [--circuit s38417_like] [--scale 1.0]
//       [--errors 2] [--tests 32] [--seed 1] [--rounds 3] [--json]
#include <algorithm>
#include <cstdio>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "cache/artifact_cache.hpp"
#include "cnf/clause_stream.hpp"
#include "cnf/mux_instrument.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Retain freed memory between rounds. Tearing down a round's instance
  // otherwise munmaps hundreds of MB that the next timed build re-faults
  // page by page — kernel churn, not instance construction, and it hits
  // every timed variant with the same constant.
  mallopt(M_MMAP_MAX, 0);
  mallopt(M_TRIM_THRESHOLD, -1);
#endif
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s38417_like");
  config.scale = args.get_double("scale", 1.0);
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
  config.num_tests = static_cast<std::size_t>(args.get_int("tests", 32));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 3));
  const bool json = args.get_bool("json", false);
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "no detectable experiment for %s\n",
                 config.circuit.c_str());
    return 1;
  }
  const Netlist& nl = prepared->faulty;
  const TestSet& tests = prepared->tests;

  // The BSAT configuration of run_experiment.
  DiagnosisInstanceOptions options;
  options.max_k = static_cast<unsigned>(config.num_errors);
  options.gating_clauses = true;
  options.internal_decisions = false;

  // ---- identity check (untimed) -------------------------------------------
  DiagnosisInstanceOptions walk_options = options;
  walk_options.template_stamped = false;
  {
    const DiagnosisInstance walk =
        build_diagnosis_instance(nl, tests, walk_options);
    const DiagnosisInstance stamped =
        build_diagnosis_instance(nl, tests, options);
    if (walk.solver.num_vars() != stamped.solver.num_vars() ||
        walk.solver.num_clauses() != stamped.solver.num_clauses()) {
      std::fprintf(stderr,
                   "instance mismatch: walk %d vars / %zu clauses, "
                   "stamped %d vars / %zu clauses\n",
                   walk.solver.num_vars(), walk.solver.num_clauses(),
                   stamped.solver.num_vars(), stamped.solver.num_clauses());
      return 1;
    }
    auto walk_db = walk.solver.snapshot_clauses();
    auto stamped_db = stamped.solver.snapshot_clauses();
    std::sort(walk_db.begin(), walk_db.end());
    std::sort(stamped_db.begin(), stamped_db.end());
    if (walk_db != stamped_db) {
      std::fprintf(stderr, "clause databases differ between walk and stamp\n");
      return 1;
    }
  }

  // Construction time only: the instance is destroyed after the timer stops
  // (tearing down a multi-million-clause solver frees millions of watch
  // lists — real time, but not instance construction).
  std::size_t num_clauses = 0;
  const auto build_once = [&](const DiagnosisInstanceOptions& opts) {
    Timer t;
    const DiagnosisInstance inst = build_diagnosis_instance(nl, tests, opts);
    const double s = t.seconds();
    num_clauses = inst.solver.num_clauses();
    return s;
  };

  double walk_seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    walk_seconds += build_once(walk_options);
  }

  // Cold: every round starts from an empty cache and re-derives the
  // templates (and cones, with COI on).
  double cold_seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    cache::ArtifactCache::global().clear();
    cold_seconds += build_once(options);
  }

  // Warm: templates stay cached across rounds.
  build_once(options);  // populate
  double warm_seconds = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    warm_seconds += build_once(options);
  }

  const double per = static_cast<double>(rounds);
  const ClauseStreamStats stream = clause_stream_stats();
  if (json) {
    std::printf(
        "{\"bench\":\"instance_build\",\"circuit\":\"%s\",\"scale\":%.3f,"
        "\"gates\":%zu,\"tests\":%zu,\"rounds\":%zu,\"clauses\":%zu,"
        "\"walk_seconds\":%.6f,\"cold_seconds\":%.6f,"
        "\"warm_seconds\":%.6f,\"cold_speedup\":%.2f,"
        "\"warm_speedup\":%.2f,\"templates_built\":%llu,"
        "\"copies_stamped\":%llu}\n",
        config.circuit.c_str(), config.scale, nl.size(), tests.size(),
        rounds, num_clauses, walk_seconds / per, cold_seconds / per,
        warm_seconds / per, walk_seconds / cold_seconds,
        walk_seconds / warm_seconds,
        static_cast<unsigned long long>(stream.templates_built),
        static_cast<unsigned long long>(stream.copies_stamped));
  } else {
    std::printf("# instance construction on %s (%zu gates, %zu tests)\n",
                config.circuit.c_str(), nl.size(), tests.size());
    std::printf("clauses per instance:  %zu\n", num_clauses);
    std::printf("walk build:            %.4f s/build\n", walk_seconds / per);
    std::printf("cold template build:   %.4f s/build (%.2fx)\n",
                cold_seconds / per, walk_seconds / cold_seconds);
    std::printf("warm template build:   %.4f s/build (%.2fx)\n",
                warm_seconds / per, walk_seconds / warm_seconds);
  }
  return 0;
}
