// Reproduction of Table 3: diagnosis quality of BSIM / COV / BSAT.
//
// Columns per cell: |U Ci|, avgA, |Gmax|, min/max/avgG (BSIM);
// #sol, min/max/avg distance (COV and BSAT). Distances are "number of gates
// on a shortest path to any error" — small is good.
//
// Run:  ./bench_table3_quality [--scale 0.25] [--limit 60]
//       [--max-solutions 20000] [--seed 1] [--csv]
#include <cstdio>

#include "report/format.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const bool full = args.get_bool("full", false);
  const double scale = args.get_double("scale", full ? 1.0 : 0.25);
  const double limit = args.get_double("limit", full ? 1800.0 : 30.0);
  const std::int64_t max_solutions =
      args.get_int("max-solutions", full ? -1 : 20000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool csv = args.get_bool("csv", false);

  struct Cell {
    const char* circuit;
    std::size_t p;
  };
  const Cell cells[] = {
      {"s1423_like", 4}, {"s6669_like", 3}, {"s38417_like", 2}};

  TablePrinter table(table3_header());
  int bsat_better = 0;
  int comparable = 0;
  for (const Cell& cell : cells) {
    for (std::size_t m : {4, 8, 16, 32}) {
      ExperimentConfig config;
      config.circuit = cell.circuit;
      config.scale = scale;
      config.num_errors = cell.p;
      config.num_tests = m;
      config.seed = seed;
      config.time_limit_seconds = limit;
      config.max_solutions = max_solutions;
      const auto prepared = prepare_experiment(config);
      if (!prepared) {
        std::fprintf(stderr, "skipping %s m=%zu\n", cell.circuit, m);
        continue;
      }
      const ExperimentRow row = run_experiment(*prepared, config);
      table.add_row(table3_row(row));
      if (row.cov.quality.num_solutions > 0 &&
          row.bsat.quality.num_solutions > 0) {
        ++comparable;
        if (row.bsat.quality.mean_avg <= row.cov.quality.mean_avg) {
          ++bsat_better;
        }
      }
      std::fprintf(stderr, "done %s p=%zu m=%zu\n", cell.circuit, cell.p, m);
    }
  }
  std::printf("# Table 3 reproduction (scale %.2f, limit %.0fs)\n", scale,
              limit);
  std::printf("%s", csv ? table.to_csv().c_str() : table.to_string().c_str());
  std::printf("\n# BSAT avg <= COV avg in %d/%d comparable cells "
              "(paper: all but one cell)\n",
              bsat_better, comparable);
  return 0;
}
