// Microbenchmarks of the two engines the paper contrasts: the circuit-based
// simulation engine ("efficient, circuit-based") and the SAT solver's BCP.
#include <benchmark/benchmark.h>

#include "cnf/tseitin.hpp"
#include "diag/path_trace.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

Netlist bench_circuit(std::size_t gates, std::uint64_t seed = 31) {
  GeneratorParams params;
  params.num_inputs = 32;
  params.num_outputs = 16;
  params.num_dffs = gates / 12;
  params.num_gates = gates;
  params.seed = seed;
  return make_full_scan(generate_circuit(params)).comb;
}

void BM_ParallelSimulation(benchmark::State& state) {
  // Full-sweep throughput of the compiled kernel. With unchanged inputs the
  // incremental run() is a no-op, so force the stream path via run_full().
  const Netlist nl = bench_circuit(static_cast<std::size_t>(state.range(0)));
  ParallelSimulator sim(nl);
  Rng rng(1);
  for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
  for (auto _ : state) {
    sim.run_full();
    benchmark::DoNotOptimize(sim.value(nl.outputs()[0]));
  }
  // 64 patterns per run.
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(nl.num_combinational_gates()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSimulation)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_IncrementalFaultResim(benchmark::State& state) {
  // The diagnosis inner loop: one stuck-at override per iteration, cone-only
  // resimulation, then revert. Compare with BM_ParallelSimulation to see the
  // O(circuit) -> O(cone) win.
  const Netlist nl = bench_circuit(static_cast<std::size_t>(state.range(0)));
  ParallelSimulator sim(nl);
  Rng rng(1);
  for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
  sim.run();
  std::vector<GateId> sites;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) sites.push_back(g);
  }
  std::size_t next = 0;
  for (auto _ : state) {
    const GateId g = sites[next++ % sites.size()];
    sim.set_value_override(g, 0ULL);
    sim.run();
    benchmark::DoNotOptimize(sim.value(nl.outputs()[0]));
    sim.clear_overrides();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IncrementalFaultResim)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_PathTrace(benchmark::State& state) {
  const Netlist nl = bench_circuit(static_cast<std::size_t>(state.range(0)));
  ParallelSimulator sim(nl);
  Rng rng(2);
  for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
  sim.run();
  const GateId out = nl.outputs()[0];
  for (auto _ : state) {
    auto marked = path_trace(nl, sim.values(), 0, out);
    benchmark::DoNotOptimize(marked.data());
  }
}
BENCHMARK(BM_PathTrace)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_TseitinEncode(benchmark::State& state) {
  const Netlist nl = bench_circuit(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sat::Solver solver;
    const CircuitEncoding enc = encode_circuit(solver, nl);
    benchmark::DoNotOptimize(enc.gate_var.data());
  }
  state.counters["clauses"] = 0;  // filled below per-iteration cost dominates
}
BENCHMARK(BM_TseitinEncode)->Arg(1000)->Arg(5000);

void BM_SolverBcpCircuitImplication(benchmark::State& state) {
  // The BCP-as-simulation comparison from Sec. 4: fixing all inputs of an
  // encoded circuit and propagating is the SAT analogue of one simulation.
  const Netlist nl = bench_circuit(static_cast<std::size_t>(state.range(0)));
  sat::Solver solver;
  const CircuitEncoding enc =
      encode_circuit(solver, nl, /*internal_decisions=*/false);
  Rng rng(3);
  std::vector<sat::Lit> assumptions;
  for (GateId in : nl.inputs()) {
    assumptions.push_back(enc.lit(in, rng.next_bool()));
  }
  for (auto _ : state) {
    const sat::LBool result = solver.solve(assumptions);
    benchmark::DoNotOptimize(result);
  }
  state.counters["implications/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(nl.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SolverBcpCircuitImplication)->Arg(1000)->Arg(5000);

void BM_SolverRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(42);
    sat::Solver solver;
    for (int v = 0; v < n; ++v) solver.new_var();
    const int m = static_cast<int>(4.1 * n);
    for (int i = 0; i < m; ++i) {
      sat::Clause c;
      for (int j = 0; j < 3; ++j) {
        c.push_back(sat::Lit(static_cast<sat::Var>(rng.next_below(
                                 static_cast<std::uint64_t>(n))),
                             rng.next_bool()));
      }
      solver.add_clause(std::move(c));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolverRandom3Sat)->Arg(60)->Arg(100)->Arg(140)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace satdiag
