// Reproduction of Figure 6: quality of BSAT vs COV across all benchmarks.
//
// 6(a): per experiment, the average distance-to-error of COV (x) vs BSAT (y).
// 6(b): the number of solutions, log-log. The paper's claim: points lie on
// or below the diagonal — BSAT returns fewer solutions of better quality.
//
// Output: two CSV blocks (circuit,p,m,cov,bsat) plus diagonal summaries.
//
// Run:  ./bench_fig6_scatter [--scale 0.5] [--limit 30] [--seed 1]
#include <cstdio>
#include <string>
#include <vector>

#include "report/format.hpp"
#include "util/cli.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const double scale = args.get_double("scale", 0.5);
  const double limit = args.get_double("limit", 30.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  // A spread of benchmark sizes (the paper plots "all benchmarks").
  const std::vector<std::string> circuits = {
      "s298_like", "s344_like", "s382_like",  "s510_like",
      "s526_like", "s641_like", "s820_like",  "s953_like",
      "s1196_like", "s1423_like"};

  std::vector<ExperimentRow> rows;
  for (const std::string& circuit : circuits) {
    for (std::size_t p : {1, 2}) {
      for (std::size_t m : {4, 8, 16}) {
        ExperimentConfig config;
        config.circuit = circuit;
        config.scale = scale;
        config.num_errors = p;
        config.num_tests = m;
        config.seed = seed + p * 131 + m;
        config.time_limit_seconds = limit;
        config.max_solutions = 20000;
        const auto prepared = prepare_experiment(config);
        if (!prepared) continue;
        const ExperimentRow row = run_experiment(*prepared, config);
        if (row.cov.quality.num_solutions == 0 ||
            row.bsat.quality.num_solutions == 0) {
          continue;
        }
        rows.push_back(row);
        std::fprintf(stderr, "done %s p=%zu m=%zu\n", circuit.c_str(), p, m);
      }
    }
  }

  std::printf("# Figure 6(a): average distance, COV (x) vs BSAT (y)\n");
  std::printf("circuit,p,m,cov_avg,bsat_avg\n");
  int below_a = 0;
  for (const auto& row : rows) {
    std::printf("%s\n", fig6_avg_csv_row(row).c_str());
    if (row.bsat.quality.mean_avg <= row.cov.quality.mean_avg + 1e-9) {
      ++below_a;
    }
  }
  std::printf("\n# Figure 6(b): number of solutions, COV (x) vs BSAT (y), "
              "plot on log axes\n");
  std::printf("circuit,p,m,cov_nsol,bsat_nsol\n");
  int below_b = 0;
  for (const auto& row : rows) {
    std::printf("%s\n", fig6_nsol_csv_row(row).c_str());
    if (row.bsat.quality.num_solutions <= row.cov.quality.num_solutions) {
      ++below_b;
    }
  }
  std::printf("\n# summary: %zu points;\n", rows.size());
  std::printf("#   6(a) BSAT avg <= COV avg:   %d/%zu points\n", below_a,
              rows.size());
  std::printf("#   6(b) BSAT #sol <= COV #sol: %d/%zu points\n", below_b,
              rows.size());
  std::printf("# paper shape: most points on or below the diagonal.\n");
  return 0;
}
