// Lane-batched vs scalar candidate X-injection microbenchmark.
//
// Measures the raw throughput of the two 3-valued injection modes over the
// same candidate pool and test chunk:
//   * scalar — the pre-batching loop: one primed ThreeValuedSimulator,
//     tests in lanes 0..|tests|, clear/inject/run per candidate,
//   * batched — Sim3XBatch: the test chunk replicated into every lane
//     group, 64 / |tests| candidates per sweep, merged dirty cones.
// The computed reach masks are cross-checked for equality, so the driver
// doubles as an end-to-end smoke of the batched mode (ctest
// bench.smoke.xbatch). The theoretical ceiling of the batched mode is
// 64 / |tests| per sweep; the printed speedup shows how much of it the
// merged-cone sweeps realize on a real circuit.
//
// Run:  ./bench_xbatch [--circuit s38417_like] [--scale 1.0] [--errors 2]
//       [--tests 16] [--seed 1] [--rounds 1] [--json]
#include <cstdio>
#include <vector>

#include "report/experiment.hpp"
#include "sim/sim3.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace satdiag;

namespace {

std::vector<std::uint64_t> scalar_masks(const Netlist& nl,
                                        const TestSet& tests,
                                        const std::vector<GateId>& pool) {
  std::vector<std::uint64_t> masks(pool.size(), 0);
  ThreeValuedSimulator sim(nl);
  for (std::size_t b = 0; b < tests.size(); ++b) {
    sim.set_input_vector(b, tests[b].input_values);
  }
  sim.run();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    sim.clear_overrides();
    sim.inject_x(pool[i]);
    sim.run();
    for (std::size_t b = 0; b < tests.size(); ++b) {
      if (sim.value(test_output_gate(nl, tests[b])).is_x(b)) {
        masks[i] |= 1ULL << b;
      }
    }
  }
  return masks;
}

std::vector<std::uint64_t> batched_masks(const Netlist& nl,
                                         const TestSet& tests,
                                         const std::vector<GateId>& pool) {
  std::vector<std::uint64_t> masks(pool.size(), 0);
  Sim3XBatch batch(nl, tests);
  const std::span<const GateId> all(pool);
  for (std::size_t begin = 0; begin < pool.size();
       begin += batch.capacity()) {
    const std::size_t n = std::min(batch.capacity(), pool.size() - begin);
    batch.run_singles(all.subspan(begin, n), &masks[begin]);
  }
  return masks;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s38417_like");
  config.scale = args.get_double("scale", 1.0);
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
  config.num_tests = static_cast<std::size_t>(args.get_int("tests", 16));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 1));
  const bool json = args.get_bool("json", false);
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "no detectable experiment for %s\n",
                 config.circuit.c_str());
    return 1;
  }
  const Netlist& nl = prepared->faulty;
  const TestSet& tests = prepared->tests;
  std::vector<GateId> pool;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) pool.push_back(g);
  }

  Timer scalar_timer;
  std::vector<std::uint64_t> scalar;
  for (std::size_t r = 0; r < rounds; ++r) {
    scalar = scalar_masks(nl, tests, pool);
  }
  const double scalar_seconds = scalar_timer.seconds();

  Timer batched_timer;
  std::vector<std::uint64_t> batched;
  for (std::size_t r = 0; r < rounds; ++r) {
    batched = batched_masks(nl, tests, pool);
  }
  const double batched_seconds = batched_timer.seconds();

  if (scalar != batched) {
    std::fprintf(stderr, "FAIL: batched reach masks differ from scalar\n");
    return 1;
  }
  const double speedup =
      batched_seconds > 0 ? scalar_seconds / batched_seconds : 0.0;
  const std::size_t per_sweep = 64 / tests.size();
  if (json) {
    std::printf(
        "{\"bench\":\"xbatch\",\"circuit\":\"%s\",\"scale\":%.3f,"
        "\"gates\":%zu,\"tests\":%zu,\"candidates\":%zu,"
        "\"candidates_per_sweep\":%zu,\"scalar_seconds\":%.6f,"
        "\"batched_seconds\":%.6f,\"speedup\":%.2f}\n",
        config.circuit.c_str(), config.scale, nl.size(), tests.size(),
        pool.size(), per_sweep, scalar_seconds, batched_seconds, speedup);
  } else {
    std::printf("# lane-batched vs scalar X-injection on %s (%zu gates)\n",
                config.circuit.c_str(), nl.size());
    std::printf("tests (lanes/group):  %zu\n", tests.size());
    std::printf("candidates:           %zu\n", pool.size());
    std::printf("candidates per sweep: %zu\n", per_sweep);
    std::printf("scalar:               %.3f s\n", scalar_seconds);
    std::printf("batched:              %.3f s\n", batched_seconds);
    std::printf("speedup:              %.2fx\n", speedup);
  }
  return 0;
}
