// Reproduction of Table 2: runtimes of BSIM / COV / BSAT.
//
// Paper cells: s1423 (p=4), s6669 (p=3), s38417 (p=2), m in {4,8,16,32};
// per-cell columns BSIM, COV CNF/One/All, BSAT CNF/One/All. Synthetic
// profile circuits stand in for the ISCAS89 netlists (DESIGN.md).
//
// Defaults are sized for a laptop run (--scale 0.25, 60 s per approach and
// cell, solution cap). Pass --full for the paper-scale configuration with
// the original 30-minute limit.
//
// --threads N runs whole (circuit, p, m) cells instance-parallel on the
// exec/ runtime; the printed table is bit-identical for every thread count
// (timing columns measure wall clock and naturally vary).
//
// Run:  ./bench_table2_runtime [--scale 0.25] [--limit 60] [--full]
//       [--max-solutions 20000] [--seed 1] [--threads 1] [--csv]
#include <cstdio>

#include "report/format.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const bool full = args.get_bool("full", false);
  const double scale = args.get_double("scale", full ? 1.0 : 0.25);
  const double limit = args.get_double("limit", full ? 1800.0 : 30.0);
  const std::int64_t max_solutions =
      args.get_int("max-solutions", full ? -1 : 20000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t threads = args.get_int("threads", 1);
  const bool csv = args.get_bool("csv", false);
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }

  const std::vector<ExperimentConfig> configs =
      table2_grid_configs(scale, limit, max_solutions, seed);

  ExperimentGridOptions grid;
  grid.num_threads = static_cast<std::size_t>(threads);
  const std::vector<ExperimentCell> grid_cells =
      run_experiment_grid(configs, grid);

  TablePrinter table(table2_header());
  double bsim_seconds = 0.0;
  double cov_build_seconds = 0.0, cov_solve_seconds = 0.0;
  double bsat_build_seconds = 0.0, bsat_solve_seconds = 0.0;
  std::size_t cells = 0;
  for (const ExperimentCell& cell : grid_cells) {
    if (!cell.prepared) {
      std::fprintf(stderr, "skipping %s m=%zu (preparation failed)\n",
                   cell.config.circuit.c_str(), cell.config.num_tests);
      continue;
    }
    table.add_row(table2_row(cell.row));
    ++cells;
    bsim_seconds += cell.row.bsim_seconds;
    cov_build_seconds += cell.row.cov.cnf_seconds;
    cov_solve_seconds += cell.row.cov.all_seconds;
    bsat_build_seconds += cell.row.bsat.cnf_seconds;
    bsat_solve_seconds += cell.row.bsat.all_seconds;
  }
  // Aggregate build-vs-solve split for tools/bench_runner.py: instance
  // construction (CNF) against search, summed over the grid.
  std::printf(
      "{\"bench\":\"table2_runtime\",\"cells\":%zu,\"bsim_seconds\":%.3f,"
      "\"cov_build_seconds\":%.3f,\"cov_solve_seconds\":%.3f,"
      "\"bsat_build_seconds\":%.3f,\"bsat_solve_seconds\":%.3f}\n",
      cells, bsim_seconds, cov_build_seconds, cov_solve_seconds,
      bsat_build_seconds, bsat_solve_seconds);
  std::printf("# Table 2 reproduction (scale %.2f, limit %.0fs, cap %lld)\n",
              scale, limit, static_cast<long long>(max_solutions));
  std::printf("# '*' marks cells truncated by the resource limit\n");
  std::printf("%s", csv ? table.to_csv().c_str() : table.to_string().c_str());
  std::printf("\n# Expected shape (paper): BSIM < COV.All << BSAT.All;\n"
              "# BSAT.CNF grows with |I|*m; COV stays near BSIM.\n");
  return 0;
}
