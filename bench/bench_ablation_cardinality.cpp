// Ablation: cardinality encodings inside BSAT (and raw encoder size).
//
// The paper's instance constrains "the number of select-inputs with value 1"
// (Fig. 3); the encoding of that constraint is a free design choice. This
// bench compares pairwise / sequential counter / totalizer on (a) raw CNF
// size over n select lines and (b) end-to-end BSAT time. Also shows the
// O(|I|^k)-ish growth of COV's covering search (Table 1's COV column).
//
// Run:  ./bench_ablation_cardinality [--circuit s641_like] [--scale 0.5]
#include <cstdio>

#include "cnf/cardinality.hpp"
#include "diag/cover.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const std::string circuit = args.get_string("circuit", "s641_like");
  const double scale = args.get_double("scale", 0.5);
  const double limit = args.get_double("limit", 60.0);

  // ---- raw encoder size ------------------------------------------------------
  TablePrinter size_table({"encoding", "n", "k", "aux vars", "clauses"});
  for (CardEncoding enc : {CardEncoding::kPairwise, CardEncoding::kSequential,
                           CardEncoding::kTotalizer}) {
    for (unsigned n : {16u, 64u, 256u}) {
      for (unsigned k : {1u, 3u}) {
        if (enc == CardEncoding::kPairwise && n > 64) continue;  // explodes
        sat::Solver solver;
        std::vector<sat::Lit> lits;
        for (unsigned i = 0; i < n; ++i) {
          lits.push_back(sat::pos(solver.new_var()));
        }
        const int before_vars = solver.num_vars();
        encode_at_most_static(solver, lits, k, enc);
        size_table.add_row({card_encoding_name(enc), std::to_string(n),
                            std::to_string(k),
                            std::to_string(solver.num_vars() - before_vars),
                            std::to_string(solver.num_clauses())});
      }
    }
  }
  std::printf("# raw at-most-k encoder size\n%s\n",
              size_table.to_string().c_str());

  // ---- end-to-end BSAT -------------------------------------------------------
  TablePrinter bsat_table({"encoding", "k", "CNF s", "all s", "#sol"});
  for (unsigned k : {1u, 2u}) {
    ExperimentConfig config;
    config.circuit = circuit;
    config.scale = scale;
    config.num_errors = k;
    config.num_tests = 8;
    config.seed = 5;
    config.time_limit_seconds = limit;
    const auto prepared = prepare_experiment(config);
    if (!prepared) continue;
    for (CardEncoding enc :
         {CardEncoding::kSequential, CardEncoding::kTotalizer}) {
      BsatOptions options;
      options.k = k;
      options.deadline = Deadline::after_seconds(limit);
      options.instance.card_encoding = enc;
      const BsatResult r =
          basic_sat_diagnose(prepared->faulty, prepared->tests, options);
      bsat_table.add_row({card_encoding_name(enc), std::to_string(k),
                          strprintf("%.3f", r.build_seconds),
                          strprintf("%.3f%s", r.all_seconds,
                                    r.complete ? "" : "*"),
                          std::to_string(r.solutions.size())});
    }
  }
  std::printf("# BSAT end-to-end by encoding (on %s)\n%s\n", circuit.c_str(),
              bsat_table.to_string().c_str());

  // ---- COV search growth in k (Table 1: O(|I|^k)) ---------------------------
  TablePrinter cov_table({"k", "#sol", "all s"});
  {
    ExperimentConfig config;
    config.circuit = circuit;
    config.scale = scale;
    config.num_errors = 3;
    config.num_tests = 8;
    config.seed = 11;
    config.time_limit_seconds = limit;
    const auto prepared = prepare_experiment(config);
    if (prepared) {
      const BsimResult bsim =
          basic_sim_diagnose(prepared->faulty, prepared->tests);
      for (unsigned k = 1; k <= 4; ++k) {
        CovOptions options;
        options.k = k;
        options.deadline = Deadline::after_seconds(limit);
        options.max_solutions = 200000;
        const CovResult r = solve_covering_sat(bsim.candidate_sets, options);
        cov_table.add_row({std::to_string(k),
                           std::to_string(r.solutions.size()),
                           strprintf("%.3f%s", r.all_seconds,
                                     r.complete ? "" : "*")});
      }
    }
  }
  std::printf("# COV solution-space growth in k\n%s", cov_table.to_string().c_str());
  return 0;
}
