// Simulation-bound X-list diagnosis benchmark.
//
// xlist_single_candidates injects X at every candidate gate and forward-
// propagates a 3-valued simulation to the erroneous outputs — the
// ThreeValuedSimulator inner loop shape (one injection site per sweep, all
// tests in parallel pattern slots). A full-resweep 3-valued engine pays
// O(|circuit|) per candidate, a dirty-cone incremental one O(|fanout cone|),
// so this workload measures exactly what the unified compiled kernel
// accelerates on the X-list / effect-analysis side.
//
// Uses only the public xlist API so the same driver binary is meaningful
// before and after engine changes (see tools/bench_runner.py).
//
// Run:  ./bench_xlist [--circuit s38417_like] [--scale 1.0] [--errors 2]
//       [--tests 16] [--seed 1] [--rounds 1] [--restrict false] [--json]
#include <cstdio>

#include "diag/xlist.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s38417_like");
  config.scale = args.get_double("scale", 1.0);
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
  config.num_tests = static_cast<std::size_t>(args.get_int("tests", 16));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 1));
  const std::int64_t threads = args.get_int("threads", 1);
  // Unrestricted pool by default: every combinational gate is a candidate,
  // which is the simulation-bound worst case the engine must sustain.
  const bool restrict_cones = args.get_bool("restrict", false);
  const bool json = args.get_bool("json", false);
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }
  // A typo'd flag must not silently fall back to a default workload: the
  // recorded BENCH_*.json timings would compare different work.
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "no detectable experiment for %s\n",
                 config.circuit.c_str());
    return 1;
  }

  XListOptions options;
  options.restrict_to_fanin_cones = restrict_cones;
  options.num_threads = static_cast<std::size_t>(threads);
  std::size_t candidates = 0;
  std::size_t pool = 0;
  for (GateId g = 0; g < prepared->faulty.size(); ++g) {
    if (prepared->faulty.is_combinational(g)) ++pool;
  }
  Timer timer;
  for (std::size_t round = 0; round < rounds; ++round) {
    candidates =
        xlist_single_candidates(prepared->faulty, prepared->tests, options)
            .size();
  }
  const double seconds = timer.seconds();
  const double sweeps =
      static_cast<double>(restrict_cones ? candidates : pool) *
      static_cast<double>(rounds);

  if (json) {
    std::printf(
        "{\"bench\":\"xlist_sim3\",\"circuit\":\"%s\",\"scale\":%.3f,"
        "\"gates\":%zu,\"tests\":%zu,\"errors\":%zu,\"rounds\":%zu,"
        "\"candidates\":%zu,\"seconds\":%.6f,"
        "\"injection_sweeps_per_second\":%.0f}\n",
        config.circuit.c_str(), config.scale, prepared->faulty.size(),
        prepared->tests.size(), config.num_errors, rounds, candidates,
        seconds, sweeps / seconds);
  } else {
    std::printf("# X-list single-location diagnosis on %s (%zu gates)\n",
                config.circuit.c_str(), prepared->faulty.size());
    std::printf("tests:              %zu\n", prepared->tests.size());
    std::printf("candidate pool:     %zu\n", pool);
    std::printf("candidates kept:    %zu\n", candidates);
    std::printf("elapsed:            %.3f s\n", seconds);
    std::printf("injection sweeps/s: %.0f\n", sweeps / seconds);
  }
  return 0;
}
