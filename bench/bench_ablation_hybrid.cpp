// Ablation: the Section 6 hybrid proposals vs plain BSAT.
//
// Measures time-to-first-solution, total time, decision counts and the
// instance size reduction from COV-guided restriction, across several seeds.
//
// Run:  ./bench_ablation_hybrid [--circuit s953_like] [--scale 0.5]
//       [--tests 8] [--rounds 5] [--limit 60]
#include <cstdio>

#include "diag/hybrid.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const std::string circuit = args.get_string("circuit", "s953_like");
  const double scale = args.get_double("scale", 0.5);
  const std::size_t tests_n =
      static_cast<std::size_t>(args.get_int("tests", 8));
  const int rounds = static_cast<int>(args.get_int("rounds", 5));
  const double limit = args.get_double("limit", 60.0);

  Summary plain_first, seeded_first, repair_first;
  Summary plain_dec, seeded_dec;
  Summary repair_gates;
  int plain_sols = 0, seeded_sols = 0, repair_sols = 0;
  int usable = 0;

  for (int round = 0; round < rounds; ++round) {
    ExperimentConfig config;
    config.circuit = circuit;
    config.scale = scale;
    config.num_errors = 1;
    config.num_tests = tests_n;
    config.seed = 100 + static_cast<std::uint64_t>(round);
    config.time_limit_seconds = limit;
    const auto prepared = prepare_experiment(config);
    if (!prepared) continue;
    ++usable;

    BsatOptions plain;
    plain.k = 1;
    plain.deadline = Deadline::after_seconds(limit);
    const BsatResult base =
        basic_sat_diagnose(prepared->faulty, prepared->tests, plain);
    plain_first.add(base.first_seconds);
    plain_dec.add(static_cast<double>(base.solver_stats.decisions));
    plain_sols += static_cast<int>(base.solutions.size());

    HybridOptions seed;
    seed.mode = HybridMode::kSeedActivity;
    seed.k = 1;
    seed.deadline = Deadline::after_seconds(limit);
    const HybridResult seeded =
        hybrid_diagnose(prepared->faulty, prepared->tests, seed);
    seeded_first.add(seeded.sim_seconds + seeded.sat_seconds);
    seeded_dec.add(static_cast<double>(seeded.solver_stats.decisions));
    seeded_sols += static_cast<int>(seeded.solutions.size());

    HybridOptions repair;
    repair.mode = HybridMode::kRepairCover;
    repair.k = 1;
    repair.deadline = Deadline::after_seconds(limit);
    const HybridResult repaired =
        hybrid_diagnose(prepared->faulty, prepared->tests, repair);
    repair_first.add(repaired.sim_seconds + repaired.sat_seconds);
    repair_gates.add(
        static_cast<double>(repaired.instrumented) /
        static_cast<double>(prepared->faulty.num_combinational_gates()));
    repair_sols += static_cast<int>(repaired.solutions.size());
  }

  std::printf("# hybrid ablation on %s, %d usable rounds\n", circuit.c_str(),
              usable);
  TablePrinter table({"variant", "mean total s", "mean decisions",
                      "total #sol", "note"});
  table.add_row({"plain BSAT", strprintf("%.3f", plain_first.mean()),
                 strprintf("%.0f", plain_dec.mean()),
                 std::to_string(plain_sols), "complete"});
  table.add_row({"BSIM-seeded", strprintf("%.3f", seeded_first.mean()),
                 strprintf("%.0f", seeded_dec.mean()),
                 std::to_string(seeded_sols), "complete, same space"});
  table.add_row({"COV-restricted", strprintf("%.3f", repair_first.mean()),
                 "-", std::to_string(repair_sols),
                 strprintf("instance %.0f%% of gates",
                           repair_gates.mean() * 100.0)});
  std::printf("%s", table.to_string().c_str());
  std::printf("\n# Sec. 6 expectation: seeding cuts decisions; restriction\n"
              "# shrinks the instance at some completeness risk.\n");
  return 0;
}
