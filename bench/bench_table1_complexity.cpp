// Empirical check of Table 1's complexity rows.
//
//  * BSIM time is O(|I| * m): doubling gates or tests roughly doubles time.
//  * BSIM space is O(|I| + m); COV/BSAT instances are Theta(|I| * m):
//    measured as CNF variables/clauses of the diagnosis instance.
//
// Run:  ./bench_table1_complexity [--seed 1]
#include <cstdio>

#include "cnf/mux_instrument.hpp"
#include "diag/bsim.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace satdiag;

namespace {

struct Scenario {
  Netlist faulty;
  TestSet tests;
};

Scenario make(std::size_t gates, std::size_t m, std::uint64_t seed) {
  GeneratorParams params;
  params.num_inputs = 16;
  params.num_outputs = 8;
  params.num_dffs = gates / 12;
  params.num_gates = gates;
  params.seed = seed;
  const Netlist golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed + 17);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(golden, rng, inject);
  Scenario s{golden.clone(), {}};
  if (!errors) return s;
  s.faulty = apply_errors(golden, *errors);
  TestGenOptions tg;
  tg.max_random_words = 2048;
  s.tests = generate_failing_tests(golden, *errors, m, rng, tg);
  return s;
}

double time_bsim(const Scenario& s, int repeats) {
  Timer t;
  for (int i = 0; i < repeats; ++i) {
    basic_sim_diagnose(s.faulty, s.tests);
  }
  return t.seconds() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("# Table 1 empirical check\n\n");

  // ---- BSIM ~ O(|I| * m) ---------------------------------------------------
  TablePrinter bsim_table({"|I|", "m", "BSIM ms", "ms / (|I|*m) * 1e6"});
  for (std::size_t gates : {500, 1000, 2000, 4000}) {
    for (std::size_t m : {8, 32}) {
      const Scenario s = make(gates, m, seed);
      if (s.tests.size() < m) continue;
      const double secs = time_bsim(s, 5);
      bsim_table.add_row(
          {std::to_string(s.faulty.size()), std::to_string(m),
           strprintf("%.3f", secs * 1e3),
           strprintf("%.3f", secs * 1e9 /
                                 (double(s.faulty.size()) * double(m)))});
    }
  }
  std::printf("## BSIM runtime, linear in |I|*m "
              "(last column should stay ~constant)\n%s\n",
              bsim_table.to_string().c_str());

  // ---- BSAT instance ~ Theta(|I| * m) ---------------------------------------
  TablePrinter size_table(
      {"|I|", "m", "vars", "clauses", "vars / (|I|*m)"});
  for (std::size_t gates : {500, 1000, 2000}) {
    for (std::size_t m : {4, 8, 16}) {
      const Scenario s = make(gates, m, seed + 7);
      if (s.tests.size() < m) continue;
      DiagnosisInstanceOptions options;
      options.max_k = 2;
      const DiagnosisInstance inst =
          build_diagnosis_instance(s.faulty, s.tests, options);
      const double vars = double(inst.solver.num_vars());
      size_table.add_row(
          {std::to_string(s.faulty.size()), std::to_string(m),
           strprintf("%.0f", vars),
           std::to_string(inst.solver.num_clauses()),
           strprintf("%.2f", vars / (double(s.faulty.size()) * double(m)))});
    }
  }
  std::printf("## BSAT instance size, Theta(|I|*m) "
              "(last column should stay ~constant)\n%s\n",
              size_table.to_string().c_str());

  std::printf("# Table 1 asymptotics covered elsewhere:\n"
              "#  COV O(|I|^k) search     -> bench_ablation_cardinality\n"
              "#  BSAT exponential search -> bench_table2_runtime\n");
  return 0;
}
