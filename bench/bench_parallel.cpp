// Execution-runtime benchmark: the candidate-/instance-parallel workloads
// at a configurable thread count, for the BENCH_*.json scaling rows.
//
// Workloads (--workload):
//   experiment  the Table-2 grid (12 cells) run instance-parallel — the
//               "table2_mt" pinned workload; same cells and seeds as
//               bench_table2_runtime so the serial row is the baseline
//   fault_sim   candidate-parallel exhaustive stuck-at fault simulation
//   xlist       candidate-parallel X-list single-location diagnosis
//   portfolio   seed-portfolio SAT racing on pinned random 3-SAT instances
//               near the phase transition (status counts are deterministic)
//
// Every workload is bit-identical across thread counts in its reported
// result fields (tables / detection counts / candidate counts / status
// counts); only the wall clock changes. The drivers print one JSON line for
// tools/bench_runner.py.
//
// Run:  ./bench_parallel --workload experiment --threads 8 [--json]
#include <cstdio>
#include <string>
#include <vector>

#include "diag/xlist.hpp"
#include "fault/fault_sim.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "report/experiment.hpp"
#include "report/format.hpp"
#include "sat/portfolio.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace satdiag;

namespace {

int run_experiment_workload(std::size_t threads, double scale, double limit,
                            std::int64_t max_solutions, std::uint64_t seed,
                            bool json) {
  const std::vector<ExperimentConfig> configs =
      table2_grid_configs(scale, limit, max_solutions, seed);
  ExperimentGridOptions grid;
  grid.num_threads = threads;
  Timer timer;
  const std::vector<ExperimentCell> rows = run_experiment_grid(configs, grid);
  const double seconds = timer.seconds();
  std::size_t prepared = 0;
  for (const ExperimentCell& cell : rows) prepared += cell.prepared ? 1 : 0;
  if (json) {
    std::printf(
        "{\"bench\":\"table2_mt\",\"cells\":%zu,\"prepared\":%zu,"
        "\"threads\":%zu,\"scale\":%.3f,\"seconds\":%.6f}\n",
        rows.size(), prepared, threads, scale, seconds);
  } else {
    TablePrinter table(table2_header());
    for (const ExperimentCell& cell : rows) {
      if (cell.prepared) table.add_row(table2_row(cell.row));
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("# %zu/%zu cells, %zu threads, %.3f s\n", prepared,
                rows.size(), threads, seconds);
  }
  return 0;
}

int run_fault_sim_workload(std::size_t threads, double scale,
                           std::uint64_t seed, std::size_t rounds,
                           bool json) {
  const auto profile = find_profile("s38417_like");
  const Netlist nl =
      make_full_scan(make_profile_circuit(*profile, scale, seed)).comb;
  const std::vector<GateId> sites = stuck_at_sites(nl);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  StuckAtFaultSimOptions options;
  options.rounds = rounds;
  options.num_threads = threads;
  Timer timer;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);
  const double seconds = timer.seconds();
  if (json) {
    std::printf(
        "{\"bench\":\"fault_sim_mt\",\"gates\":%zu,\"faults\":%zu,"
        "\"detected\":%zu,\"threads\":%zu,\"seconds\":%.6f}\n",
        nl.size(), result.faults, result.detected, threads, seconds);
  } else {
    std::printf("fault_sim: %zu faults, %zu detected, %zu threads, %.3f s\n",
                result.faults, result.detected, threads, seconds);
  }
  return 0;
}

int run_xlist_workload(std::size_t threads, double scale, std::uint64_t seed,
                       bool json) {
  ExperimentConfig config;
  config.circuit = "s38417_like";
  config.scale = scale;
  config.num_errors = 2;
  config.num_tests = 16;
  config.seed = seed;
  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "no detectable experiment\n");
    return 1;
  }
  XListOptions options;
  options.restrict_to_fanin_cones = false;
  options.num_threads = threads;
  Timer timer;
  const std::size_t candidates =
      xlist_single_candidates(prepared->faulty, prepared->tests, options)
          .size();
  const double seconds = timer.seconds();
  if (json) {
    std::printf(
        "{\"bench\":\"xlist_mt\",\"gates\":%zu,\"candidates\":%zu,"
        "\"threads\":%zu,\"seconds\":%.6f}\n",
        prepared->faulty.size(), candidates, threads, seconds);
  } else {
    std::printf("xlist: %zu candidates, %zu threads, %.3f s\n", candidates,
                threads, seconds);
  }
  return 0;
}

int run_portfolio_workload(std::size_t threads, std::uint64_t seed,
                           bool json) {
  // Pinned random 3-SAT at clause ratio ~4.26 (the hard region): statuses
  // are a deterministic function of the instance seed regardless of which
  // configuration wins the race.
  const int kVars = 140;
  const int kClauses = 596;
  const std::size_t kInstances = 12;
  std::size_t sat_count = 0;
  std::uint64_t conflicts = 0;
  Timer timer;
  for (std::size_t instance = 0; instance < kInstances; ++instance) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + instance);
    std::vector<sat::Clause> clauses;
    clauses.reserve(kClauses);
    for (int c = 0; c < kClauses; ++c) {
      sat::Clause clause;
      for (int l = 0; l < 3; ++l) {
        const auto v =
            static_cast<sat::Var>(rng.next_below(kVars));
        clause.push_back(sat::Lit(v, rng.next_bool()));
      }
      clauses.push_back(std::move(clause));
    }
    sat::PortfolioOptions options;
    options.num_configs = 4;
    options.num_threads = threads;
    options.seed = seed + instance;
    const sat::PortfolioResult result =
        sat::solve_portfolio(kVars, clauses, {}, options);
    if (result.status == sat::LBool::kTrue) ++sat_count;
    conflicts += result.stats.conflicts;
  }
  const double seconds = timer.seconds();
  if (json) {
    std::printf(
        "{\"bench\":\"portfolio\",\"instances\":%zu,\"sat\":%zu,"
        "\"conflicts\":%llu,\"threads\":%zu,\"seconds\":%.6f}\n",
        kInstances, sat_count, static_cast<unsigned long long>(conflicts),
        threads, seconds);
  } else {
    std::printf("portfolio: %zu/%zu sat, %zu threads, %.3f s\n", sat_count,
                kInstances, threads, seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  if (!args.parse(argc, argv, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const std::string workload = args.get_string("workload", "experiment");
  const std::int64_t threads = args.get_int("threads", 1);
  const double scale = args.get_double("scale", 0.1);
  const double limit = args.get_double("limit", 60.0);
  const std::int64_t max_solutions = args.get_int("max-solutions", 2000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 1));
  const bool json = args.get_bool("json", false);
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }
  // A typo'd flag must not silently fall back to a default workload: the
  // recorded BENCH_*.json timings would compare different work.
  for (const std::string& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }
  const std::size_t lanes = static_cast<std::size_t>(threads);
  if (workload == "experiment") {
    return run_experiment_workload(lanes, scale, limit, max_solutions, seed,
                                   json);
  }
  if (workload == "fault_sim") {
    return run_fault_sim_workload(lanes, scale, seed, rounds, json);
  }
  if (workload == "xlist") return run_xlist_workload(lanes, scale, seed, json);
  if (workload == "portfolio") {
    return run_portfolio_workload(lanes, seed, json);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
  return 2;
}
