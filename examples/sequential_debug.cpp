// Sequential diagnosis without full scan + automatic repair.
//
// Demonstrates the two extension modules: an error injected into the
// sequential s27 is located from failing input *sequences* (time-frame
// expanded SAT diagnosis, the paper's ref. [4]), and the located gate is
// then repaired by fitting its replacement function (Sec. 4 remark).
//
// Run:  ./sequential_debug [--seed 2] [--length 6] [--tests 4]
#include <cstdio>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "netlist/scan.hpp"
#include "repair/realize.hpp"
#include "seq/seq_diag.hpp"
#include "util/cli.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2));
  const std::size_t length =
      static_cast<std::size_t>(args.get_int("length", 6));
  const std::size_t tests_n =
      static_cast<std::size_t>(args.get_int("tests", 4));

  const Netlist golden = builtin_s27();
  Rng rng(seed);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(golden, rng, inject);
  if (!errors) {
    std::fprintf(stderr, "no detectable error\n");
    return 1;
  }
  const Netlist faulty = apply_errors(golden, *errors);
  std::printf("injected into s27: %s (gate '%s')\n",
              describe_error(errors->front()).c_str(),
              golden.gate_name(error_site(errors->front())).c_str());

  // Failing SEQUENCES: the error may need several cycles to reach G17.
  const SeqTestSet tests =
      generate_failing_seq_tests(golden, faulty, tests_n, length, rng);
  std::printf("failing sequences: %zu (length %zu, reset state)\n",
              tests.size(), length);
  if (tests.empty()) return 1;
  for (const SeqTest& t : tests) {
    std::printf("  erroneous output %zu at cycle %zu\n", t.output_index,
                t.cycle);
  }

  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(faulty, tests, options);
  std::printf("sequential BSAT (%zu vars, %zu clauses): %zu corrections\n",
              result.num_vars, result.num_clauses, result.solutions.size());
  for (const auto& solution : result.solutions) {
    std::printf("  {");
    for (std::size_t i = 0; i < solution.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  faulty.gate_name(solution[i]).c_str());
    }
    std::printf("}%s\n",
                solution ==
                        std::vector<GateId>{error_site(errors->front())}
                    ? "   <-- injected error"
                    : "");
  }

  // Repair on the full-scan view (per-cycle demands become per-test demands).
  const Netlist scan = make_full_scan(golden).comb;
  const Netlist scan_faulty = apply_errors(scan, *errors);
  const TestSet scan_tests =
      generate_failing_tests(scan, *errors, 8, rng);
  if (!scan_tests.empty()) {
    const RepairResult repair = realize_correction(
        scan_faulty, scan_tests, {error_site(errors->front())});
    if (repair.consistent) {
      std::printf("repair at the real site: table ");
      for (bool b : repair.repairs[0].truth_table) {
        std::printf("%d", b ? 1 : 0);
      }
      if (repair.repairs[0].matching_type) {
        std::printf(" == %s",
                    std::string(gate_type_name(*repair.repairs[0].matching_type))
                        .c_str());
      }
      std::printf("  verification %s\n", repair.verified ? "PASS" : "FAIL");
    }
  }
  return 0;
}
