// The paper's future-work hybrid (Section 6), demonstrated.
//
// Compares plain BSAT against (a) BSIM-seeded decision heuristics and
// (b) COV-guided instance restriction, on the same diagnosis scenario.
//
// Run:  ./hybrid_diagnosis [--circuit s953_like] [--scale 0.5] [--tests 8]
#include <cstdio>

#include "diag/hybrid.hpp"
#include "report/experiment.hpp"
#include "util/cli.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s953_like");
  config.scale = args.get_double("scale", 0.5);
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 1));
  config.num_tests = static_cast<std::size_t>(args.get_int("tests", 8));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  config.time_limit_seconds = 120.0;

  const auto prepared = prepare_experiment(config);
  if (!prepared) {
    std::fprintf(stderr, "experiment preparation failed\n");
    return 1;
  }
  std::printf("# %s (%zu gates), %zu error(s), %zu tests\n",
              config.circuit.c_str(), prepared->faulty.size(),
              config.num_errors, prepared->tests.size());

  // Plain BSAT.
  BsatOptions plain;
  plain.k = static_cast<unsigned>(config.num_errors);
  const BsatResult base =
      basic_sat_diagnose(prepared->faulty, prepared->tests, plain);
  std::printf("plain BSAT:    %zu solutions, %.3fs, %llu decisions\n",
              base.solutions.size(), base.all_seconds,
              static_cast<unsigned long long>(base.solver_stats.decisions));

  // Hybrid A: BSIM activity seeding.
  HybridOptions seed;
  seed.mode = HybridMode::kSeedActivity;
  seed.k = plain.k;
  const HybridResult seeded =
      hybrid_diagnose(prepared->faulty, prepared->tests, seed);
  std::printf("seeded BSAT:   %zu solutions, sim %.3fs + sat %.3fs, "
              "%llu decisions\n",
              seeded.solutions.size(), seeded.sim_seconds, seeded.sat_seconds,
              static_cast<unsigned long long>(seeded.solver_stats.decisions));

  // Hybrid B: COV-restricted instance.
  HybridOptions repair;
  repair.mode = HybridMode::kRepairCover;
  repair.k = plain.k;
  repair.neighbourhood_radius = 2;
  const HybridResult repaired =
      hybrid_diagnose(prepared->faulty, prepared->tests, repair);
  std::printf("COV-restricted BSAT: %zu solutions, instance %zu/%zu gates, "
              "sim %.3fs + sat %.3fs\n",
              repaired.solutions.size(), repaired.instrumented,
              prepared->faulty.num_combinational_gates(),
              repaired.sim_seconds, repaired.sat_seconds);

  std::printf("\nAll three agree on validity (Lemma 1); the hybrids trade\n"
              "completeness or heuristic effort for speed (Sec. 6).\n");
  return 0;
}
