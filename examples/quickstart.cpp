// Quickstart: the full diagnosis story on one small circuit.
//
//   1. Build a circuit (the classic c17).
//   2. Inject a gate-change error.
//   3. Generate failing tests (Definition 1 triples).
//   4. Run the three basic approaches: BSIM, COV, BSAT.
//
// Run:  ./quickstart
#include <cstdio>

#include "bench/builtin_circuits.hpp"
#include "diag/bsat.hpp"
#include "diag/bsim.hpp"
#include "diag/cover.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "netlist/scan.hpp"

using namespace satdiag;

int main() {
  // 1. A combinational view of c17 (no DFFs, so this is the identity).
  const Netlist golden = make_full_scan(builtin_c17()).comb;
  std::printf("circuit: %s, %zu gates\n", golden.name().c_str(),
              golden.size());

  // 2. One random gate-change error.
  Rng rng(2024);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(golden, rng, inject);
  if (!errors) {
    std::printf("no detectable error found\n");
    return 1;
  }
  std::printf("injected: %s\n", describe_error(errors->front()).c_str());
  const Netlist faulty = apply_errors(golden, *errors);

  // 3. Failing tests.
  const TestSet tests = generate_failing_tests(golden, *errors, 4, rng);
  std::printf("failing tests: %zu\n", tests.size());
  if (tests.empty()) return 1;

  // 4a. BSIM: candidate sets per test.
  const BsimResult bsim = basic_sim_diagnose(faulty, tests);
  std::printf("BSIM marked %zu gates; Gmax size %zu\n",
              bsim.marked_union.size(), bsim.gmax.size());

  // 4b. COV: irredundant covers of the candidate sets.
  CovOptions cov_options;
  cov_options.k = 1;
  const CovResult cov = solve_covering_sat(bsim.candidate_sets, cov_options);
  std::printf("COV found %zu covers\n", cov.solutions.size());

  // 4c. BSAT: all essential valid corrections.
  BsatOptions bsat_options;
  bsat_options.k = 1;
  const BsatResult bsat = basic_sat_diagnose(faulty, tests, bsat_options);
  std::printf("BSAT found %zu valid corrections:\n", bsat.solutions.size());
  for (const auto& solution : bsat.solutions) {
    std::printf("  {");
    for (std::size_t i = 0; i < solution.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  faulty.gate_name(solution[i]).c_str());
    }
    std::printf("}%s\n",
                solution == std::vector<GateId>{error_site(errors->front())}
                    ? "   <-- injected error"
                    : "");
  }
  return 0;
}
