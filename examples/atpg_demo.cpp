// SAT-based ATPG as a standalone capability.
//
// The test-generation substrate doubles as an ATPG engine: a miter between
// the golden circuit and a faulty behaviour, solved by the CDCL engine,
// yields distinguishing input vectors — even for faults random simulation
// virtually never hits.
//
// Run:  ./atpg_demo [--inputs 20]
#include <cmath>
#include <cstdio>

#include "fault/testgen.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  const std::size_t n = static_cast<std::size_t>(args.get_int("inputs", 20));

  // A wide AND stuck-at-0: the faulty chip differs from the golden design
  // ONLY on the all-ones vector — a 2^-n needle for random search.
  Netlist nl("needle");
  std::vector<GateId> ins;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = "i";
    name += std::to_string(i);
    ins.push_back(nl.add_input(name));
  }
  const GateId g = nl.add_gate(GateType::kAnd, "g", ins);
  const GateId o = nl.add_gate(GateType::kBuf, "o", {g});
  nl.add_output(o);
  nl.finalize();
  const ErrorList errors{StuckAtError{g, false}};

  std::printf("fault: %s (only 1 of %.0f vectors detects it)\n",
              describe_error(errors[0]).c_str(),
              std::pow(2.0, static_cast<double>(n)));

  // Random-only: 2^14 patterns, will almost surely miss for n >= 20.
  Rng rng(1);
  TestGenOptions random_only;
  random_only.max_random_words = 256;
  random_only.use_atpg_fallback = false;
  Timer t1;
  const TestSet random_tests =
      generate_failing_tests(nl, errors, 1, rng, random_only);
  std::printf("random simulation: %zu test(s) in %.3fs\n", random_tests.size(),
              t1.seconds());

  // With the SAT ATPG fallback: guaranteed hit.
  TestGenOptions with_atpg;
  with_atpg.max_random_words = 256;
  with_atpg.use_atpg_fallback = true;
  Timer t2;
  const TestSet atpg_tests =
      generate_failing_tests(nl, errors, 1, rng, with_atpg);
  std::printf("with SAT ATPG:     %zu test(s) in %.3fs\n", atpg_tests.size(),
              t2.seconds());
  if (!atpg_tests.empty()) {
    std::printf("vector: ");
    for (bool b : atpg_tests[0].input_values) std::printf("%d", b ? 1 : 0);
    std::printf(" (erroneous output %zu, correct value %d)\n",
                atpg_tests[0].output_index,
                atpg_tests[0].correct_value ? 1 : 0);
  }
  return atpg_tests.empty() ? 1 : 0;
}
