// Design-debug workflow on a realistic sequential circuit.
//
// Mirrors the paper's experimental setup: an ISCAS89-scale circuit, multiple
// injected gate-change errors, diagnosis with a growing test-set showing how
// additional tests sharpen the resolution (the point of Table 3).
//
// Run:  ./debug_workflow [--circuit s1423_like] [--errors 2] [--seed 7]
//                        [--scale 0.5]
#include <cstdio>

#include "diag/effect.hpp"
#include "report/experiment.hpp"
#include "report/format.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace satdiag;

int main(int argc, char** argv) {
  CliArgs args;
  std::string error;
  args.parse(argc, argv, error);
  ExperimentConfig config;
  config.circuit = args.get_string("circuit", "s1423_like");
  config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.scale = args.get_double("scale", 0.5);
  config.time_limit_seconds = args.get_double("time-limit", 120.0);
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  TablePrinter table({"m", "BSIM |UCi|", "COV #sol", "BSAT #sol",
                      "BSAT avg dist", "site found"});
  for (std::size_t m : {4, 8, 16, 32}) {
    config.num_tests = m;
    const auto prepared = prepare_experiment(config);
    if (!prepared) {
      std::fprintf(stderr, "could not prepare experiment for m=%zu\n", m);
      continue;
    }
    const ExperimentRow row = run_experiment(*prepared, config);
    bool site_found = false;
    for (const auto& solution : row.bsat.solutions) {
      for (GateId g : solution) {
        for (GateId site : prepared->error_sites) site_found |= g == site;
      }
    }
    table.add_row({std::to_string(m),
                   std::to_string(row.bsim_quality.union_size),
                   std::to_string(row.cov.quality.num_solutions),
                   std::to_string(row.bsat.quality.num_solutions),
                   format_stat(row.bsat.quality.mean_avg),
                   site_found ? "yes" : "no"});
  }
  std::printf("# %s with %zu injected errors (seed %llu, scale %.2f)\n",
              config.circuit.c_str(), config.num_errors,
              static_cast<unsigned long long>(config.seed), config.scale);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: more tests -> fewer, closer solutions "
              "(the resolution effect of Table 3).\n");
  return 0;
}
