# Resolve GoogleTest: prefer a system package, fall back to FetchContent.
# The fallback needs network access at configure time, so it is only
# attempted when no system install exists.
#
# Provides: GTest::gtest_main, and includes the GoogleTest module so callers
# can use gtest_discover_tests().

find_package(GTest QUIET)
if(GTest_FOUND)
  message(STATUS "Using system GoogleTest (${GTest_DIR})")
else()
  message(STATUS "System GoogleTest not found - fetching v1.14.0")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  # Keep gtest out of our install set and compatible with shared CRT on MSVC.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

include(GoogleTest)
