#!/usr/bin/env python3
"""Concurrent-client load driver for the `satdiag serve` daemon.

Starts the daemon on an ephemeral port, generates a pinned gen/inject
fixture pair, then runs N client threads each holding one persistent
connection and issuing M requests (a diagnose-heavy mix with a `gen`
request and periodic `metrics` probes interleaved). Records per-request latency and prints one JSON
summary line, which is how tools/bench_runner.py embeds the numbers in
BENCH_*.json as the `serve_throughput` workload:

    tools/serve_loadgen.py --cli build/tools/satdiag_cli \
        --clients 8 --requests 12 --threads 2

Correctness checks ride along with the measurement: every diagnose reply
must be status "ok" with a correction set identical across all clients
and requests (the daemon must not trade determinism for concurrency),
the warm artifact-cache hit counter must be strictly increasing across
the run, and the daemon must exit cleanly on a `shutdown` request.
Requests shed with a structured `overloaded` reply count separately and
fail the run only if --expect-no-shed is passed (the default clients/
max-inflight ratio is chosen so the queue absorbs the burst).
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def rpc(self, request):
        self.file.write(json.dumps(request) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise RuntimeError("server closed connection mid-request")
        return json.loads(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def client_worker(port, requests, diagnose, gen, results, index):
    stats = {"ok": 0, "overloaded": 0, "errors": [], "latencies_ms": [],
             "corrections": None}
    try:
        client = Client(port)
        for i in range(requests):
            # Mixed stream: mostly diagnose (the expensive request), with a
            # gen and periodic metrics probes interleaved per client.
            if i == 1:
                request = dict(gen)
            elif i % 5 == 3:
                request = {"command": "metrics"}
            else:
                request = dict(diagnose)
            request["id"] = "c%d-r%d" % (index, i)
            start = time.monotonic()
            response = client.rpc(request)
            stats["latencies_ms"].append((time.monotonic() - start) * 1e3)
            status = response.get("status")
            if status == "ok":
                stats["ok"] += 1
                if request["command"] != "diagnose":
                    continue
                corrections = tuple(sorted(
                    tuple(c)
                    for c in response["report"]["result"]["corrections"]))
                if stats["corrections"] is None:
                    stats["corrections"] = corrections
                elif stats["corrections"] != corrections:
                    stats["errors"].append("non-deterministic corrections")
            elif status == "overloaded":
                stats["overloaded"] += 1
            else:
                stats["errors"].append("unexpected response: %r" % response)
        client.close()
    except Exception as err:  # noqa: BLE001 - report, don't crash the run
        stats["errors"].append(str(err))
    results[index] = stats


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cli", required=True,
                        help="path to the satdiag_cli binary")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=12,
                        help="requests per client")
    parser.add_argument("--threads", type=int, default=2,
                        help="server worker threads (per-request --threads)")
    parser.add_argument("--max-inflight", type=int, default=0,
                        help="server admission limit (0 = derive)")
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--profile", default="s298_like")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--expect-no-shed", action="store_true",
                        help="fail if any request is shed as overloaded")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="satdiag_loadgen_") as tmp:
        bench = os.path.join(tmp, "c.bench")
        faulty = os.path.join(tmp, "faulty.bench")
        tests = os.path.join(tmp, "tests.txt")
        subprocess.run([args.cli, "gen", "--profile", args.profile,
                        "--seed", str(args.seed), "--out", bench],
                       check=True, capture_output=True)
        subprocess.run([args.cli, "inject", bench, "--errors", "1",
                        "--seed", "3", "--out", faulty,
                        "--tests-out", tests],
                       check=True, capture_output=True)

        server = subprocess.Popen(
            [args.cli, "serve", "--port", "0",
             "--threads", str(args.threads),
             "--max-inflight", str(args.max_inflight),
             "--queue-depth", str(args.queue_depth)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        banner = server.stdout.readline().strip()
        prefix = "serving on 127.0.0.1:"
        if not banner.startswith(prefix):
            server.kill()
            sys.exit("loadgen: unexpected serve banner: %r" % banner)
        port = int(banner[len(prefix):])

        diagnose = {"command": "diagnose", "positional": [faulty],
                    "args": {"tests": tests, "approach": "bsat", "k": 2}}
        gen = {"command": "gen",
               "args": {"profile": args.profile, "seed": args.seed}}

        control = Client(port)

        def cache_hits():
            response = control.rpc({"id": "m", "command": "metrics"})
            return response["report"]["metrics"]["cache.hits"]

        # Warm the artifact cache once so the measured run is the steady
        # state a long-lived daemon actually operates in.
        warmup = dict(diagnose)
        warmup["id"] = "warmup"
        if control.rpc(warmup).get("status") != "ok":
            server.kill()
            sys.exit("loadgen: warmup diagnose failed")
        hits_before = cache_hits()

        results = [None] * args.clients
        threads = []
        start = time.monotonic()
        for i in range(args.clients):
            t = threading.Thread(target=client_worker,
                                 args=(port, args.requests, diagnose, gen,
                                       results, i))
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        wall = time.monotonic() - start

        hits_after = cache_hits()
        response = control.rpc({"id": "s", "command": "shutdown"})
        control.close()
        server.wait(timeout=30)

        failures = []
        if response.get("status") != "ok":
            failures.append("shutdown request failed: %r" % response)
        if server.returncode != 0:
            failures.append("server exit code %d" % server.returncode)
        if hits_after <= hits_before:
            failures.append("cache.hits not increasing (%d -> %d)"
                            % (hits_before, hits_after))

        ok = sum(r["ok"] for r in results)
        shed = sum(r["overloaded"] for r in results)
        latencies = sorted(ms for r in results for ms in r["latencies_ms"])
        correction_sets = {r["corrections"] for r in results
                           if r["corrections"] is not None}
        for i, r in enumerate(results):
            for err in r["errors"]:
                failures.append("client %d: %s" % (i, err))
        if len(correction_sets) > 1:
            failures.append("clients observed divergent correction sets")
        if not ok:
            failures.append("no request succeeded")
        if args.expect_no_shed and shed:
            failures.append("%d requests shed despite --expect-no-shed"
                            % shed)

        summary = {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "server_threads": args.threads,
            "ok": ok,
            "overloaded": shed,
            "wall_seconds": round(wall, 3),
            "throughput_rps": round(ok / wall, 2) if wall > 0 else 0.0,
            "latency_ms": {
                "p50": round(percentile(latencies, 0.50), 2),
                "p90": round(percentile(latencies, 0.90), 2),
                "p99": round(percentile(latencies, 0.99), 2),
            },
            "cache_hits_delta": hits_after - hits_before,
            "failures": failures,
        }
        print(json.dumps(summary))
        if failures:
            for failure in failures:
                print("loadgen: FAIL: " + failure, file=sys.stderr)
            return 1
        return 0


if __name__ == "__main__":
    sys.exit(main())
