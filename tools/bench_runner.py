#!/usr/bin/env python3
"""Run the bench/ drivers with pinned arguments and record wall-clock JSON.

This is how the BENCH_*.json perf trajectory at the repo root is produced:

    # before an engine change (building the pre-change tree):
    tools/bench_runner.py --build-dir build --out BENCH_baseline.json
    # after the change (same machine, same arguments):
    tools/bench_runner.py --build-dir build --out BENCH_pr2.json
    tools/bench_runner.py --compare BENCH_baseline.json BENCH_pr2.json

Every benchmark is a full driver invocation with fixed seeds, so numbers are
comparable as long as the two runs happen on the same machine. Drivers are
run sequentially (the container is single-core anyway); each entry records
the command line so a cell can be reproduced by hand.

Workloads whose argv contains the {REPORT} placeholder run with
--report-json and get the report's per-phase timings (schema
"satdiag.report", see README "Observability") embedded as sub-rows of their
BENCH entry; --compare prints those as indented "name/phase.x" rows, so a
regression can be attributed to load/build/enumerate/sim without rerunning
anything. {FIXTURES} expands to the pinned tests/cli/golden fixture
directory.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES_DIR = os.path.join(REPO_ROOT, "tests", "cli", "golden")

# name -> (driver binary, argv). Seeds/scales are pinned: the workload must
# be identical across runs for the wall-clock comparison to mean anything.
# A driver containing "/" is resolved relative to the build dir root
# (e.g. "tools/satdiag_cli"); a bare name comes from build/bench/; a .py
# driver is resolved relative to the repo root and run under the current
# python3, with {BUILD} in its argv expanding to the build dir.
BENCHES = {
    # Solver-bound: BSAT/COV/BSIM across the Table 2 grid at reduced scale.
    # --threads 1 pins the serial baseline row (no-regression guard for the
    # exec/ runtime); the *_mtN rows below run the identical workload on N
    # lanes — wall-clock wins require >= N physical cores.
    "table2_runtime": (
        "bench_table2_runtime",
        ["--scale", "0.1", "--limit", "60", "--max-solutions", "2000",
         "--seed", "1", "--threads", "1"],
    ),
    "table2_mt4": (
        "bench_parallel",
        ["--workload", "experiment", "--scale", "0.1", "--limit", "60",
         "--max-solutions", "2000", "--seed", "1", "--threads", "4",
         "--json"],
    ),
    "table2_mt8": (
        "bench_parallel",
        ["--workload", "experiment", "--scale", "0.1", "--limit", "60",
         "--max-solutions", "2000", "--seed", "1", "--threads", "8",
         "--json"],
    ),
    # Construction-bound: walk vs template-stamped instance building on a
    # table2-scale multi-test instance (cold = empty artifact cache, warm =
    # templates cached). The driver also verifies walk/stamp DB identity.
    "instance_build": (
        "bench_instance_build",
        ["--circuit", "s38417_like", "--scale", "1.0", "--errors", "2",
         "--tests", "32", "--seed", "1", "--rounds", "3", "--json"],
    ),
    # Solver-bound: the advanced-SAT ablation (four BSAT variants).
    "ablation_advanced_sat": (
        "bench_ablation_advanced_sat",
        ["--circuit", "s1423_like", "--scale", "1.0", "--tests", "16",
         "--errors", "3", "--seed", "3", "--limit", "300"],
    ),
    # Solver-bound: the same ablation grid with the inprocessing pipeline
    # disabled — comparing against ablation_advanced_sat isolates what
    # probing/vivification/subsumption/BVE buy on the diagnosis instances.
    "sat_inprocess": (
        "bench_ablation_advanced_sat",
        ["--circuit", "s1423_like", "--scale", "1.0", "--tests", "16",
         "--errors", "3", "--seed", "3", "--limit", "300",
         "--no-inprocess"],
    ),
    # Simulation-bound: exhaustive stuck-at fault simulation.
    "fault_sim": (
        "bench_fault_sim",
        ["--profile", "s38417_like", "--scale", "1.0", "--seed", "1",
         "--rounds", "1", "--threads", "1", "--json"],
    ),
    "fault_sim_mt4": (
        "bench_fault_sim",
        ["--profile", "s38417_like", "--scale", "1.0", "--seed", "1",
         "--rounds", "1", "--threads", "4", "--json"],
    ),
    "fault_sim_mt8": (
        "bench_fault_sim",
        ["--profile", "s38417_like", "--scale", "1.0", "--seed", "1",
         "--rounds", "1", "--threads", "8", "--json"],
    ),
    # Simulation-bound: X-list diagnosis, one 3-valued X-injection sweep per
    # candidate gate (the ThreeValuedSimulator hot loop).
    "xlist_sim3": (
        "bench_xlist",
        ["--circuit", "s38417_like", "--scale", "1.0", "--errors", "2",
         "--tests", "16", "--seed", "1", "--rounds", "1", "--threads", "1",
         "--json"],
    ),
    "xlist_sim3_mt8": (
        "bench_xlist",
        ["--circuit", "s38417_like", "--scale", "1.0", "--errors", "2",
         "--tests", "16", "--seed", "1", "--rounds", "1", "--threads", "8",
         "--json"],
    ),
    # Simulation-bound: lane-batched vs scalar X-injection head to head on
    # the same candidate pool (the driver cross-checks mask equality).
    "xbatch": (
        "bench_xbatch",
        ["--circuit", "s38417_like", "--scale", "1.0", "--errors", "2",
         "--tests", "16", "--seed", "1", "--rounds", "1", "--json"],
    ),
    # Seed-portfolio SAT racing (bench_parallel multi-workload driver).
    "portfolio": (
        "bench_parallel",
        ["--workload", "portfolio", "--seed", "1", "--threads", "4",
         "--json"],
    ),
    # Report-driven CLI workloads: the run report's phase timings become
    # sub-rows, attributing any wall-clock drift to a pipeline stage.
    "cli_diagnose_report": (
        "tools/satdiag_cli",
        ["diagnose", "{FIXTURES}/faulty.bench",
         "--tests", "{FIXTURES}/tests.txt", "--approach", "bsat", "--k", "2",
         "--report-json", "{REPORT}"],
    ),
    "cli_experiment_report": (
        "tools/satdiag_cli",
        ["experiment", "--circuits", "s298_like,s526_like", "--errors", "1",
         "--tests", "4,6", "--scale", "0.5", "--seed", "3", "--limit", "60",
         "--csv", "--report-json", "{REPORT}"],
    ),
    # Daemon-path: concurrent clients against `satdiag serve` over localhost
    # TCP (warm artifact cache, bounded admission). The loadgen's JSON
    # summary line (throughput_rps, latency_ms percentiles, cache_hits_delta)
    # lands in the entry's self_reported field; any correctness failure
    # (shed request, divergent corrections, unclean shutdown) exits non-zero.
    "serve_throughput": (
        "tools/serve_loadgen.py",
        ["--cli", "{BUILD}/tools/satdiag_cli", "--clients", "8",
         "--requests", "12", "--threads", "2", "--queue-depth", "64",
         "--seed", "7", "--expect-no-shed"],
    ),
}


def run_bench(build_dir, name, spec):
    driver = spec[0]
    if driver.endswith(".py"):
        prefix = [sys.executable, os.path.join(REPO_ROOT, *driver.split("/"))]
    elif "/" in driver:
        prefix = [os.path.join(build_dir, *driver.split("/"))]
    else:
        prefix = [os.path.join(build_dir, "bench", driver)]
    report_path = None
    argv = []
    for arg in spec[1]:
        if "{REPORT}" in arg:
            if report_path is None:
                fd, report_path = tempfile.mkstemp(suffix=".json",
                                                   prefix="satdiag_report_")
                os.close(fd)
            arg = arg.replace("{REPORT}", report_path)
        arg = arg.replace("{BUILD}", build_dir)
        argv.append(arg.replace("{FIXTURES}", FIXTURES_DIR))
    cmd = prefix + argv
    print(f"[bench_runner] {name}: {' '.join(cmd)}", file=sys.stderr)
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True)
    seconds = time.monotonic() - start
    entry = {
        "driver": spec[0],
        "args": spec[1],
        "seconds": round(seconds, 3),
        "exit_code": proc.returncode,
    }
    # Drivers that emit a JSON line report their own inner timing too.
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{") and line.endswith("}"):
            try:
                entry["self_reported"] = json.loads(line)
            except json.JSONDecodeError:
                pass
    if report_path is not None:
        try:
            with open(report_path) as f:
                report = json.load(f)
            entry["report"] = {
                "schema_version": report.get("schema_version"),
                "wall_seconds": report.get("wall_seconds"),
                # Phase sub-rows: {"phase.build": seconds, ...}.
                "phases": {p["name"]: p["seconds"]
                           for p in report.get("phases", [])},
            }
        except (OSError, json.JSONDecodeError, KeyError) as err:
            entry["report_error"] = str(err)
        finally:
            os.unlink(report_path)
    if proc.returncode != 0:
        entry["stderr_tail"] = proc.stderr[-2000:]
    print(f"[bench_runner] {name}: {seconds:.1f}s "
          f"(exit {proc.returncode})", file=sys.stderr)
    return entry


def compare(baseline_path, after_path):
    with open(baseline_path) as f:
        base = json.load(f)
    with open(after_path) as f:
        after = json.load(f)
    print(f"{'bench':<28} {'baseline s':>10} {'after s':>10} {'speedup':>8}")
    for name, b in base["benches"].items():
        a = after["benches"].get(name)
        if not a:
            continue
        speedup = b["seconds"] / a["seconds"] if a["seconds"] > 0 else 0.0
        print(f"{name:<28} {b['seconds']:>10.2f} {a['seconds']:>10.2f} "
              f"{speedup:>7.2f}x")
        # Phase sub-rows from the run report, where both runs captured one.
        b_phases = b.get("report", {}).get("phases", {})
        a_phases = a.get("report", {}).get("phases", {})
        for phase, b_s in b_phases.items():
            a_s = a_phases.get(phase)
            if a_s is None:
                continue
            ratio = b_s / a_s if a_s > 0 else 0.0
            print(f"  {phase:<26} {b_s:>10.3f} {a_s:>10.3f} "
                  f"{ratio:>7.2f}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default=None,
                        help="output JSON path (e.g. BENCH_baseline.json)")
    parser.add_argument("--only", action="append", default=None,
                        help="run only the named bench (repeatable)")
    parser.add_argument("--compare", nargs=2, metavar=("BASELINE", "AFTER"),
                        help="print a speedup table for two recorded files")
    args = parser.parse_args()

    if args.compare:
        compare(*args.compare)
        return 0

    selected = {k: v for k, v in BENCHES.items()
                if args.only is None or k in args.only}
    result = {
        "machine": {
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
            "cpus": os.cpu_count(),
        },
        "benches": {},
    }
    for name, spec in selected.items():
        result["benches"][name] = run_bench(args.build_dir, name, spec)

    text = json.dumps(result, indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"[bench_runner] wrote {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
