// satdiag — command-line front end.
//
// Subcommands:
//   gen       --profile <name> [--scale S] [--seed N] --out circuit.bench
//   stats     circuit.bench
//   inject    circuit.bench --errors P [--seed N] --out faulty.bench
//             --tests-out tests.txt [--num-tests M]
//             (circuits with DFFs are converted to the full-scan view first)
//   diagnose  faulty.bench --tests tests.txt --approach bsim|cov|bsat|hybrid
//             [--k K] [--limit SECONDS] [--max-solutions N] [--stats]
//             [--threads N]
//             (--stats prints the SAT solver counters, merged over all
//             workers; bsat/hybrid only. --threads enables the
//             candidate-parallel exec/ runtime for bsat/hybrid.)
//   experiment [--circuits c1,c2,...] [--errors P] [--tests m1,m2,...]
//             [--scale S] [--seed N] [--limit SECONDS] [--max-solutions N]
//             [--threads N] [--csv]
//             (Table-2-style grid over circuits x test counts; --threads
//             runs whole cells instance-parallel.)
//   repair    faulty.bench --tests tests.txt --gates g1,g2,...
//   serve     [--port P] [--threads N] [--max-inflight N] [--queue-depth N]
//             [--max-request-seconds S]
//             (long-lived daemon: newline-delimited JSON over TCP whose
//             request bodies are the gen/diagnose/experiment option sets;
//             see src/serve/protocol.hpp and README "Serving". Prints
//             "serving on HOST:PORT" once the socket is bound; port 0
//             binds an ephemeral port.)
//
// Global flags (every subcommand):
//   --trace-out FILE    write a Chrome trace_event JSON (chrome://tracing,
//                       Perfetto) of the run's spans
//   --report-json FILE  write the schema-versioned machine-readable run
//                       report (config echo, phase timings, metrics
//                       snapshot, result summary); "-" = stdout
//   --stats-json FILE   write just the report's metrics section; "-" = stdout
//   --log-times         prefix log lines with monotonic timestamps and
//                       exec/ lane indices (also: SATDIAG_LOG_TIMES=1)
//   --verbose           raise the log level to info (library progress lines)
//
// The bench format is ISCAS89 .bench; the test format is documented in
// src/report/testfile.hpp.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_parser.hpp"
#include "bench/bench_writer.hpp"
#include "diag/bsat.hpp"
#include "diag/cover.hpp"
#include "diag/hybrid.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "repair/realize.hpp"
#include "report/experiment.hpp"
#include "serve/server.hpp"
#include "report/format.hpp"
#include "report/testfile.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace satdiag;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "satdiag: %s\n", message.c_str());
  return 2;
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: satdiag <gen|stats|inject|diagnose|experiment|repair|serve> "
      "...\n"
      "see tools/satdiag_cli.cpp header for details\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

Netlist load_bench(const std::string& path) { return parse_bench_file(path); }

/// The report's "result" section, set by whichever cmd_* ran; spliced
/// verbatim into the run report / report-json output.
std::string g_result_json;

/// --stats output, driven by the metrics registry snapshot so every
/// subsystem that publishes a metric shows up without CLI changes. Dotted
/// names print with '.' replaced by '_' — the historical key names
/// ("cache_hits:", "copies_stamped:" via "cnf_copies_stamped:") stay
/// greppable — plus the legacy composite tier line.
void print_registry_stats() {
  obs::refresh_process_metrics();
  std::printf("run stats:\n");
  for (const obs::MetricSample& s : obs::MetricsRegistry::global().snapshot()) {
    std::string display = s.name;
    std::replace(display.begin(), display.end(), '.', '_');
    display += ':';
    switch (s.kind) {
      case obs::MetricKind::kCounter:
        std::printf("  %-24s %llu\n", display.c_str(),
                    static_cast<unsigned long long>(s.counter));
        break;
      case obs::MetricKind::kGauge:
        std::printf("  %-24s %lld\n", display.c_str(),
                    static_cast<long long>(s.gauge));
        break;
      case obs::MetricKind::kHistogram:
        std::printf("  %-24s count %llu, sum %llu\n", display.c_str(),
                    static_cast<unsigned long long>(s.hist_count),
                    static_cast<unsigned long long>(s.hist_sum));
        break;
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  std::printf("  tier_core/mid/local:     %lld/%lld/%lld\n",
              static_cast<long long>(reg.gauge("sat.tier_core").value()),
              static_cast<long long>(reg.gauge("sat.tier_mid").value()),
              static_cast<long long>(reg.gauge("sat.tier_local").value()));
}

void print_solutions(const Netlist& nl,
                     const std::vector<std::vector<GateId>>& solutions) {
  for (const auto& solution : solutions) {
    std::printf("{");
    for (std::size_t i = 0; i < solution.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", nl.gate_name(solution[i]).c_str());
    }
    std::printf("}\n");
  }
}

int cmd_gen(const CliArgs& args) {
  const std::string profile_name = args.get_string("profile", "s1423_like");
  const auto profile = find_profile(profile_name);
  if (!profile) return fail("unknown profile '" + profile_name + "'");
  const Netlist nl = make_profile_circuit(
      *profile, args.get_double("scale", 1.0),
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const std::string out_path = args.get_string("out", "");
  if (out_path.empty()) return fail("--out required");
  std::ofstream out(out_path);
  if (!out) return fail("cannot write '" + out_path + "'");
  write_bench(out, nl);
  std::printf("wrote %s: %zu gates, %zu PIs, %zu POs, %zu DFFs\n",
              out_path.c_str(), nl.size(), nl.inputs().size(),
              nl.outputs().size(), nl.dffs().size());
  return 0;
}

int cmd_stats(const CliArgs& args) {
  if (args.positional().size() < 2) return fail("stats needs a .bench file");
  const Netlist nl = load_bench(args.positional()[1]);
  std::printf("circuit: %s\n", nl.name().c_str());
  std::printf("  gates (combinational): %zu\n", nl.num_combinational_gates());
  std::printf("  primary inputs:        %zu\n", nl.inputs().size());
  std::printf("  primary outputs:       %zu\n", nl.outputs().size());
  std::printf("  flip-flops:            %zu\n", nl.dffs().size());
  std::printf("  logic depth:           %u\n", nl.depth());
  std::size_t per_type[16] = {};
  for (GateId g = 0; g < nl.size(); ++g) {
    ++per_type[static_cast<std::size_t>(nl.type(g))];
  }
  for (GateType type : {GateType::kAnd, GateType::kNand, GateType::kOr,
                        GateType::kNor, GateType::kXor, GateType::kXnor,
                        GateType::kNot, GateType::kBuf}) {
    const std::size_t n = per_type[static_cast<std::size_t>(type)];
    if (n > 0) {
      std::printf("  %-6s %zu\n",
                  std::string(gate_type_name(type)).c_str(), n);
    }
  }
  return 0;
}

int cmd_inject(const CliArgs& args) {
  if (args.positional().size() < 2) return fail("inject needs a .bench file");
  Netlist nl = load_bench(args.positional()[1]);
  if (!nl.dffs().empty()) {
    std::printf("sequential circuit: using the full-scan view\n");
    nl = make_full_scan(nl).comb;
  }
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  InjectorOptions inject;
  inject.num_errors = static_cast<std::size_t>(args.get_int("errors", 1));
  const auto errors = inject_errors(nl, rng, inject);
  if (!errors) return fail("no detectable error set found");
  for (const DesignError& e : *errors) {
    std::printf("injected: %s (gate '%s')\n", describe_error(e).c_str(),
                nl.gate_name(error_site(e)).c_str());
  }
  const Netlist faulty = apply_errors(nl, *errors);

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) return fail("cannot write '" + out_path + "'");
    write_bench(out, faulty);
    std::printf("wrote faulty netlist to %s\n", out_path.c_str());
  }
  const std::string tests_path = args.get_string("tests-out", "");
  if (!tests_path.empty()) {
    const std::size_t m =
        static_cast<std::size_t>(args.get_int("num-tests", 16));
    const TestSet tests = generate_failing_tests(nl, *errors, m, rng);
    std::ofstream out(tests_path);
    if (!out) return fail("cannot write '" + tests_path + "'");
    write_test_set(out, tests);
    std::printf("wrote %zu failing tests to %s\n", tests.size(),
                tests_path.c_str());
  }
  return 0;
}

int cmd_diagnose(const CliArgs& args) {
  if (args.positional().size() < 2) return fail("diagnose needs a .bench file");
  obs::Span load_span("phase.load");
  Netlist nl = load_bench(args.positional()[1]);
  if (!nl.dffs().empty()) nl = make_full_scan(nl).comb;
  const std::string tests_path = args.get_string("tests", "");
  if (tests_path.empty()) return fail("--tests required");
  std::ifstream in(tests_path);
  if (!in) return fail("cannot read '" + tests_path + "'");
  const TestSet tests = read_test_set(in, nl);
  if (tests.empty()) return fail("empty test set");
  load_span.close();

  const unsigned k = static_cast<unsigned>(args.get_int("k", 1));
  const double limit = args.get_double("limit", 300.0);
  const std::int64_t cap = args.get_int("max-solutions", -1);
  const std::string approach = args.get_string("approach", "bsat");
  const bool want_stats = args.get_bool("stats", false);
  if (want_stats && approach != "bsat" && approach != "hybrid") {
    return fail("--stats requires a SAT-backed approach (bsat or hybrid)");
  }
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    return fail("--threads must be >= 1 (got " + std::to_string(threads) +
                ")");
  }
  // A flag that cannot take effect must not be silently accepted: the user
  // would believe the run was parallel.
  if (threads > 1 && approach != "bsat" && approach != "hybrid") {
    return fail("--threads requires a SAT-backed approach (bsat or hybrid)");
  }

  const auto set_result_json = [&](const char* approach_name,
                                   std::size_t num_solutions, bool complete,
                                   double build_s, double first_s,
                                   double all_s) {
    std::ostringstream os;
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("approach", approach_name);
    w.kv("solutions", static_cast<std::uint64_t>(num_solutions));
    w.kv("complete", complete);
    w.kv("build_seconds", build_s);
    w.kv("first_seconds", first_s);
    w.kv("all_seconds", all_s);
    w.end_object();
    g_result_json = os.str();
  };

  if (approach == "bsim") {
    obs::Span sim_span("phase.sim");
    const BsimResult result = basic_sim_diagnose(nl, tests);
    std::printf("marked %zu gates; Gmax (%u marks):\n",
                result.marked_union.size(), result.max_marks);
    for (GateId g : result.gmax) {
      std::printf("  %s (M=%u)\n", nl.gate_name(g).c_str(),
                  result.mark_count[g]);
    }
    set_result_json("bsim", result.gmax.size(), true, 0.0, 0.0, 0.0);
    return 0;
  }
  if (approach == "cov") {
    CovOptions options;
    options.k = k;
    options.deadline = Deadline::after_seconds(limit);
    options.max_solutions = cap;
    obs::Span sim_span("phase.sim");
    const CovResult result = sc_diagnose(nl, tests, options);
    std::printf("%zu irredundant covers%s:\n", result.solutions.size(),
                result.complete ? "" : " (truncated)");
    print_solutions(nl, result.solutions);
    set_result_json("cov", result.solutions.size(), result.complete,
                    result.build_seconds, result.first_seconds,
                    result.all_seconds);
    return 0;
  }
  if (approach == "bsat") {
    BsatOptions options;
    options.k = k;
    options.deadline = Deadline::after_seconds(limit);
    options.max_solutions = cap;
    options.num_threads = static_cast<std::size_t>(threads);
    const BsatResult result = basic_sat_diagnose(nl, tests, options);
    obs::add_solver_stats(result.solver_stats);
    std::printf("%zu valid corrections%s (CNF %.2fs, all %.2fs):\n",
                result.solutions.size(), result.complete ? "" : " (truncated)",
                result.build_seconds, result.all_seconds);
    print_solutions(nl, result.solutions);
    if (want_stats) print_registry_stats();
    set_result_json("bsat", result.solutions.size(), result.complete,
                    result.build_seconds, result.first_seconds,
                    result.all_seconds);
    return 0;
  }
  if (approach == "hybrid") {
    HybridOptions options;
    options.mode = HybridMode::kSeedActivity;
    options.k = k;
    options.deadline = Deadline::after_seconds(limit);
    options.max_solutions = cap;
    options.num_threads = static_cast<std::size_t>(threads);
    const HybridResult result = hybrid_diagnose(nl, tests, options);
    obs::add_solver_stats(result.solver_stats);
    std::printf("%zu valid corrections (sim %.2fs + sat %.2fs):\n",
                result.solutions.size(), result.sim_seconds,
                result.sat_seconds);
    print_solutions(nl, result.solutions);
    if (want_stats) print_registry_stats();
    set_result_json("hybrid", result.solutions.size(), result.complete,
                    result.sim_seconds, 0.0, result.sat_seconds);
    return 0;
  }
  return fail("unknown approach '" + approach + "'");
}

int cmd_experiment(const CliArgs& args) {
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    return fail("--threads must be >= 1 (got " + std::to_string(threads) +
                ")");
  }
  std::vector<std::string> circuits;
  // Bind before split(): the views point into this string, and a temporary
  // would be destroyed before a C++20 range-for body runs.
  const std::string circuits_arg = args.get_string("circuits", "s1423_like");
  for (std::string_view name : split(circuits_arg, ',')) {
    name = trim(name);
    if (name.empty()) continue;
    if (!find_profile(std::string(name))) {
      return fail("unknown profile '" + std::string(name) + "'");
    }
    circuits.emplace_back(name);
  }
  if (circuits.empty()) return fail("--circuits requires at least one name");
  std::vector<std::size_t> test_counts;
  const std::string tests_arg = args.get_string("tests", "4,8");
  for (std::string_view m : split(tests_arg, ',')) {
    m = trim(m);
    if (m.empty()) continue;
    // Strict parse: "8abc" must not silently run with m=8.
    if (m.find_first_not_of("0123456789") != std::string_view::npos) {
      return fail("--tests entries must be positive integers (got '" +
                  std::string(m) + "')");
    }
    const long value = std::stol(std::string(m));
    if (value < 1) return fail("--tests entries must be >= 1");
    test_counts.push_back(static_cast<std::size_t>(value));
  }
  if (test_counts.empty()) return fail("--tests requires at least one count");

  std::vector<ExperimentConfig> configs;
  for (const std::string& circuit : circuits) {
    for (std::size_t m : test_counts) {
      ExperimentConfig config;
      config.circuit = circuit;
      config.scale = args.get_double("scale", 0.25);
      config.num_errors =
          static_cast<std::size_t>(args.get_int("errors", 2));
      config.num_tests = m;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      config.time_limit_seconds = args.get_double("limit", 60.0);
      config.max_solutions = args.get_int("max-solutions", -1);
      configs.push_back(std::move(config));
    }
  }
  const bool csv = args.get_bool("csv", false);

  ExperimentGridOptions grid;
  grid.num_threads = static_cast<std::size_t>(threads);
  const std::vector<ExperimentCell> cells = run_experiment_grid(configs, grid);

  TablePrinter table(table2_header());
  for (const ExperimentCell& cell : cells) {
    if (!cell.prepared) {
      std::fprintf(stderr, "skipping %s m=%zu (preparation failed)\n",
                   cell.config.circuit.c_str(), cell.config.num_tests);
      continue;
    }
    table.add_row(table2_row(cell.row));
  }
  std::printf("%s", csv ? table.to_csv().c_str() : table.to_string().c_str());

  // Publish the grid's solver work into the registry (summed over cells)
  // and echo a per-cell summary — including each cell's own solver
  // counters, which run_experiment_grid now surfaces — into the report.
  sat::Solver::Stats grid_stats;
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("cells", static_cast<std::uint64_t>(cells.size()));
  w.key("rows");
  w.begin_array();
  for (const ExperimentCell& cell : cells) {
    w.begin_object();
    w.kv("circuit", cell.config.circuit);
    w.kv("tests", static_cast<std::uint64_t>(cell.config.num_tests));
    w.kv("errors", static_cast<std::uint64_t>(cell.config.num_errors));
    w.kv("prepared", cell.prepared);
    if (cell.prepared) {
      grid_stats.merge(cell.row.bsat.solver_stats);
      w.kv("bsim_seconds", cell.row.bsim_seconds);
      w.kv("bsat_solutions",
           static_cast<std::uint64_t>(cell.row.bsat.solutions.size()));
      w.kv("bsat_all_seconds", cell.row.bsat.all_seconds);
      w.kv("bsat_complete", cell.row.bsat.complete);
      w.kv("bsat_conflicts", cell.row.bsat.solver_stats.conflicts);
      w.kv("bsat_decisions", cell.row.bsat.solver_stats.decisions);
      w.kv("bsat_propagations", cell.row.bsat.solver_stats.propagations);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  g_result_json = os.str();
  obs::add_solver_stats(grid_stats);
  return 0;
}

int cmd_repair(const CliArgs& args) {
  if (args.positional().size() < 2) return fail("repair needs a .bench file");
  Netlist nl = load_bench(args.positional()[1]);
  if (!nl.dffs().empty()) nl = make_full_scan(nl).comb;
  const std::string tests_path = args.get_string("tests", "");
  if (tests_path.empty()) return fail("--tests required");
  std::ifstream in(tests_path);
  if (!in) return fail("cannot read '" + tests_path + "'");
  const TestSet tests = read_test_set(in, nl);

  std::vector<GateId> gates;
  // Same dangling-view hazard as in cmd_experiment: keep the string alive
  // past the range-for initializer.
  const std::string gates_arg = args.get_string("gates", "");
  for (std::string_view name : split(gates_arg, ',')) {
    name = trim(name);
    if (name.empty()) continue;
    const GateId g = nl.find(name);
    if (g == kNoGate) return fail("unknown gate '" + std::string(name) + "'");
    gates.push_back(g);
  }
  if (gates.empty()) return fail("--gates g1,g2,... required");

  const RepairResult result = realize_correction(nl, tests, gates);
  if (!result.consistent) {
    std::printf("no consistent local-function repair for this correction\n");
    return 1;
  }
  for (const GateRepair& repair : result.repairs) {
    std::printf("gate %s: fitted table ", nl.gate_name(repair.gate).c_str());
    for (bool b : repair.truth_table) std::printf("%d", b ? 1 : 0);
    if (repair.matching_type) {
      std::printf("  == %s",
                  std::string(gate_type_name(*repair.matching_type)).c_str());
    }
    std::printf("\n");
  }
  std::printf("verification against the test-set: %s\n",
              result.verified ? "PASS" : "FAIL");
  return result.verified ? 0 : 1;
}

/// The serving Server, published for the signal handler; request_stop_
/// from_signal is the only member a handler may touch (async-signal-safe).
std::atomic<serve::Server*> g_server{nullptr};

extern "C" void serve_signal_handler(int) {
  if (serve::Server* server = g_server.load()) {
    server->request_stop_from_signal();
  }
}

int cmd_serve(const CliArgs& args) {
  serve::ServeOptions options;
  const std::int64_t port = args.get_int("port", 0);
  if (port < 0 || port > 65535) {
    return fail("--port must be in [0, 65535] (0 = ephemeral)");
  }
  options.port = static_cast<int>(port);
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    return fail("--threads must be >= 1 (got " + std::to_string(threads) +
                ")");
  }
  options.threads = static_cast<std::size_t>(threads);
  const std::int64_t inflight = args.get_int("max-inflight", 0);
  if (inflight < 0) {
    return fail("--max-inflight must be >= 0 (0 = derive from --threads)");
  }
  options.max_inflight = static_cast<std::size_t>(inflight);
  const std::int64_t depth = args.get_int("queue-depth", 16);
  if (depth < 0) return fail("--queue-depth must be >= 0");
  options.queue_depth = static_cast<std::size_t>(depth);
  options.max_request_seconds = args.get_double("max-request-seconds", 300.0);
  if (options.max_request_seconds <= 0) {
    return fail("--max-request-seconds must be > 0");
  }

  serve::Server server(options);
  std::string error;
  if (!server.start(error)) return fail("serve: " + error);
  // Scripts wait for this exact line to learn the (possibly ephemeral) port.
  std::printf("serving on %s:%d\n", options.bind_address.c_str(),
              server.port());
  std::fflush(stdout);
  g_server.store(&server);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  server.run();
  g_server.store(nullptr);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::printf("serve: shut down\n");
  return 0;
}

// Flags each subcommand understands; anything else is a typo and must not
// silently fall back to defaults (cmd_* query flags lazily, interleaved with
// work, so this is checked up front rather than via unused() afterwards).
const std::map<std::string, std::vector<std::string>> kKnownFlags = {
    {"gen", {"profile", "scale", "seed", "out"}},
    {"stats", {}},
    {"inject", {"seed", "errors", "out", "tests-out", "num-tests"}},
    {"diagnose",
     {"tests", "approach", "k", "limit", "max-solutions", "stats", "threads"}},
    {"experiment",
     {"circuits", "errors", "tests", "scale", "seed", "limit", "max-solutions",
      "threads", "csv"}},
    {"repair", {"tests", "gates"}},
    {"serve",
     {"port", "threads", "max-inflight", "queue-depth",
      "max-request-seconds"}},
};

/// Runs the subcommand under the trace's enclosing "cli.run" span (closed
/// on return, before main() drains the rings). -1 = unknown command.
int dispatch(const std::string& command, const CliArgs& args) {
  obs::Span run_span("cli.run");
  if (command == "gen") return cmd_gen(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "inject") return cmd_inject(args);
  if (command == "diagnose") return cmd_diagnose(args);
  if (command == "experiment") return cmd_experiment(args);
  if (command == "repair") return cmd_repair(args);
  if (command == "serve") return cmd_serve(args);
  return -1;
}

int check_flags(const std::string& command, const CliArgs& args) {
  const auto it = kKnownFlags.find(command);
  if (it == kKnownFlags.end()) return 0;  // unknown command: usage() handles it
  // Before any get_* call every parsed flag is still "unused", i.e. this
  // yields the full set of flags the user passed.
  for (const std::string& flag : args.unused()) {
    if (std::find(it->second.begin(), it->second.end(), flag) ==
        it->second.end()) {
      return fail("unknown flag --" + flag + " for '" + command + "'");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  // `satdiag --help`, `satdiag help`, and `satdiag <cmd> --help` all print
  // usage and exit 0.
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h" || (i == 1 && arg == "help")) {
      print_usage(stdout);
      return 0;
    }
  }
  // CliArgs treats "--flag token" as a valued flag, so a bare boolean like
  // "--stats faulty.bench" would swallow the positional. Normalize known
  // value-less flags to "--flag=true" before parsing.
  std::vector<std::string> tokens(argv, argv + argc);
  for (std::string& token : tokens) {
    if (token == "--stats") token = "--stats=true";
    if (token == "--csv") token = "--csv=true";
    if (token == "--log-times") token = "--log-times=true";
    if (token == "--verbose") token = "--verbose=true";
  }
  std::vector<const char*> token_ptrs;
  token_ptrs.reserve(tokens.size());
  for (const std::string& token : tokens) token_ptrs.push_back(token.c_str());

  CliArgs args;
  std::string error;
  if (!args.parse(static_cast<int>(token_ptrs.size()), token_ptrs.data(),
                  error)) {
    return fail(error);
  }
  // Global observability flags, queried BEFORE check_flags() so every
  // subcommand accepts them (check_flags sees only still-unqueried flags).
  const std::string trace_out = args.get_string("trace-out", "");
  const std::string report_json = args.get_string("report-json", "");
  const std::string stats_json = args.get_string("stats-json", "");
  if (args.get_bool("log-times", false)) set_log_timestamps(true);
  if (args.get_bool("verbose", false)) set_log_level(LogLevel::kInfo);
  if (!trace_out.empty() || !report_json.empty()) {
    obs::set_tracing_enabled(true);
  }

  const std::string command = argv[1];
  // Tracing would race the serve daemon's concurrent request threads with
  // the end-of-run ring drain (obs/trace.hpp drain contract), and a daemon's
  // end-of-run report is meaningless: per-request reports ride in every
  // response, and the `metrics` request is the stats surface.
  if (command == "serve" &&
      (!trace_out.empty() || !report_json.empty() || !stats_json.empty())) {
    return fail(
        "serve does not support --trace-out/--report-json/--stats-json; "
        "use the `metrics` request instead");
  }
  if (const int rc = check_flags(command, args)) return rc;
  int rc = -1;
  Timer wall;
  try {
    rc = dispatch(command, args);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (rc < 0) return usage();

  // Observability artifacts, emitted after the command finished: every
  // exec/ pool is scoped to its diagnosis call, so all worker threads have
  // joined and the trace rings are safe to drain.
  if (!stats_json.empty()) {
    obs::refresh_process_metrics();
    if (stats_json == "-") {
      obs::MetricsRegistry::global().write_json(std::cout);
      std::cout << '\n';
    } else {
      std::ofstream out(stats_json);
      if (!out) return fail("cannot write '" + stats_json + "'");
      obs::MetricsRegistry::global().write_json(out);
      out << '\n';
    }
  }
  if (!trace_out.empty() && !obs::write_chrome_trace_file(trace_out)) {
    return fail("cannot write '" + trace_out + "'");
  }
  if (!report_json.empty()) {
    obs::RunReport report;
    report.command = command;
    for (const auto& [flag, value] : args.raw_values()) {
      report.config[flag] = value;
    }
    const auto& pos = args.positional();
    std::string joined;
    for (std::size_t i = 1; i < pos.size(); ++i) {
      if (!joined.empty()) joined += ' ';
      joined += pos[i];
    }
    report.config["positional"] = joined;
    report.wall_seconds = wall.seconds();
    report.result_json = g_result_json;
    if (report_json == "-") {
      report.write_json(std::cout);
    } else if (!report.write_json_file(report_json)) {
      return fail("cannot write '" + report_json + "'");
    }
  }
  return rc;
}
