#include "diag/effect.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

TEST(EffectTest, OutputGateIsAlwaysValidForItsOwnTests) {
  // Changing the function of the erroneous output gate itself can always
  // produce the demanded value (single-output tests).
  const FigureScenario s = builtin_fig5a();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  EffectAnalyzer effect(s.circuit, tests);
  EXPECT_TRUE(effect.is_valid_correction({s.circuit.find("D")}));
}

TEST(EffectTest, EmptyCandidateIsInvalidForFailingTest) {
  const FigureScenario s = builtin_fig5a();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  EffectAnalyzer effect(s.circuit, tests);
  EXPECT_FALSE(effect.is_valid_correction({}));
}

TEST(EffectTest, InjectedErrorSiteIsValidCorrection) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 100;
  params.seed = 77;
  const Netlist golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(7);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(golden, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const Netlist faulty = apply_errors(golden, *errors);
  const TestSet tests = generate_failing_tests(golden, *errors, 8, rng);
  ASSERT_FALSE(tests.empty());
  EffectAnalyzer effect(faulty, tests);
  EXPECT_TRUE(effect.is_valid_correction({error_site(errors->front())}));
}

TEST(EffectTest, XCheckIsNecessaryCondition) {
  const FigureScenario s = builtin_fig5b();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  EffectAnalyzer effect(s.circuit, tests);
  // Valid corrections must pass the X check...
  for (const std::vector<GateId>& valid :
       {std::vector<GateId>{s.circuit.find("D")},
        std::vector<GateId>{s.circuit.find("E")},
        std::vector<GateId>{s.circuit.find("A"), s.circuit.find("B")}}) {
    ASSERT_TRUE(effect.is_valid_correction(valid));
    EXPECT_TRUE(effect.x_check(valid));
  }
  // ...an invalid candidate may or may not pass; a gate outside the output
  // cone never passes.
  EXPECT_FALSE(effect.x_check({}));
}

TEST(EffectTest, XCheckPassesButSatRejects) {
  // Fig 5(a): injecting X at B reaches the output (B feeds D), but {B} is
  // not a valid correction — demonstrating the check is only necessary.
  const FigureScenario s = builtin_fig5a();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  EffectAnalyzer effect(s.circuit, tests);
  EXPECT_FALSE(effect.is_valid_correction({s.circuit.find("B")}));
  EXPECT_FALSE(effect.x_check({s.circuit.find("B")}))
      << "X at B is blocked by C=0 at the AND, so even the X check fails "
         "here";
  // A gate pair that floods the output with X but still cannot fix it is
  // hard to build deterministically; assert at least consistency:
  for (GateId g = 0; g < s.circuit.size(); ++g) {
    if (!s.circuit.is_combinational(g)) continue;
    if (effect.is_valid_correction({g})) {
      EXPECT_TRUE(effect.x_check({g}));
    }
  }
}

TEST(EffectTest, ChecksPerformedCounter) {
  const FigureScenario s = builtin_fig5a();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  EffectAnalyzer effect(s.circuit, tests);
  EXPECT_EQ(effect.checks_performed(), 0u);
  effect.is_valid_correction({s.circuit.find("A")});
  effect.is_valid_correction({s.circuit.find("B")});
  EXPECT_EQ(effect.checks_performed(), 2u);
}

TEST(EffectTest, MultiTestValidity) {
  // Two tests demanding opposite outputs: only gates feeding the output on
  // both sensitized paths qualify.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  const GateId o = nl.add_gate(GateType::kBuf, "o", {g});
  nl.add_output(o);
  nl.finalize();
  const TestSet tests{
      satdiag::Test{{true}, 0, false},
      satdiag::Test{{false}, 0, true},
  };
  EffectAnalyzer effect(nl, tests);
  EXPECT_TRUE(effect.is_valid_correction({g}));
  EXPECT_TRUE(effect.is_valid_correction({o}));
  EXPECT_FALSE(effect.is_valid_correction({}));
}

}  // namespace
}  // namespace satdiag
