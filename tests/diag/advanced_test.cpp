#include "diag/advanced_sat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diag/effect.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

struct Scenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

Scenario make_scenario(std::uint64_t seed, std::size_t errors_n,
                       std::size_t tests_n) {
  GeneratorParams params;
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_dffs = 6;
  params.num_gates = 220;
  params.seed = seed;
  Scenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 131 + 3);
  InjectorOptions inject;
  inject.num_errors = errors_n;
  auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, tests_n, rng);
  EXPECT_GE(s.tests.size(), 1u);
  return s;
}

TEST(RegionTest, HeadsIncludeObservedAndMultiFanoutGates) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId stem = nl.add_gate(GateType::kBuf, "stem", {a});
  const GateId l = nl.add_gate(GateType::kNot, "l", {stem});
  const GateId r = nl.add_gate(GateType::kBuf, "r", {stem});
  const GateId o = nl.add_gate(GateType::kAnd, "o", {l, r});
  nl.add_output(o);
  nl.finalize();
  const auto heads = region_heads(nl);
  // stem has 2 fanouts, o is observed; l and r are single-fanout internal.
  EXPECT_TRUE(std::find(heads.begin(), heads.end(), stem) != heads.end());
  EXPECT_TRUE(std::find(heads.begin(), heads.end(), o) != heads.end());
  EXPECT_TRUE(std::find(heads.begin(), heads.end(), l) == heads.end());
  EXPECT_TRUE(std::find(heads.begin(), heads.end(), r) == heads.end());
}

TEST(RegionTest, HeadOfWalksToRoot) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  const GateId g3 = nl.add_gate(GateType::kBuf, "g3", {g2});
  nl.add_output(g3);
  nl.finalize();
  const auto head = region_head_of(nl);
  EXPECT_EQ(head[g1], g3);
  EXPECT_EQ(head[g2], g3);
  EXPECT_EQ(head[g3], g3);
}

TEST(AdvancedSatTest, FindsValidCorrections) {
  const Scenario s = make_scenario(1, 1, 8);
  AdvancedSatOptions options;
  options.k = 1;
  const AdvancedSatResult result =
      advanced_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_FALSE(result.solutions.empty());
  EffectAnalyzer effect(s.faulty, s.tests);
  for (const auto& solution : result.solutions) {
    EXPECT_TRUE(effect.is_valid_correction(solution));
  }
}

TEST(AdvancedSatTest, Pass1InstrumentsFewerGates) {
  const Scenario s = make_scenario(2, 1, 8);
  AdvancedSatOptions options;
  options.k = 1;
  const AdvancedSatResult result =
      advanced_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_LT(result.pass1_instrumented, s.faulty.num_combinational_gates());
  EXPECT_GT(result.pass1_instrumented, 0u);
}

TEST(AdvancedSatTest, RegionRefinementRecoversErrorSite) {
  // The error site itself (possibly inside a region) must reappear in the
  // fine pass when it is a size-1 correction.
  int recovered = 0;
  int rounds = 0;
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    const Scenario s = make_scenario(seed, 1, 8);
    AdvancedSatOptions options;
    options.k = 1;
    const AdvancedSatResult result =
        advanced_sat_diagnose(s.faulty, s.tests, options);
    ++rounds;
    const GateId site = error_site(s.errors[0]);
    for (const auto& solution : result.solutions) {
      if (solution == std::vector<GateId>{site}) {
        ++recovered;
        break;
      }
    }
  }
  // The two-pass heuristic recovers the planted site in the large majority
  // of runs (slack of one for pathological region shapes).
  EXPECT_GE(recovered, rounds - 1);
}

TEST(AdvancedSatTest, PartitioningStillSound) {
  const Scenario s = make_scenario(9, 1, 12);
  AdvancedSatOptions options;
  options.k = 1;
  options.partition_size = 4;  // pass 1 sees only 4 of 12 tests
  const AdvancedSatResult result =
      advanced_sat_diagnose(s.faulty, s.tests, options);
  EffectAnalyzer effect(s.faulty, s.tests);
  for (const auto& solution : result.solutions) {
    // Pass 2 runs on the FULL test set, so all results are valid for it.
    EXPECT_TRUE(effect.is_valid_correction(solution));
  }
}

TEST(AdvancedSatTest, SolutionsSubsetOfBasicBsat) {
  // Restricting instrumentation can only remove solutions, never invent
  // invalid ones.
  const Scenario s = make_scenario(10, 1, 6);
  AdvancedSatOptions adv_options;
  adv_options.k = 1;
  const AdvancedSatResult adv =
      advanced_sat_diagnose(s.faulty, s.tests, adv_options);
  BsatOptions basic;
  basic.k = 1;
  const BsatResult full = basic_sat_diagnose(s.faulty, s.tests, basic);
  ASSERT_TRUE(full.complete);
  const std::set<std::vector<GateId>> full_set(full.solutions.begin(),
                                               full.solutions.end());
  for (const auto& solution : adv.solutions) {
    EXPECT_TRUE(full_set.count(solution));
  }
}

}  // namespace
}  // namespace satdiag
