#include "diag/path_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench/builtin_circuits.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

std::vector<GateId> trace_single(const Netlist& nl,
                                 const std::vector<bool>& inputs,
                                 GateId output,
                                 PathTraceOptions options = {},
                                 Rng* rng = nullptr) {
  ParallelSimulator sim(nl);
  sim.set_input_vector(0, inputs);
  sim.run();
  return path_trace(nl, sim.values(), 0, output, options, rng);
}

TEST(PathTraceTest, MarksOneControllingInput) {
  // o = AND(a, b) with a=0, b=1: only a is controlling; trace marks a's
  // driver. With a as a PI (excluded), only the output gate remains.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId o = nl.add_gate(GateType::kAnd, "o", {a, b});
  nl.add_output(o);
  nl.finalize();
  const auto marked = trace_single(nl, {false, true}, o);
  EXPECT_EQ(marked, std::vector<GateId>{o});
}

TEST(PathTraceTest, IncludeSourcesOption) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId o = nl.add_gate(GateType::kAnd, "o", {a, b});
  nl.add_output(o);
  nl.finalize();
  PathTraceOptions options;
  options.include_sources = true;
  const auto marked = trace_single(nl, {false, true}, o, options);
  // a (controlling, value 0) and o.
  EXPECT_EQ(marked, (std::vector<GateId>{a, o}));
}

TEST(PathTraceTest, NoControllingValueMarksAllInputs) {
  // o = AND(g1, g2) with both gates at 1 (non-controlling): both marked.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kBuf, "g2", {a});
  const GateId o = nl.add_gate(GateType::kAnd, "o", {g1, g2});
  nl.add_output(o);
  nl.finalize();
  const auto marked = trace_single(nl, {true}, o);
  EXPECT_EQ(marked, (std::vector<GateId>{g1, g2, o}));
}

TEST(PathTraceTest, XorMarksAllInputs) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kNot, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kBuf, "g2", {a});
  const GateId o = nl.add_gate(GateType::kXor, "o", {g1, g2});
  nl.add_output(o);
  nl.finalize();
  const auto marked = trace_single(nl, {false}, o);
  EXPECT_EQ(marked, (std::vector<GateId>{g1, g2, o}));
}

TEST(PathTraceTest, FirstPolicyPicksFaninOrder) {
  // o = OR(g1, g2), both at controlling 1: kFirst marks g1 only.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kBuf, "g2", {a});
  const GateId o = nl.add_gate(GateType::kOr, "o", {g1, g2});
  nl.add_output(o);
  nl.finalize();
  const auto marked = trace_single(nl, {true}, o);
  EXPECT_EQ(marked, (std::vector<GateId>{g1, o}));
}

TEST(PathTraceTest, LowestLevelPolicyPrefersShallowGate) {
  // g2 sits one level deeper than g1; kLowestLevel must pick g1.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g1b = nl.add_gate(GateType::kBuf, "g1b", {g1});
  const GateId o = nl.add_gate(GateType::kOr, "o", {g1b, g1});
  nl.add_output(o);
  nl.finalize();
  PathTraceOptions options;
  options.policy = MarkPolicy::kLowestLevel;
  const auto marked = trace_single(nl, {true}, o, options);
  // From o: controlling inputs g1b (level 2) and g1 (level 1) -> pick g1.
  EXPECT_TRUE(std::find(marked.begin(), marked.end(), g1) != marked.end());
  EXPECT_TRUE(std::find(marked.begin(), marked.end(), g1b) == marked.end());
}

TEST(PathTraceTest, RandomPolicyStaysWithinControllingSet) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kBuf, "g2", {a});
  const GateId o = nl.add_gate(GateType::kOr, "o", {g1, g2});
  nl.add_output(o);
  nl.finalize();
  Rng rng(17);
  PathTraceOptions options;
  options.policy = MarkPolicy::kRandomControlling;
  bool saw_g1 = false;
  bool saw_g2 = false;
  for (int i = 0; i < 32; ++i) {
    const auto marked = trace_single(nl, {true}, o, options, &rng);
    ASSERT_EQ(marked.size(), 2u);  // o plus exactly one of g1/g2
    saw_g1 |= std::find(marked.begin(), marked.end(), g1) != marked.end();
    saw_g2 |= std::find(marked.begin(), marked.end(), g2) != marked.end();
  }
  EXPECT_TRUE(saw_g1);
  EXPECT_TRUE(saw_g2);
}

TEST(PathTraceTest, TraceStopsAtSources) {
  const Netlist c17 = builtin_c17();
  const auto marked =
      trace_single(c17, {true, true, true, true, true}, c17.find("22"));
  for (GateId g : marked) {
    EXPECT_TRUE(c17.is_combinational(g));
  }
  // The erroneous output gate itself is always marked.
  EXPECT_TRUE(std::find(marked.begin(), marked.end(), c17.find("22")) !=
              marked.end());
}

TEST(PathTraceTest, MarkedSetIsSortedAndUnique) {
  const Netlist c17 = builtin_c17();
  const auto marked =
      trace_single(c17, {false, true, false, true, false}, c17.find("23"));
  EXPECT_TRUE(std::is_sorted(marked.begin(), marked.end()));
  EXPECT_TRUE(std::adjacent_find(marked.begin(), marked.end()) ==
              marked.end());
}

}  // namespace
}  // namespace satdiag
