#include "diag/xlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

TEST(XListTest, SingleCandidatesOnFig5a) {
  const FigureScenario s = builtin_fig5a();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  const auto candidates = xlist_single_candidates(s.circuit, tests);
  // X at A floods both branches and reaches D; X at D reaches trivially.
  // X at B or C alone is blocked by the other 0-branch.
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        s.circuit.find("A")) != candidates.end());
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        s.circuit.find("D")) != candidates.end());
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        s.circuit.find("B")) == candidates.end());
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        s.circuit.find("C")) == candidates.end());
}

TEST(XListTest, InjectedErrorSiteIsAlwaysCandidate) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 120;
  params.seed = 55;
  const Netlist golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(3);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(golden, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const Netlist faulty = apply_errors(golden, *errors);
  const TestSet tests = generate_failing_tests(golden, *errors, 8, rng);
  ASSERT_FALSE(tests.empty());
  const auto candidates = xlist_single_candidates(faulty, tests);
  const GateId site = error_site(errors->front());
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), site) !=
              candidates.end())
      << "X at the real site must reach every failing output";
}

TEST(XListTest, RestrictionToConesMatchesUnrestricted) {
  const FigureScenario s = builtin_fig5b();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  XListOptions restricted;
  restricted.restrict_to_fanin_cones = true;
  XListOptions full;
  full.restrict_to_fanin_cones = false;
  EXPECT_EQ(xlist_single_candidates(s.circuit, tests, restricted),
            xlist_single_candidates(s.circuit, tests, full));
}

TEST(XListTest, TupleCandidatesCoverFig5b) {
  const FigureScenario s = builtin_fig5b();
  const TestSet tests{satdiag::Test{s.test_vector, s.output_index, s.correct_value}};
  const auto tuples = xlist_tuple_candidates(s.circuit, tests, 2, 16);
  EXPECT_FALSE(tuples.empty());
  // Every tuple's joint X injection floods the output (by construction).
  // The singletons {D} and {E} qualify; check sizes bounded by k.
  for (const auto& tuple : tuples) {
    EXPECT_LE(tuple.size(), 2u);
    EXPECT_FALSE(tuple.empty());
  }
}

TEST(XListTest, NoCandidatesWhenOutputUnreachable) {
  // Error observed at an output with an empty candidate pool: a circuit
  // whose output gate is driven only by inputs.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId o = nl.add_gate(GateType::kAnd, "o", {a, b});
  nl.add_output(o);
  nl.finalize();
  const TestSet tests{satdiag::Test{{true, true}, 0, false}};
  const auto candidates = xlist_single_candidates(nl, tests);
  // Only gate o itself can be a candidate.
  EXPECT_EQ(candidates, std::vector<GateId>{o});
}

TEST(XListTest, EmptyTestSetGivesNothing) {
  const Netlist c17 = builtin_c17();
  EXPECT_TRUE(xlist_single_candidates(c17, {}).empty());
  EXPECT_TRUE(xlist_tuple_candidates(c17, {}, 2, 8).empty());
}

}  // namespace
}  // namespace satdiag
