#include "diag/hybrid.hpp"

#include <gtest/gtest.h>

#include <set>

#include "diag/effect.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

struct Scenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

Scenario make_scenario(std::uint64_t seed, std::size_t errors_n,
                       std::size_t tests_n) {
  GeneratorParams params;
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_dffs = 6;
  params.num_gates = 180;
  params.seed = seed;
  Scenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 977 + 5);
  InjectorOptions inject;
  inject.num_errors = errors_n;
  auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, tests_n, rng);
  EXPECT_GE(s.tests.size(), 1u);
  return s;
}

TEST(HybridTest, SeedActivityPreservesSolutionSpace) {
  const Scenario s = make_scenario(1, 1, 8);
  HybridOptions options;
  options.mode = HybridMode::kSeedActivity;
  options.k = 1;
  const HybridResult hybrid = hybrid_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(hybrid.complete);

  BsatOptions plain;
  plain.k = 1;
  const BsatResult reference = basic_sat_diagnose(s.faulty, s.tests, plain);
  ASSERT_TRUE(reference.complete);
  EXPECT_EQ(
      std::set<std::vector<GateId>>(hybrid.solutions.begin(),
                                    hybrid.solutions.end()),
      std::set<std::vector<GateId>>(reference.solutions.begin(),
                                    reference.solutions.end()));
}

TEST(HybridTest, RepairCoverReturnsOnlyValidCorrections) {
  const Scenario s = make_scenario(2, 1, 8);
  HybridOptions options;
  options.mode = HybridMode::kRepairCover;
  options.k = 1;
  const HybridResult hybrid = hybrid_diagnose(s.faulty, s.tests, options);
  EffectAnalyzer effect(s.faulty, s.tests);
  for (const auto& solution : hybrid.solutions) {
    EXPECT_TRUE(effect.is_valid_correction(solution));
  }
}

TEST(HybridTest, RepairCoverShrinksInstance) {
  const Scenario s = make_scenario(3, 1, 8);
  HybridOptions options;
  options.mode = HybridMode::kRepairCover;
  options.k = 1;
  options.neighbourhood_radius = 1;
  const HybridResult hybrid = hybrid_diagnose(s.faulty, s.tests, options);
  EXPECT_LT(hybrid.instrumented, s.faulty.num_combinational_gates());
}

TEST(HybridTest, RepairCoverFindsInjectedError) {
  // PT marks lie on sensitized paths which contain the real site, so the
  // covered-gate neighbourhood should include it and BSAT recovers it.
  int recovered = 0;
  int rounds = 0;
  for (std::uint64_t seed = 4; seed < 9; ++seed) {
    const Scenario s = make_scenario(seed, 1, 8);
    HybridOptions options;
    options.mode = HybridMode::kRepairCover;
    options.k = 1;
    options.neighbourhood_radius = 2;
    const HybridResult hybrid = hybrid_diagnose(s.faulty, s.tests, options);
    ++rounds;
    const GateId site = error_site(s.errors[0]);
    for (const auto& solution : hybrid.solutions) {
      if (solution == std::vector<GateId>{site}) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, rounds - 1);
}

TEST(HybridTest, TimingFieldsPopulated) {
  const Scenario s = make_scenario(10, 1, 6);
  HybridOptions options;
  options.mode = HybridMode::kSeedActivity;
  options.k = 1;
  const HybridResult hybrid = hybrid_diagnose(s.faulty, s.tests, options);
  EXPECT_GE(hybrid.sim_seconds, 0.0);
  EXPECT_GE(hybrid.sat_seconds, 0.0);
  EXPECT_GT(hybrid.instrumented, 0u);
}

}  // namespace
}  // namespace satdiag
