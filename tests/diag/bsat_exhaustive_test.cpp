// Ground-truth cross-check of Lemmas 1 and 3 on random small circuits:
// BSAT's output must equal the brute-force enumeration of all essential
// valid corrections (every subset of size <= k checked with the exact
// effect analyzer).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diag/bsat.hpp"
#include "diag/effect.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

using SolutionSet = std::set<std::vector<GateId>>;

SolutionSet brute_force_essential_corrections(const Netlist& nl,
                                              const TestSet& tests,
                                              unsigned k) {
  EffectAnalyzer effect(nl, tests);
  std::vector<GateId> gates;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) gates.push_back(g);
  }
  SolutionSet valid;  // all valid corrections up to size k
  // Size 1.
  for (GateId g : gates) {
    if (effect.is_valid_correction({g})) valid.insert({g});
  }
  if (k >= 2) {
    for (std::size_t i = 0; i < gates.size(); ++i) {
      for (std::size_t j = i + 1; j < gates.size(); ++j) {
        const std::vector<GateId> pair{gates[i], gates[j]};
        if (effect.is_valid_correction(pair)) valid.insert(pair);
      }
    }
  }
  // Essential = no valid proper subset.
  SolutionSet essential;
  for (const auto& c : valid) {
    bool minimal = true;
    for (std::size_t drop = 0; drop < c.size() && minimal; ++drop) {
      std::vector<GateId> reduced;
      for (std::size_t i = 0; i < c.size(); ++i) {
        if (i != drop) reduced.push_back(c[i]);
      }
      if (!reduced.empty() && valid.count(reduced)) minimal = false;
    }
    if (minimal) essential.insert(c);
  }
  return essential;
}

struct TinyScenario {
  Netlist faulty;
  TestSet tests;
};

TinyScenario make_tiny(std::uint64_t seed, std::size_t errors_n,
                       std::size_t tests_n) {
  GeneratorParams params;
  params.num_inputs = 5;
  params.num_outputs = 3;
  params.num_gates = 22;
  params.seed = seed;
  const Netlist golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 37 + 5);
  InjectorOptions inject;
  inject.num_errors = errors_n;
  const auto errors = inject_errors(golden, rng, inject);
  TinyScenario s{golden.clone(), {}};
  if (!errors) return s;
  s.faulty = apply_errors(golden, *errors);
  s.tests = generate_failing_tests(golden, *errors, tests_n, rng);
  return s;
}

class BsatExhaustiveTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(BsatExhaustiveTest, MatchesBruteForceEnumeration) {
  const auto [seed, k] = GetParam();
  const TinyScenario s = make_tiny(seed, /*errors_n=*/k >= 2 ? 2 : 1, 4);
  if (s.tests.empty()) GTEST_SKIP() << "no failing tests for this seed";

  BsatOptions options;
  options.k = k;
  const BsatResult bsat = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(bsat.complete);
  const SolutionSet got(bsat.solutions.begin(), bsat.solutions.end());
  const SolutionSet expected =
      brute_force_essential_corrections(s.faulty, s.tests, k);
  EXPECT_EQ(got, expected) << "seed " << seed << " k " << k;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTinyCircuits, BsatExhaustiveTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, unsigned>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace satdiag
