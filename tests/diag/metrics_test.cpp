#include "diag/metrics.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

// Chain: a -> g1 -> g2 -> g3 -> out(g4), error at g2.
Netlist chain() {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  const GateId g3 = nl.add_gate(GateType::kBuf, "g3", {g2});
  const GateId g4 = nl.add_gate(GateType::kNot, "g4", {g3});
  nl.add_output(g4);
  nl.finalize();
  return nl;
}

TEST(MetricsTest, DistancesFromErrorSite) {
  const Netlist nl = chain();
  const auto dist = distances_to_errors(nl, {nl.find("g2")});
  EXPECT_EQ(dist[nl.find("g2")], 0u);
  EXPECT_EQ(dist[nl.find("g1")], 1u);
  EXPECT_EQ(dist[nl.find("g3")], 1u);
  EXPECT_EQ(dist[nl.find("g4")], 2u);
}

TEST(MetricsTest, BsimQualityAggregates) {
  const Netlist nl = chain();
  BsimResult bsim;
  bsim.mark_count.assign(nl.size(), 0);
  bsim.candidate_sets = {{nl.find("g2"), nl.find("g3"), nl.find("g4")},
                         {nl.find("g3"), nl.find("g4")}};
  for (const auto& set : bsim.candidate_sets) {
    for (GateId g : set) ++bsim.mark_count[g];
  }
  bsim.marked_union = {nl.find("g2"), nl.find("g3"), nl.find("g4")};
  bsim.max_marks = 2;
  bsim.gmax = {nl.find("g3"), nl.find("g4")};

  const BsimQuality q =
      evaluate_bsim_quality(nl, bsim, {nl.find("g2")});
  EXPECT_EQ(q.union_size, 3u);
  // distances: g2=0, g3=1, g4=2 -> avgA = 1.0
  EXPECT_DOUBLE_EQ(q.avg_all, 1.0);
  EXPECT_EQ(q.gmax_size, 2u);
  EXPECT_DOUBLE_EQ(q.min_g, 1.0);
  EXPECT_DOUBLE_EQ(q.max_g, 2.0);
  EXPECT_DOUBLE_EQ(q.avg_g, 1.5);
  EXPECT_FALSE(q.error_in_gmax);
}

TEST(MetricsTest, ErrorInGmaxDetected) {
  const Netlist nl = chain();
  BsimResult bsim;
  bsim.mark_count.assign(nl.size(), 0);
  bsim.marked_union = {nl.find("g2")};
  bsim.gmax = {nl.find("g2")};
  bsim.max_marks = 1;
  const BsimQuality q = evaluate_bsim_quality(nl, bsim, {nl.find("g2")});
  EXPECT_TRUE(q.error_in_gmax);
  EXPECT_DOUBLE_EQ(q.min_g, 0.0);
}

TEST(MetricsTest, SolutionQualityPerSolutionAverages) {
  const Netlist nl = chain();
  const std::vector<std::vector<GateId>> solutions{
      {nl.find("g2")},                 // avg distance 0
      {nl.find("g3"), nl.find("g4")},  // avg distance 1.5
  };
  const SolutionSetQuality q =
      evaluate_solution_quality(nl, solutions, {nl.find("g2")});
  EXPECT_EQ(q.num_solutions, 2u);
  EXPECT_DOUBLE_EQ(q.min_avg, 0.0);
  EXPECT_DOUBLE_EQ(q.max_avg, 1.5);
  EXPECT_DOUBLE_EQ(q.mean_avg, 0.75);
  EXPECT_DOUBLE_EQ(q.hit_rate, 0.5);
}

TEST(MetricsTest, EmptySolutionSet) {
  const Netlist nl = chain();
  const SolutionSetQuality q =
      evaluate_solution_quality(nl, {}, {nl.find("g2")});
  EXPECT_EQ(q.num_solutions, 0u);
  EXPECT_DOUBLE_EQ(q.mean_avg, 0.0);
  EXPECT_DOUBLE_EQ(q.hit_rate, 0.0);
}

TEST(MetricsTest, MultipleErrorSitesUseNearest) {
  const Netlist nl = chain();
  const auto dist =
      distances_to_errors(nl, {nl.find("g1"), nl.find("g4")});
  EXPECT_EQ(dist[nl.find("g1")], 0u);
  EXPECT_EQ(dist[nl.find("g4")], 0u);
  EXPECT_EQ(dist[nl.find("g2")], 1u);
  EXPECT_EQ(dist[nl.find("g3")], 1u);
}

}  // namespace
}  // namespace satdiag
