#include "diag/bsat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "diag/effect.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

struct Scenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

Scenario make_scenario(std::uint64_t seed, std::size_t errors_n,
                       std::size_t tests_n, std::size_t gates = 120) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_dffs = 5;
  params.num_gates = gates;
  params.seed = seed;
  Scenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 1009 + 11);
  InjectorOptions inject;
  inject.num_errors = errors_n;
  auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, tests_n, rng);
  EXPECT_GE(s.tests.size(), 1u);
  return s;
}

TEST(BsatTest, FindsTheInjectedSingleError) {
  const Scenario s = make_scenario(1, 1, 8);
  BsatOptions options;
  options.k = 1;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  ASSERT_FALSE(result.solutions.empty());
  // The actual error site must be among the corrections: changing the gate
  // back to its golden function rectifies every test, so {site} is a valid
  // correction of size 1 and Lemma 3 guarantees it is enumerated.
  const GateId site = error_site(s.errors[0]);
  bool found = false;
  for (const auto& solution : result.solutions) {
    found |= solution == std::vector<GateId>{site};
  }
  EXPECT_TRUE(found);
}

TEST(BsatTest, AllSolutionsValidAndEssential) {
  const Scenario s = make_scenario(2, 1, 6);
  BsatOptions options;
  options.k = 1;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  EffectAnalyzer effect(s.faulty, s.tests);
  for (const auto& solution : result.solutions) {
    EXPECT_TRUE(effect.is_valid_correction(solution));
    EXPECT_EQ(solution.size(), 1u);
  }
}

TEST(BsatTest, DoubleErrorCoveredAtKTwo) {
  const Scenario s = make_scenario(3, 2, 8);
  BsatOptions options;
  options.k = 2;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  ASSERT_FALSE(result.solutions.empty());
  // Either the pair of real sites (or a subset if one site alone suffices)
  // must appear among the solutions.
  const auto sites = error_sites(s.errors);
  bool found = false;
  for (const auto& solution : result.solutions) {
    const bool subset_of_sites = std::includes(
        sites.begin(), sites.end(), solution.begin(), solution.end());
    found |= subset_of_sites;
  }
  EXPECT_TRUE(found);
  EffectAnalyzer effect(s.faulty, s.tests);
  for (const auto& solution : result.solutions) {
    EXPECT_TRUE(effect.is_valid_correction(solution));
    EXPECT_LE(solution.size(), 2u);
  }
}

TEST(BsatTest, SolutionsAreUniqueAndSorted) {
  const Scenario s = make_scenario(4, 1, 6);
  BsatOptions options;
  options.k = 2;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  std::set<std::vector<GateId>> unique(result.solutions.begin(),
                                       result.solutions.end());
  EXPECT_EQ(unique.size(), result.solutions.size());
  for (const auto& solution : result.solutions) {
    EXPECT_TRUE(std::is_sorted(solution.begin(), solution.end()));
  }
}

TEST(BsatTest, NoSupersetSolutions) {
  // Lemma 3: no returned correction contains another returned correction.
  const Scenario s = make_scenario(5, 2, 8);
  BsatOptions options;
  options.k = 2;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  for (std::size_t i = 0; i < result.solutions.size(); ++i) {
    for (std::size_t j = 0; j < result.solutions.size(); ++j) {
      if (i == j) continue;
      const auto& small = result.solutions[i];
      const auto& big = result.solutions[j];
      if (small.size() >= big.size()) continue;
      EXPECT_FALSE(std::includes(big.begin(), big.end(), small.begin(),
                                 small.end()))
          << "solution " << j << " is a superset of " << i;
    }
  }
}

TEST(BsatTest, MoreTestsNarrowSolutions) {
  const Scenario s = make_scenario(6, 1, 16);
  BsatOptions options;
  options.k = 1;
  const TestSet few(s.tests.begin(), s.tests.begin() + 2);
  const BsatResult small = basic_sat_diagnose(s.faulty, few, options);
  const BsatResult large = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(small.complete);
  ASSERT_TRUE(large.complete);
  // Every correction valid for the full set is valid for the subset, so the
  // solution count cannot grow (for fixed k=1 and the same single output
  // pool this holds set-wise).
  const std::set<std::vector<GateId>> small_set(small.solutions.begin(),
                                                small.solutions.end());
  for (const auto& solution : large.solutions) {
    EXPECT_TRUE(small_set.count(solution))
        << "k=1 solution for 16 tests missing for 2-test subset";
  }
  EXPECT_GE(small.solutions.size(), large.solutions.size());
}

TEST(BsatTest, GatingClausesDoNotChangeSolutions) {
  const Scenario s = make_scenario(7, 1, 6);
  BsatOptions with;
  with.k = 1;
  with.instance.gating_clauses = true;
  BsatOptions without = with;
  without.instance.gating_clauses = false;
  const BsatResult a = basic_sat_diagnose(s.faulty, s.tests, with);
  const BsatResult b = basic_sat_diagnose(s.faulty, s.tests, without);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(std::set<std::vector<GateId>>(a.solutions.begin(), a.solutions.end()),
            std::set<std::vector<GateId>>(b.solutions.begin(), b.solutions.end()));
}

TEST(BsatTest, CardEncodingsAgree) {
  const Scenario s = make_scenario(8, 2, 6);
  std::set<std::vector<GateId>> reference;
  for (CardEncoding enc :
       {CardEncoding::kSequential, CardEncoding::kTotalizer}) {
    BsatOptions options;
    options.k = 2;
    options.instance.card_encoding = enc;
    const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
    ASSERT_TRUE(result.complete);
    std::set<std::vector<GateId>> got(result.solutions.begin(),
                                      result.solutions.end());
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(reference, got) << card_encoding_name(enc);
    }
  }
}

TEST(BsatTest, ActivitySeedKeepsSolutionSpace) {
  const Scenario s = make_scenario(9, 1, 6);
  BsatOptions plain;
  plain.k = 1;
  const BsatResult a = basic_sat_diagnose(s.faulty, s.tests, plain);

  BsatOptions seeded = plain;
  seeded.select_activity_seed.assign(s.faulty.size(), 0);
  seeded.select_activity_seed[error_site(s.errors[0])] = 100;
  const BsatResult b = basic_sat_diagnose(s.faulty, s.tests, seeded);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(std::set<std::vector<GateId>>(a.solutions.begin(), a.solutions.end()),
            std::set<std::vector<GateId>>(b.solutions.begin(), b.solutions.end()));
}

TEST(BsatTest, DeadlineTruncatesGracefully) {
  const Scenario s = make_scenario(10, 2, 8, /*gates=*/200);
  BsatOptions options;
  options.k = 2;
  options.deadline = Deadline::after_seconds(-1.0);  // already expired
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(BsatTest, MaxSolutionsTruncates) {
  const Scenario s = make_scenario(11, 1, 4);
  BsatOptions options;
  options.k = 2;
  options.max_solutions = 1;
  const BsatResult result = basic_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.solutions.size(), 1u);
}

TEST(BsatTest, InstanceSizeReported) {
  const Scenario s = make_scenario(12, 1, 4);
  BsatOptions options;
  options.k = 1;
  // Theta(|I| * m) variables (paper Table 1): at least one var per gate per
  // test copy — on the unreduced instance the paper describes.
  options.cone_of_influence = false;
  const BsatResult unreduced = basic_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_GE(unreduced.num_vars, s.faulty.size() * s.tests.size());
  EXPECT_GT(unreduced.num_clauses, 0u);

  // The default cone-of-influence instance never exceeds the unreduced one
  // and still reports a non-trivial size.
  options.cone_of_influence = true;
  const BsatResult reduced = basic_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_LE(reduced.num_vars, unreduced.num_vars);
  EXPECT_LE(reduced.num_clauses, unreduced.num_clauses);
  EXPECT_GT(reduced.num_vars, 0u);
  // Same enumerated corrections either way (gates outside every cone are
  // never essential).
  EXPECT_EQ(reduced.solutions, unreduced.solutions);
}

}  // namespace
}  // namespace satdiag
