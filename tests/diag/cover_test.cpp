#include "diag/cover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace satdiag {
namespace {

using Sets = std::vector<std::vector<GateId>>;

std::set<std::vector<GateId>> as_set(const Sets& v) {
  return {v.begin(), v.end()};
}

TEST(CoverTest, IsCoverBasics) {
  const Sets sets{{1, 2}, {2, 3}};
  EXPECT_TRUE(is_cover(sets, {2}));
  EXPECT_TRUE(is_cover(sets, {1, 3}));
  EXPECT_FALSE(is_cover(sets, {1}));
  EXPECT_FALSE(is_cover(sets, {}));
}

TEST(CoverTest, IrredundantCover) {
  const Sets sets{{1, 2}, {2, 3}};
  EXPECT_TRUE(is_irredundant_cover(sets, {2}));
  EXPECT_TRUE(is_irredundant_cover(sets, {1, 3}));
  EXPECT_FALSE(is_irredundant_cover(sets, {1, 2}));  // {2} suffices
}

TEST(CoverTest, PaperExample1) {
  // Example 1 of the paper: C1={A,B,F,G}, C2={C,D,E,F,G}, C3={B,C,E,H};
  // k=2. {B,D} and... the paper also quotes {A,D,H} (a k=3 solution).
  const GateId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6, H = 7;
  const Sets sets{{A, B, F, G}, {C, D, E, F, G}, {B, C, E, H}};

  CovOptions options;
  options.k = 2;
  const CovResult result = solve_covering_sat(sets, options);
  ASSERT_TRUE(result.complete);
  const auto solutions = as_set(result.solutions);
  EXPECT_TRUE(solutions.count({B, D}));
  // Size-1 solutions that hit all three sets do not exist here...
  for (const auto& s : result.solutions) {
    EXPECT_TRUE(is_irredundant_cover(sets, s));
    EXPECT_LE(s.size(), 2u);
  }
  // ...but F/G cover C1 and C2, so {F,B}... F with any of C3's elements:
  EXPECT_TRUE(solutions.count({B, F}));

  // With k=3 the other quoted solution {A,D,H} appears.
  CovOptions options3;
  options3.k = 3;
  const CovResult result3 = solve_covering_sat(sets, options3);
  ASSERT_TRUE(result3.complete);
  EXPECT_TRUE(as_set(result3.solutions).count({A, D, H}));
}

TEST(CoverTest, SatAndBnbAgree) {
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    // Random small instance.
    const unsigned universe = 6;
    Sets sets;
    const std::size_t num_sets = 2 + rng.next_below(3);
    for (std::size_t i = 0; i < num_sets; ++i) {
      std::vector<GateId> s;
      for (GateId g = 0; g < universe; ++g) {
        if (rng.next_bool(0.4)) s.push_back(g);
      }
      if (s.empty()) s.push_back(static_cast<GateId>(rng.next_below(universe)));
      sets.push_back(std::move(s));
    }
    const unsigned k = 1 + static_cast<unsigned>(rng.next_below(3));

    CovOptions options;
    options.k = k;
    const CovResult sat = solve_covering_sat(sets, options);
    ASSERT_TRUE(sat.complete);
    const auto bnb = solve_covering_bnb(sets, k);
    EXPECT_EQ(as_set(sat.solutions), as_set(bnb)) << "round " << round;
  }
}

TEST(CoverTest, AllSolutionsAreIrredundant) {
  const Sets sets{{0, 1, 2}, {2, 3}, {1, 3, 4}};
  CovOptions options;
  options.k = 3;
  const CovResult result = solve_covering_sat(sets, options);
  ASSERT_TRUE(result.complete);
  EXPECT_FALSE(result.solutions.empty());
  for (const auto& s : result.solutions) {
    EXPECT_TRUE(is_irredundant_cover(sets, s));
  }
  // No duplicates.
  EXPECT_EQ(as_set(result.solutions).size(), result.solutions.size());
}

TEST(CoverTest, InfeasibleBoundGivesNoSolutions) {
  // Three pairwise-disjoint sets cannot be covered with k=2.
  const Sets sets{{0}, {1}, {2}};
  CovOptions options;
  options.k = 2;
  const CovResult result = solve_covering_sat(sets, options);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(CoverTest, SingleSetSingletons) {
  const Sets sets{{3, 5, 9}};
  CovOptions options;
  options.k = 2;
  const CovResult result = solve_covering_sat(sets, options);
  ASSERT_TRUE(result.complete);
  // Exactly the three singletons; size-2 covers are redundant.
  EXPECT_EQ(as_set(result.solutions),
            (std::set<std::vector<GateId>>{{3}, {5}, {9}}));
}

TEST(CoverTest, MaxSolutionsTruncates) {
  const Sets sets{{0, 1, 2, 3, 4}};
  CovOptions options;
  options.k = 1;
  options.max_solutions = 2;
  const CovResult result = solve_covering_sat(sets, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.solutions.size(), 2u);
}

TEST(CoverTest, TimingFieldsPopulated) {
  const Sets sets{{0, 1}, {1, 2}};
  CovOptions options;
  options.k = 2;
  const CovResult result = solve_covering_sat(sets, options);
  EXPECT_GE(result.build_seconds, 0.0);
  EXPECT_GE(result.first_seconds, 0.0);
  EXPECT_GE(result.all_seconds, result.first_seconds);
}

TEST(CoverTest, BnbHandlesDuplicateElementsAcrossSets) {
  const Sets sets{{1, 2}, {1, 2}, {2}};
  const auto solutions = solve_covering_bnb(sets, 2);
  EXPECT_EQ(as_set(solutions), (std::set<std::vector<GateId>>{{2}}));
}

}  // namespace
}  // namespace satdiag
