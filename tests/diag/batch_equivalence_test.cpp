// Every diagnosis-layer consumer of the lane-batched X-injection mode is
// pinned to the scalar path it replaces, over the randomized shrinking
// harness of tests/common/diff_harness.{hpp,cpp} and with thread counts
// {1, 2, 8}: x_reach_masks, EffectAnalyzer::x_check_batch, the xlist
// single-candidate refinement, xlist tuple verification, and the BSIM
// X-refinement. Plus the explicit 0-candidate / 1-candidate / partial-batch
// edge cases of x_check_batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "common/diff_harness.hpp"
#include "diag/bsim.hpp"
#include "diag/effect.hpp"
#include "diag/xlist.hpp"
#include "exec/thread_pool.hpp"

namespace satdiag {
namespace {

using difftest::DiffConfig;

TEST(BatchEquivalenceDiffTest, XReachMasksMatchScalarAcrossThreadCounts) {
  EXPECT_TRUE(difftest::run_diff("x_reach_masks vs scalar",
                                 difftest::check_threaded_reach_masks,
                                 DiffConfig{.seed = 11000}, 6));
}

TEST(BatchEquivalenceDiffTest, XCheckBatchMatchesSerialCalls) {
  EXPECT_TRUE(difftest::run_diff("x_check_batch vs serial x_check",
                                 difftest::check_x_check_batch_vs_serial,
                                 DiffConfig{.seed = 12000, .gates = 160,
                                            .candidates = 24},
                                 5));
}

TEST(BatchEquivalenceDiffTest, XListSinglesMatchRunFullReference) {
  EXPECT_TRUE(difftest::run_diff("xlist singles vs reference",
                                 difftest::check_xlist_singles_vs_reference,
                                 DiffConfig{.seed = 13000, .gates = 160},
                                 5));
}

TEST(BatchEquivalenceDiffTest, BsimXRefineMatchesScalarRecomputation) {
  EXPECT_TRUE(difftest::run_diff("bsim x_refine vs scalar",
                                 difftest::check_bsim_x_refine,
                                 DiffConfig{.seed = 14000, .gates = 180,
                                            .tests = 9},
                                 5));
}

// ---------------------------------------------------------------------------
// x_check_batch edge cases (0 candidates, 1 candidate, >64-test chunking)

TEST(BatchEquivalenceTest, XCheckBatchEmptyCandidateListIsNoOp) {
  const auto inst = difftest::make_instance(
      DiffConfig{.seed = 21, .gates = 120, .candidates = 4, .tests = 5});
  const EffectAnalyzer effect(inst.nl, inst.tests);
  for (const std::size_t threads : {1, 2, 8}) {
    const auto result = effect.x_check_batch({}, threads);
    EXPECT_TRUE(result.empty()) << "threads=" << threads;
  }
}

TEST(BatchEquivalenceTest, XCheckBatchSingleCandidateMatchesSerial) {
  const auto inst = difftest::make_instance(
      DiffConfig{.seed = 22, .gates = 150, .candidates = 8, .tests = 7});
  const EffectAnalyzer effect(inst.nl, inst.tests);
  // One candidate leaves capacity() - 1 idle lane groups in the single
  // sweep; the answer must still equal the serial check.
  for (const auto& tuple : inst.tuples) {
    const bool serial = effect.x_check(tuple);
    for (const std::size_t threads : {1, 2, 8}) {
      const auto batched = effect.x_check_batch({tuple}, threads);
      ASSERT_EQ(batched.size(), 1u);
      EXPECT_EQ(batched[0] != 0, serial) << "threads=" << threads;
    }
  }
}

TEST(BatchEquivalenceTest, XCheckBatchChunksTestSetsBeyond64) {
  // 70 tests: two chunks (64 + 6) with different lane packings; the
  // conjunction over chunks must equal the serial multi-chunk x_check.
  auto inst = difftest::make_instance(
      DiffConfig{.seed = 23, .gates = 140, .candidates = 20, .tests = 64});
  // Extend past one chunk by inverting the first six vectors.
  TestSet tests = inst.tests;
  for (std::size_t t = 0; t < 6; ++t) {
    satdiag::Test test = inst.tests[t];
    for (std::size_t i = 0; i < test.input_values.size(); ++i) {
      test.input_values[i] = !test.input_values[i];
    }
    tests.push_back(std::move(test));
  }
  ASSERT_EQ(tests.size(), 70u);
  const EffectAnalyzer effect(inst.nl, tests);
  std::vector<std::uint8_t> serial;
  for (const auto& tuple : inst.tuples) {
    serial.push_back(effect.x_check(tuple) ? 1 : 0);
  }
  for (const std::size_t threads : {1, 2, 8}) {
    EXPECT_EQ(effect.x_check_batch(inst.tuples, threads), serial)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// xlist tuple path: lane-batched joint verification

TEST(BatchEquivalenceTest, TupleCandidatesThreadCountInvariantAndVerified) {
  const auto inst = difftest::make_instance(
      DiffConfig{.seed = 25, .gates = 200, .candidates = 16, .tests = 6});
  const EffectAnalyzer effect(inst.nl, inst.tests);
  std::optional<std::vector<std::vector<GateId>>> reference;
  for (const std::size_t threads : {1, 2, 8}) {
    XListOptions options;
    options.num_threads = threads;
    const auto tuples =
        xlist_tuple_candidates(inst.nl, inst.tests, 2, 32, options);
    // Every returned tuple passes the scalar joint X-check.
    for (const auto& tuple : tuples) {
      EXPECT_TRUE(effect.x_check(tuple));
    }
    if (reference) {
      EXPECT_EQ(tuples, *reference) << "threads=" << threads;
    } else {
      reference = tuples;
    }
  }
}

TEST(BatchEquivalenceTest, BsimXRefineOffByDefault) {
  const auto inst = difftest::make_instance(
      DiffConfig{.seed = 26, .gates = 120, .candidates = 4, .tests = 4});
  const BsimResult plain = basic_sim_diagnose(inst.nl, inst.tests);
  EXPECT_TRUE(plain.refined_sets.empty());

  BsimOptions options;
  options.x_refine = true;
  const BsimResult refined =
      basic_sim_diagnose(inst.nl, inst.tests, options, nullptr);
  ASSERT_EQ(refined.refined_sets.size(), inst.tests.size());
  // Refinement only removes marks and keeps per-test order.
  for (std::size_t t = 0; t < inst.tests.size(); ++t) {
    EXPECT_LE(refined.refined_sets[t].size(),
              refined.candidate_sets[t].size());
    EXPECT_TRUE(std::includes(refined.candidate_sets[t].begin(),
                              refined.candidate_sets[t].end(),
                              refined.refined_sets[t].begin(),
                              refined.refined_sets[t].end()));
  }
  // The plain marks are unchanged by the refinement pass.
  EXPECT_EQ(refined.candidate_sets, plain.candidate_sets);
  EXPECT_EQ(refined.marked_union, plain.marked_union);
}

}  // namespace
}  // namespace satdiag
