#include "diag/bsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

struct Scenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

Scenario make_scenario(std::uint64_t seed, std::size_t errors_n,
                       std::size_t tests_n) {
  GeneratorParams params;
  params.num_inputs = 10;
  params.num_outputs = 6;
  params.num_dffs = 8;
  params.num_gates = 250;
  params.seed = seed;
  Scenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 31 + 7);
  InjectorOptions inject;
  inject.num_errors = errors_n;
  auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, tests_n, rng);
  EXPECT_EQ(s.tests.size(), tests_n);
  return s;
}

TEST(BsimTest, OneCandidateSetPerTest) {
  const Scenario s = make_scenario(1, 1, 8);
  const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
  EXPECT_EQ(result.candidate_sets.size(), 8u);
  for (const auto& set : result.candidate_sets) {
    EXPECT_FALSE(set.empty());
  }
}

TEST(BsimTest, MarkCountsConsistentWithSets) {
  const Scenario s = make_scenario(2, 2, 12);
  const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
  std::vector<std::uint32_t> recount(s.faulty.size(), 0);
  for (const auto& set : result.candidate_sets) {
    for (GateId g : set) ++recount[g];
  }
  EXPECT_EQ(recount, result.mark_count);
}

TEST(BsimTest, UnionIsUnionOfSets) {
  const Scenario s = make_scenario(3, 1, 8);
  const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
  std::vector<GateId> expected;
  for (const auto& set : result.candidate_sets) {
    expected.insert(expected.end(), set.begin(), set.end());
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  EXPECT_EQ(result.marked_union, expected);
}

TEST(BsimTest, GmaxHasMaximalCount) {
  const Scenario s = make_scenario(4, 2, 16);
  const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
  ASSERT_FALSE(result.gmax.empty());
  for (GateId g : result.gmax) {
    EXPECT_EQ(result.mark_count[g], result.max_marks);
  }
  for (GateId g : result.marked_union) {
    EXPECT_LE(result.mark_count[g], result.max_marks);
  }
}

// The paper (citing Kuehlmann et al.): at least one actual error site is
// marked by more than m/p tests. For a single error the error site is in
// EVERY candidate set — the classic single-error intersection property
// (requires the trace to walk sensitized paths, which contain the site).
TEST(BsimTest, SingleErrorSiteMarkedOften) {
  int hits = 0;
  int rounds = 0;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Scenario s = make_scenario(seed, 1, 16);
    const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
    const GateId site = error_site(s.errors[0]);
    ++rounds;
    // The site should be marked by strictly more than m/p = m tests... i.e.
    // by all of them it cannot be guaranteed; count how often it is marked
    // by > m/2 (a loose version of the m/p bound for p=1 noted in Sec 2.2,
    // where the guarantee is > m/p only for SOME error site, p=1 -> > m).
    if (result.mark_count[site] * 2 > s.tests.size()) ++hits;
  }
  // In almost all experiments the bound holds (paper Sec. 6 observes this).
  EXPECT_GE(hits, rounds - 1);
}

TEST(BsimTest, MultiErrorAtLeastOneSiteAboveBound) {
  // "at least one actual error site is marked by more than m/p tests".
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    const Scenario s = make_scenario(seed, 2, 16);
    const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
    const double bound =
        static_cast<double>(s.tests.size()) / static_cast<double>(s.errors.size());
    bool any = false;
    for (GateId site : error_sites(s.errors)) {
      any |= static_cast<double>(result.mark_count[site]) > bound;
    }
    EXPECT_TRUE(any) << "seed " << seed;
  }
}

TEST(BsimTest, MoreTestsMarkMoreGates) {
  // Monotone in expectation; verify with same scenario different prefixes.
  const Scenario s = make_scenario(30, 1, 32);
  const TestSet few(s.tests.begin(), s.tests.begin() + 4);
  const BsimResult small = basic_sim_diagnose(s.faulty, few);
  const BsimResult large = basic_sim_diagnose(s.faulty, s.tests);
  EXPECT_GE(large.marked_union.size(), small.marked_union.size());
}

TEST(BsimTest, BatchBoundaryAt64Tests) {
  // More than 64 tests exercises the two-batch path.
  const Scenario s = make_scenario(40, 1, 70);
  const BsimResult result = basic_sim_diagnose(s.faulty, s.tests);
  EXPECT_EQ(result.candidate_sets.size(), 70u);
  // Cross-check a set from the second batch against a fresh single run.
  const BsimResult single = basic_sim_diagnose(
      s.faulty, TestSet{s.tests[65]});
  EXPECT_EQ(result.candidate_sets[65], single.candidate_sets[0]);
}

}  // namespace
}  // namespace satdiag
