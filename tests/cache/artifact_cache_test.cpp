// Unit tests for the keyed compile-artifact cache: key construction and
// sensitivity, hit/miss/eviction accounting, and the concurrent same-key
// contract (one build, everyone else waits — the property the parallel BSAT
// shard setup leans on). This suite runs under the ThreadSanitizer CI job.
#include "cache/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag::cache {
namespace {

std::uint64_t pack(const ArtifactKey& k) { return k.hi ^ k.lo; }

TEST(ArtifactKeyTest, KindSeparatesDomains) {
  std::set<std::uint64_t> seen;
  for (const ArtifactKind kind :
       {ArtifactKind::kNetlist, ArtifactKind::kCompiled,
        ArtifactKind::kGoldenOutputs, ArtifactKind::kCone,
        ArtifactKind::kCopyTemplate}) {
    KeyBuilder kb(kind);
    kb.mix(42u);
    EXPECT_TRUE(seen.insert(pack(kb.key())).second)
        << "kind " << static_cast<std::uint64_t>(kind)
        << " collides with a previous kind";
  }
}

TEST(ArtifactKeyTest, MixIsOrderAndValueSensitive) {
  const auto key_of = [](std::uint64_t a, std::uint64_t b) {
    KeyBuilder kb(ArtifactKind::kCone);
    kb.mix(a).mix(b);
    return kb.key();
  };
  EXPECT_EQ(key_of(1, 2), key_of(1, 2));
  EXPECT_NE(key_of(1, 2), key_of(2, 1));
  EXPECT_NE(key_of(1, 2), key_of(1, 3));
  // A value split across mixes differs from the same bytes mixed at once.
  KeyBuilder once(ArtifactKind::kCone);
  once.mix(0u);
  KeyBuilder twice(ArtifactKind::kCone);
  twice.mix(0u).mix(0u);
  EXPECT_NE(once.key(), twice.key());
}

TEST(ArtifactKeyTest, NetlistFingerprintIsStructural) {
  const auto build = [](const char* and_name, GateType top) {
    Netlist nl;
    const GateId a = nl.add_input("a");
    const GateId b = nl.add_input("b");
    const GateId g = nl.add_gate(GateType::kAnd, and_name, {a, b});
    const GateId o = nl.add_gate(top, "o", {g, a});
    nl.add_output(o);
    nl.finalize();
    return netlist_fingerprint(nl);
  };
  // Same structure, different names: identical fingerprint (templates do
  // not depend on names).
  EXPECT_EQ(build("g", GateType::kOr), build("renamed", GateType::kOr));
  // One gate type changed: different fingerprint.
  EXPECT_NE(build("g", GateType::kOr), build("g", GateType::kXor));
}

ArtifactKey test_key(std::uint64_t n) {
  KeyBuilder kb(ArtifactKind::kCone);
  kb.mix(n);
  return kb.key();
}

using IntBuild = std::pair<std::shared_ptr<const int>, std::size_t>;

TEST(ArtifactCacheTest, RepeatRequestsHitWithoutRebuilding) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  const auto build = [&]() -> IntBuild {
    ++builds;
    return {std::make_shared<int>(7), 64};
  };
  const auto first = cache.get_or_build<int>(test_key(1), build);
  const auto second = cache.get_or_build<int>(test_key(1), build);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(first.get(), second.get());

  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 64u);
}

TEST(ArtifactCacheTest, DistinctKeysBuildSeparately) {
  ArtifactCache cache;
  std::atomic<int> builds{0};
  const auto build = [&]() -> IntBuild {
    const int n = ++builds;
    return {std::make_shared<int>(n), 8};
  };
  const auto a = cache.get_or_build<int>(test_key(1), build);
  const auto b = cache.get_or_build<int>(test_key(2), build);
  EXPECT_EQ(builds.load(), 2);
  EXPECT_NE(*a, *b);
}

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedPastCapacity) {
  ArtifactCache cache(/*capacity_bytes=*/256);
  const auto value = [](int n, std::size_t bytes) {
    return [n, bytes]() -> IntBuild {
      return {std::make_shared<int>(n), bytes};
    };
  };
  const auto a = cache.get_or_build<int>(test_key(1), value(1, 100));
  const auto b = cache.get_or_build<int>(test_key(2), value(2, 100));
  // Touch key 1 so key 2 is the LRU entry when key 3 overflows the budget.
  cache.get_or_build<int>(test_key(1), value(1, 100));
  const auto c = cache.get_or_build<int>(test_key(3), value(3, 100));

  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, 256u);
  // Evicted values stay alive through outstanding shared_ptrs.
  EXPECT_EQ(*b, 2);

  // Key 2 was evicted, so it rebuilds; key 1 should still be resident.
  std::atomic<int> rebuilds{0};
  const auto rebuild = [&]() -> IntBuild {
    ++rebuilds;
    return {std::make_shared<int>(2), 100};
  };
  cache.get_or_build<int>(test_key(2), rebuild);
  EXPECT_EQ(rebuilds.load(), 1);
}

TEST(ArtifactCacheTest, ThrowingBuilderRetriesOnNextCall) {
  ArtifactCache cache;
  std::atomic<int> attempts{0};
  const auto failing = [&]() -> IntBuild {
    ++attempts;
    throw std::runtime_error("transient");
  };
  EXPECT_THROW(cache.get_or_build<int>(test_key(9), failing),
               std::runtime_error);
  const auto ok = [&]() -> IntBuild {
    ++attempts;
    return {std::make_shared<int>(5), 8};
  };
  const auto v = cache.get_or_build<int>(test_key(9), ok);
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(attempts.load(), 2);
}

TEST(ArtifactCacheTest, ConcurrentSameKeyCallersBuildOnce) {
  ArtifactCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::vector<std::shared_ptr<const int>> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[i] = cache.get_or_build<int>(test_key(3), [&]() -> IntBuild {
        ++builds;
        // Widen the race window so late callers arrive mid-build.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return {std::make_shared<int>(11), 16};
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
  }
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ArtifactCacheTest, ConcurrentDistinctKeysDoNotSerialize) {
  ArtifactCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const auto v =
          cache.get_or_build<int>(test_key(100 + i), [&]() -> IntBuild {
            ++builds;
            return {std::make_shared<int>(i), 16};
          });
      EXPECT_EQ(*v, i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), kThreads);
}

}  // namespace
}  // namespace satdiag::cache
