#include "fault/testgen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

Netlist medium_circuit(std::uint64_t seed) {
  GeneratorParams params;
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_dffs = 6;
  params.num_gates = 200;
  params.seed = seed;
  return make_full_scan(generate_circuit(params)).comb;
}

// Every generated test must actually fail: the faulty value at the named
// output differs from the golden (correct) value.
void expect_tests_fail(const Netlist& nl, const ErrorList& errors,
                       const TestSet& tests) {
  ParallelSimulator golden(nl);
  ParallelSimulator faulty(nl);
  configure_faulty_simulator(faulty, errors);
  for (const satdiag::Test& t : tests) {
    golden.set_input_vector(0, t.input_values);
    faulty.set_input_vector(0, t.input_values);
    golden.run();
    faulty.run();
    const GateId o = test_output_gate(nl, t);
    EXPECT_EQ(golden.value_bit(o, 0), t.correct_value);
    EXPECT_NE(faulty.value_bit(o, 0), t.correct_value);
  }
}

TEST(TestGenTest, RandomSimulationFindsFailingTests) {
  const Netlist nl = medium_circuit(31);
  Rng rng(1);
  InjectorOptions inject;
  inject.num_errors = 2;
  const auto errors = inject_errors(nl, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const TestSet tests = generate_failing_tests(nl, *errors, 16, rng);
  EXPECT_EQ(tests.size(), 16u);
  expect_tests_fail(nl, *errors, tests);
}

TEST(TestGenTest, VectorsAreDistinctByDefault) {
  const Netlist nl = medium_circuit(32);
  Rng rng(2);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(nl, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const TestSet tests = generate_failing_tests(nl, *errors, 12, rng);
  std::set<std::vector<bool>> vectors;
  for (const satdiag::Test& t : tests) vectors.insert(t.input_values);
  EXPECT_EQ(vectors.size(), tests.size());
}

TEST(TestGenTest, AtpgFallbackOnHardFault) {
  // A fault only sensitized by one specific input pattern: random simulation
  // with a tiny budget virtually never hits it, ATPG must find it.
  // g = AND(i0..i15) stuck-at-0 differs from golden only on the all-ones
  // vector (1 in 65536).
  Netlist nl;
  std::vector<GateId> ins;
  for (int i = 0; i < 16; ++i) {
    std::string name = "i";
    name += std::to_string(i);
    ins.push_back(nl.add_input(name));
  }
  const GateId g = nl.add_gate(GateType::kAnd, "g", ins);
  const GateId o = nl.add_gate(GateType::kBuf, "o", {g});
  nl.add_output(o);
  nl.finalize();
  const ErrorList errors{StuckAtError{g, false}};

  Rng rng(3);
  TestGenOptions options;
  options.max_random_words = 2;  // 128 random patterns vs a 2^-16 needle
  options.use_atpg_fallback = true;
  const TestSet tests = generate_failing_tests(nl, errors, 1, rng, options);
  ASSERT_EQ(tests.size(), 1u);
  expect_tests_fail(nl, errors, tests);
  // The only failing vector is all-ones (regardless of which engine found it).
  for (bool b : tests[0].input_values) EXPECT_TRUE(b);
}

TEST(TestGenTest, AtpgEnumeratesDistinctVectors) {
  // o = XOR(a, b) changed to XNOR: every vector fails. Ask for more tests
  // than random budget provides; ATPG should fill the rest distinctly.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId o = nl.add_gate(GateType::kXor, "o", {a, b});
  nl.add_output(o);
  nl.finalize();
  const ErrorList errors{GateChangeError{o, GateType::kXor, GateType::kXnor}};
  Rng rng(4);
  TestGenOptions options;
  options.max_random_words = 0;  // force pure ATPG
  const TestSet tests = generate_failing_tests(nl, errors, 4, rng, options);
  EXPECT_EQ(tests.size(), 4u);  // all 4 input vectors fail
  std::set<std::vector<bool>> vectors;
  for (const satdiag::Test& t : tests) vectors.insert(t.input_values);
  EXPECT_EQ(vectors.size(), 4u);
  expect_tests_fail(nl, errors, tests);
}

TEST(TestGenTest, UntestableFaultYieldsNoTests) {
  // g XOR-ed with itself stays 0 regardless of the gate's change from
  // AND(a,a) to OR(a,a) (both equal a): functionally equivalent change.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, a});
  const GateId o = nl.add_gate(GateType::kBuf, "o", {g});
  nl.add_output(o);
  nl.finalize();
  const ErrorList errors{GateChangeError{g, GateType::kAnd, GateType::kOr}};
  Rng rng(5);
  TestGenOptions options;
  options.max_random_words = 4;
  const TestSet tests = generate_failing_tests(nl, errors, 2, rng, options);
  EXPECT_TRUE(tests.empty());
}

TEST(TestGenTest, StuckAtFaultTests) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;
  const ErrorList errors{StuckAtError{nl.find("16"), true}};
  Rng rng(6);
  const TestSet tests = generate_failing_tests(nl, errors, 3, rng);
  EXPECT_FALSE(tests.empty());
  expect_tests_fail(nl, errors, tests);
}

TEST(TestGenTest, GoldenOutputValues) {
  const Netlist c17 = make_full_scan(builtin_c17()).comb;
  const auto outs = golden_output_values(
      c17, {true, true, true, true, true});
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_TRUE(outs[0]);   // output 22 (see builtin_test)
  EXPECT_FALSE(outs[1]);  // output 23
}

TEST(TestGenTest, GoldenOutputsForTestsAlignment) {
  const Netlist nl = medium_circuit(33);
  Rng rng(7);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(nl, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const TestSet tests = generate_failing_tests(nl, *errors, 5, rng);
  const auto rows = golden_outputs_for_tests(nl, tests);
  ASSERT_EQ(rows.size(), tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    EXPECT_EQ(rows[i][tests[i].output_index], tests[i].correct_value);
  }
}

}  // namespace
}  // namespace satdiag
