#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

Netlist scan_view(const Netlist& seq) { return make_full_scan(seq).comb; }

TEST(InjectorTest, InjectsRequestedNumberOfDistinctSites) {
  const Netlist nl = scan_view(builtin_s27());
  Rng rng(1);
  InjectorOptions options;
  options.num_errors = 2;
  const auto errors = inject_errors(nl, rng, options);
  ASSERT_TRUE(errors.has_value());
  EXPECT_EQ(errors->size(), 2u);
  EXPECT_EQ(error_sites(*errors).size(), 2u);
}

TEST(InjectorTest, GateChangeKeepsArity) {
  const Netlist nl = scan_view(builtin_s27());
  Rng rng(3);
  InjectorOptions options;
  options.num_errors = 3;
  const auto errors = inject_errors(nl, rng, options);
  ASSERT_TRUE(errors.has_value());
  for (const DesignError& e : *errors) {
    const auto& gc = std::get<GateChangeError>(e);
    EXPECT_NE(gc.original, gc.replacement);
    EXPECT_TRUE(arity_ok(gc.replacement, nl.fanins(gc.gate).size()));
    EXPECT_EQ(gc.original, nl.type(gc.gate));
  }
}

TEST(InjectorTest, InjectedErrorsAreDetectable) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 150;
  params.seed = 10;
  const Netlist nl = scan_view(generate_circuit(params));
  Rng rng(5);
  InjectorOptions options;
  options.num_errors = 1;
  const auto errors = inject_errors(nl, rng, options);
  ASSERT_TRUE(errors.has_value());

  // Verify with an independent random simulation that behaviour differs.
  ParallelSimulator golden(nl);
  ParallelSimulator faulty(nl);
  configure_faulty_simulator(faulty, *errors);
  Rng check_rng(123);
  bool differs = false;
  for (int w = 0; w < 64 && !differs; ++w) {
    for (GateId in : nl.inputs()) {
      const std::uint64_t word = check_rng.next_u64();
      golden.set_source(in, word);
      faulty.set_source(in, word);
    }
    golden.run();
    faulty.run();
    for (GateId o : nl.outputs()) {
      differs |= golden.value(o) != faulty.value(o);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(InjectorTest, TooManyErrorsForTinyCircuitReturnsNullopt) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kNot, "g", {a});
  nl.add_output(g);
  nl.finalize();
  Rng rng(1);
  InjectorOptions options;
  options.num_errors = 5;
  EXPECT_FALSE(inject_errors(nl, rng, options).has_value());
}

TEST(InjectorTest, StuckAtMix) {
  const Netlist nl = scan_view(builtin_s27());
  Rng rng(7);
  InjectorOptions options;
  options.num_errors = 4;
  options.stuck_at_fraction = 1.0;  // all stuck-at
  const auto errors = inject_errors(nl, rng, options);
  ASSERT_TRUE(errors.has_value());
  for (const DesignError& e : *errors) {
    EXPECT_TRUE(std::holds_alternative<StuckAtError>(e));
  }
}

TEST(InjectorTest, ConfigureFaultySimulatorStuckAt) {
  const Netlist nl = scan_view(builtin_c17());
  const GateId g = nl.find("16");
  ParallelSimulator sim(nl);
  configure_faulty_simulator(sim, {StuckAtError{g, true}});
  sim.set_input_vector(0, {false, false, false, false, false});
  sim.run();
  EXPECT_TRUE(sim.value_bit(g, 0));
}

TEST(InjectorTest, DeterministicGivenSameRngSeed) {
  const Netlist nl = scan_view(builtin_s27());
  InjectorOptions options;
  options.num_errors = 2;
  Rng rng1(99);
  Rng rng2(99);
  const auto a = inject_errors(nl, rng1, options);
  const auto b = inject_errors(nl, rng2, options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(error_sites(*a), error_sites(*b));
}

}  // namespace
}  // namespace satdiag
