// Unit tests of the candidate-parallel exhaustive stuck-at fault simulator.
#include "fault/fault_sim.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

Netlist small_circuit() {
  const auto profile = find_profile("s298_like");
  return make_full_scan(make_profile_circuit(*profile, 0.5, 1)).comb;
}

TEST(FaultSimTest, SitesAreExactlyTheCombinationalGates) {
  const Netlist nl = small_circuit();
  const std::vector<GateId> sites = stuck_at_sites(nl);
  std::size_t expected = 0;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) ++expected;
  }
  EXPECT_EQ(sites.size(), expected);
  for (GateId g : sites) EXPECT_TRUE(nl.is_combinational(g));
}

TEST(FaultSimTest, FaultCountAccountsSitesPolaritiesRounds) {
  const Netlist nl = small_circuit();
  const std::vector<GateId> sites = stuck_at_sites(nl);
  Rng rng(1);
  StuckAtFaultSimOptions options;
  options.rounds = 3;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);
  EXPECT_EQ(result.faults, sites.size() * 2 * 3);
  EXPECT_LE(result.detected, result.faults);
  EXPECT_GT(result.detected, 0u);
  EXPECT_EQ(result.site_detected.size(), sites.size());
}

TEST(FaultSimTest, SiteFlagsAreConsistentWithTheDetectionCount) {
  const Netlist nl = small_circuit();
  const std::vector<GateId> sites = stuck_at_sites(nl);
  Rng rng(2);
  StuckAtFaultSimOptions options;
  options.rounds = 1;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);
  std::size_t flagged = 0;
  for (std::uint8_t hit : result.site_detected) flagged += hit;
  // Every detection implies a flagged site; a site contributes at most two
  // detections per round.
  EXPECT_LE(flagged, result.detected);
  EXPECT_LE(result.detected, flagged * 2);
}

TEST(FaultSimTest, AnOutputStuckAtIsAlwaysDetectedInSomePolarity) {
  // Overriding a primary output gate forces at least one polarity to differ
  // from the golden value in every pattern word.
  const Netlist nl = small_circuit();
  std::vector<GateId> sites;
  for (GateId o : nl.outputs()) {
    if (nl.is_combinational(o)) sites.push_back(o);
  }
  ASSERT_FALSE(sites.empty());
  Rng rng(3);
  StuckAtFaultSimOptions options;
  options.rounds = 1;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(result.site_detected[i], 1) << "output site " << sites[i];
  }
}

TEST(FaultSimTest, NoSitesOrNoRoundsYieldEmptyResults) {
  const Netlist nl = small_circuit();
  Rng rng(4);
  StuckAtFaultSimOptions options;
  options.rounds = 0;
  const std::vector<GateId> sites = stuck_at_sites(nl);
  const StuckAtFaultSimResult no_rounds =
      simulate_stuck_at_faults(nl, sites, rng, options);
  EXPECT_EQ(no_rounds.faults, 0u);
  EXPECT_EQ(no_rounds.detected, 0u);

  options.rounds = 1;
  const StuckAtFaultSimResult no_sites =
      simulate_stuck_at_faults(nl, {}, rng, options);
  EXPECT_EQ(no_sites.faults, 0u);
  EXPECT_EQ(no_sites.detected, 0u);
  EXPECT_TRUE(no_sites.site_detected.empty());
}

}  // namespace
}  // namespace satdiag
