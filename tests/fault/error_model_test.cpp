#include "fault/error_model.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"

namespace satdiag {
namespace {

TEST(ErrorModelTest, ErrorSiteExtraction) {
  const DesignError gc = GateChangeError{7, GateType::kAnd, GateType::kOr};
  const DesignError sa = StuckAtError{3, true};
  EXPECT_EQ(error_site(gc), 7u);
  EXPECT_EQ(error_site(sa), 3u);
}

TEST(ErrorModelTest, DescribeIsHumanReadable) {
  const DesignError gc = GateChangeError{7, GateType::kAnd, GateType::kOr};
  EXPECT_NE(describe_error(gc).find("AND"), std::string::npos);
  EXPECT_NE(describe_error(gc).find("OR"), std::string::npos);
  const DesignError sa = StuckAtError{3, true};
  EXPECT_NE(describe_error(sa).find("stuck-at-1"), std::string::npos);
}

TEST(ErrorModelTest, ErrorSitesSortedUnique) {
  const ErrorList errors{
      GateChangeError{9, GateType::kAnd, GateType::kOr},
      GateChangeError{2, GateType::kOr, GateType::kNor},
      StuckAtError{9, false},
  };
  const auto sites = error_sites(errors);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], 2u);
  EXPECT_EQ(sites[1], 9u);
}

TEST(ErrorModelTest, ApplyGateChange) {
  const Netlist c17 = builtin_c17();
  const GateId g = c17.find("16");
  const ErrorList errors{GateChangeError{g, GateType::kNand, GateType::kNor}};
  const Netlist faulty = apply_errors(c17, errors);
  EXPECT_EQ(faulty.type(g), GateType::kNor);
  EXPECT_EQ(c17.type(g), GateType::kNand);  // golden untouched
  EXPECT_EQ(faulty.size(), c17.size());
}

TEST(ErrorModelTest, ApplyStuckAtThrows) {
  const Netlist c17 = builtin_c17();
  const ErrorList errors{StuckAtError{c17.find("16"), true}};
  EXPECT_THROW(apply_errors(c17, errors), NetlistError);
}

}  // namespace
}  // namespace satdiag
