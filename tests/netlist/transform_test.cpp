#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

// Property check: every original output computes the same function before
// and after the transform, on 256 random patterns.
void expect_equivalent(const Netlist& before, const TransformResult& after) {
  ASSERT_EQ(before.outputs().size(), after.netlist.outputs().size());
  Rng rng(99);
  for (int word = 0; word < 4; ++word) {
    ParallelSimulator sim_a(before);
    ParallelSimulator sim_b(after.netlist);
    for (std::size_t i = 0; i < before.inputs().size(); ++i) {
      const std::uint64_t w = rng.next_u64();
      sim_a.set_source(before.inputs()[i], w);
      sim_b.set_source(after.netlist.inputs()[i], w);
    }
    for (std::size_t i = 0; i < before.dffs().size(); ++i) {
      const std::uint64_t w = rng.next_u64();
      sim_a.set_source(before.dffs()[i], w);
      sim_b.set_source(after.netlist.dffs()[i], w);
    }
    sim_a.run();
    sim_b.run();
    for (std::size_t o = 0; o < before.outputs().size(); ++o) {
      ASSERT_EQ(sim_a.value(before.outputs()[o]),
                sim_b.value(after.netlist.outputs()[o]))
          << "output " << o;
    }
    // DFF next-state functions must match too.
    for (std::size_t i = 0; i < before.dffs().size(); ++i) {
      const GateId da = before.fanins(before.dffs()[i])[0];
      const GateId db = after.netlist.fanins(after.netlist.dffs()[i])[0];
      ASSERT_EQ(sim_a.value(da), sim_b.value(db));
    }
  }
}

TEST(ConstantFoldTest, FoldsControllingConstant) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId c0 = nl.add_const(false, "c0");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, c0});
  const GateId o = nl.add_gate(GateType::kNot, "o", {g});
  nl.add_output(o);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  expect_equivalent(nl, result);
  // AND(a, 0) = 0; NOT(0) = 1: output collapses to a constant.
  const GateId mapped = result.gate_map[o];
  EXPECT_EQ(result.netlist.type(mapped), GateType::kConst1);
}

TEST(ConstantFoldTest, DropsNonControllingConstant) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c1 = nl.add_const(true, "c1");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, b, c1});
  nl.add_output(g);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  expect_equivalent(nl, result);
  const GateId mapped = result.gate_map[g];
  EXPECT_EQ(result.netlist.type(mapped), GateType::kAnd);
  EXPECT_EQ(result.netlist.fanins(mapped).size(), 2u);
}

TEST(ConstantFoldTest, CollapsesBufChains) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b1 = nl.add_gate(GateType::kBuf, "b1", {a});
  const GateId b2 = nl.add_gate(GateType::kBuf, "b2", {b1});
  const GateId b3 = nl.add_gate(GateType::kBuf, "b3", {b2});
  nl.add_output(b3);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  expect_equivalent(nl, result);
  EXPECT_EQ(result.gate_map[b3], result.gate_map[a]);
  EXPECT_EQ(result.netlist.size(), 1u);  // just the input
}

TEST(ConstantFoldTest, CancelsDoubleNegation) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId n1 = nl.add_gate(GateType::kNot, "n1", {a});
  const GateId n2 = nl.add_gate(GateType::kNot, "n2", {n1});
  nl.add_output(n2);
  nl.add_output(n1);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  expect_equivalent(nl, result);
  EXPECT_EQ(result.gate_map[n2], result.gate_map[a]);
}

TEST(ConstantFoldTest, XorParityTracking) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId c1 = nl.add_const(true, "c1");
  const GateId c1b = nl.add_const(true, "c1b");
  const GateId g = nl.add_gate(GateType::kXor, "g", {a, c1, c1b});
  nl.add_output(g);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  expect_equivalent(nl, result);
  // XOR(a, 1, 1) == a.
  EXPECT_EQ(result.gate_map[g], result.gate_map[a]);
}

TEST(ConstantFoldTest, DropsDeadLogic) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId used = nl.add_gate(GateType::kNot, "used", {a});
  const GateId dead = nl.add_gate(GateType::kAnd, "dead", {a, used});
  (void)dead;
  nl.add_output(used);
  nl.finalize();
  const TransformResult result = constant_fold(nl);
  EXPECT_EQ(result.gate_map[dead], kNoGate);
  EXPECT_EQ(result.netlist.size(), 2u);
}

TEST(ConstantFoldTest, PreservesSequentialCircuit) {
  const Netlist s27 = builtin_s27();
  const TransformResult result = constant_fold(s27);
  expect_equivalent(s27, result);
  EXPECT_EQ(result.netlist.dffs().size(), s27.dffs().size());
}

TEST(ConstantFoldTest, RandomCircuitsStayEquivalent) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorParams params;
    params.num_inputs = 8;
    params.num_outputs = 4;
    params.num_dffs = 4;
    params.num_gates = 150;
    params.seed = seed;
    const Netlist nl = generate_circuit(params);
    const TransformResult result = constant_fold(nl);
    expect_equivalent(nl, result);
    EXPECT_LE(result.netlist.size(), nl.size());
  }
}

TEST(StrashTest, MergesCommutativeDuplicates) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1", {a, b});
  const GateId g2 = nl.add_gate(GateType::kAnd, "g2", {b, a});
  const GateId o = nl.add_gate(GateType::kXor, "o", {g1, g2});
  nl.add_output(o);
  nl.finalize();
  const TransformResult result = strash(nl);
  expect_equivalent(nl, result);
  EXPECT_EQ(result.gate_map[g1], result.gate_map[g2]);
}

TEST(StrashTest, CascadingMerges) {
  // Duplicate subtrees merge bottom-up.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId x1 = nl.add_gate(GateType::kOr, "x1", {a, b});
  const GateId x2 = nl.add_gate(GateType::kOr, "x2", {b, a});
  const GateId y1 = nl.add_gate(GateType::kNot, "y1", {x1});
  const GateId y2 = nl.add_gate(GateType::kNot, "y2", {x2});
  const GateId o = nl.add_gate(GateType::kAnd, "o", {y1, y2});
  nl.add_output(o);
  nl.finalize();
  const TransformResult result = strash(nl);
  expect_equivalent(nl, result);
  EXPECT_EQ(result.gate_map[y1], result.gate_map[y2]);
  // o = AND(y, y) stays (fanin dedup is not strash's job), but both fanins
  // are the same node now.
  const GateId mo = result.gate_map[o];
  EXPECT_EQ(result.netlist.fanins(mo)[0], result.netlist.fanins(mo)[1]);
}

TEST(StrashTest, SequentialRoundTrip) {
  const Netlist s27 = builtin_s27();
  const TransformResult result = strash(s27);
  expect_equivalent(s27, result);
}

TEST(StrashTest, RandomCircuitsStayEquivalent) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    GeneratorParams params;
    params.num_inputs = 6;
    params.num_outputs = 4;
    params.num_dffs = 3;
    params.num_gates = 120;
    params.locality = 0.95;  // dense local reuse: more merge opportunities
    params.seed = seed;
    const Netlist nl = generate_circuit(params);
    const TransformResult result = strash(nl);
    expect_equivalent(nl, result);
    EXPECT_LE(result.netlist.size(), nl.size());
  }
}

TEST(TransformTest, FoldThenStrashCompose) {
  const Netlist c17 = builtin_c17();
  const TransformResult folded = constant_fold(c17);
  const TransformResult hashed = strash(folded.netlist);
  ASSERT_EQ(hashed.netlist.outputs().size(), c17.outputs().size());
  // End-to-end equivalence against the original.
  Rng rng(7);
  ParallelSimulator sim_a(c17);
  ParallelSimulator sim_b(hashed.netlist);
  for (std::size_t i = 0; i < c17.inputs().size(); ++i) {
    const std::uint64_t w = rng.next_u64();
    sim_a.set_source(c17.inputs()[i], w);
    sim_b.set_source(hashed.netlist.inputs()[i], w);
  }
  sim_a.run();
  sim_b.run();
  for (std::size_t o = 0; o < c17.outputs().size(); ++o) {
    EXPECT_EQ(sim_a.value(c17.outputs()[o]),
              sim_b.value(hashed.netlist.outputs()[o]));
  }
}

}  // namespace
}  // namespace satdiag
