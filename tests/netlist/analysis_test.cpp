#include "netlist/analysis.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

// a, b -> g1 = AND(a,b); g1 -> g2 = NOT(g1), g1 -> g3 = BUF(g1);
// g4 = OR(g2, g3); output g4.  g1's effects reconverge at g4.
Netlist diamond() {
  Netlist nl("diamond");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1", {a, b});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  const GateId g3 = nl.add_gate(GateType::kBuf, "g3", {g1});
  const GateId g4 = nl.add_gate(GateType::kOr, "g4", {g2, g3});
  nl.add_output(g4);
  nl.finalize();
  return nl;
}

TEST(AnalysisTest, FaninCone) {
  const Netlist nl = diamond();
  const auto cone = fanin_cone(nl, {nl.find("g2")});
  EXPECT_TRUE(cone[nl.find("g2")]);
  EXPECT_TRUE(cone[nl.find("g1")]);
  EXPECT_TRUE(cone[nl.find("a")]);
  EXPECT_TRUE(cone[nl.find("b")]);
  EXPECT_FALSE(cone[nl.find("g3")]);
  EXPECT_FALSE(cone[nl.find("g4")]);
}

TEST(AnalysisTest, FanoutCone) {
  const Netlist nl = diamond();
  const auto cone = fanout_cone(nl, {nl.find("g1")});
  EXPECT_TRUE(cone[nl.find("g1")]);
  EXPECT_TRUE(cone[nl.find("g2")]);
  EXPECT_TRUE(cone[nl.find("g3")]);
  EXPECT_TRUE(cone[nl.find("g4")]);
  EXPECT_FALSE(cone[nl.find("a")]);
}

TEST(AnalysisTest, ObservationPointsAreOutputsAndDffData) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId ff = nl.add_dff("ff");
  const GateId g = nl.add_gate(GateType::kNot, "g", {a});
  const GateId h = nl.add_gate(GateType::kAnd, "h", {g, ff});
  nl.set_dff_input(ff, g);
  nl.add_output(h);
  nl.finalize();
  const auto points = observation_points(nl);
  // h (output) and g (DFF data input).
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(std::find(points.begin(), points.end(), g) != points.end());
  EXPECT_TRUE(std::find(points.begin(), points.end(), h) != points.end());
}

TEST(AnalysisTest, DominatorsInDiamond) {
  const Netlist nl = diamond();
  const auto idom = immediate_dominators(nl);
  // All of g1's paths to the output reconverge at g4.
  EXPECT_EQ(idom[nl.find("g1")], nl.find("g4"));
  // g2's and g3's only path goes through g4.
  EXPECT_EQ(idom[nl.find("g2")], nl.find("g4"));
  EXPECT_EQ(idom[nl.find("g3")], nl.find("g4"));
  // g4 is observed: only the virtual sink dominates it.
  EXPECT_EQ(idom[nl.find("g4")], kNoGate);
  // a's paths all pass g1 first.
  EXPECT_EQ(idom[nl.find("a")], nl.find("g1"));
}

TEST(AnalysisTest, DominatorChainWalksToTheTop) {
  const Netlist nl = diamond();
  const auto idom = immediate_dominators(nl);
  const auto chain = dominator_chain(nl, idom, nl.find("a"));
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], nl.find("g1"));
  EXPECT_EQ(chain[1], nl.find("g4"));
}

TEST(AnalysisTest, TwoOutputsBreakDominance) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  const GateId g3 = nl.add_gate(GateType::kBuf, "g3", {g1});
  nl.add_output(g2);
  nl.add_output(g3);
  nl.finalize();
  const auto idom = immediate_dominators(nl);
  // g1 reaches two disjoint outputs: no single gate dominates it.
  EXPECT_EQ(idom[g1], kNoGate);
  EXPECT_EQ(idom[g2], kNoGate);
  EXPECT_EQ(idom[g3], kNoGate);
  EXPECT_EQ(idom[a], g1);
}

TEST(AnalysisTest, UndirectedDistances) {
  const Netlist nl = diamond();
  const auto dist = undirected_distances(nl, {nl.find("g1")});
  EXPECT_EQ(dist[nl.find("g1")], 0u);
  EXPECT_EQ(dist[nl.find("a")], 1u);
  EXPECT_EQ(dist[nl.find("g2")], 1u);
  EXPECT_EQ(dist[nl.find("g4")], 2u);
}

TEST(AnalysisTest, UndirectedDistancesMultipleSources) {
  const Netlist nl = diamond();
  const auto dist = undirected_distances(nl, {nl.find("a"), nl.find("g4")});
  EXPECT_EQ(dist[nl.find("a")], 0u);
  EXPECT_EQ(dist[nl.find("g4")], 0u);
  EXPECT_EQ(dist[nl.find("g1")], 1u);
  EXPECT_EQ(dist[nl.find("g2")], 1u);  // adjacent to g4
}

TEST(AnalysisTest, UnreachableGateGetsMax) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");  // completely disconnected
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();
  const auto dist = undirected_distances(nl, {a});
  EXPECT_EQ(dist[b], std::numeric_limits<std::uint32_t>::max());
}

}  // namespace
}  // namespace satdiag
