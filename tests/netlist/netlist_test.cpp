#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

Netlist small_chain() {
  Netlist nl("chain");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1", {a, b});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  nl.add_output(g2);
  nl.finalize();
  return nl;
}

TEST(NetlistTest, BasicConstruction) {
  const Netlist nl = small_chain();
  EXPECT_EQ(nl.size(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.num_sources(), 2u);
  EXPECT_EQ(nl.num_combinational_gates(), 2u);
}

TEST(NetlistTest, FindByName) {
  const Netlist nl = small_chain();
  EXPECT_NE(nl.find("g1"), kNoGate);
  EXPECT_EQ(nl.gate_name(nl.find("g1")), "g1");
  EXPECT_EQ(nl.find("nope"), kNoGate);
}

TEST(NetlistTest, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), NetlistError);
}

TEST(NetlistTest, BadArityThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kNot, "n", {a, a}), NetlistError);
  EXPECT_THROW(nl.add_gate(GateType::kAnd, "z", {}), NetlistError);
}

TEST(NetlistTest, FaninOutOfRangeThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kBuf, "b", {42}), NetlistError);
}

TEST(NetlistTest, TopoOrderRespectsDependencies) {
  const Netlist nl = small_chain();
  const auto& topo = nl.topo_order();
  ASSERT_EQ(topo.size(), nl.size());
  std::vector<std::size_t> position(nl.size());
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (GateId g = 0; g < nl.size(); ++g) {
    for (GateId f : nl.fanins(g)) {
      if (nl.type(g) == GateType::kDff) continue;
      EXPECT_LT(position[f], position[g]);
    }
  }
}

TEST(NetlistTest, LevelsAreOnePlusMaxFanin) {
  const Netlist nl = small_chain();
  EXPECT_EQ(nl.levels()[nl.find("a")], 0u);
  EXPECT_EQ(nl.levels()[nl.find("g1")], 1u);
  EXPECT_EQ(nl.levels()[nl.find("g2")], 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(NetlistTest, FanoutsAreInverseOfFanins) {
  const Netlist nl = small_chain();
  const GateId a = nl.find("a");
  const GateId g1 = nl.find("g1");
  const auto fanouts = nl.fanouts(a);
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_EQ(fanouts[0], g1);
}

TEST(NetlistTest, DffBreaksCombinationalCycle) {
  Netlist nl("loop");
  const GateId in = nl.add_input("in");
  const GateId ff = nl.add_dff("ff");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {in, ff});
  nl.set_dff_input(ff, g);  // g -> ff -> g is a legal sequential loop
  nl.add_output(g);
  EXPECT_NO_THROW(nl.finalize());
  EXPECT_EQ(nl.levels()[ff], 0u);
}

TEST(NetlistTest, DffWithoutDataInputThrowsOnFinalize) {
  Netlist nl;
  nl.add_input("a");
  nl.add_dff("ff");
  EXPECT_THROW(nl.finalize(), NetlistError);
}

TEST(NetlistTest, SubstituteTypePreservesTopology) {
  Netlist nl = small_chain();
  const GateId g1 = nl.find("g1");
  nl.substitute_type(g1, GateType::kNor);
  EXPECT_EQ(nl.type(g1), GateType::kNor);
  EXPECT_EQ(nl.topo_order().size(), nl.size());
}

TEST(NetlistTest, SubstituteTypeChecksArity) {
  Netlist nl = small_chain();
  EXPECT_THROW(nl.substitute_type(nl.find("g1"), GateType::kNot),
               NetlistError);
  EXPECT_THROW(nl.substitute_type(nl.find("a"), GateType::kAnd), NetlistError);
}

TEST(NetlistTest, MutationAfterFinalizeThrows) {
  Netlist nl = small_chain();
  EXPECT_THROW(nl.add_input("new"), NetlistError);
  EXPECT_THROW(nl.add_output(0), NetlistError);
}

TEST(NetlistTest, CloneIsIndependent) {
  Netlist nl = small_chain();
  Netlist copy = nl.clone();
  copy.substitute_type(copy.find("g1"), GateType::kOr);
  EXPECT_EQ(nl.type(nl.find("g1")), GateType::kAnd);
  EXPECT_EQ(copy.type(copy.find("g1")), GateType::kOr);
}

TEST(NetlistTest, ConstGates) {
  Netlist nl;
  const GateId c0 = nl.add_const(false, "zero");
  const GateId c1 = nl.add_const(true, "one");
  const GateId g = nl.add_gate(GateType::kOr, "g", {c0, c1});
  nl.add_output(g);
  nl.finalize();
  EXPECT_EQ(nl.type(c0), GateType::kConst0);
  EXPECT_EQ(nl.type(c1), GateType::kConst1);
  EXPECT_TRUE(nl.is_source(c0));
}

}  // namespace
}  // namespace satdiag
