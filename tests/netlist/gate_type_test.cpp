#include "netlist/gate_type.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

TEST(GateTypeTest, NameRoundTrip) {
  for (GateType t : {GateType::kInput, GateType::kDff, GateType::kConst0,
                     GateType::kConst1, GateType::kBuf, GateType::kNot,
                     GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    const auto back = gate_type_from_name(gate_type_name(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
}

TEST(GateTypeTest, NameParsingIsCaseInsensitive) {
  EXPECT_EQ(gate_type_from_name("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_name("Dff"), GateType::kDff);
  EXPECT_EQ(gate_type_from_name("BUFF"), GateType::kBuf);  // ISCAS spelling
  EXPECT_FALSE(gate_type_from_name("MUX").has_value());
}

TEST(GateTypeTest, SourceClassification) {
  EXPECT_TRUE(is_source_type(GateType::kInput));
  EXPECT_TRUE(is_source_type(GateType::kDff));
  EXPECT_TRUE(is_source_type(GateType::kConst0));
  EXPECT_FALSE(is_source_type(GateType::kAnd));
  EXPECT_FALSE(is_source_type(GateType::kNot));
}

TEST(GateTypeTest, ControllingValues) {
  EXPECT_EQ(controlling_value(GateType::kAnd), false);
  EXPECT_EQ(controlling_value(GateType::kNand), false);
  EXPECT_EQ(controlling_value(GateType::kOr), true);
  EXPECT_EQ(controlling_value(GateType::kNor), true);
  EXPECT_FALSE(controlling_value(GateType::kXor).has_value());
  EXPECT_FALSE(controlling_value(GateType::kNot).has_value());
  EXPECT_FALSE(controlling_value(GateType::kBuf).has_value());
}

TEST(GateTypeTest, ArityRules) {
  EXPECT_TRUE(arity_ok(GateType::kInput, 0));
  EXPECT_FALSE(arity_ok(GateType::kInput, 1));
  EXPECT_TRUE(arity_ok(GateType::kNot, 1));
  EXPECT_FALSE(arity_ok(GateType::kNot, 2));
  EXPECT_TRUE(arity_ok(GateType::kAnd, 1));
  EXPECT_TRUE(arity_ok(GateType::kAnd, 5));
  EXPECT_FALSE(arity_ok(GateType::kAnd, 0));
}

struct TruthCase {
  GateType type;
  std::vector<bool> inputs;
  bool expected;
};

class GateEvalTest : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateEvalTest, TruthTable) {
  const TruthCase& c = GetParam();
  EXPECT_EQ(eval_gate(c.type, c.inputs), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllGateFunctions, GateEvalTest,
    ::testing::Values(
        TruthCase{GateType::kAnd, {true, true}, true},
        TruthCase{GateType::kAnd, {true, false}, false},
        TruthCase{GateType::kNand, {true, true}, false},
        TruthCase{GateType::kNand, {false, true}, true},
        TruthCase{GateType::kOr, {false, false}, false},
        TruthCase{GateType::kOr, {false, true}, true},
        TruthCase{GateType::kNor, {false, false}, true},
        TruthCase{GateType::kNor, {true, false}, false},
        TruthCase{GateType::kXor, {true, true}, false},
        TruthCase{GateType::kXor, {true, false}, true},
        TruthCase{GateType::kXor, {true, true, true}, true},
        TruthCase{GateType::kXnor, {true, false}, false},
        TruthCase{GateType::kXnor, {true, true, true}, false},
        TruthCase{GateType::kBuf, {true}, true},
        TruthCase{GateType::kBuf, {false}, false},
        TruthCase{GateType::kNot, {true}, false},
        TruthCase{GateType::kNot, {false}, true},
        TruthCase{GateType::kAnd, {true, true, true, true}, true},
        TruthCase{GateType::kAnd, {true, true, false, true}, false},
        TruthCase{GateType::kNor, {false, false, false}, true}));

TEST(GateTypeTest, WordEvalMatchesBitEval) {
  // Each of the 4 bit positions encodes a different input combination.
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  const std::uint64_t ins[2] = {a, b};
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor}) {
    const std::uint64_t out = eval_gate_words(t, ins, 2);
    for (int bit = 0; bit < 4; ++bit) {
      const bool expect =
          eval_gate(t, {((a >> bit) & 1) != 0, ((b >> bit) & 1) != 0});
      EXPECT_EQ(((out >> bit) & 1) != 0, expect)
          << gate_type_name(t) << " bit " << bit;
    }
  }
}

TEST(GateTypeTest, SubstitutableTypesExcludeWrongArity) {
  const auto unary = substitutable_types(1);
  EXPECT_NE(std::find(unary.begin(), unary.end(), GateType::kNot), unary.end());
  EXPECT_NE(std::find(unary.begin(), unary.end(), GateType::kAnd), unary.end());
  const auto binary = substitutable_types(2);
  EXPECT_EQ(std::find(binary.begin(), binary.end(), GateType::kNot),
            binary.end());
  EXPECT_EQ(binary.size(), 6u);  // AND NAND OR NOR XOR XNOR
}

}  // namespace
}  // namespace satdiag
