#include "netlist/scan.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"

namespace satdiag {
namespace {

TEST(ScanTest, S27ScanShape) {
  const Netlist s27 = builtin_s27();
  const ScanModel scan = make_full_scan(s27);
  // Same gate count, same ids.
  EXPECT_EQ(scan.comb.size(), s27.size());
  // 4 real + 3 pseudo inputs (DFFs).
  EXPECT_EQ(scan.comb.inputs().size(), 7u);
  EXPECT_EQ(scan.num_real_inputs, 4u);
  // 1 real + 3 pseudo outputs.
  EXPECT_EQ(scan.comb.outputs().size(), 4u);
  EXPECT_EQ(scan.num_real_outputs, 1u);
  EXPECT_EQ(scan.scan_dffs.size(), 3u);
  EXPECT_TRUE(scan.comb.dffs().empty());
}

TEST(ScanTest, GateIdsPreserved) {
  const Netlist s27 = builtin_s27();
  const ScanModel scan = make_full_scan(s27);
  for (GateId g = 0; g < s27.size(); ++g) {
    EXPECT_EQ(scan.comb.gate_name(g), s27.gate_name(g));
    if (s27.is_combinational(g)) {
      EXPECT_EQ(scan.comb.type(g), s27.type(g));
      ASSERT_EQ(scan.comb.fanins(g).size(), s27.fanins(g).size());
      for (std::size_t i = 0; i < s27.fanins(g).size(); ++i) {
        EXPECT_EQ(scan.comb.fanins(g)[i], s27.fanins(g)[i]);
      }
    }
  }
}

TEST(ScanTest, DffsBecomeInputs) {
  const Netlist s27 = builtin_s27();
  const ScanModel scan = make_full_scan(s27);
  for (GateId d : s27.dffs()) {
    EXPECT_EQ(scan.comb.type(d), GateType::kInput);
  }
}

TEST(ScanTest, PseudoOutputsObserveDffData) {
  const Netlist s27 = builtin_s27();
  const ScanModel scan = make_full_scan(s27);
  for (std::size_t i = 0; i < scan.scan_dffs.size(); ++i) {
    const GateId dff = scan.scan_dffs[i];
    const GateId pseudo_out =
        scan.comb.outputs()[scan.num_real_outputs + i];
    EXPECT_EQ(pseudo_out, s27.fanins(dff)[0]);
  }
}

TEST(ScanTest, CombinationalCircuitPassesThrough) {
  const Netlist c17 = builtin_c17();
  const ScanModel scan = make_full_scan(c17);
  EXPECT_EQ(scan.comb.size(), c17.size());
  EXPECT_EQ(scan.comb.inputs().size(), c17.inputs().size());
  EXPECT_EQ(scan.comb.outputs().size(), c17.outputs().size());
  EXPECT_TRUE(scan.scan_dffs.empty());
}

}  // namespace
}  // namespace satdiag
