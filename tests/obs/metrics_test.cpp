// Unit tests for the MetricsRegistry substrate: registration semantics
// (same name -> same object, kind collisions throw), sharded-counter
// aggregation under concurrent writers (exact totals — this suite runs
// under the ThreadSanitizer CI job), histogram bucketing, and the JSON
// snapshot shape.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace satdiag::obs {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.c");
  Counter& b = reg.counter("test.c");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("test.g");
  Gauge& g2 = reg.gauge("test.g");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistryTest, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("test.c");
  EXPECT_THROW(reg.gauge("test.c"), std::logic_error);
  constexpr std::uint64_t bounds[] = {10};
  EXPECT_THROW(reg.histogram("test.c", bounds), std::logic_error);
}

TEST(MetricsRegistryTest, CounterAggregatesExactlyAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(MetricsRegistryTest, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  constexpr std::uint64_t bounds[] = {10, 100, 1000};
  Histogram& h = reg.histogram("test.hist", bounds);
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (inclusive upper bound)
  h.observe(11);    // <= 100
  h.observe(1000);  // <= 1000
  h.observe(5000);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5u + 10 + 11 + 1000 + 5000);
}

TEST(MetricsRegistryTest, HistogramAggregatesAcrossThreads) {
  MetricsRegistry reg;
  constexpr std::uint64_t bounds[] = {100};
  Histogram& h = reg.histogram("test.hist.mt", bounds);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kObsPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kObsPerThread; ++i) h.observe(i % 200);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kObsPerThread);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 2u);
  // i % 200: values 0..100 land in the first bucket (inclusive), 101..199
  // overflow; each thread cycles the range exactly 100 times.
  EXPECT_EQ(counts[0], kThreads * kObsPerThread / 200 * 101);
  EXPECT_EQ(counts[0] + counts[1], h.count());
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.last").add(7);
  reg.gauge("a.first").set(-3);
  constexpr std::uint64_t bounds[] = {1};
  reg.histogram("m.mid", bounds).observe(2);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[0].gauge, -3);
  EXPECT_EQ(samples[1].name, "m.mid");
  EXPECT_EQ(samples[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(samples[1].overflow, 1u);
  EXPECT_EQ(samples[2].name, "z.last");
  EXPECT_EQ(samples[2].counter, 7u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsNamesRegistered) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.reset");
  c.add(5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  // Same object after reset: the registration survives.
  EXPECT_EQ(&reg.counter("test.reset"), &c);
}

TEST(MetricsRegistryTest, WriteJsonShape) {
  MetricsRegistry reg;
  reg.counter("c.n").add(3);
  reg.gauge("g.n").set(-1);
  constexpr std::uint64_t bounds[] = {10};
  Histogram& h = reg.histogram("h.n", bounds);
  h.observe(4);
  h.observe(99);
  std::ostringstream os;
  reg.write_json(os, /*indent=*/0);
  EXPECT_EQ(os.str(),
            R"({"c.n":3,"g.n":-1,"h.n":{"buckets":[{"le":10,"count":1},)"
            R"({"le":"inf","count":1}],"count":2,"sum":103}})");
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace satdiag::obs
