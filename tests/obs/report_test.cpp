// Unit tests for the run-report layer: the stats-absorption glue
// (add_solver_stats / refresh_process_metrics publishing into the global
// registry under the stable dotted names) and the report JSON schema shape
// the CLI emits for --report-json (the byte-level golden lives in
// tests/cli/cli_report_test.sh; this covers the schema contract itself).
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace satdiag::obs {
namespace {

TEST(ReportGlueTest, AddSolverStatsAccumulatesSatCounters) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t before = reg.counter("sat.conflicts").value();
  sat::Solver::Stats stats;
  stats.conflicts = 11;
  stats.decisions = 22;
  add_solver_stats(stats);
  EXPECT_EQ(reg.counter("sat.conflicts").value(), before + 11);
  add_solver_stats(stats);
  EXPECT_EQ(reg.counter("sat.conflicts").value(), before + 22);
}

TEST(ReportGlueTest, RefreshRegistersTheStandardCatalogue) {
  refresh_process_metrics();
  const auto samples = MetricsRegistry::global().snapshot();
  const auto has = [&](const std::string& name) {
    for (const auto& s : samples) {
      if (s.name == name) return true;
    }
    return false;
  };
  // One stable key per subsystem even when that path never ran.
  EXPECT_TRUE(has("sat.conflicts"));
  EXPECT_TRUE(has("sat.tier_core"));
  EXPECT_TRUE(has("cache.hits"));
  EXPECT_TRUE(has("cnf.copies_stamped"));
  EXPECT_TRUE(has("exec.shards_run"));
  EXPECT_TRUE(has("cache.builds"));
}

TEST(RunReportTest, JsonHasTheSchemaEnvelope) {
  set_ring_capacity(1 << 10);
  reset_tracing();
  set_tracing_enabled(true);
  {
    Span load("phase.load");
  }
  { Span solve("bsat.bound", "bound", 1); }
  set_tracing_enabled(false);

  RunReport report;
  report.command = "diagnose";
  report.config["approach"] = "bsat";
  report.config["k"] = "2";
  report.wall_seconds = 1.25;
  report.result_json = R"({"solutions":3})";
  std::ostringstream os;
  report.write_json(os, /*indent=*/0);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"schema\":\"satdiag.report\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"diagnose\""), std::string::npos);
  EXPECT_NE(json.find("\"approach\":\"bsat\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":1.25"), std::string::npos);
  // phase.load lands in "phases"; bsat.bound only in "spans".
  EXPECT_NE(json.find("\"phases\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase.load\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bsat.bound\""), std::string::npos);
  EXPECT_LT(json.find("\"phases\":["), json.find("\"name\":\"phase.load\""));
  const std::size_t spans_at = json.find("\"spans\":[");
  ASSERT_NE(spans_at, std::string::npos);
  EXPECT_GT(json.find("\"name\":\"bsat.bound\""), spans_at);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"result\":{\"solutions\":3}"), std::string::npos);

  reset_tracing();
}

TEST(RunReportTest, EmptyResultSerializesAsEmptyObject) {
  RunReport report;
  report.command = "stats";
  std::ostringstream os;
  report.write_json(os, /*indent=*/0);
  EXPECT_NE(os.str().find("\"result\":{}"), std::string::npos);
}

TEST(RunReportTest, PhasesOnlyContainPhasePrefixedSpans) {
  set_ring_capacity(1 << 10);
  reset_tracing();
  set_tracing_enabled(true);
  { Span s("cache.hit"); }
  set_tracing_enabled(false);

  RunReport report;
  report.command = "diagnose";
  std::ostringstream os;
  report.write_json(os, /*indent=*/0);
  const std::string json = os.str();
  const std::size_t phases_at = json.find("\"phases\":[");
  const std::size_t spans_at = json.find("\"spans\":[");
  ASSERT_NE(phases_at, std::string::npos);
  ASSERT_NE(spans_at, std::string::npos);
  // "phases" must be the empty array: cache.hit is not "phase."-prefixed.
  EXPECT_EQ(json.substr(phases_at, 12), "\"phases\":[],");
  EXPECT_NE(json.find("\"name\":\"cache.hit\""), std::string::npos);

  reset_tracing();
}

}  // namespace
}  // namespace satdiag::obs
