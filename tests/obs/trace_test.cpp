// Unit tests for the structured-tracing layer: disabled-by-default spans,
// ring overflow with drop-oldest (enclosing spans survive because events
// push at span end), deferred/early-close span lifecycles, reset semantics,
// Chrome trace_event JSON well-formedness, and the phase aggregator.
//
// Each test owns the process-global trace state (reset_tracing +
// set_tracing_enabled); tests in this file must not run concurrently with
// each other, which gtest guarantees within one binary.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace satdiag::obs {
namespace {

/// RAII guard: every test starts from a clean, enabled trace state and
/// leaves tracing disabled with default capacity for the next suite.
struct TraceFixture {
  explicit TraceFixture(std::size_t capacity = 1 << 10) {
    set_ring_capacity(capacity);
    reset_tracing();
    set_tracing_enabled(true);
  }
  ~TraceFixture() {
    set_tracing_enabled(false);
    set_ring_capacity(1 << 16);
    reset_tracing();
  }
};

TEST(TraceTest, DisabledSpansRecordNothing) {
  TraceFixture fixture;
  set_tracing_enabled(false);
  { Span s("never"); }
  EXPECT_EQ(num_events(), 0u);
}

TEST(TraceTest, SpanRecordsNameArgsAndDuration) {
  TraceFixture fixture;
  {
    Span s("unit.work", "shard", 3, "lane", 7);
  }
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit.work");
  EXPECT_STREQ(events[0].arg1_name, "shard");
  EXPECT_EQ(events[0].arg1, 3);
  EXPECT_STREQ(events[0].arg2_name, "lane");
  EXPECT_EQ(events[0].arg2, 7);
  EXPECT_GT(events[0].dur_ns, 0u);
}

TEST(TraceTest, EventsPushAtSpanEndSoEnclosingSpanIsLast) {
  TraceFixture fixture;
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  TraceFixture fixture(/*capacity=*/4);
  {
    Span outer("outer");
    for (int i = 0; i < 10; ++i) {
      Span inner("inner");
    }
  }
  // 11 pushes into a 4-slot ring: 7 dropped, 4 retained; the enclosing
  // span pushed last so it must be among the survivors.
  EXPECT_EQ(dropped_events(), 7u);
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events.back().name, "outer");
}

TEST(TraceTest, DeferredSpanOnlyRecordsAfterOpen) {
  TraceFixture fixture;
  {
    Span deferred(Span::kDeferred);
  }
  EXPECT_EQ(num_events(), 0u);
  {
    Span deferred(Span::kDeferred);
    deferred.open("late");
  }
  const auto events = collect_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "late");
}

TEST(TraceTest, CloseIsIdempotentAndEndsTheSpanEarly) {
  TraceFixture fixture;
  {
    Span s("early");
    s.close();
    s.close();  // second close is a no-op
  }             // destructor must not push a second event
  EXPECT_EQ(num_events(), 1u);
}

TEST(TraceTest, ResetDropsEventsAndZeroesDropCounter) {
  TraceFixture fixture(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    Span s("spin");
  }
  EXPECT_GT(dropped_events(), 0u);
  reset_tracing();
  EXPECT_EQ(num_events(), 0u);
  EXPECT_EQ(dropped_events(), 0u);
  // The recording thread re-acquires a ring in the new generation.
  { Span s("after.reset"); }
  EXPECT_EQ(num_events(), 1u);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceFixture fixture;
  {
    Span s("json.span", "bound", 2);
  }
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string json = os.str();
  // One complete event with the fixed envelope fields.
  EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"satdiag\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bound\":2}"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline after the array
  // Balanced braces — cheap well-formedness check without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceTest, AggregatePhasesSumsPerName) {
  TraceFixture fixture;
  for (int i = 0; i < 3; ++i) {
    Span s("phase.a");
  }
  { Span s("phase.b"); }
  const auto phases = aggregate_phases();
  ASSERT_EQ(phases.size(), 2u);  // name-sorted
  EXPECT_EQ(phases[0].name, "phase.a");
  EXPECT_EQ(phases[0].count, 3u);
  EXPECT_GT(phases[0].seconds, 0.0);
  EXPECT_EQ(phases[1].name, "phase.b");
  EXPECT_EQ(phases[1].count, 1u);
}

}  // namespace
}  // namespace satdiag::obs
