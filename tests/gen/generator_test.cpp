#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "gen/profiles.hpp"
#include "netlist/analysis.hpp"

namespace satdiag {
namespace {

GeneratorParams small_params(std::uint64_t seed) {
  GeneratorParams p;
  p.name = "t";
  p.num_inputs = 6;
  p.num_outputs = 3;
  p.num_dffs = 4;
  p.num_gates = 120;
  p.seed = seed;
  return p;
}

TEST(GeneratorTest, ProducesRequestedCounts) {
  const Netlist nl = generate_circuit(small_params(1));
  EXPECT_EQ(nl.inputs().size(), 6u);
  EXPECT_EQ(nl.dffs().size(), 4u);
  EXPECT_EQ(nl.num_combinational_gates(), 120u);
  EXPECT_GE(nl.outputs().size(), 3u);  // extra dangling gates become POs
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const Netlist a = generate_circuit(small_params(7));
  const Netlist b = generate_circuit(small_params(7));
  ASSERT_EQ(a.size(), b.size());
  for (GateId g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a.type(g), b.type(g));
    ASSERT_EQ(a.fanins(g).size(), b.fanins(g).size());
    for (std::size_t i = 0; i < a.fanins(g).size(); ++i) {
      EXPECT_EQ(a.fanins(g)[i], b.fanins(g)[i]);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Netlist a = generate_circuit(small_params(1));
  const Netlist b = generate_circuit(small_params(2));
  bool differs = a.size() != b.size();
  for (GateId g = 0; !differs && g < a.size(); ++g) {
    differs = a.type(g) != b.type(g);
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, EveryGateIsObservable) {
  const Netlist nl = generate_circuit(small_params(3));
  // Walk backwards from all observation points; every combinational gate
  // must be in some observed cone.
  const auto cone = fanin_cone(nl, observation_points(nl));
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) {
      EXPECT_TRUE(cone[g]) << "gate " << nl.gate_name(g) << " is dangling";
    }
  }
}

TEST(GeneratorTest, FinalizesAcyclic) {
  // finalize() inside generate_circuit throws on cycles; a spread of seeds
  // exercises the construction paths.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_NO_THROW(generate_circuit(small_params(seed))) << seed;
  }
}

TEST(GeneratorTest, RejectsDegenerateParams) {
  GeneratorParams p = small_params(1);
  p.num_inputs = 0;
  EXPECT_THROW(generate_circuit(p), NetlistError);
  p = small_params(1);
  p.num_outputs = 0;
  EXPECT_THROW(generate_circuit(p), NetlistError);
}

TEST(GeneratorTest, TinyCircuitStillValid) {
  GeneratorParams p;
  p.num_inputs = 1;
  p.num_outputs = 1;
  p.num_gates = 1;
  EXPECT_NO_THROW(generate_circuit(p));
}

class ProfileTest : public ::testing::TestWithParam<CircuitProfile> {};

TEST_P(ProfileTest, QuarterScaleInstantiation) {
  const CircuitProfile& profile = GetParam();
  const Netlist nl = make_profile_circuit(profile, 0.25, 1);
  EXPECT_EQ(nl.inputs().size(), profile.inputs);
  EXPECT_GE(nl.outputs().size(), profile.outputs);
  EXPECT_NEAR(static_cast<double>(nl.num_combinational_gates()),
              static_cast<double>(profile.gates) * 0.25,
              static_cast<double>(profile.gates) * 0.05 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileTest, ::testing::ValuesIn(circuit_profiles()),
    [](const ::testing::TestParamInfo<CircuitProfile>& info) {
      return info.param.name;
    });

TEST(ProfileTest, FindProfile) {
  EXPECT_TRUE(find_profile("s1423_like").has_value());
  EXPECT_TRUE(find_profile("s38417_like").has_value());
  EXPECT_FALSE(find_profile("c17").has_value());
}

TEST(ProfileTest, PaperCircuitsPresent) {
  // The three circuits of Tables 2/3.
  for (const char* name : {"s1423_like", "s6669_like", "s38417_like"}) {
    const auto p = find_profile(name);
    ASSERT_TRUE(p.has_value()) << name;
  }
  EXPECT_EQ(find_profile("s1423_like")->gates, 657u);
  EXPECT_EQ(find_profile("s38417_like")->dffs, 1636u);
}

}  // namespace
}  // namespace satdiag
