#include "common/diff_harness.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <span>
#include <sstream>

#include "diag/bsim.hpp"
#include "diag/effect.hpp"
#include "diag/xlist.hpp"
#include "exec/thread_pool.hpp"
#include "gen/generator.hpp"
#include "sim/sim3.hpp"
#include "util/rng.hpp"

namespace satdiag::difftest {
namespace {

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

std::string format_mask_mismatch(const char* what, std::size_t index,
                                 std::uint64_t got, std::uint64_t want) {
  std::ostringstream out;
  out << what << " mismatch at candidate " << index << ": batched=0x"
      << std::hex << got << " scalar=0x" << want;
  return out.str();
}

}  // namespace

std::string DiffConfig::describe() const {
  std::ostringstream out;
  out << "(seed=" << seed << ", gates=" << gates
      << ", candidates=" << candidates << ", tests=" << tests << ")";
  return out.str();
}

std::string DiffConfig::repro_env() const {
  std::ostringstream out;
  out << "SATDIAG_DIFF_SEED=" << seed << " SATDIAG_DIFF_GATES=" << gates
      << " SATDIAG_DIFF_CANDS=" << candidates
      << " SATDIAG_DIFF_TESTS=" << tests;
  return out.str();
}

DiffInstance make_instance(const DiffConfig& config) {
  GeneratorParams params;
  params.name = "diff";
  params.num_gates = std::max<std::size_t>(config.gates, 8);
  params.num_inputs = std::max<std::size_t>(6, params.num_gates / 24);
  params.num_outputs = std::max<std::size_t>(3, params.num_gates / 48);
  params.seed = config.seed;

  DiffInstance inst;
  inst.nl = generate_circuit(params);
  Rng rng(config.seed * 0x2545f4914f6cdd1dULL + 17);

  const std::size_t num_tests = std::clamp<std::size_t>(config.tests, 1, 64);
  for (std::size_t t = 0; t < num_tests; ++t) {
    Test test;
    test.input_values.reserve(inst.nl.inputs().size());
    for (std::size_t i = 0; i < inst.nl.inputs().size(); ++i) {
      test.input_values.push_back(rng.next_bool());
    }
    test.output_index = rng.next_below(inst.nl.outputs().size());
    test.correct_value = rng.next_bool();
    inst.tests.push_back(std::move(test));
  }

  for (GateId g = 0; g < inst.nl.size(); ++g) {
    if (inst.nl.is_combinational(g)) inst.pool.push_back(g);
  }
  const std::size_t count =
      std::min(std::max<std::size_t>(config.candidates, 1), inst.pool.size());
  std::vector<GateId> shuffled = inst.pool;
  rng.shuffle(shuffled);
  inst.singles.assign(shuffled.begin(),
                      shuffled.begin() + static_cast<std::ptrdiff_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<GateId> tuple;
    const std::size_t size = 1 + rng.next_below(3);
    for (std::size_t j = 0; j < size; ++j) {
      tuple.push_back(rng.pick(inst.pool));
    }
    inst.tuples.push_back(std::move(tuple));
  }
  return inst;
}

std::vector<std::uint64_t> scalar_reach_masks(
    const Netlist& nl, const TestSet& tests,
    const std::vector<std::vector<GateId>>& candidates, bool use_run_full) {
  std::vector<std::uint64_t> masks(candidates.size(), 0);
  if (use_run_full) {
    // Fresh simulator and reference full-resweep per candidate.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      ThreeValuedSimulator sim(nl);
      for (std::size_t b = 0; b < tests.size(); ++b) {
        sim.set_input_vector(b, tests[b].input_values);
      }
      for (GateId g : candidates[i]) sim.inject_x(g);
      sim.run_full();
      for (std::size_t b = 0; b < tests.size(); ++b) {
        if (sim.value(test_output_gate(nl, tests[b])).is_x(b)) {
          masks[i] |= 1ULL << b;
        }
      }
    }
    return masks;
  }
  // The exact per-candidate incremental loop the batched mode replaces:
  // one primed simulator, tests in lanes 0..|tests|, clear/inject/run.
  ThreeValuedSimulator sim(nl);
  for (std::size_t b = 0; b < tests.size(); ++b) {
    sim.set_input_vector(b, tests[b].input_values);
  }
  sim.run();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    sim.clear_overrides();
    for (GateId g : candidates[i]) sim.inject_x(g);
    sim.run();
    for (std::size_t b = 0; b < tests.size(); ++b) {
      if (sim.value(test_output_gate(nl, tests[b])).is_x(b)) {
        masks[i] |= 1ULL << b;
      }
    }
  }
  return masks;
}

namespace {

std::vector<std::vector<GateId>> as_tuples(const std::vector<GateId>& singles) {
  std::vector<std::vector<GateId>> tuples;
  tuples.reserve(singles.size());
  for (GateId g : singles) tuples.push_back({g});
  return tuples;
}

std::vector<std::uint64_t> batched_masks_singles(const Netlist& nl,
                                                 const TestSet& tests,
                                                 const std::vector<GateId>&
                                                     singles) {
  Sim3XBatch batch(nl, tests);
  std::vector<std::uint64_t> masks(singles.size(), ~0ULL);
  const std::span<const GateId> all(singles);
  for (std::size_t begin = 0; begin < singles.size();
       begin += batch.capacity()) {
    const std::size_t n = std::min(batch.capacity(), singles.size() - begin);
    batch.run_singles(all.subspan(begin, n), &masks[begin]);
  }
  return masks;
}

std::vector<std::uint64_t> batched_masks_tuples(
    const Netlist& nl, const TestSet& tests,
    const std::vector<std::vector<GateId>>& tuples) {
  Sim3XBatch batch(nl, tests);
  std::vector<std::uint64_t> masks(tuples.size(), ~0ULL);
  const std::span<const std::vector<GateId>> all(tuples);
  for (std::size_t begin = 0; begin < tuples.size();
       begin += batch.capacity()) {
    const std::size_t n = std::min(batch.capacity(), tuples.size() - begin);
    batch.run_tuples(all.subspan(begin, n), &masks[begin]);
  }
  return masks;
}

}  // namespace

std::string check_batch_singles_vs_scalar(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const auto batched = batched_masks_singles(inst.nl, inst.tests, inst.singles);
  const auto scalar = scalar_reach_masks(inst.nl, inst.tests,
                                         as_tuples(inst.singles),
                                         /*use_run_full=*/false);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (batched[i] != scalar[i]) {
      return format_mask_mismatch("singles", i, batched[i], scalar[i]);
    }
  }
  return "";
}

std::string check_batch_tuples_vs_scalar(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const auto batched = batched_masks_tuples(inst.nl, inst.tests, inst.tuples);
  const auto scalar = scalar_reach_masks(inst.nl, inst.tests, inst.tuples,
                                         /*use_run_full=*/false);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (batched[i] != scalar[i]) {
      return format_mask_mismatch("tuples", i, batched[i], scalar[i]);
    }
  }
  return "";
}

std::string check_batch_vs_run_full(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const auto batched = batched_masks_singles(inst.nl, inst.tests, inst.singles);
  const auto reference = scalar_reach_masks(inst.nl, inst.tests,
                                            as_tuples(inst.singles),
                                            /*use_run_full=*/true);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (batched[i] != reference[i]) {
      return format_mask_mismatch("run_full", i, batched[i], reference[i]);
    }
  }
  return "";
}

std::string check_lane_permutation_invariance(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const auto original = batched_masks_singles(inst.nl, inst.tests,
                                              inst.singles);
  // A seed-derived permutation of the candidate order re-packs every batch
  // into different lane groups; the per-candidate masks must follow the
  // candidates, not the lanes.
  std::vector<std::size_t> order(inst.singles.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(config.seed ^ 0xabcdef12345ULL);
  rng.shuffle(order);
  std::vector<GateId> permuted;
  permuted.reserve(order.size());
  for (std::size_t i : order) permuted.push_back(inst.singles[i]);
  const auto shuffled = batched_masks_singles(inst.nl, inst.tests, permuted);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (shuffled[i] != original[order[i]]) {
      return format_mask_mismatch("lane permutation", order[i], shuffled[i],
                                  original[order[i]]);
    }
  }
  return "";
}

std::string check_threaded_reach_masks(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const auto scalar = scalar_reach_masks(inst.nl, inst.tests,
                                         as_tuples(inst.singles),
                                         /*use_run_full=*/false);
  for (const std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    const auto masks =
        x_reach_masks(pool, inst.nl, inst.tests, inst.singles);
    for (std::size_t i = 0; i < masks.size(); ++i) {
      if (masks[i] != scalar[i]) {
        return format_mask_mismatch(
            ("x_reach_masks threads=" + std::to_string(threads)).c_str(), i,
            masks[i], scalar[i]);
      }
    }
  }
  return "";
}

std::string check_x_check_batch_vs_serial(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  const EffectAnalyzer effect(inst.nl, inst.tests);
  std::vector<std::uint8_t> serial;
  serial.reserve(inst.tuples.size());
  for (const auto& tuple : inst.tuples) {
    serial.push_back(effect.x_check(tuple) ? 1 : 0);
  }
  for (const std::size_t threads : kThreadCounts) {
    const auto batched = effect.x_check_batch(inst.tuples, threads);
    if (batched != serial) {
      for (std::size_t i = 0; i < serial.size(); ++i) {
        if (batched[i] != serial[i]) {
          std::ostringstream out;
          out << "x_check_batch threads=" << threads << " candidate " << i
              << ": batched=" << int(batched[i])
              << " serial=" << int(serial[i]);
          return out.str();
        }
      }
    }
  }
  return "";
}

std::string check_bsim_x_refine(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  BsimOptions options;
  options.x_refine = true;
  std::optional<BsimResult> reference;
  for (const std::size_t threads : kThreadCounts) {
    options.num_threads = threads;
    const BsimResult result =
        basic_sim_diagnose(inst.nl, inst.tests, options, nullptr);
    if (result.refined_sets.size() != inst.tests.size()) {
      return "refined_sets has wrong cardinality";
    }
    // Reference: scalar reach masks over the marked union.
    const auto masks = scalar_reach_masks(
        inst.nl, inst.tests, as_tuples(result.marked_union),
        /*use_run_full=*/true);
    for (std::size_t t = 0; t < inst.tests.size(); ++t) {
      std::vector<GateId> expected;
      for (GateId g : result.candidate_sets[t]) {
        const auto it = std::find(result.marked_union.begin(),
                                  result.marked_union.end(), g);
        const std::size_t idx = static_cast<std::size_t>(
            it - result.marked_union.begin());
        if ((masks[idx] >> t) & 1ULL) expected.push_back(g);
      }
      if (result.refined_sets[t] != expected) {
        std::ostringstream out;
        out << "x_refine threads=" << threads << " test " << t
            << ": refined set does not match the scalar recomputation";
        return out.str();
      }
    }
    if (reference) {
      if (result.refined_sets != reference->refined_sets) {
        return "x_refine is not thread-count invariant";
      }
    } else {
      reference = result;
    }
  }
  return "";
}

std::string check_xlist_singles_vs_reference(const DiffConfig& config) {
  const DiffInstance inst = make_instance(config);
  // Unrestricted reference: the criterion evaluated per combinational gate
  // with a fresh run_full() simulation.
  const auto masks = scalar_reach_masks(inst.nl, inst.tests,
                                        as_tuples(inst.pool),
                                        /*use_run_full=*/true);
  const std::uint64_t full = inst.tests.size() >= 64
                                 ? ~0ULL
                                 : (1ULL << inst.tests.size()) - 1;
  std::vector<GateId> expected;
  for (std::size_t i = 0; i < inst.pool.size(); ++i) {
    if (masks[i] == full) expected.push_back(inst.pool[i]);
  }
  for (const bool restrict_cones : {false, true}) {
    for (const std::size_t threads : kThreadCounts) {
      XListOptions options;
      options.restrict_to_fanin_cones = restrict_cones;
      options.num_threads = threads;
      const auto got =
          xlist_single_candidates(inst.nl, inst.tests, options);
      if (got != expected) {
        std::ostringstream out;
        out << "xlist_single_candidates restrict=" << restrict_cones
            << " threads=" << threads << ": got " << got.size()
            << " candidates, reference has " << expected.size();
        return out.str();
      }
    }
  }
  return "";
}

std::size_t iterations(std::size_t default_iters) {
  return env_size_t("SATDIAG_DIFF_ITERS", default_iters);
}

namespace {

DiffConfig apply_env_overrides(DiffConfig config) {
  config.seed = env_size_t("SATDIAG_DIFF_SEED", config.seed);
  config.gates = env_size_t("SATDIAG_DIFF_GATES", config.gates);
  config.candidates = env_size_t("SATDIAG_DIFF_CANDS", config.candidates);
  config.tests = env_size_t("SATDIAG_DIFF_TESTS", config.tests);
  return config;
}

/// Bisect one dimension toward its minimum, keeping the seed fixed. The
/// invariant `hi` always names a failing value, so the shrink lands on a
/// failing configuration even when failure is not monotone in the field —
/// for monotone failures it finds the exact boundary.
void shrink_dimension(const DiffCheck& check, DiffConfig& config,
                      std::size_t DiffConfig::* field, std::size_t min) {
  std::size_t lo = min;
  std::size_t hi = config.*field;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    DiffConfig probe = config;
    probe.*field = mid;
    if (!check(probe).empty()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  config.*field = hi;
}

DiffConfig shrink(const DiffCheck& check, DiffConfig config) {
  shrink_dimension(check, config, &DiffConfig::gates, 16);
  shrink_dimension(check, config, &DiffConfig::candidates, 1);
  shrink_dimension(check, config, &DiffConfig::tests, 1);
  return config;
}

std::string current_test_filter() {
  const auto* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (!info) return "<test>";
  return std::string(info->test_suite_name()) + "." + info->name();
}

}  // namespace

::testing::AssertionResult run_diff(const char* name, const DiffCheck& check,
                                    const DiffConfig& shape,
                                    std::size_t default_iters) {
  if (std::getenv("SATDIAG_DIFF_SEED")) {
    // Repro mode: run exactly the env-specified configuration.
    const DiffConfig config = apply_env_overrides(shape);
    const std::string error = check(config);
    if (error.empty()) return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << name << " failed for " << config.describe() << ": " << error;
  }
  const std::size_t iters = iterations(default_iters);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    DiffConfig config = shape;
    config.seed = shape.seed + iter;
    const std::string error = check(config);
    if (error.empty()) continue;
    const DiffConfig minimal = shrink(check, config);
    const std::string minimal_error = check(minimal);
    return ::testing::AssertionFailure()
           << name << " failed for " << config.describe()
           << "; minimal failing config " << minimal.describe() << ": "
           << (minimal_error.empty() ? error : minimal_error)
           << "\n  repro: " << minimal.repro_env()
           << " <test binary> --gtest_filter=" << current_test_filter();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace satdiag::difftest
