// Shared differential test harness for the lane-batched X-injection mode.
//
// Every batched consumer (Sim3XBatch, x_reach_masks, x_check_batch, the
// BSIM X-refinement) is pinned to the scalar path it replaces by randomized
// differential checks over synthetic netlists, test chunks, and candidate
// sets. The harness owns
//  * the instance generators (netlist / test-set / single- and tuple-
//    candidate pools), fully determined by a (seed, gates, candidates,
//    tests) configuration,
//  * the equivalence checkers themselves (batched-vs-scalar, batched-vs-
//    run_full, lane-permutation invariance, thread-count invariance), each
//    returning "" on success or a description of the first mismatch,
//  * the runner: `run_diff` iterates seeds (SATDIAG_DIFF_ITERS overrides
//    the iteration count — the nightly CI job cranks it up) and, on
//    failure, *shrinks* the failing configuration by bisection over gates,
//    candidates, and tests, then reports the minimal failing triple plus a
//    one-command repro line (SATDIAG_DIFF_SEED & friends re-run exactly
//    that configuration).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/testset.hpp"

namespace satdiag::difftest {

/// One randomized differential scenario, fully determined by the fields.
struct DiffConfig {
  std::uint64_t seed = 1;
  std::size_t gates = 220;      // combinational gates of the synthetic netlist
  std::size_t candidates = 48;  // singles/tuples drawn (clamped to the pool)
  std::size_t tests = 12;       // test chunk size, 1..64

  std::string describe() const;
  /// The env prefix that reproduces this config in one command.
  std::string repro_env() const;
};

struct DiffInstance {
  Netlist nl;
  TestSet tests;
  std::vector<GateId> pool;     // every combinational gate
  std::vector<GateId> singles;  // single-gate candidates
  std::vector<std::vector<GateId>> tuples;  // same count, sizes 1..3
};

/// Deterministic in `config`: synthetic netlist (gen/generator), random
/// input vectors over random erroneous outputs, shuffled candidate pools.
DiffInstance make_instance(const DiffConfig& config);

/// Scalar anchors. The incremental anchor is the exact per-candidate loop
/// the batched mode replaces (one primed simulator, clear/inject/run per
/// candidate, tests in lanes 0..|tests|); the full anchor re-derives every
/// mask with a fresh simulator and the run_full() reference sweep.
std::vector<std::uint64_t> scalar_reach_masks(
    const Netlist& nl, const TestSet& tests,
    const std::vector<std::vector<GateId>>& candidates, bool use_run_full);

/// A checker runs one configuration and returns "" on success or a
/// description of the first mismatch.
using DiffCheck = std::function<std::string(const DiffConfig&)>;

/// Batched singles (Sim3XBatch::run_singles) vs the scalar incremental loop.
std::string check_batch_singles_vs_scalar(const DiffConfig& config);
/// Batched tuples (Sim3XBatch::run_tuples) vs the scalar incremental loop.
std::string check_batch_tuples_vs_scalar(const DiffConfig& config);
/// Batched singles vs fresh run_full() re-derivations.
std::string check_batch_vs_run_full(const DiffConfig& config);
/// Permuting the candidates across lane groups must permute the masks and
/// nothing else (lane groups are independent).
std::string check_lane_permutation_invariance(const DiffConfig& config);
/// x_reach_masks over thread pools of 1/2/8 lanes vs the scalar loop.
std::string check_threaded_reach_masks(const DiffConfig& config);
/// EffectAnalyzer::x_check_batch (threads 1/2/8) vs serial x_check calls.
std::string check_x_check_batch_vs_serial(const DiffConfig& config);
/// BSIM x_refine sets vs a scalar-mask recomputation (and subset sanity).
std::string check_bsim_x_refine(const DiffConfig& config);
/// xlist_single_candidates (threads 1/2/8) vs the unrestricted per-candidate
/// run_full() reference.
std::string check_xlist_singles_vs_reference(const DiffConfig& config);

/// Iteration count for randomized suites: the SATDIAG_DIFF_ITERS env var
/// overrides `default_iters` (long nightly runs).
std::size_t iterations(std::size_t default_iters);

/// Run `check` over `iters` seed-derived configurations of `shape`. When
/// SATDIAG_DIFF_SEED is set, runs exactly the env-specified configuration
/// once instead. On failure the configuration is shrunk by bisection over
/// gates, candidates, and tests to a minimal still-failing triple, and the
/// assertion carries the mismatch plus the one-command repro line.
::testing::AssertionResult run_diff(const char* name, const DiffCheck& check,
                                    const DiffConfig& shape,
                                    std::size_t default_iters);

}  // namespace satdiag::difftest
