#include "seq/seq_diag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "gen/generator.hpp"

namespace satdiag {
namespace {

struct SeqScenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  SeqTestSet tests;
};

SeqScenario make_scenario(const Netlist& golden, std::uint64_t seed,
                          std::size_t tests_n, std::size_t length) {
  SeqScenario s;
  s.golden = golden.clone();
  Rng rng(seed);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_seq_tests(s.golden, s.faulty, tests_n, length, rng);
  return s;
}

TEST(SeqDiagTest, GeneratedSeqTestsActuallyFail) {
  const SeqScenario s = make_scenario(builtin_s27(), 1, 4, 5);
  ASSERT_FALSE(s.tests.empty());
  for (const SeqTest& test : s.tests) {
    const auto good =
        simulate_sequence(s.golden, test.input_sequence, test.initial_state);
    const auto bad =
        simulate_sequence(s.faulty, test.input_sequence, test.initial_state);
    EXPECT_EQ(good[test.cycle][test.output_index], test.correct_value);
    EXPECT_NE(bad[test.cycle][test.output_index], test.correct_value);
  }
}

TEST(SeqDiagTest, FindsInjectedErrorOnS27) {
  const SeqScenario s = make_scenario(builtin_s27(), 2, 4, 6);
  ASSERT_FALSE(s.tests.empty());
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  ASSERT_FALSE(result.solutions.empty());
  const GateId site = error_site(s.errors[0]);
  bool found = false;
  for (const auto& solution : result.solutions) {
    found |= solution == std::vector<GateId>{site};
  }
  EXPECT_TRUE(found);
}

TEST(SeqDiagTest, SolutionsRectifyByConstruction) {
  // Every returned correction keeps the instance satisfiable with exactly
  // those selects on: re-run with a fresh instance to cross-check.
  const SeqScenario s = make_scenario(builtin_s27(), 3, 3, 5);
  ASSERT_FALSE(s.tests.empty());
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  for (const auto& solution : result.solutions) {
    EXPECT_EQ(solution.size(), 1u);
    EXPECT_TRUE(s.faulty.is_combinational(solution[0]));
  }
}

TEST(SeqDiagTest, MoreTestsNarrowSolutions) {
  // A k=1 correction valid for a test superset is valid for every subset,
  // so the solution set over more tests is contained in the one over fewer.
  const SeqScenario s = make_scenario(builtin_s27(), 4, 6, 5);
  if (s.tests.size() < 3) GTEST_SKIP() << "not enough failing sequences";
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqTestSet subset(s.tests.begin(), s.tests.begin() + 1);
  const auto few = seq_sat_diagnose(s.faulty, subset, options);
  const auto many = seq_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(few.complete);
  ASSERT_TRUE(many.complete);
  for (const auto& solution : many.solutions) {
    EXPECT_TRUE(std::find(few.solutions.begin(), few.solutions.end(),
                          solution) != few.solutions.end());
  }
  EXPECT_GE(few.solutions.size(), many.solutions.size());
}

TEST(SeqDiagTest, WorksOnGeneratedSequentialCircuit) {
  GeneratorParams params;
  params.num_inputs = 6;
  params.num_outputs = 3;
  params.num_dffs = 5;
  params.num_gates = 60;
  params.seed = 12;
  const SeqScenario s = make_scenario(generate_circuit(params), 5, 3, 4);
  if (s.tests.empty()) GTEST_SKIP() << "error not excited sequentially";
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(result.complete);
  EXPECT_FALSE(result.solutions.empty());
  const GateId site = error_site(s.errors[0]);
  bool found = false;
  for (const auto& solution : result.solutions) {
    found |= std::find(solution.begin(), solution.end(), site) !=
             solution.end();
  }
  EXPECT_TRUE(found);
}

TEST(SeqDiagTest, ConsistentTestsReportDegenerateCaseNotEmptySolution) {
  // PR 10 regression: a test-set the unmodified circuit already satisfies
  // has the zero-corrections model; the old code pushed an empty
  // "correction" and kept complete == true, fabricating a solution no
  // caller could realize. Build such a test-set by observing the GOLDEN
  // circuit's own outputs and diagnose the golden circuit with it.
  const Netlist golden = builtin_s27();
  Rng rng(7);
  SeqTest test;
  const std::size_t length = 5;
  test.input_sequence.resize(length);
  for (auto& frame : test.input_sequence) {
    frame.resize(golden.inputs().size());
    for (std::size_t i = 0; i < frame.size(); ++i) frame[i] = rng.next_bool();
  }
  test.initial_state.assign(golden.dffs().size(), false);
  test.cycle = length - 1;
  test.output_index = 0;
  const auto outputs =
      simulate_sequence(golden, test.input_sequence, test.initial_state);
  test.correct_value = outputs[test.cycle][test.output_index];

  SeqDiagnoseOptions options;
  options.k = 2;
  const SeqDiagnoseResult result =
      seq_sat_diagnose(golden, {test}, options);
  EXPECT_TRUE(result.tests_consistent);
  EXPECT_TRUE(result.solutions.empty());
  EXPECT_TRUE(result.complete);
  for (const auto& solution : result.solutions) {
    EXPECT_FALSE(solution.empty()) << "empty correction fabricated";
  }
}

TEST(SeqDiagTest, FailingTestsDoNotReportConsistent) {
  const SeqScenario s = make_scenario(builtin_s27(), 2, 4, 6);
  ASSERT_FALSE(s.tests.empty());
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(s.faulty, s.tests, options);
  EXPECT_FALSE(result.tests_consistent);
  EXPECT_FALSE(result.solutions.empty());
}

TEST(SeqDiagTest, InstanceSizeGrowsWithSequenceLength) {
  const SeqScenario s = make_scenario(builtin_s27(), 6, 1, 4);
  if (s.tests.empty()) GTEST_SKIP();
  SeqDiagnoseOptions options;
  options.k = 1;
  const SeqDiagnoseResult result = seq_sat_diagnose(s.faulty, s.tests, options);
  // At least one variable per unrolled gate per frame.
  EXPECT_GE(result.num_vars,
            s.faulty.size() * s.tests[0].input_sequence.size());
}

}  // namespace
}  // namespace satdiag
