#include "seq/unroll.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "seq/seq_diag.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

TEST(UnrollTest, FrameCountsAndLayout) {
  const Netlist s27 = builtin_s27();
  const UnrolledCircuit u = unroll(s27, 3);
  EXPECT_EQ(u.frames, 3u);
  EXPECT_EQ(u.num_state_inputs, 3u);
  EXPECT_EQ(u.pis_per_frame, 4u);
  EXPECT_EQ(u.pos_per_frame, 1u);
  EXPECT_EQ(u.comb.inputs().size(), 3u + 3u * 4u);
  EXPECT_EQ(u.comb.outputs().size(), 3u);
  EXPECT_TRUE(u.comb.dffs().empty());
}

TEST(UnrollTest, ZeroFramesThrows) {
  const Netlist s27 = builtin_s27();
  EXPECT_THROW(unroll(s27, 0), NetlistError);
}

TEST(UnrollTest, CombinationalCircuitUnrollsToCopies) {
  const Netlist c17 = builtin_c17();
  const UnrolledCircuit u = unroll(c17, 2);
  EXPECT_EQ(u.comb.size(), 2 * c17.size());
  EXPECT_EQ(u.comb.outputs().size(), 4u);
}

// Property: unrolled evaluation equals cycle-by-cycle sequential simulation.
TEST(UnrollTest, MatchesSequentialSimulation) {
  const Netlist s27 = builtin_s27();
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    const std::size_t frames = 1 + rng.next_below(5);
    std::vector<std::vector<bool>> sequence(frames);
    for (auto& v : sequence) {
      v.resize(s27.inputs().size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
    }
    std::vector<bool> initial(s27.dffs().size());
    for (std::size_t i = 0; i < initial.size(); ++i) {
      initial[i] = rng.next_bool();
    }
    const auto reference = simulate_sequence(s27, sequence, initial);

    const UnrolledCircuit u = unroll(s27, frames);
    ParallelSimulator sim(u.comb);
    std::vector<bool> flat;
    flat.insert(flat.end(), initial.begin(), initial.end());
    for (const auto& v : sequence) flat.insert(flat.end(), v.begin(), v.end());
    ASSERT_EQ(flat.size(), u.comb.inputs().size());
    sim.set_input_vector(0, flat);
    sim.run();
    for (std::size_t f = 0; f < frames; ++f) {
      for (std::size_t po = 0; po < u.pos_per_frame; ++po) {
        EXPECT_EQ(sim.value_bit(u.output_at(f, po), 0), reference[f][po])
            << "frame " << f << " po " << po;
      }
    }
  }
}

TEST(UnrollTest, FrameGateMappingCoversEveryGate) {
  const Netlist s27 = builtin_s27();
  const UnrolledCircuit u = unroll(s27, 2);
  for (std::size_t f = 0; f < 2; ++f) {
    for (GateId g = 0; g < s27.size(); ++g) {
      EXPECT_NE(u.frame_gate[f][g], kNoGate);
      EXPECT_LT(u.frame_gate[f][g], u.comb.size());
    }
  }
  // Frame-1 DFF holders buffer the frame-0 data signals.
  for (GateId dff : s27.dffs()) {
    const GateId holder = u.frame_gate[1][dff];
    EXPECT_EQ(u.comb.type(holder), GateType::kBuf);
    EXPECT_EQ(u.comb.fanins(holder)[0],
              u.frame_gate[0][s27.fanins(dff)[0]]);
  }
}

}  // namespace
}  // namespace satdiag
