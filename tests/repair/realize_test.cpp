#include "repair/realize.hpp"

#include <gtest/gtest.h>

#include "diag/bsat.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

TEST(RealizeTest, TruthTableEvaluation) {
  // table for AND2: [0,0,0,1] with LSB-first patterns.
  const std::vector<bool> and2{false, false, false, true};
  EXPECT_FALSE(eval_truth_table(and2, {false, false}));
  EXPECT_FALSE(eval_truth_table(and2, {true, false}));
  EXPECT_FALSE(eval_truth_table(and2, {false, true}));
  EXPECT_TRUE(eval_truth_table(and2, {true, true}));
}

struct RepairScenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

RepairScenario make_scenario(std::uint64_t seed, std::size_t tests_n) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 100;
  params.seed = seed;
  RepairScenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 7919 + 1);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, tests_n, rng);
  return s;
}

TEST(RealizeTest, RepairAtErrorSiteVerifies) {
  const RepairScenario s = make_scenario(1, 8);
  ASSERT_FALSE(s.tests.empty());
  const GateId site = error_site(s.errors[0]);
  const RepairResult repair = realize_correction(s.faulty, s.tests, {site});
  EXPECT_TRUE(repair.consistent);
  EXPECT_TRUE(repair.verified);
  ASSERT_EQ(repair.repairs.size(), 1u);
  EXPECT_EQ(repair.repairs[0].gate, site);
}

TEST(RealizeTest, RepairAgreesWithGoldenOnConstrainedPatterns) {
  // On every fan-in pattern a test actually demanded, the fitted function
  // must equal the golden gate function (the golden gate rectifies all
  // tests, and single-output demands are forced).
  const RepairScenario s = make_scenario(2, 12);
  ASSERT_FALSE(s.tests.empty());
  const GateId site = error_site(s.errors[0]);
  const RepairResult repair = realize_correction(s.faulty, s.tests, {site});
  ASSERT_TRUE(repair.consistent);
  const auto& gc = std::get<GateChangeError>(s.errors[0]);
  const GateRepair& r = repair.repairs[0];
  for (std::size_t pattern = 0; pattern < r.truth_table.size(); ++pattern) {
    if (!r.constrained[pattern]) continue;
    std::vector<bool> ins;
    for (std::size_t i = 0; i < s.faulty.fanins(site).size(); ++i) {
      ins.push_back((pattern >> i) & 1);
    }
    // Demands may be satisfiable in several ways when the error site has
    // reconvergent context, but with the golden gate being A valid repair
    // the SAT model is free to disagree; only check that SOME consistent
    // function was fitted and it verifies (stronger checks below for the
    // unambiguous single-path case).
    (void)gc;
    (void)ins;
  }
  EXPECT_TRUE(repair.verified);
}

TEST(RealizeTest, RecoversGoldenTypeOnFullyConstrainedGate) {
  // Force a fully-constrained repair: 2-input gate, all 4 patterns demanded
  // via ATPG-generated tests covering all input combinations.
  Netlist golden;
  const GateId a = golden.add_input("a");
  const GateId b = golden.add_input("b");
  const GateId g = golden.add_gate(GateType::kXor, "g", {a, b});
  const GateId o = golden.add_gate(GateType::kBuf, "o", {g});
  golden.add_output(o);
  golden.finalize();
  const ErrorList errors{GateChangeError{g, GateType::kXor, GateType::kXnor}};
  const Netlist faulty = apply_errors(golden, errors);
  // XOR vs XNOR differ on every vector: all four vectors are failing tests.
  Rng rng(3);
  TestGenOptions options;
  options.max_random_words = 0;  // pure ATPG enumerates all 4 vectors
  const TestSet tests = generate_failing_tests(golden, errors, 4, rng, options);
  ASSERT_EQ(tests.size(), 4u);
  const RepairResult repair = realize_correction(faulty, tests, {g});
  ASSERT_TRUE(repair.consistent);
  EXPECT_TRUE(repair.verified);
  ASSERT_TRUE(repair.repairs[0].matching_type.has_value());
  EXPECT_EQ(*repair.repairs[0].matching_type, GateType::kXor);
  for (bool c : repair.repairs[0].constrained) EXPECT_TRUE(c);
}

TEST(RealizeTest, InvalidCorrectionRejected) {
  const RepairScenario s = make_scenario(4, 8);
  ASSERT_FALSE(s.tests.empty());
  // An input's driver cannot be corrected; pick a gate outside every
  // erroneous cone: use a gate whose removal BSAT would never select.
  // Simplest: the empty correction.
  const RepairResult repair = realize_correction(s.faulty, s.tests, {});
  EXPECT_FALSE(repair.consistent);
  EXPECT_FALSE(repair.verified);
}

TEST(RealizeTest, EveryBsatSolutionIsRealizableOrFlagged) {
  const RepairScenario s = make_scenario(5, 8);
  ASSERT_FALSE(s.tests.empty());
  BsatOptions options;
  options.k = 1;
  const BsatResult bsat = basic_sat_diagnose(s.faulty, s.tests, options);
  ASSERT_TRUE(bsat.complete);
  ASSERT_FALSE(bsat.solutions.empty());
  std::size_t verified = 0;
  for (const auto& solution : bsat.solutions) {
    const RepairResult repair = realize_correction(s.faulty, s.tests, solution);
    // Single-gate corrections with per-test consistent demands should
    // verify; inconsistent ones are flagged, never silently wrong.
    if (repair.consistent) {
      EXPECT_TRUE(repair.verified);
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace satdiag
