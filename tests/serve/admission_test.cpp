// AdmissionController contract: bounded concurrency, bounded queue,
// deadline-aware queue waits, shutdown wake. Runs under the TSan CI job.
#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace satdiag::serve {
namespace {

using Admit = AdmissionController::Admit;

TEST(AdmissionTest, AdmitsUpToMaxInflight) {
  AdmissionController ctl(AdmissionConfig{2, 0});
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  EXPECT_EQ(ctl.active(), 2u);
  // Slots full, queue depth 0: immediate load-shed.
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kOverloaded);
  ctl.release();
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
}

TEST(AdmissionTest, ZeroMaxInflightIsClampedToOne) {
  AdmissionController ctl(AdmissionConfig{0, 0});
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kOverloaded);
}

TEST(AdmissionTest, QueuedRequestGetsSlotOnRelease) {
  AdmissionController ctl(AdmissionConfig{1, 1});
  ASSERT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  std::atomic<int> result{-1};
  std::thread waiter([&] {
    result.store(static_cast<int>(ctl.admit(Deadline())));
  });
  while (ctl.queued() == 0) std::this_thread::yield();
  ctl.release();
  waiter.join();
  EXPECT_EQ(result.load(), static_cast<int>(Admit::kAdmitted));
  EXPECT_EQ(ctl.active(), 1u);
  EXPECT_EQ(ctl.queued(), 0u);
}

TEST(AdmissionTest, DeadlineExpiresWhileQueued) {
  AdmissionController ctl(AdmissionConfig{1, 4});
  ASSERT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  // Never released: the queued request must come back expired, not hang.
  EXPECT_EQ(ctl.admit(Deadline::after_seconds(0.05)), Admit::kExpired);
  EXPECT_EQ(ctl.queued(), 0u);
  ctl.release();
}

TEST(AdmissionTest, ShutdownWakesQueuedWaiters) {
  AdmissionController ctl(AdmissionConfig{1, 8});
  ASSERT_EQ(ctl.admit(Deadline()), Admit::kAdmitted);
  std::vector<std::thread> waiters;
  std::atomic<int> shutdown_count{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      if (ctl.admit(Deadline()) == Admit::kShutdown) ++shutdown_count;
    });
  }
  while (ctl.queued() < 4) std::this_thread::yield();
  ctl.shutdown();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(shutdown_count.load(), 4);
  EXPECT_EQ(ctl.admit(Deadline()), Admit::kShutdown);
}

TEST(AdmissionTest, ConcurrentAdmitsNeverExceedLimit) {
  constexpr std::size_t kInflight = 3;
  AdmissionController ctl(AdmissionConfig{kInflight, 64});
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 20; ++j) {
        if (ctl.admit(Deadline::after_seconds(5.0)) != Admit::kAdmitted) {
          continue;
        }
        const int now = ++active;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        ++admitted;
        --active;
        ctl.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(admitted.load(), 0);
  EXPECT_LE(peak.load(), static_cast<int>(kInflight));
}

}  // namespace
}  // namespace satdiag::serve
