// Framing-layer tests for the serve wire protocol: request parsing,
// scalar-arg coercion, structured rejection of malformed frames, and the
// response envelope builders.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace satdiag::serve {
namespace {

Request parse_ok(const std::string& frame) {
  Request req;
  std::string error;
  EXPECT_TRUE(parse_request(frame, req, error)) << error;
  return req;
}

std::string parse_fail(const std::string& frame) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request(frame, req, error)) << frame;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ProtocolTest, ParsesFullRequest) {
  const Request req = parse_ok(
      R"({"id":"r1","command":"diagnose","positional":["f.bench"],)"
      R"("args":{"tests":"t.txt","k":2,"limit":1.5,"stats":true}})");
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.command, "diagnose");
  ASSERT_EQ(req.positional.size(), 1u);
  EXPECT_EQ(req.positional[0], "f.bench");
  EXPECT_EQ(req.args.at("tests"), "t.txt");
  EXPECT_EQ(req.args.at("k"), "2");
  EXPECT_EQ(req.args.at("limit"), "1.5");
  EXPECT_EQ(req.args.at("stats"), "true");
}

TEST(ProtocolTest, NumericAndOmittedIdAccepted) {
  EXPECT_EQ(parse_ok(R"({"id":7,"command":"ping"})").id, "7");
  EXPECT_EQ(parse_ok(R"({"command":"ping"})").id, "");
}

TEST(ProtocolTest, DoubleArgsSurviveCoercionExactly) {
  // Shortest-round-trip double formatting is what keeps a JSON 0.1 equal
  // to the CLI's strtod("0.1").
  const Request req = parse_ok(R"({"command":"gen","args":{"scale":0.1}})");
  EXPECT_EQ(req.args.at("scale"), "0.1");
}

TEST(ProtocolTest, RejectsMalformedFrames) {
  parse_fail("not json at all");
  parse_fail("[1,2,3]");                       // not an object
  parse_fail(R"({"args":{}})");                // missing command
  parse_fail(R"({"command":""})");             // empty command
  parse_fail(R"({"command":42})");             // non-string command
  parse_fail(R"({"command":"x","args":[1]})");  // args not an object
  parse_fail(R"({"command":"x","positional":"f"})");
  parse_fail(R"({"command":"x","positional":[1]})");
  parse_fail(R"({"command":"x","bogus":1})");  // unknown top-level field
}

TEST(ProtocolTest, RejectsNonScalarAndDuplicateArgs) {
  parse_fail(R"({"command":"x","args":{"k":[1]}})");
  parse_fail(R"({"command":"x","args":{"k":{"a":1}}})");
  parse_fail(R"({"command":"x","args":{"k":null}})");
  parse_fail(R"({"command":"x","args":{"k":1,"k":2}})");
  // Names are the bare CLI spelling; "--k" would double-prefix.
  const std::string error = parse_fail(R"({"command":"x","args":{"--k":1}})");
  EXPECT_NE(error.find("--k"), std::string::npos);
  parse_fail(R"({"command":"x","args":{"":1}})");
}

TEST(ProtocolTest, ResponsesAreOneLineParseableJson) {
  for (const std::string& line :
       {ok_response("r1", R"({"x":1})"),
        error_response("r2", kErrBadRequest, "broken \"quote\""),
        overloaded_response("r3", 4, 16)}) {
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    JsonValue v;
    std::string error;
    ASSERT_TRUE(json_parse(line, v, error)) << line << ": " << error;
    ASSERT_NE(v.find("status"), nullptr);
  }
}

TEST(ProtocolTest, OkResponseSplicesReport) {
  const JsonValue v = [] {
    JsonValue parsed;
    std::string error;
    EXPECT_TRUE(
        json_parse(ok_response("a", R"({"x":1})"), parsed, error));
    return parsed;
  }();
  EXPECT_EQ(v.find("id")->string, "a");
  EXPECT_EQ(v.find("status")->string, "ok");
  EXPECT_EQ(v.find("report")->find("x")->integer, 1);
}

TEST(ProtocolTest, OverloadedResponseCarriesAdmissionState) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse(overloaded_response("r", 2, 5), v, error));
  EXPECT_EQ(v.find("status")->string, "overloaded");
  const JsonValue* err = v.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->find("code")->string, kErrOverloaded);
  EXPECT_EQ(err->find("active")->integer, 2);
  EXPECT_EQ(err->find("queued")->integer, 5);
}

}  // namespace
}  // namespace satdiag::serve
