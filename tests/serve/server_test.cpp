// End-to-end daemon tests over real localhost TCP: framing, admission
// (overload shed + queued-deadline expiry), bit-identity of served results
// against direct library execution, warm-cache behaviour via the metrics
// request, concurrent clients, and shutdown.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_writer.hpp"
#include "diag/bsat.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "report/testfile.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace satdiag::serve {
namespace {

/// Minimal blocking line-framed client.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << std::strerror(errno);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_line(const std::string& line) {
    ASSERT_TRUE(try_send(line + "\n")) << std::strerror(errno);
  }

  /// send() that tolerates the peer closing mid-write (oversize-frame test:
  /// the server replies and drops the connection before the tail arrives).
  bool try_send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Read one '\n'-terminated line; false on EOF.
  bool recv_line(std::string& out) {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        out = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  JsonValue rpc(const std::string& frame) {
    send_line(frame);
    std::string line;
    EXPECT_TRUE(recv_line(line));
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(line, v, error)) << line << ": " << error;
    return v;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Server on an ephemeral port with run() on a background thread.
class TestServer {
 public:
  explicit TestServer(ServeOptions options) : server_(options) {
    std::string error;
    started_ = server_.start(error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] { server_.run(); });
    }
  }
  ~TestServer() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
  }
  int port() const { return server_.port(); }
  Server& server() { return server_; }

 private:
  Server server_;
  bool started_ = false;
  std::thread thread_;
};

std::string field_string(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f != nullptr ? f->string : std::string("<missing>");
}

/// Faulty circuit + failing tests written to the gtest temp dir once per
/// process; every test diagnoses the same instance.
struct Fixture {
  std::string bench_path;
  std::string tests_path;
  Netlist faulty;
  TestSet tests;
};

const Fixture& fixture() {
  static const Fixture* f = [] {
    auto* fx = new Fixture;
    const auto profile = find_profile("s1423_like");
    Netlist nl = make_profile_circuit(*profile, 0.15, 11);
    // Same sequential handling as `satdiag inject`: diagnose on the
    // combinational full-scan view.
    if (!nl.dffs().empty()) nl = make_full_scan(nl).comb;
    Rng rng(11);
    InjectorOptions inject;
    inject.num_errors = 1;
    const auto errors = inject_errors(nl, rng, inject);
    EXPECT_TRUE(errors.has_value());
    fx->faulty = apply_errors(nl, *errors);
    fx->tests = generate_failing_tests(nl, *errors, 6, rng);
    EXPECT_FALSE(fx->tests.empty());
    // Per-process names: parallel ctest runs one process per test, and two
    // of them writing/reading one shared path is a torn-file race.
    const std::string tag = std::to_string(::getpid());
    fx->bench_path = testing::TempDir() + "serve_faulty." + tag + ".bench";
    fx->tests_path = testing::TempDir() + "serve_tests." + tag + ".txt";
    std::ofstream bench(fx->bench_path);
    write_bench(bench, fx->faulty);
    std::ofstream tests(fx->tests_path);
    write_test_set(tests, fx->tests);
    return fx;
  }();
  return *f;
}

std::string diagnose_frame(const std::string& id, int k = 1) {
  std::ostringstream os;
  os << R"({"id":")" << id << R"(","command":"diagnose","positional":[")"
     << fixture().bench_path << R"("],"args":{"tests":")"
     << fixture().tests_path << R"(","approach":"bsat","k":)" << k << "}}";
  return os.str();
}

/// Corrections (sets of gate names) from an ok diagnose response.
std::set<std::vector<std::string>> response_corrections(const JsonValue& v) {
  std::set<std::vector<std::string>> out;
  const JsonValue* report = v.find("report");
  EXPECT_NE(report, nullptr);
  const JsonValue* result = report ? report->find("result") : nullptr;
  EXPECT_NE(result, nullptr);
  const JsonValue* corrections =
      result ? result->find("corrections") : nullptr;
  EXPECT_NE(corrections, nullptr);
  if (corrections == nullptr) return out;
  for (const JsonValue& solution : corrections->array) {
    std::vector<std::string> names;
    for (const JsonValue& gate : solution.array) names.push_back(gate.string);
    out.insert(std::move(names));
  }
  return out;
}

TEST(ServerTest, PingMetricsAndMalformedFrames) {
  TestServer ts({});
  Client c(ts.port());

  JsonValue v = c.rpc(R"({"id":"p","command":"ping"})");
  EXPECT_EQ(field_string(v, "status"), "ok");
  EXPECT_EQ(field_string(v, "id"), "p");

  v = c.rpc("this is not json");
  EXPECT_EQ(field_string(v, "status"), "error");
  EXPECT_EQ(field_string(*v.find("error"), "code"), kErrBadRequest);

  v = c.rpc(R"({"id":"u","command":"frobnicate"})");
  EXPECT_EQ(field_string(v, "status"), "error");
  EXPECT_EQ(field_string(*v.find("error"), "code"), kErrBadRequest);

  // The connection survived both rejections.
  v = c.rpc(R"({"id":"m","command":"metrics"})");
  EXPECT_EQ(field_string(v, "status"), "ok");
  const JsonValue* metrics = v.find("report")->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("serve.accepted"), nullptr);
  EXPECT_NE(metrics->find("serve.rejected"), nullptr);
  EXPECT_NE(metrics->find("serve.request_us"), nullptr);
}

TEST(ServerTest, StrictValueParsingIsAStructuredError) {
  TestServer ts({});
  Client c(ts.port());
  // Real fixture paths so the strict "--k" value check is the failure the
  // request hits (file loading happens first).
  const JsonValue v = c.rpc(
      R"({"id":"b","command":"diagnose","positional":[")" +
      fixture().bench_path + R"("],"args":{"tests":")" +
      fixture().tests_path + R"(","k":"2x"}})");
  EXPECT_EQ(field_string(v, "status"), "error");
  const JsonValue* error = v.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(field_string(*error, "code"), kErrBadRequest);
  EXPECT_NE(error->find("message")->string.find("--k"), std::string::npos);
}

TEST(ServerTest, DiagnoseMatchesDirectExecution) {
  const Fixture& fx = fixture();
  BsatOptions options;
  options.k = 1;
  const BsatResult direct = basic_sat_diagnose(fx.faulty, fx.tests, options);
  std::set<std::vector<std::string>> expected;
  for (const auto& solution : direct.solutions) {
    std::vector<std::string> names;
    for (GateId g : solution) names.push_back(fx.faulty.gate_name(g));
    expected.insert(std::move(names));
  }
  ASSERT_FALSE(expected.empty());

  TestServer ts({});
  Client c(ts.port());
  const JsonValue v = c.rpc(diagnose_frame("d1"));
  ASSERT_EQ(field_string(v, "status"), "ok");
  EXPECT_EQ(response_corrections(v), expected);
  const JsonValue* report = v.find("report");
  EXPECT_EQ(field_string(*report, "schema"), "satdiag.report");
  EXPECT_EQ(report->find("schema_version")->integer, 1);
  EXPECT_EQ(field_string(*report, "command"), "diagnose");
}

TEST(ServerTest, WarmRepeatsRaiseCacheHits) {
  TestServer ts({});
  Client c(ts.port());
  const auto cache_hits = [&] {
    const JsonValue v = c.rpc(R"({"id":"m","command":"metrics"})");
    return v.find("report")->find("metrics")->find("cache.hits")->integer;
  };
  ASSERT_EQ(field_string(c.rpc(diagnose_frame("w1")), "status"), "ok");
  const std::int64_t cold = cache_hits();
  ASSERT_EQ(field_string(c.rpc(diagnose_frame("w2")), "status"), "ok");
  const std::int64_t warm = cache_hits();
  ASSERT_EQ(field_string(c.rpc(diagnose_frame("w3")), "status"), "ok");
  const std::int64_t warmer = cache_hits();
  // Each warm repeat re-hits the netlist and test-set artifacts at least.
  EXPECT_GT(warm, cold);
  EXPECT_GT(warmer, warm);
}

TEST(ServerTest, ShedsLoadAboveAdmissionLimit) {
  ServeOptions options;
  options.max_inflight = 1;
  options.queue_depth = 0;
  TestServer ts(options);

  Client busy(ts.port());
  busy.send_line(R"({"id":"slow","command":"ping","args":{"sleep-ms":800}})");
  // Give the slow request time to occupy the single slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  Client shed(ts.port());
  const JsonValue v = shed.rpc(R"({"id":"shed","command":"ping"})");
  EXPECT_EQ(field_string(v, "status"), "overloaded");
  const JsonValue* error = v.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(field_string(*error, "code"), kErrOverloaded);
  EXPECT_EQ(error->find("active")->integer, 1);

  // Metrics must stay readable while saturated (admission bypass).
  const JsonValue m = shed.rpc(R"({"id":"m","command":"metrics"})");
  EXPECT_EQ(field_string(m, "status"), "ok");

  std::string line;
  EXPECT_TRUE(busy.recv_line(line));  // the slow ping still completes
}

TEST(ServerTest, QueuedRequestDeadlineExpires) {
  ServeOptions options;
  options.max_inflight = 1;
  options.queue_depth = 4;
  options.max_request_seconds = 0.3;
  TestServer ts(options);

  Client busy(ts.port());
  busy.send_line(R"({"id":"slow","command":"ping","args":{"sleep-ms":900}})");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  Client queued(ts.port());
  const JsonValue v = queued.rpc(R"({"id":"q","command":"ping"})");
  EXPECT_EQ(field_string(v, "status"), "error");
  EXPECT_EQ(field_string(*v.find("error"), "code"), kErrDeadlineExpired);

  std::string line;
  EXPECT_TRUE(busy.recv_line(line));
}

TEST(ServerTest, ConcurrentClientsGetIdenticalResults) {
  ServeOptions options;
  options.max_inflight = 4;
  options.queue_depth = 32;
  TestServer ts(options);

  constexpr int kClients = 8;
  std::vector<std::set<std::vector<std::string>>> results(kClients);
  std::vector<int> ok_count(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c(ts.port());
      for (int j = 0; j < 3; ++j) {
        const JsonValue v =
            c.rpc(diagnose_frame("c" + std::to_string(i * 10 + j)));
        if (field_string(v, "status") == "ok") {
          ++ok_count[i];
          results[i] = response_corrections(v);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Below the admission limit (queue covers every client) nothing may be
  // dropped, and every client sees the same solution set.
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(ok_count[i], 3) << "client " << i;
    EXPECT_EQ(results[i], results[0]) << "client " << i;
  }
  EXPECT_FALSE(results[0].empty());
}

TEST(ServerTest, OversizedFrameIsRejectedAndConnectionClosed) {
  TestServer ts({});
  Client c(ts.port());
  // A newline-less blob past the cap can never become a valid frame; the
  // server replies once and drops the connection, so the tail of the send
  // may legitimately fail.
  const std::string huge(kMaxRequestBytes + 4096, 'x');
  c.try_send(huge);
  std::string line;
  ASSERT_TRUE(c.recv_line(line));
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse(line, v, error)) << error;
  EXPECT_EQ(field_string(v, "status"), "error");
  EXPECT_FALSE(c.recv_line(line));
}

TEST(ServerTest, ShutdownRequestStopsServer) {
  auto* ts = new TestServer({});
  Client c(ts->port());
  const JsonValue v = c.rpc(R"({"id":"s","command":"shutdown"})");
  EXPECT_EQ(field_string(v, "status"), "ok");
  EXPECT_TRUE(v.find("report")->find("shutting_down")->boolean);
  // run() must return on its own; the destructor's join would hang (and the
  // test time out) if the shutdown request did not stop the accept loop.
  delete ts;
}

}  // namespace
}  // namespace satdiag::serve
