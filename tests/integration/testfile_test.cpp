#include "report/testfile.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "netlist/scan.hpp"

namespace satdiag {
namespace {

TEST(TestFileTest, RoundTrip) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;
  Rng rng(1);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(nl, rng, inject);
  ASSERT_TRUE(errors.has_value());
  const TestSet tests = generate_failing_tests(nl, *errors, 4, rng);
  ASSERT_FALSE(tests.empty());

  const std::string text = write_test_set_string(tests);
  const TestSet back = read_test_set_string(text, nl);
  ASSERT_EQ(back.size(), tests.size());
  for (std::size_t i = 0; i < tests.size(); ++i) {
    EXPECT_EQ(back[i].input_values, tests[i].input_values);
    EXPECT_EQ(back[i].output_index, tests[i].output_index);
    EXPECT_EQ(back[i].correct_value, tests[i].correct_value);
  }
}

TEST(TestFileTest, CommentsAndBlanksIgnored) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;
  const TestSet tests = read_test_set_string(
      "# header\n\n10101 0 1  # trailing\n", nl);
  ASSERT_EQ(tests.size(), 1u);
  EXPECT_TRUE(tests[0].input_values[0]);
  EXPECT_FALSE(tests[0].input_values[1]);
  EXPECT_EQ(tests[0].output_index, 0u);
  EXPECT_TRUE(tests[0].correct_value);
}

TEST(TestFileTest, WidthMismatchThrows) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;  // 5 inputs
  EXPECT_THROW(read_test_set_string("1010 0 1\n", nl), TestFileError);
}

TEST(TestFileTest, OutputIndexRangeChecked) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;  // 2 outputs
  EXPECT_THROW(read_test_set_string("10101 2 1\n", nl), TestFileError);
}

TEST(TestFileTest, BadValueThrows) {
  const Netlist nl = make_full_scan(builtin_c17()).comb;
  EXPECT_THROW(read_test_set_string("10101 0 7\n", nl), TestFileError);
  EXPECT_THROW(read_test_set_string("10x01 0 1\n", nl), TestFileError);
  EXPECT_THROW(read_test_set_string("10101\n", nl), TestFileError);
}

}  // namespace
}  // namespace satdiag
