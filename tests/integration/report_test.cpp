#include <gtest/gtest.h>

#include "report/format.hpp"
#include "util/table.hpp"

namespace satdiag {
namespace {

ExperimentRow sample_row() {
  ExperimentRow row;
  row.config.circuit = "s1423_like";
  row.config.num_errors = 4;
  row.config.num_tests = 8;
  row.bsim_seconds = 0.01;
  row.bsim_quality.union_size = 115;
  row.bsim_quality.avg_all = 3.78;
  row.bsim_quality.gmax_size = 2;
  row.bsim_quality.min_g = 3;
  row.bsim_quality.max_g = 4;
  row.bsim_quality.avg_g = 3.5;
  row.cov.cnf_seconds = 0.01;
  row.cov.one_seconds = 0.01;
  row.cov.all_seconds = 19.98;
  row.cov.quality.num_solutions = 28281;
  row.cov.quality.min_avg = 0;
  row.cov.quality.max_avg = 5.5;
  row.cov.quality.mean_avg = 3.42;
  row.bsat.cnf_seconds = 0.02;
  row.bsat.one_seconds = 0.21;
  row.bsat.all_seconds = 12.93;
  row.bsat.quality.num_solutions = 1281;
  row.bsat.quality.mean_avg = 1.78;
  return row;
}

TEST(FormatTest, Table2RowLayout) {
  const auto header = table2_header();
  const auto row = table2_row(sample_row());
  ASSERT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "s1423_like");
  EXPECT_EQ(row[1], "4");
  EXPECT_EQ(row[2], "8");
  EXPECT_EQ(row[3], "0.01");   // BSIM
  EXPECT_EQ(row[6], "19.98");  // COV All
  EXPECT_EQ(row[9], "12.93");  // BSAT All
}

TEST(FormatTest, Table3RowLayout) {
  const auto header = table3_header();
  const auto row = table3_row(sample_row());
  ASSERT_EQ(header.size(), row.size());
  EXPECT_EQ(row[3], "115");    // |U Ci|
  EXPECT_EQ(row[4], "3.78");   // avgA
  EXPECT_EQ(row[9], "28281");  // COV #sol
  EXPECT_EQ(row[13], "1281");  // SAT #sol
}

TEST(FormatTest, IncompleteRunsMarked) {
  ExperimentRow row = sample_row();
  row.bsat.complete = false;
  const auto cells = table2_row(row);
  EXPECT_NE(cells[9].find('*'), std::string::npos);
}

TEST(FormatTest, Fig6CsvRows) {
  const ExperimentRow row = sample_row();
  EXPECT_EQ(fig6_avg_csv_row(row), "s1423_like,4,8,3.4200,1.7800");
  EXPECT_EQ(fig6_nsol_csv_row(row), "s1423_like,4,8,28281,1281");
}

TEST(FormatTest, RowsFitTablePrinter) {
  TablePrinter table(table2_header());
  table.add_row(table2_row(sample_row()));
  const std::string out = table.to_string();
  EXPECT_NE(out.find("BSAT.All"), std::string::npos);
  EXPECT_NE(out.find("s1423_like"), std::string::npos);
}

}  // namespace
}  // namespace satdiag
