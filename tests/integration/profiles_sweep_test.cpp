// Cross-profile integration sweep: the full pipeline locates the injected
// error on every small ISCAS89-like profile.
#include <gtest/gtest.h>

#include "report/experiment.hpp"

namespace satdiag {
namespace {

class ProfileSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileSweepTest, BsatLocatesInjectedError) {
  ExperimentConfig config;
  config.circuit = GetParam();
  config.scale = 0.5;
  config.num_errors = 1;
  config.num_tests = 8;
  config.seed = 21;
  config.time_limit_seconds = 60.0;
  const auto prepared = prepare_experiment(config);
  if (!prepared) GTEST_SKIP() << "no detectable error for this seed";
  const ExperimentRow row = run_experiment(*prepared, config);
  ASSERT_TRUE(row.bsat.complete);
  ASSERT_FALSE(row.bsat.solutions.empty());
  const std::vector<GateId> site{prepared->error_sites[0]};
  bool found = false;
  for (const auto& solution : row.bsat.solutions) {
    found |= solution == site;
  }
  EXPECT_TRUE(found);
  // Paper shape within each profile: BSAT never returns more solutions
  // than COV when both completed.
  if (row.cov.complete && row.cov.quality.num_solutions > 0) {
    EXPECT_LE(row.bsat.quality.num_solutions,
              row.cov.quality.num_solutions + 5);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallProfiles, ProfileSweepTest,
                         ::testing::Values("s298_like", "s344_like",
                                           "s382_like", "s510_like",
                                           "s526_like", "s641_like",
                                           "s820_like", "s953_like"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace satdiag
