// Cross-module integration: the complete diagnosis pipeline on generated
// circuits, checking the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include <set>

#include "diag/effect.hpp"
#include "report/experiment.hpp"

namespace satdiag {
namespace {

ExperimentConfig small_config(std::uint64_t seed, std::size_t p,
                              std::size_t m) {
  ExperimentConfig config;
  config.circuit = "s298_like";
  config.scale = 1.0;
  config.num_errors = p;
  config.num_tests = m;
  config.seed = seed;
  config.time_limit_seconds = 60.0;
  return config;
}

TEST(EndToEndTest, PipelinePreparesConsistentScenario) {
  const auto prepared = prepare_experiment(small_config(1, 1, 8));
  ASSERT_TRUE(prepared.has_value());
  EXPECT_EQ(prepared->golden.size(), prepared->faulty.size());
  EXPECT_EQ(prepared->errors.size(), 1u);
  EXPECT_EQ(prepared->tests.size(), 8u);
  // Faulty and golden differ exactly at the error sites.
  std::size_t diffs = 0;
  for (GateId g = 0; g < prepared->golden.size(); ++g) {
    if (prepared->golden.type(g) != prepared->faulty.type(g)) ++diffs;
  }
  EXPECT_EQ(diffs, prepared->error_sites.size());
}

TEST(EndToEndTest, BsatSolutionsValidCovSupersetOfBehaviour) {
  const ExperimentConfig config = small_config(2, 1, 8);
  const auto prepared = prepare_experiment(config);
  ASSERT_TRUE(prepared.has_value());
  const ExperimentRow row = run_experiment(*prepared, config);

  // Lemma 1 on real data: every BSAT solution is a valid correction.
  EffectAnalyzer effect(prepared->faulty, prepared->tests);
  for (const auto& solution : row.bsat.solutions) {
    EXPECT_TRUE(effect.is_valid_correction(solution));
  }
  // BSIM marked something, and the real error site is marked.
  EXPECT_GT(row.bsim_quality.union_size, 0u);
}

TEST(EndToEndTest, InjectedErrorAmongBsatSolutions) {
  for (std::uint64_t seed : {3ULL, 4ULL, 5ULL}) {
    const ExperimentConfig config = small_config(seed, 1, 8);
    const auto prepared = prepare_experiment(config);
    ASSERT_TRUE(prepared.has_value());
    const ExperimentRow row = run_experiment(*prepared, config);
    const std::vector<GateId> site{prepared->error_sites[0]};
    bool found = false;
    for (const auto& solution : row.bsat.solutions) {
      found |= solution == site;
    }
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

TEST(EndToEndTest, QualityShapeBsatAtLeastAsGoodAsCov) {
  // Paper: "their quality is better in all cases, except ..." — allow slack:
  // across seeds, BSAT's mean avg distance is no worse than COV's on
  // average, and BSAT returns no more solutions than COV in most runs.
  double cov_sum = 0;
  double bsat_sum = 0;
  int bsat_fewer = 0;
  int rounds = 0;
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const ExperimentConfig config = small_config(seed, 1, 8);
    const auto prepared = prepare_experiment(config);
    if (!prepared) continue;
    const ExperimentRow row = run_experiment(*prepared, config);
    if (!row.cov.complete || !row.bsat.complete) continue;
    if (row.cov.quality.num_solutions == 0) continue;
    ++rounds;
    cov_sum += row.cov.quality.mean_avg;
    bsat_sum += row.bsat.quality.mean_avg;
    bsat_fewer +=
        row.bsat.quality.num_solutions <= row.cov.quality.num_solutions;
  }
  ASSERT_GT(rounds, 2);
  EXPECT_LE(bsat_sum, cov_sum + 0.5 * rounds);
  EXPECT_GE(bsat_fewer, rounds / 2);
}

TEST(EndToEndTest, RuntimeShapeBsimFastestBsatSlowest) {
  const ExperimentConfig config = small_config(20, 2, 16);
  const auto prepared = prepare_experiment(config);
  ASSERT_TRUE(prepared.has_value());
  const ExperimentRow row = run_experiment(*prepared, config);
  // BSIM alone is never slower than the full BSAT enumeration.
  EXPECT_LE(row.bsim_seconds, row.bsat.all_seconds + row.bsat.cnf_seconds);
}

TEST(EndToEndTest, TwoErrorsKTwo) {
  const ExperimentConfig config = small_config(30, 2, 8);
  const auto prepared = prepare_experiment(config);
  ASSERT_TRUE(prepared.has_value());
  const ExperimentRow row = run_experiment(*prepared, config);
  ASSERT_TRUE(row.bsat.complete);
  EXPECT_FALSE(row.bsat.solutions.empty());
  for (const auto& solution : row.bsat.solutions) {
    EXPECT_LE(solution.size(), 2u);
  }
}

TEST(EndToEndTest, SelectionSkipsApproaches) {
  const ExperimentConfig config = small_config(40, 1, 4);
  const auto prepared = prepare_experiment(config);
  ASSERT_TRUE(prepared.has_value());
  RunSelection selection;
  selection.run_bsat = false;
  const ExperimentRow row = run_experiment(*prepared, config, selection);
  EXPECT_TRUE(row.bsat.solutions.empty());
  EXPECT_EQ(row.bsat.all_seconds, 0.0);
}

TEST(EndToEndTest, BuiltinCircuitExperiment) {
  ExperimentConfig config;
  config.circuit = "s27";
  config.num_errors = 1;
  config.num_tests = 4;
  config.seed = 3;
  config.time_limit_seconds = 30.0;
  const auto prepared = prepare_experiment(config);
  ASSERT_TRUE(prepared.has_value());
  const ExperimentRow row = run_experiment(*prepared, config);
  EXPECT_TRUE(row.bsat.complete);
}

}  // namespace
}  // namespace satdiag
