// Cross-engine property test: on randomized single-error instances the five
// engines must agree on the final candidate set, in exactly the relation the
// paper's Tables 2/3 and Section 3 establish:
//
//   * BSAT(k=1) solutions  ==  {g : EffectAnalyzer::is_valid_correction({g})}
//     (Lemma 1 soundness + enumeration completeness),
//   * hybrid (seed-activity) solutions  ==  BSAT solutions (same space, the
//     BSIM seeding only steers decisions),
//   * valid singles  ⊆  X-list singles (the 01X check is a necessary
//     condition: it never rejects a valid correction),
//   * X-list singles  ==  {g in the pool : x_check({g})} (the two
//     simulation-side criteria are the same check),
//   * the injected error site appears in every one of these sets, and the
//     BSIM path-trace marks it in the union of its candidate sets.
//
// Also pins the cone-of-influence reduction: BSAT with and without the
// reduction, serial and candidate-parallel, enumerates identical solution
// sets (gates outside every erroneous output's cone are never essential).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "diag/bsim.hpp"
#include "diag/bsat.hpp"
#include "diag/effect.hpp"
#include "diag/hybrid.hpp"
#include "diag/xlist.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

struct Instance {
  Netlist golden;
  Netlist faulty;
  TestSet tests;
  GateId error_site = kNoGate;
};

std::optional<Instance> make_single_error_instance(std::uint64_t seed,
                                                   std::size_t gates,
                                                   std::size_t num_tests) {
  GeneratorParams params;
  params.name = "agree";
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = gates;
  params.seed = seed;
  Instance inst;
  inst.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed * 31 + 7);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(inst.golden, rng, inject);
  if (!errors) return std::nullopt;
  inst.error_site = error_site((*errors)[0]);
  inst.faulty = apply_errors(inst.golden, *errors);
  inst.tests = generate_failing_tests(inst.golden, *errors, num_tests, rng);
  if (inst.tests.empty()) return std::nullopt;
  return inst;
}

std::vector<GateId> flatten_singletons(
    const std::vector<std::vector<GateId>>& solutions) {
  std::vector<GateId> gates;
  for (const auto& solution : solutions) {
    EXPECT_EQ(solution.size(), 1u);
    if (!solution.empty()) gates.push_back(solution[0]);
  }
  std::sort(gates.begin(), gates.end());
  return gates;
}

bool contains(const std::vector<GateId>& sorted, GateId g) {
  return std::binary_search(sorted.begin(), sorted.end(), g);
}

TEST(EngineAgreementTest, EnginesAgreeOnSingleErrorInstances) {
  std::size_t instances = 0;
  for (std::uint64_t seed = 1; seed <= 8 && instances < 4; ++seed) {
    const auto inst = make_single_error_instance(seed * 131, 150, 6);
    if (!inst) continue;
    ++instances;
    SCOPED_TRACE("seed=" + std::to_string(seed));

    // Ground truth: exhaustive effect analysis over every combinational
    // gate (the definition of a valid single correction).
    EffectAnalyzer effect(inst->faulty, inst->tests);
    std::vector<GateId> valid_singles;
    std::vector<GateId> x_check_singles;
    for (GateId g = 0; g < inst->faulty.size(); ++g) {
      if (!inst->faulty.is_combinational(g)) continue;
      if (effect.is_valid_correction({g})) valid_singles.push_back(g);
      if (effect.x_check({g})) x_check_singles.push_back(g);
    }

    // BSAT k=1 enumerates exactly the valid singles.
    BsatOptions bsat;
    bsat.k = 1;
    const BsatResult sat = basic_sat_diagnose(inst->faulty, inst->tests, bsat);
    ASSERT_TRUE(sat.complete);
    EXPECT_EQ(flatten_singletons(sat.solutions), valid_singles);

    // Hybrid steers the same search space: identical solution set.
    HybridOptions hybrid;
    hybrid.mode = HybridMode::kSeedActivity;
    hybrid.k = 1;
    const HybridResult hyb =
        hybrid_diagnose(inst->faulty, inst->tests, hybrid);
    EXPECT_EQ(flatten_singletons(hyb.solutions), valid_singles);

    // X-list singles are the x_check criterion — and a superset of the
    // valid singles (a necessary condition never rejects a valid one).
    XListOptions xopt;
    xopt.restrict_to_fanin_cones = false;
    const auto xlist =
        xlist_single_candidates(inst->faulty, inst->tests, xopt);
    EXPECT_EQ(xlist, x_check_singles);
    EXPECT_TRUE(std::includes(xlist.begin(), xlist.end(),
                              valid_singles.begin(), valid_singles.end()));

    // The injected site is a valid correction (restoring the golden
    // function fixes every failing test), so every engine keeps it.
    EXPECT_TRUE(contains(valid_singles, inst->error_site));
    EXPECT_TRUE(contains(xlist, inst->error_site));

    // BSIM: path tracing marks ONE controlling fanin per gate, so the site
    // is not guaranteed to be marked (that is exactly the Fig. 5(a)
    // incompleteness) — but every failing test yields a non-empty candidate
    // set, and whenever a set does mark the site, the X-refinement must
    // keep it (a single error site's X provably reaches the erroneous
    // output of every failing test).
    BsimOptions bsim_options;
    bsim_options.x_refine = true;
    const BsimResult bsim =
        basic_sim_diagnose(inst->faulty, inst->tests, bsim_options, nullptr);
    for (const auto& set : bsim.candidate_sets) {
      EXPECT_FALSE(set.empty());
    }
    ASSERT_EQ(bsim.refined_sets.size(), inst->tests.size());
    for (std::size_t t = 0; t < inst->tests.size(); ++t) {
      const bool marked = std::binary_search(bsim.candidate_sets[t].begin(),
                                             bsim.candidate_sets[t].end(),
                                             inst->error_site);
      const bool kept = std::binary_search(bsim.refined_sets[t].begin(),
                                           bsim.refined_sets[t].end(),
                                           inst->error_site);
      EXPECT_EQ(marked, kept) << "test " << t;
    }
  }
  ASSERT_GE(instances, 2u) << "not enough preparable instances";
}

TEST(EngineAgreementTest, ConeOfInfluencePreservesBsatSolutions) {
  std::size_t instances = 0;
  for (std::uint64_t seed = 3; seed <= 10 && instances < 3; ++seed) {
    const auto inst = make_single_error_instance(seed * 57 + 11, 130, 5);
    if (!inst) continue;
    ++instances;
    SCOPED_TRACE("seed=" + std::to_string(seed));

    BsatOptions base;
    base.k = 2;
    std::optional<BsatResult> reference;
    for (const bool coi : {false, true}) {
      for (const std::size_t threads : {1, 2, 8}) {
        BsatOptions options = base;
        options.cone_of_influence = coi;
        options.num_threads = threads;
        const BsatResult result =
            basic_sat_diagnose(inst->faulty, inst->tests, options);
        ASSERT_TRUE(result.complete);
        if (reference) {
          EXPECT_EQ(result.solutions, reference->solutions)
              << "coi=" << coi << " threads=" << threads;
        } else {
          reference = result;
        }
      }
    }
  }
  ASSERT_GE(instances, 2u) << "not enough preparable instances";
}

}  // namespace
}  // namespace satdiag
