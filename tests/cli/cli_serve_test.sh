#!/usr/bin/env bash
# End-to-end smoke test for the `satdiag serve` daemon over real TCP:
# start the server on an ephemeral port, then drive it with a python3
# newline-delimited-JSON client covering ping, diagnose (twice, to check
# the warm artifact-cache path), metrics, a malformed frame, and a clean
# `shutdown` request. The served diagnose corrections must be identical
# to a one-shot `satdiag diagnose` run over the same fixtures.
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found (needed for the JSON client)" >&2
  exit 0
fi

"$CLI" gen --profile s298_like --seed 7 --out "$TMP/c.bench" > /dev/null
"$CLI" inject "$TMP/c.bench" --errors 1 --seed 3 \
    --out "$TMP/faulty.bench" --tests-out "$TMP/tests.txt" > /dev/null

# One-shot reference run; correction lines look like "{g12, g30}".
"$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
    --approach bsat --k 2 | grep '^{' | sort > "$TMP/oneshot.txt"
if [ ! -s "$TMP/oneshot.txt" ]; then
  echo "FAIL: one-shot diagnose produced no corrections" >&2
  exit 1
fi

"$CLI" serve --port 0 > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!

# The daemon prints "serving on 127.0.0.1:PORT" once the socket is bound.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^serving on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$TMP/serve.log" 2>/dev/null || true)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: serve exited before binding:" >&2
    cat "$TMP/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: serve never printed its port:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
fi

python3 - "$PORT" "$TMP/faulty.bench" "$TMP/tests.txt" "$TMP/oneshot.txt" <<'EOF'
import json, socket, sys

port, bench, tests, oneshot_path = sys.argv[1:5]

sock = socket.create_connection(("127.0.0.1", int(port)), timeout=30)
sock_file = sock.makefile("rw", encoding="utf-8", newline="\n")

def rpc(request):
    sock_file.write(json.dumps(request) + "\n")
    sock_file.flush()
    line = sock_file.readline()
    assert line.endswith("\n"), "response frame not newline-terminated"
    return json.loads(line)

def rpc_raw(frame):
    sock_file.write(frame + "\n")
    sock_file.flush()
    return json.loads(sock_file.readline())

def check(cond, message):
    if not cond:
        sys.exit("FAIL: " + message)

resp = rpc({"id": "p1", "command": "ping"})
check(resp.get("status") == "ok" and resp.get("id") == "p1",
      "ping failed: %r" % resp)

diagnose = {"id": "d1", "command": "diagnose", "positional": [bench],
            "args": {"tests": tests, "approach": "bsat", "k": 2}}
resp = rpc(diagnose)
check(resp.get("status") == "ok", "diagnose failed: %r" % resp)
report = resp["report"]
check(report.get("schema") == "satdiag.report",
      "unexpected report schema: %r" % report.get("schema"))
served = sorted("{%s}" % ", ".join(c)
                for c in report["result"]["corrections"])
with open(oneshot_path) as f:
    oneshot = sorted(line.strip() for line in f if line.strip())
check(served == oneshot,
      "served corrections %r != one-shot %r" % (served, oneshot))

def cache_hits():
    resp = rpc({"id": "m", "command": "metrics"})
    check(resp.get("status") == "ok", "metrics failed: %r" % resp)
    return resp["report"]["metrics"]["cache.hits"]

cold = cache_hits()
diagnose["id"] = "d2"
resp = rpc(diagnose)
check(resp.get("status") == "ok", "repeat diagnose failed: %r" % resp)
check(sorted("{%s}" % ", ".join(c)
             for c in resp["report"]["result"]["corrections"]) == oneshot,
      "repeat diagnose diverged from one-shot run")
warm = cache_hits()
check(warm > cold, "warm repeat did not raise cache.hits (%d -> %d)"
      % (cold, warm))

resp = rpc_raw("this is not json")
check(resp.get("status") == "error"
      and resp.get("error", {}).get("code") == "bad_request",
      "malformed frame not rejected as bad_request: %r" % resp)

resp = rpc({"id": "s", "command": "shutdown"})
check(resp.get("status") == "ok", "shutdown failed: %r" % resp)
print("client OK")
EOF

# The shutdown request must terminate the daemon promptly and cleanly.
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: serve still running after shutdown request" >&2
  exit 1
fi
wait "$SERVE_PID"
SERVE_PID=""
grep -q "serve: shut down" "$TMP/serve.log" || {
  echo "FAIL: missing shutdown message:" >&2
  cat "$TMP/serve.log" >&2
  exit 1
}

echo PASS
