#!/usr/bin/env bash
# Golden-file regression tests for the satdiag CLI output formats.
#
# The fixtures under tests/cli/golden/ (a small faulty circuit + its failing
# test set) are static, checked-in files; the expected outputs of
# `diagnose` (all four approaches) and `experiment --csv` are compared
# byte-for-byte after normalizing wall-clock fields, so any drift in the
# output format — solution lines, table columns, counts — fails ctest
# (`cli.golden`).
#
# Re-record after an intentional format change:
#     RECORD=1 tests/cli/cli_golden_test.sh ./build/tools/satdiag_cli \
#         tests/cli/golden
set -euo pipefail

CLI="$1"
GOLDEN_DIR="$2"
RECORD="${RECORD:-0}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

CIRCUIT="$GOLDEN_DIR/faulty.bench"
TESTS="$GOLDEN_DIR/tests.txt"
for fixture in "$CIRCUIT" "$TESTS"; do
  if [ ! -f "$fixture" ]; then
    echo "missing fixture $fixture" >&2
    exit 1
  fi
done

# Replace wall-clock numbers ("0.03s", "sim 0.01s + sat 0.02s", CSV timing
# cells) with a stable token; everything else must match exactly.
normalize() {
  sed -E 's/[0-9]+\.[0-9]+s/<T>s/g'
}
# Experiment tables: the first three columns (I, p, m) and every
# non-timing marker are stable; timing cells become <T> (a trailing '*'
# truncation marker is kept — it is semantic, not timing).
normalize_csv() {
  awk -F, 'NR == 1 { print; next }
           { for (i = 4; i <= NF; i++) sub(/[0-9]+\.[0-9]+/, "<T>", $i); print }' OFS=,
}

check() {
  local name="$1"
  local golden="$GOLDEN_DIR/$name.golden"
  if [ "$RECORD" = "1" ]; then
    cp "$TMP/$name.out" "$golden"
    echo "recorded $golden"
    return 0
  fi
  if ! diff -u "$golden" "$TMP/$name.out"; then
    echo "FAIL: $name output drifted from $golden" >&2
    echo "re-record with: RECORD=1 tests/cli/cli_golden_test.sh <cli> $GOLDEN_DIR" >&2
    exit 1
  fi
}

"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach bsim \
    | normalize > "$TMP/diagnose_bsim.out"
check diagnose_bsim

"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach cov --k 2 \
    | normalize > "$TMP/diagnose_cov.out"
check diagnose_cov

"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach bsat --k 2 \
    | normalize > "$TMP/diagnose_bsat.out"
check diagnose_bsat

"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach hybrid --k 2 \
    | normalize > "$TMP/diagnose_hybrid.out"
check diagnose_hybrid

"$CLI" stats "$CIRCUIT" > "$TMP/stats.out"
check stats

"$CLI" experiment --circuits s298_like,s526_like --errors 1 --tests 4,6 \
    --scale 0.5 --seed 3 --limit 60 --csv \
    | normalize_csv > "$TMP/experiment_csv.out"
check experiment_csv

echo PASS
