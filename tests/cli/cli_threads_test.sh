#!/usr/bin/env bash
# End-to-end CLI check of the exec/ runtime plumbing: `--threads` must be
# validated, and diagnose/experiment outputs must be bit-identical across
# thread counts (modulo the wall-clock lines, which are stripped).
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$CLI" gen --profile s526_like --seed 5 --out "$TMP/c.bench" > /dev/null
"$CLI" inject "$TMP/c.bench" --errors 2 --seed 3 \
    --out "$TMP/faulty.bench" --tests-out "$TMP/tests.txt" \
    --num-tests 6 > /dev/null

# --threads < 1 must be a hard CLI error, not a silent fallthrough.
for bad in 0 -3; do
  if "$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
      --approach bsat --threads "$bad" > /dev/null 2>&1; then
    echo "expected 'diagnose --threads $bad' to fail" >&2
    exit 1
  fi
done
if "$CLI" experiment --circuits s298_like --tests 4 --scale 0.5 \
    --threads 0 > /dev/null 2>&1; then
  echo "expected 'experiment --threads 0' to fail" >&2
  exit 1
fi

# Approaches that cannot use the runtime must reject --threads > 1 rather
# than silently running serially.
for approach in bsim cov; do
  if "$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
      --approach "$approach" --threads 2 > /dev/null 2>&1; then
    echo "expected 'diagnose --approach $approach --threads 2' to fail" >&2
    exit 1
  fi
done

# Garbage --tests entries must be a hard error, not a prefix parse.
if "$CLI" experiment --circuits s298_like --tests 8abc --scale 0.5 \
    > /dev/null 2>&1; then
  echo "expected 'experiment --tests 8abc' to fail" >&2
  exit 1
fi

# Diagnose solution lists (the '{...}' lines) are bit-identical for any
# thread count; the header line carries wall-clock times and is skipped.
for n in 1 2 8; do
  "$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
      --approach bsat --k 2 --threads "$n" | grep '^{' > "$TMP/sol_$n.txt"
done
cmp "$TMP/sol_1.txt" "$TMP/sol_2.txt"
cmp "$TMP/sol_1.txt" "$TMP/sol_8.txt"
test -s "$TMP/sol_1.txt"

# The merged --stats report must include the counters at --threads > 1.
mt_stats="$("$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
    --approach bsat --k 2 --threads 4 --stats)"
grep -q "binary_propagations:" <<< "$mt_stats"

# Experiment tables: non-timing CSV columns are thread-count invariant.
for n in 1 2; do
  "$CLI" experiment --circuits s298_like --errors 1 --tests 4 --scale 0.5 \
      --limit 30 --threads "$n" --csv | cut -d, -f1-3 > "$TMP/exp_$n.csv"
done
cmp "$TMP/exp_1.csv" "$TMP/exp_2.csv"

echo PASS
