#!/usr/bin/env bash
# End-to-end CLI check: `diagnose --stats` must print the solver counters
# (including the binary-BCP layer's binary_propagations) for SAT-backed
# approaches and reject non-SAT approaches.
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$CLI" gen --profile s298_like --seed 7 --out "$TMP/c.bench" > /dev/null
"$CLI" inject "$TMP/c.bench" --errors 1 --seed 3 \
    --out "$TMP/faulty.bench" --tests-out "$TMP/tests.txt" > /dev/null

out="$("$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
    --approach bsat --stats)"
for counter in conflicts decisions propagations binary_propagations restarts \
    inprocess_runs subsumed strengthened vivified vars_eliminated \
    failed_literals learnts_exported learnts_imported \
    cache_hits cache_misses cache_evictions cache_bytes \
    templates_built copies_stamped clauses_stamped; do
  if ! grep -q "${counter}:" <<< "$out"; then
    echo "missing counter '${counter}' in --stats output:" >&2
    echo "$out" >&2
    exit 1
  fi
done

# The default template-stamped builder must actually have stamped: one
# template for the single full-universe instance, one stamped copy per test.
if grep -qE "copies_stamped: *0\$" <<< "$out"; then
  echo "expected a non-zero copies_stamped counter:" >&2
  echo "$out" >&2
  exit 1
fi

hybrid_out="$("$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
    --approach hybrid --stats)"
grep -q "binary_propagations:" <<< "$hybrid_out"
grep -q "tier_core/mid/local:" <<< "$hybrid_out"
grep -q "cache_misses:" <<< "$hybrid_out"
grep -q "copies_stamped:" <<< "$hybrid_out"

# Simulation-only approaches have no solver stats to print.
if "$CLI" diagnose "$TMP/faulty.bench" --tests "$TMP/tests.txt" \
    --approach bsim --stats > /dev/null 2>&1; then
  echo "expected 'diagnose --approach bsim --stats' to fail" >&2
  exit 1
fi

echo PASS
