#!/usr/bin/env bash
# Golden-schema regression test for the observability artifacts
# (`--report-json`, `--trace-out`, `--stats-json`).
#
# The report's *shape* is the contract (schema "satdiag.report" v1, consumed
# by tools/bench_runner.py and CI): every numeric value is normalized to
# "<N>" and fixture paths to "<P*>", then the result is compared
# byte-for-byte against tests/cli/golden/report.golden — so adding,
# renaming, or dropping a key, a phase, a span name, or a metric fails
# ctest (`cli.report`) until the golden (and kSchemaVersion, if the change
# is incompatible) is updated deliberately.
#
# Re-record after an intentional schema change:
#     RECORD=1 tests/cli/cli_report_test.sh ./build/tools/satdiag_cli \
#         tests/cli/golden
set -euo pipefail

CLI="$1"
GOLDEN_DIR="$2"
RECORD="${RECORD:-0}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found (needed for JSON validation)" >&2
  exit 0
fi

CIRCUIT="$GOLDEN_DIR/faulty.bench"
TESTS="$GOLDEN_DIR/tests.txt"
for fixture in "$CIRCUIT" "$TESTS"; do
  if [ ! -f "$fixture" ]; then
    echo "missing fixture $fixture" >&2
    exit 1
  fi
done

"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach bsat --k 2 \
    --trace-out "$TMP/trace.json" --report-json "$TMP/report.json" \
    > /dev/null

# The trace artifact must be valid JSON (Chrome trace_event array).
python3 -m json.tool "$TMP/trace.json" > /dev/null \
  || { echo "FAIL: --trace-out is not valid JSON" >&2; exit 1; }

# The registry snapshot artifact must be valid JSON as well.
"$CLI" diagnose "$CIRCUIT" --tests "$TESTS" --approach bsat --k 2 \
    --stats-json "$TMP/stats.json" > /dev/null
python3 -m json.tool "$TMP/stats.json" > /dev/null \
  || { echo "FAIL: --stats-json is not valid JSON" >&2; exit 1; }

# Normalize the report: numbers -> "<N>" (except the semantic
# schema_version), fixture and temp paths -> "<P*>", keys sorted.
python3 - "$TMP/report.json" "$CIRCUIT" "$TESTS" "$TMP" > "$TMP/report.norm" <<'EOF'
import json, sys

paths = sys.argv[2:]

def norm(x):
    if isinstance(x, dict):
        return {k: (v if k in ("schema", "schema_version") else norm(v))
                for k, v in x.items()}
    if isinstance(x, list):
        return [norm(v) for v in x]
    if isinstance(x, bool):
        return x
    if isinstance(x, (int, float)):
        return "<N>"
    if isinstance(x, str):
        for i, p in enumerate(paths):
            x = x.replace(p, "<P%d>" % i)
        return x
    return x

with open(sys.argv[1]) as f:
    report = json.load(f)
print(json.dumps(norm(report), indent=1, sort_keys=True))
EOF

GOLDEN="$GOLDEN_DIR/report.golden"
if [ "$RECORD" = "1" ]; then
  cp "$TMP/report.norm" "$GOLDEN"
  echo "recorded $GOLDEN"
  exit 0
fi
if ! diff -u "$GOLDEN" "$TMP/report.norm"; then
  echo "FAIL: report schema drifted from $GOLDEN" >&2
  echo "re-record with: RECORD=1 tests/cli/cli_report_test.sh <cli> $GOLDEN_DIR" >&2
  exit 1
fi

echo PASS
