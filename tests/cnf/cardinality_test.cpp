#include "cnf/cardinality.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "sat/allsat.hpp"

namespace satdiag {
namespace {

using sat::LBool;
using sat::Lit;
using sat::Solver;
using sat::Var;

struct CardCase {
  CardEncoding encoding;
  unsigned n;
  unsigned bound;
};

class StaticAtMostTest : public ::testing::TestWithParam<CardCase> {};

// Property: the number of full-cube models of "at most k of n free vars"
// must be sum_{i<=k} C(n, i).
TEST_P(StaticAtMostTest, ModelCountMatchesBinomialSum) {
  const CardCase& c = GetParam();
  Solver solver;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (unsigned i = 0; i < c.n; ++i) {
    vars.push_back(solver.new_var());
    lits.push_back(sat::pos(vars.back()));
  }
  ASSERT_TRUE(encode_at_most_static(solver, lits, c.bound, c.encoding));

  sat::AllSatOptions options;
  options.block_positive_subset = false;  // count exact models
  const auto result = sat::enumerate_all(solver, vars, {}, options);
  ASSERT_TRUE(result.complete);

  std::size_t expected = 0;
  for (unsigned i = 0; i <= c.bound && i <= c.n; ++i) {
    // C(n, i)
    std::size_t binom = 1;
    for (unsigned j = 0; j < i; ++j) {
      binom = binom * (c.n - j) / (j + 1);
    }
    expected += binom;
  }
  EXPECT_EQ(result.solutions.size(), expected);
  for (const auto& model : result.solutions) {
    EXPECT_LE(model.size(), c.bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticAtMostTest,
    ::testing::Values(
        CardCase{CardEncoding::kSequential, 4, 1},
        CardCase{CardEncoding::kSequential, 5, 2},
        CardCase{CardEncoding::kSequential, 6, 3},
        CardCase{CardEncoding::kSequential, 6, 0},
        CardCase{CardEncoding::kTotalizer, 4, 1},
        CardCase{CardEncoding::kTotalizer, 5, 2},
        CardCase{CardEncoding::kTotalizer, 6, 3},
        CardCase{CardEncoding::kTotalizer, 7, 4},
        CardCase{CardEncoding::kPairwise, 4, 1},
        CardCase{CardEncoding::kPairwise, 5, 2},
        CardCase{CardEncoding::kPairwise, 6, 5}),
    [](const ::testing::TestParamInfo<CardCase>& info) {
      return std::string(card_encoding_name(info.param.encoding)) + "_n" +
             std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.bound);
    });

class TrackerTest
    : public ::testing::TestWithParam<CardEncoding> {};

TEST_P(TrackerTest, AssumptionsEnforceEveryBound) {
  const CardEncoding encoding = GetParam();
  const unsigned n = 6;
  const unsigned max_bound = 4;
  Solver solver;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (unsigned i = 0; i < n; ++i) {
    vars.push_back(solver.new_var());
    lits.push_back(sat::pos(vars.back()));
  }
  const CardinalityTracker tracker =
      encode_cardinality_tracker(solver, lits, max_bound, encoding);

  for (unsigned bound = 0; bound <= max_bound; ++bound) {
    const auto assume = tracker.assume_at_most(bound);
    // Try to exceed the bound: force bound+1 variables true.
    std::vector<Lit> forced(assume);
    for (unsigned i = 0; i <= bound && i < n; ++i) {
      forced.push_back(sat::pos(vars[i]));
    }
    if (bound + 1 <= n) {
      EXPECT_EQ(solver.solve(forced), LBool::kFalse)
          << "bound " << bound << " should forbid " << bound + 1 << " trues";
    }
    // Exactly `bound` trues must be allowed.
    std::vector<Lit> ok(assume);
    for (unsigned i = 0; i < bound; ++i) ok.push_back(sat::pos(vars[i]));
    EXPECT_EQ(solver.solve(ok), LBool::kTrue) << "bound " << bound;
  }
}

// kPairwise has no incremental tracker form; encode_cardinality_tracker
// substitutes the sequential counter (see cardinality.hpp). The sweep pins
// that the substitution still enforces every bound exactly.
INSTANTIATE_TEST_SUITE_P(AllEncodings, TrackerTest,
                         ::testing::Values(CardEncoding::kSequential,
                                           CardEncoding::kTotalizer,
                                           CardEncoding::kPairwise),
                         [](const ::testing::TestParamInfo<CardEncoding>& i) {
                           return card_encoding_name(i.param);
                         });

TEST(CardinalityTest, VacuousBoundAddsNothing) {
  Solver solver;
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(sat::pos(solver.new_var()));
  EXPECT_TRUE(encode_at_most_static(solver, lits, 3, CardEncoding::kSequential));
  EXPECT_EQ(solver.num_clauses(), 0u);
}

TEST(CardinalityTest, BoundZeroForcesAllFalse) {
  Solver solver;
  std::vector<Var> vars;
  std::vector<Lit> lits;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(solver.new_var());
    lits.push_back(sat::pos(vars.back()));
  }
  ASSERT_TRUE(encode_at_most_static(solver, lits, 0, CardEncoding::kSequential));
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  for (Var v : vars) {
    EXPECT_NE(solver.model_value(v), LBool::kTrue);
  }
  std::vector<Lit> force_one{sat::pos(vars[2])};
  EXPECT_EQ(solver.solve(force_one), LBool::kFalse);
}

TEST(CardinalityTest, TrackerEmptyInputs) {
  Solver solver;
  const CardinalityTracker tracker = encode_cardinality_tracker(
      solver, {}, 2, CardEncoding::kSequential);
  EXPECT_TRUE(tracker.assume_at_most(0).empty());
  EXPECT_EQ(solver.solve(), LBool::kTrue);
}

TEST(CardinalityTest, AssumeAtMostBeyondRangeIsEmpty) {
  Solver solver;
  std::vector<Lit> lits;
  for (int i = 0; i < 3; ++i) lits.push_back(sat::pos(solver.new_var()));
  const CardinalityTracker tracker = encode_cardinality_tracker(
      solver, lits, 2, CardEncoding::kSequential);
  EXPECT_TRUE(tracker.assume_at_most(10).empty());
}

}  // namespace
}  // namespace satdiag
