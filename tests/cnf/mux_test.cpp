#include "cnf/mux_instrument.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"

namespace satdiag {
namespace {

using sat::LBool;
using sat::Lit;

// A one-gate circuit: o = AND(a, b). Test: a=1, b=1, but the specification
// demands o = 0. Only a correction at the AND gate can satisfy this.
TEST(MuxInstrumentTest, SingleGateCorrection) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId o = nl.add_gate(GateType::kAnd, "o", {a, b});
  nl.add_output(o);
  nl.finalize();

  TestSet tests{satdiag::Test{{true, true}, 0, false}};
  DiagnosisInstanceOptions options;
  options.max_k = 1;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);

  // Without any select asserted the instance must be UNSAT.
  std::vector<Lit> all_off;
  for (sat::Var s : inst.select_var) all_off.push_back(sat::neg(s));
  EXPECT_EQ(inst.solver.solve(all_off), LBool::kFalse);

  // With the select allowed, a solution must exist and pick gate o.
  const auto assume = inst.assume_at_most(1);
  ASSERT_EQ(inst.solver.solve(assume), LBool::kTrue);
  const auto gates = inst.selected_gates_from_model();
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0], o);
}

TEST(MuxInstrumentTest, SelectSharedAcrossTests) {
  // Two tests with contradictory demands on the same gate: the correction
  // values c may differ per test (that is the point of the model).
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId o = nl.add_gate(GateType::kBuf, "o", {a});
  nl.add_output(o);
  nl.finalize();

  TestSet tests{
      satdiag::Test{{true}, 0, false},  // a=1 but o must be 0
      satdiag::Test{{false}, 0, true},  // a=0 but o must be 1
  };
  DiagnosisInstanceOptions options;
  options.max_k = 1;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);
  ASSERT_EQ(inst.num_tests(), 2u);
  const auto assume = inst.assume_at_most(1);
  ASSERT_EQ(inst.solver.solve(assume), LBool::kTrue);
  const auto gates = inst.selected_gates_from_model();
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0], o);
  // The two correction variables must take opposite values.
  const std::uint32_t sel = inst.select_index[o];
  const sat::Var c0 = inst.correction_var[0][sel];
  const sat::Var c1 = inst.correction_var[1][sel];
  EXPECT_EQ(inst.solver.model_value(c0), LBool::kFalse);
  EXPECT_EQ(inst.solver.model_value(c1), LBool::kTrue);
}

TEST(MuxInstrumentTest, GatingClausesForceCorrectionZeroWhenOff) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId o = nl.add_gate(GateType::kNot, "o", {a});
  nl.add_output(o);
  nl.finalize();
  TestSet tests{satdiag::Test{{false}, 0, true}};  // NOT(0)=1 already correct... but
  // the test demands the *correct* value, so the instance is SAT without
  // any correction; the gating clause then pins c to 0.
  DiagnosisInstanceOptions options;
  options.max_k = 1;
  options.gating_clauses = true;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);
  std::vector<Lit> all_off;
  for (sat::Var s : inst.select_var) all_off.push_back(sat::neg(s));
  ASSERT_EQ(inst.solver.solve(all_off), LBool::kTrue);
  const std::uint32_t sel = inst.select_index[o];
  EXPECT_EQ(inst.solver.model_value(inst.correction_var[0][sel]),
            LBool::kFalse);
}

TEST(MuxInstrumentTest, RestrictedInstrumentationExcludesOtherGates) {
  const FigureScenario fig = builtin_fig5b();
  const Netlist& nl = fig.circuit;
  TestSet tests{
      satdiag::Test{fig.test_vector, fig.output_index, fig.correct_value}};
  DiagnosisInstanceOptions options;
  options.max_k = 2;
  options.instrumented = {nl.find("A"), nl.find("B")};
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);
  EXPECT_EQ(inst.instrumented.size(), 2u);
  EXPECT_EQ(inst.select_index[nl.find("D")], DiagnosisInstance::kNoSelect);
  // {A,B} is a valid correction, so bound 2 must be SAT.
  const auto assume = inst.assume_at_most(2);
  ASSERT_EQ(inst.solver.solve(assume), LBool::kTrue);
  const auto gates = inst.selected_gates_from_model();
  EXPECT_EQ(gates.size(), 2u);
}

TEST(MuxInstrumentTest, InstrumentingSourceThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId o = nl.add_gate(GateType::kBuf, "o", {a});
  nl.add_output(o);
  nl.finalize();
  TestSet tests{satdiag::Test{{true}, 0, false}};
  DiagnosisInstanceOptions options;
  options.instrumented = {a};
  EXPECT_THROW(build_diagnosis_instance(nl, tests, options), NetlistError);
}

TEST(MuxInstrumentTest, CardinalityBoundsSolutionSize) {
  // Chain of two buffers; demand output flip. Both {g1}, {g2} are size-1
  // corrections; at bound 1 the model must never assert both selects.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kBuf, "g2", {g1});
  nl.add_output(g2);
  nl.finalize();
  TestSet tests{satdiag::Test{{true}, 0, false}};
  DiagnosisInstanceOptions options;
  options.max_k = 2;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, options);
  const auto assume = inst.assume_at_most(1);
  for (int round = 0; round < 3; ++round) {
    if (inst.solver.solve(assume) != sat::LBool::kTrue) break;
    EXPECT_LE(inst.selected_gates_from_model().size(), 1u);
    sat::Clause block;
    for (GateId g : inst.selected_gates_from_model()) {
      block.push_back(sat::neg(inst.select_var[inst.select_index[g]]));
    }
    if (!inst.solver.add_clause(block)) break;
  }
}

}  // namespace
}  // namespace satdiag
