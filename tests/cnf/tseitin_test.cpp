#include "cnf/tseitin.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

using sat::LBool;
using sat::Lit;
using sat::Solver;

// Property: for random input assignments, constraining the encoded inputs
// and solving yields exactly the simulated values on every gate.
void check_encoding_matches_simulation(const Netlist& nl, std::uint64_t seed) {
  Solver solver;
  const CircuitEncoding enc = encode_circuit(solver, nl);
  Rng rng(seed);

  ParallelSimulator sim(nl);
  std::vector<Lit> assumptions;
  for (GateId in : nl.inputs()) {
    const bool v = rng.next_bool();
    sim.set_source(in, v ? ~0ULL : 0ULL);
    assumptions.push_back(enc.lit(in, /*negated=*/!v));
  }
  sim.run();
  ASSERT_EQ(solver.solve(assumptions), LBool::kTrue);
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.type(g) == GateType::kDff) continue;
    const bool sim_value = sim.value_bit(g, 0);
    EXPECT_EQ(solver.model_value(enc.gate_var[g]) == LBool::kTrue, sim_value)
        << "gate " << nl.gate_name(g);
  }
}

TEST(TseitinTest, C17MatchesSimulation) {
  const Netlist c17 = builtin_c17();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    check_encoding_matches_simulation(c17, seed);
  }
}

TEST(TseitinTest, RandomCircuitMatchesSimulation) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 120;
  params.xor_fraction = 0.3;  // stress the XOR chain encoding
  params.seed = 5;
  const Netlist nl = generate_circuit(params);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_encoding_matches_simulation(nl, seed);
  }
}

TEST(TseitinTest, ConstantsEncodedAsUnits) {
  Netlist nl;
  const GateId c0 = nl.add_const(false, "c0");
  const GateId c1 = nl.add_const(true, "c1");
  const GateId g = nl.add_gate(GateType::kXor, "g", {c0, c1});
  nl.add_output(g);
  nl.finalize();
  Solver solver;
  const CircuitEncoding enc = encode_circuit(solver, nl);
  ASSERT_EQ(solver.solve(), LBool::kTrue);
  EXPECT_EQ(solver.model_value(enc.gate_var[c0]), LBool::kFalse);
  EXPECT_EQ(solver.model_value(enc.gate_var[c1]), LBool::kTrue);
  EXPECT_EQ(solver.model_value(enc.gate_var[g]), LBool::kTrue);
}

TEST(TseitinTest, EncodeGateFunctionAllTypesExhaustive) {
  // For every 2-input gate type, check all 4 input combinations by solving
  // with assumptions and comparing against eval_gate.
  for (GateType type : {GateType::kAnd, GateType::kNand, GateType::kOr,
                        GateType::kNor, GateType::kXor, GateType::kXnor}) {
    Solver solver;
    const sat::Var a = solver.new_var();
    const sat::Var b = solver.new_var();
    const sat::Var o = solver.new_var();
    const std::vector<Lit> ins{sat::pos(a), sat::pos(b)};
    encode_gate_function(solver, type, sat::pos(o), ins);
    for (int mask = 0; mask < 4; ++mask) {
      const bool va = mask & 1;
      const bool vb = mask & 2;
      std::vector<Lit> assume{Lit(a, !va), Lit(b, !vb)};
      ASSERT_EQ(solver.solve(assume), LBool::kTrue);
      EXPECT_EQ(solver.model_value(o) == LBool::kTrue,
                eval_gate(type, {va, vb}))
          << gate_type_name(type) << " mask " << mask;
    }
  }
}

TEST(TseitinTest, WideXorEncoding) {
  Solver solver;
  std::vector<Lit> ins;
  std::vector<sat::Var> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(solver.new_var());
    ins.push_back(sat::pos(vars.back()));
  }
  const sat::Var o = solver.new_var();
  encode_gate_function(solver, GateType::kXor, sat::pos(o), ins);
  // Parity of 5 inputs, spot-check a few assignments.
  for (std::uint32_t mask : {0u, 1u, 0b10101u, 0b11111u, 0b01110u}) {
    std::vector<Lit> assume;
    int ones = 0;
    for (int i = 0; i < 5; ++i) {
      const bool v = (mask >> i) & 1;
      ones += v;
      assume.push_back(Lit(vars[static_cast<std::size_t>(i)], !v));
    }
    ASSERT_EQ(solver.solve(assume), LBool::kTrue);
    EXPECT_EQ(solver.model_value(o) == LBool::kTrue, ones % 2 == 1);
  }
}

TEST(TseitinTest, InternalDecisionsFlagKeepsEquivalence) {
  const Netlist c17 = builtin_c17();
  Solver solver;
  const CircuitEncoding enc = encode_circuit(solver, c17,
                                             /*internal_decisions=*/false);
  // Fix inputs; every internal value must still be implied.
  std::vector<Lit> assumptions;
  for (GateId in : c17.inputs()) {
    assumptions.push_back(enc.lit(in, /*negated=*/false));
  }
  ASSERT_EQ(solver.solve(assumptions), LBool::kTrue);
  for (GateId g = 0; g < c17.size(); ++g) {
    EXPECT_NE(solver.model_value(enc.gate_var[g]), LBool::kUndef);
  }
}

}  // namespace
}  // namespace satdiag
