// Differential lockdown of template-stamped instance construction.
//
// The stamped builder (template_stamped=true, the default) must produce a
// clause database that is variable-for-variable and clause-for-clause
// identical to the reference walk encoder, for every instance shape: test
// counts, cone-of-influence on/off, gating clauses on/off, restricted
// instrumented universes, constrained passing outputs, and templates that
// contain unit clauses (const gates — the non-pristine solver load). On top
// of DB identity, the BSAT solution sets are pinned across builders and
// thread counts.
#include "cnf/clause_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "cnf/mux_instrument.hpp"
#include "common/diff_harness.hpp"
#include "diag/bsat.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

using sat::Clause;

std::vector<Clause> sorted_db(const DiagnosisInstance& inst) {
  std::vector<Clause> db = inst.solver.snapshot_clauses();
  std::sort(db.begin(), db.end());
  return db;
}

/// Build the instance with both builders and require an identical database.
void expect_identical(const Netlist& nl, const TestSet& tests,
                      DiagnosisInstanceOptions options) {
  options.template_stamped = false;
  const DiagnosisInstance walk = build_diagnosis_instance(nl, tests, options);
  options.template_stamped = true;
  const DiagnosisInstance stamped =
      build_diagnosis_instance(nl, tests, options);

  ASSERT_EQ(walk.solver.num_vars(), stamped.solver.num_vars());
  ASSERT_EQ(walk.solver.num_clauses(), stamped.solver.num_clauses());
  EXPECT_EQ(walk.select_var, stamped.select_var);
  EXPECT_EQ(walk.instrumented, stamped.instrumented);
  EXPECT_EQ(walk.correction_var, stamped.correction_var);
  for (std::size_t t = 0; t < tests.size(); ++t) {
    EXPECT_EQ(walk.copies[t].gate_var, stamped.copies[t].gate_var)
        << "copy " << t;
  }
  EXPECT_EQ(sorted_db(walk), sorted_db(stamped));
}

std::vector<std::vector<bool>> golden_outputs(const Netlist& nl,
                                              const TestSet& tests) {
  std::vector<std::vector<bool>> golden;
  ParallelSimulator sim(nl);
  for (const Test& test : tests) {
    sim.set_input_vector(0, test.input_values);
    sim.run();
    std::vector<bool> row;
    for (const GateId o : nl.outputs()) row.push_back(sim.value_bit(o, 0));
    // The erroneous output carries the *correct* value in the instance,
    // which on the faulty netlist differs from the simulated one; the
    // builders only read the passing outputs, so the row can stay as-is.
    golden.push_back(std::move(row));
  }
  return golden;
}

TEST(ClauseStreamTest, DbIdentityAcrossShapes) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::size_t num_tests : {std::size_t{1}, std::size_t{12}}) {
      difftest::DiffConfig config;
      config.seed = seed;
      config.gates = 180;
      config.tests = num_tests;
      const difftest::DiffInstance di = difftest::make_instance(config);

      for (const bool coi : {false, true}) {
        for (const bool gating : {false, true}) {
          DiagnosisInstanceOptions options;
          options.max_k = 2;
          options.cone_of_influence = coi;
          options.gating_clauses = gating;
          SCOPED_TRACE(config.describe() + (coi ? " coi" : " full") +
                       (gating ? " gating" : " ungated"));
          expect_identical(di.nl, di.tests, options);
        }
      }
    }
  }
}

TEST(ClauseStreamTest, DbIdentityRestrictedUniverse) {
  difftest::DiffConfig config;
  config.seed = 3;
  config.gates = 200;
  config.tests = 6;
  const difftest::DiffInstance di = difftest::make_instance(config);

  // Every other candidate gate: per-test cones then restrict further.
  DiagnosisInstanceOptions options;
  options.max_k = 2;
  for (std::size_t i = 0; i < di.pool.size(); i += 2) {
    options.instrumented.push_back(di.pool[i]);
  }
  expect_identical(di.nl, di.tests, options);
  options.cone_of_influence = true;
  expect_identical(di.nl, di.tests, options);
}

TEST(ClauseStreamTest, DbIdentityConstrainedPassingOutputs) {
  difftest::DiffConfig config;
  config.seed = 5;
  config.gates = 160;
  config.tests = 8;
  const difftest::DiffInstance di = difftest::make_instance(config);

  DiagnosisInstanceOptions options;
  options.max_k = 1;
  options.constrain_passing_outputs = true;
  options.expected_outputs = golden_outputs(di.nl, di.tests);
  expect_identical(di.nl, di.tests, options);
  // With COI, all copies share the one all-outputs cone template.
  options.cone_of_influence = true;
  expect_identical(di.nl, di.tests, options);
}

// Const gates put unit clauses into the copy template, which forces the
// solver's simplifying (non-pristine) stream load — root propagation from
// the units must leave the reachable database equal to the walk's.
TEST(ClauseStreamTest, DbIdentityWithUnitTemplates) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId c0 = nl.add_const(false, "c0");
  const GateId c1 = nl.add_const(true, "c1");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1", {a, c1});
  const GateId g2 = nl.add_gate(GateType::kOr, "g2", {b, c0});
  const GateId g3 = nl.add_gate(GateType::kXor, "g3", {g1, g2});
  const GateId o = nl.add_gate(GateType::kNand, "o", {g3, c1});
  nl.add_output(o);
  nl.finalize();

  const TestSet tests{
      satdiag::Test{{true, true}, 0, true},
      satdiag::Test{{false, true}, 0, false},
      satdiag::Test{{true, false}, 0, true},
  };
  DiagnosisInstanceOptions options;
  options.max_k = 2;
  expect_identical(nl, tests, options);
}

// Templates are cached process-wide: a second build of the same shape must
// not rebuild them, and the stamped instance must still match the walk.
TEST(ClauseStreamTest, TemplatesComeFromCacheOnRepeat) {
  difftest::DiffConfig config;
  config.seed = 11;
  config.gates = 150;
  config.tests = 4;
  const difftest::DiffInstance di = difftest::make_instance(config);

  DiagnosisInstanceOptions options;
  options.max_k = 2;
  options.template_stamped = true;
  cache::ArtifactCache::global().clear();
  reset_clause_stream_stats();
  { const auto first = build_diagnosis_instance(di.nl, di.tests, options); }
  const std::uint64_t after_first = clause_stream_stats().templates_built;
  EXPECT_GE(after_first, 1u);
  { const auto second = build_diagnosis_instance(di.nl, di.tests, options); }
  EXPECT_EQ(clause_stream_stats().templates_built, after_first);
  expect_identical(di.nl, di.tests, options);
}

// The end-to-end pin: BSAT solution sets are invariant under the builder
// choice and the enumeration thread count.
TEST(ClauseStreamTest, SolutionSetsAcrossBuildersAndThreads) {
  difftest::DiffConfig config;
  config.seed = 2;
  config.gates = 140;
  config.tests = 6;
  const difftest::DiffInstance di = difftest::make_instance(config);

  BsatOptions base;
  base.k = 2;
  base.instance.max_k = 2;

  BsatOptions walk = base;
  walk.instance.template_stamped = false;
  const BsatResult reference = basic_sat_diagnose(di.nl, di.tests, walk);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    BsatOptions stamped = base;
    stamped.instance.template_stamped = true;
    stamped.num_threads = threads;
    const BsatResult result = basic_sat_diagnose(di.nl, di.tests, stamped);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.solutions, reference.solutions)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace satdiag
