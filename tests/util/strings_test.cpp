#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

TEST(StringsTest, TrimRemovesBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, IequalsIgnoresCase) {
  EXPECT_TRUE(iequals("NAND", "nand"));
  EXPECT_TRUE(iequals("NaNd", "nAnD"));
  EXPECT_FALSE(iequals("NAND", "NOR"));
  EXPECT_FALSE(iequals("NAND", "NAN"));
}

TEST(StringsTest, ToUpper) {
  EXPECT_EQ(to_upper("dff"), "DFF");
  EXPECT_EQ(to_upper("G17"), "G17");
}

TEST(StringsTest, ParseUintAcceptsDigitsOnly) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_uint("123", v));
  EXPECT_EQ(v, 123u);
  EXPECT_TRUE(parse_uint("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(parse_uint("", v));
  EXPECT_FALSE(parse_uint("12a", v));
  EXPECT_FALSE(parse_uint("-1", v));
}

TEST(StringsTest, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strprintf("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(strprintf("empty"), "empty");
}

}  // namespace
}  // namespace satdiag
