#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace satdiag {
namespace {

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"a", "long"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.to_string();
  // Header, separator, one row.
  EXPECT_NE(out.find("a     long"), std::string::npos);
  EXPECT_NE(out.find("xxxx  1"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, ShortRowsArePadded) {
  TablePrinter t({"x", "y", "z"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "x,y,z\n1,,\n");
}

TEST(TableTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.005), "0.01");
  EXPECT_EQ(format_seconds(34.211), "34.21");
  EXPECT_EQ(format_seconds(0.0), "0.00");
}

TEST(TableTest, FormatStatHandlesNan) {
  EXPECT_EQ(format_stat(2.5), "2.50");
  EXPECT_EQ(format_stat(std::nan("")), "-");
}

}  // namespace
}  // namespace satdiag
