#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

TEST(SummaryTest, EmptySummary) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(SummaryTest, StddevIsSqrtOfVariance) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), 2.0, 1e-12);
}

}  // namespace
}  // namespace satdiag
