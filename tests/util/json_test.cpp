// Unit tests for the streaming JSON writer behind the observability
// artifacts: escaping, nesting/comma placement, compact vs indented output,
// and raw-fragment splicing (how the CLI composes the run report).
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace satdiag {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, CompactObjectWithMixedValues) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("s", "x");
  w.kv("b", true);
  w.kv("i", static_cast<std::int64_t>(-5));
  w.kv("u", static_cast<std::uint64_t>(7));
  w.key("n");
  w.null();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"s":"x","b":true,"i":-5,"u":7,"n":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("rows");
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.kv("i", i);
    w.end_object();
  }
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"rows":[{"i":0},{"i":1},[1,2]]})");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  w.kv("a", 1);
  w.key("o");
  w.begin_object();
  w.kv("b", 2);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1,\n  \"o\": {\n    \"b\": 2\n  }\n}");
}

TEST(JsonWriterTest, DoubleRoundTripsIntegralAndFractional) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_array();
  w.value(0.5);
  w.value(2.0);
  w.end_array();
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("0.5"), std::string::npos);
  EXPECT_NE(json.find("2"), std::string::npos);
}

TEST(JsonWriterTest, RawSplicesPreSerializedFragments) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("result");
  w.raw(R"({"solutions":3,"complete":true})");
  w.kv("after", 1);
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"result":{"solutions":3,"complete":true},"after":1})");
}

TEST(JsonWriterTest, EscapesKeys) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("we\"ird", 1);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"we\"ird":1})");
}

}  // namespace
}  // namespace satdiag
