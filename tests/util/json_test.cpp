// Unit tests for the streaming JSON writer behind the observability
// artifacts — escaping, nesting/comma placement, compact vs indented
// output, raw-fragment splicing (how the CLI composes the run report) —
// and for the strict reader the serve protocol parses request frames with.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <random>
#include <sstream>

namespace satdiag {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, CompactObjectWithMixedValues) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("s", "x");
  w.kv("b", true);
  w.kv("i", static_cast<std::int64_t>(-5));
  w.kv("u", static_cast<std::uint64_t>(7));
  w.key("n");
  w.null();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"s":"x","b":true,"i":-5,"u":7,"n":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("rows");
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.kv("i", i);
    w.end_object();
  }
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"rows":[{"i":0},{"i":1},[1,2]]})");
}

TEST(JsonWriterTest, IndentedOutputIsStable) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  w.kv("a", 1);
  w.key("o");
  w.begin_object();
  w.kv("b", 2);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1,\n  \"o\": {\n    \"b\": 2\n  }\n}");
}

TEST(JsonWriterTest, DoubleRoundTripsIntegralAndFractional) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_array();
  w.value(0.5);
  w.value(2.0);
  w.end_array();
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("0.5"), std::string::npos);
  EXPECT_NE(json.find("2"), std::string::npos);
}

TEST(JsonWriterTest, RawSplicesPreSerializedFragments) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("result");
  w.raw(R"({"solutions":3,"complete":true})");
  w.kv("after", 1);
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"result":{"solutions":3,"complete":true},"after":1})");
}

TEST(JsonWriterTest, EscapesKeys) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("we\"ird", 1);
  w.end_object();
  EXPECT_EQ(os.str(), R"({"we\"ird":1})");
}

// --- double round-trip (PR 10 regression: %.9g lost bits, e.g. 0.1 + 0.2
// printed as 0.3 and re-parsed as a different double) ----------------------

std::string write_double(double d) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.value(d);
  return os.str();
}

TEST(JsonWriterTest, DoubleRoundTripsKnownHardCases) {
  for (double d : {0.1, 0.1 + 0.2, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                   5e-324, 2.2250738585072014e-308, 123456789.123456789,
                   -0.0, 0.0, 1e22}) {
    const std::string text = write_double(d);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, d) << text;
    EXPECT_EQ(std::signbit(back), std::signbit(d)) << text;
  }
}

TEST(JsonWriterTest, DoubleRoundTripsRandomBitPatterns) {
  // Property test over random finite doubles: writer output must re-parse
  // to the identical value. Fixed seed keeps the suite deterministic.
  std::mt19937_64 rng(0x5eedu);
  int checked = 0;
  while (checked < 2000) {
    const double d = std::bit_cast<double>(rng());
    if (!std::isfinite(d)) continue;
    ++checked;
    const std::string text = write_double(d);
    const double back = std::strtod(text.c_str(), nullptr);
    ASSERT_EQ(back, d) << text;
  }
}

TEST(JsonWriterTest, DoubleStillPrefersShortForms) {
  // The fix must not inflate simple values to 17 digits.
  EXPECT_EQ(write_double(0.5), "0.5");
  EXPECT_EQ(write_double(2.0), "2");
  EXPECT_EQ(write_double(0.25), "0.25");
}

#ifndef NDEBUG
using JsonWriterDeathTest = ::testing::Test;

TEST(JsonWriterDeathTest, KeyOutsideObjectAsserts) {
  // PR 10 regression: key() with an empty scope stack was UB (unchecked
  // stack_.back()); Debug builds must trap it loudly.
  // GTEST_FLAG() rather than GTEST_FLAG_SET(): the latter is missing from
  // older GoogleTest releases and this spelling works on both.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.key("orphan");
      },
      "key");
}
#endif

// --- reader ---------------------------------------------------------------

JsonValue parse_ok(std::string_view text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(text, v, error)) << error;
  return v;
}

std::string parse_fail(std::string_view text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse(text, v, error)) << text;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  const JsonValue n = parse_ok("-42");
  EXPECT_TRUE(n.is_number());
  EXPECT_TRUE(n.is_integer);
  EXPECT_EQ(n.integer, -42);
  const JsonValue d = parse_ok("2.5e-1");
  EXPECT_TRUE(d.is_number());
  EXPECT_FALSE(d.is_integer);
  EXPECT_DOUBLE_EQ(d.number, 0.25);
  EXPECT_EQ(parse_ok(R"("hi")").string, "hi");
}

TEST(JsonParseTest, ParsesNestedStructure) {
  const JsonValue v = parse_ok(
      R"({"command":"diagnose","args":{"k":2},"positional":["a.bench"]})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("command"), nullptr);
  EXPECT_EQ(v.find("command")->string, "diagnose");
  const JsonValue* args = v.find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("k"), nullptr);
  EXPECT_EQ(args->find("k")->integer, 2);
  const JsonValue* pos = v.find("positional");
  ASSERT_NE(pos, nullptr);
  ASSERT_EQ(pos->array.size(), 1u);
  EXPECT_EQ(pos->array[0].string, "a.bench");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\n\t")").string, "a\"b\\c\n\t");
  EXPECT_EQ(parse_ok(R"("\u0041")").string, "A");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("\uD83D\uDE00")").string, "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RoundTripsWriterEscapedStrings) {
  const std::string nasty = "quote\" backslash\\ newline\n nul";
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.value(nasty);
  EXPECT_EQ(parse_ok(os.str()).string, nasty);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  parse_fail("");
  parse_fail("{");
  parse_fail("[1,]");
  parse_fail("{\"a\":}");
  parse_fail("{\"a\" 1}");
  parse_fail("'single'");
  parse_fail("tru");
  parse_fail("01");     // leading zero
  parse_fail("1.");     // digitless fraction
  parse_fail("+1");     // leading plus
  parse_fail("\"unterminated");
  parse_fail("\"bad\\q\"");
  parse_fail("\"\\uD83D\"");  // lone high surrogate
}

TEST(JsonParseTest, RejectsTrailingGarbage) {
  parse_fail("{} {}");
  parse_fail("1 2");
  EXPECT_TRUE(parse_ok("{}  \n ").is_object());  // trailing whitespace ok
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  const std::string error = parse_fail(R"({"a": bad})");
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(JsonParseTest, EnforcesDepthCap) {
  std::string deep;
  for (std::size_t i = 0; i < kJsonMaxDepth + 1; ++i) deep += '[';
  for (std::size_t i = 0; i < kJsonMaxDepth + 1; ++i) deep += ']';
  parse_fail(deep);
  std::string ok_depth;
  for (std::size_t i = 0; i < kJsonMaxDepth; ++i) ok_depth += '[';
  for (std::size_t i = 0; i < kJsonMaxDepth; ++i) ok_depth += ']';
  JsonValue v;
  std::string error;
  EXPECT_TRUE(json_parse(ok_depth, v, error)) << error;
}

TEST(JsonParseTest, LeavesOutputUntouchedOnFailure) {
  JsonValue v;
  v.kind = JsonValue::Kind::kString;
  v.string = "sentinel";
  std::string error;
  EXPECT_FALSE(json_parse("{bad}", v, error));
  EXPECT_EQ(v.string, "sentinel");
}

TEST(JsonParseTest, IntegerOverflowFallsBackToDouble) {
  const JsonValue v = parse_ok("99999999999999999999999");
  EXPECT_TRUE(v.is_number());
  EXPECT_FALSE(v.is_integer);
  EXPECT_GT(v.number, 9e22);
}

}  // namespace
}  // namespace satdiag
