#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace satdiag {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolProbabilityRoughlyRespected) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.25);
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/32!
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // The child stream should not simply mirror the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(29);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(31);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(31);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace satdiag
