#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  CliArgs cli;
  std::string error;
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data(), error));
  return cli;
}

TEST(CliTest, SpaceSeparatedValue) {
  auto cli = parse({"--circuit", "s1423_like"});
  EXPECT_EQ(cli.get_string("circuit", ""), "s1423_like");
}

TEST(CliTest, EqualsSeparatedValue) {
  auto cli = parse({"--tests=16"});
  EXPECT_EQ(cli.get_int("tests", 0), 16);
}

TEST(CliTest, BareBooleanFlag) {
  auto cli = parse({"--quick", "--seed", "7"});
  EXPECT_TRUE(cli.get_bool("quick", false));
  EXPECT_EQ(cli.get_int("seed", 0), 7);
}

TEST(CliTest, DefaultsWhenMissing) {
  auto cli = parse({});
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("b", false));
}

TEST(CliTest, DoubleParsing) {
  auto cli = parse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.25);
}

TEST(CliTest, BoolFalseSpellings) {
  auto cli = parse({"--a=false", "--b=0", "--c=true"});
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(CliTest, PositionalArguments) {
  auto cli = parse({"file1", "--k", "2", "file2"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(CliTest, UnusedReportsUnqueriedFlags) {
  auto cli = parse({"--typo", "1", "--used", "2"});
  EXPECT_EQ(cli.get_int("used", 0), 2);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// --- strict value parsing (PR 10 regression: "--k 2x" used to parse as 2,
// "--limit abc" as 0.0) --------------------------------------------------

TEST(CliTest, StrictIntRejectsTrailingGarbage) {
  auto cli = parse({"--k", "2x"});
  EXPECT_THROW(cli.get_int("k", 0), CliUsageError);
}

TEST(CliTest, StrictIntRejectsNonNumeric) {
  auto cli = parse({"--k", "abc"});
  EXPECT_THROW(cli.get_int("k", 0), CliUsageError);
}

TEST(CliTest, StrictIntRejectsFloatSpelling) {
  auto cli = parse({"--k", "2.5"});
  EXPECT_THROW(cli.get_int("k", 0), CliUsageError);
}

TEST(CliTest, StrictIntRejectsEmptyAndWhitespace) {
  auto cli = parse({"--a=", "--b", " 2"});
  EXPECT_THROW(cli.get_int("a", 0), CliUsageError);
  EXPECT_THROW(cli.get_int("b", 0), CliUsageError);
}

TEST(CliTest, StrictIntRejectsOverflow) {
  auto cli = parse({"--k", "99999999999999999999999"});
  EXPECT_THROW(cli.get_int("k", 0), CliUsageError);
}

TEST(CliTest, StrictIntAcceptsSigns) {
  auto cli = parse({"--a", "-7", "--b", "+7"});
  EXPECT_EQ(cli.get_int("a", 0), -7);
  EXPECT_EQ(cli.get_int("b", 0), 7);
}

TEST(CliTest, StrictIntErrorNamesFlagAndValue) {
  auto cli = parse({"--k", "2x"});
  try {
    cli.get_int("k", 0);
    FAIL() << "expected CliUsageError";
  } catch (const CliUsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--k"), std::string::npos) << what;
    EXPECT_NE(what.find("2x"), std::string::npos) << what;
  }
}

TEST(CliTest, StrictDoubleRejectsTrailingGarbage) {
  auto cli = parse({"--limit", "1.5s"});
  EXPECT_THROW(cli.get_double("limit", 0.0), CliUsageError);
}

TEST(CliTest, StrictDoubleRejectsNonNumeric) {
  auto cli = parse({"--limit", "abc"});
  EXPECT_THROW(cli.get_double("limit", 0.0), CliUsageError);
}

TEST(CliTest, StrictDoubleRejectsInfNanAndHex) {
  for (const char* bad : {"inf", "nan", "INF", "0x10", "1e999"}) {
    auto cli = parse({"--limit", bad});
    EXPECT_THROW(cli.get_double("limit", 0.0), CliUsageError) << bad;
  }
}

TEST(CliTest, StrictDoubleAcceptsScientificAndSigns) {
  auto cli = parse({"--a", "2.5e-3", "--b", "-0.25", "--c", ".5"});
  EXPECT_DOUBLE_EQ(cli.get_double("a", 0.0), 2.5e-3);
  EXPECT_DOUBLE_EQ(cli.get_double("b", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("c", 0.0), 0.5);
}

TEST(CliTest, ParseRejectsEmptyFlagName) {
  for (auto argv_tail : {"--", "--=v"}) {
    std::vector<const char*> argv{"prog", argv_tail};
    CliArgs cli;
    std::string error;
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data(), error));
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace satdiag
