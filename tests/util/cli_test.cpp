#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  CliArgs cli;
  std::string error;
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data(), error));
  return cli;
}

TEST(CliTest, SpaceSeparatedValue) {
  auto cli = parse({"--circuit", "s1423_like"});
  EXPECT_EQ(cli.get_string("circuit", ""), "s1423_like");
}

TEST(CliTest, EqualsSeparatedValue) {
  auto cli = parse({"--tests=16"});
  EXPECT_EQ(cli.get_int("tests", 0), 16);
}

TEST(CliTest, BareBooleanFlag) {
  auto cli = parse({"--quick", "--seed", "7"});
  EXPECT_TRUE(cli.get_bool("quick", false));
  EXPECT_EQ(cli.get_int("seed", 0), 7);
}

TEST(CliTest, DefaultsWhenMissing) {
  auto cli = parse({});
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("b", false));
}

TEST(CliTest, DoubleParsing) {
  auto cli = parse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.25);
}

TEST(CliTest, BoolFalseSpellings) {
  auto cli = parse({"--a=false", "--b=0", "--c=true"});
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
}

TEST(CliTest, PositionalArguments) {
  auto cli = parse({"file1", "--k", "2", "file2"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  EXPECT_EQ(cli.positional()[1], "file2");
}

TEST(CliTest, UnusedReportsUnqueriedFlags) {
  auto cli = parse({"--typo", "1", "--used", "2"});
  EXPECT_EQ(cli.get_int("used", 0), 2);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace satdiag
