#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  (void)sink;
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(TimerTest, MillisecondsMatchesSeconds) {
  Timer t;
  const double s = t.seconds();
  const double ms = t.milliseconds();
  EXPECT_GE(ms, s * 1e3 * 0.5);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e20);
}

TEST(DeadlineTest, PastDeadlineExpires) {
  const Deadline d = Deadline::after_seconds(-1.0);
  EXPECT_TRUE(d.limited());
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_seconds(60.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 30.0);
  EXPECT_LT(d.remaining_seconds(), 61.0);
}

}  // namespace
}  // namespace satdiag
