// Unit tests for the logger's optional observability prefixes: monotonic
// timestamps and exec/-lane tags (--log-times / SATDIAG_LOG_TIMES). Off by
// default so golden-tested CLI output stays byte-stable.
#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <string>

namespace satdiag {
namespace {

/// Capture what one log line writes to stderr.
std::string emit_line(const std::string& message) {
  testing::internal::CaptureStderr();
  SATDIAG_WARN() << message;
  return testing::internal::GetCapturedStderr();
}

struct LoggingFixture {
  LoggingFixture() {
    set_log_timestamps(false);
    set_log_lane(-1);
  }
  ~LoggingFixture() {
    set_log_timestamps(false);
    set_log_lane(-1);
  }
};

TEST(LoggingTest, DefaultFormatHasNoTimestamp) {
  LoggingFixture fixture;
  EXPECT_EQ(emit_line("plain"), "[satdiag W] plain\n");
}

TEST(LoggingTest, TimestampPrefixWhenEnabled) {
  LoggingFixture fixture;
  set_log_timestamps(true);
  const std::string line = emit_line("timed");
  // "[satdiag W   0.001234] timed\n" — a fixed-width seconds field.
  EXPECT_EQ(line.find("[satdiag W "), 0u);
  EXPECT_NE(line.find("] timed\n"), std::string::npos);
  EXPECT_NE(line.find('.'), std::string::npos);
  EXPECT_EQ(line.find('L'), std::string::npos);  // no lane tag set
}

TEST(LoggingTest, LaneTagOnlyShownWithTimestamps) {
  LoggingFixture fixture;
  set_log_lane(3);
  EXPECT_EQ(emit_line("no-times"), "[satdiag W] no-times\n");
  set_log_timestamps(true);
  const std::string line = emit_line("with-lane");
  EXPECT_NE(line.find(" L3] with-lane\n"), std::string::npos);
}

TEST(LoggingTest, TimestampsAreMonotone) {
  LoggingFixture fixture;
  set_log_timestamps(true);
  const auto seconds_of = [](const std::string& line) {
    // "[satdiag W <seconds>...] ..." — parse the second token.
    const std::size_t start = std::string("[satdiag W ").size();
    return std::stod(line.substr(start));
  };
  const double a = seconds_of(emit_line("a"));
  const double b = seconds_of(emit_line("b"));
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(LoggingTest, LevelGateStillApplies) {
  LoggingFixture fixture;
  set_log_timestamps(true);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  SATDIAG_WARN() << "dropped";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  set_log_level(prev);
}

}  // namespace
}  // namespace satdiag
