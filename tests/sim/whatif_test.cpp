// What-if resimulation semantics of the incremental kernel. Migrated from
// the deleted standalone EventSimulator (load_baseline / propagate / revert):
// the same role — a baseline sweep, then cheap override propagation with an
// O(touched cones) revert — is now ParallelSimulator's incremental mode
// (set_value_override / set_type_override, run(), clear_overrides()).
#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

Netlist random_circuit(std::uint64_t seed) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 150;
  params.seed = seed;
  return generate_circuit(params);
}

TEST(WhatIfTest, TypeOverridePropagationMatchesFreshSimulation) {
  const Netlist nl = random_circuit(11);
  Rng rng(2);

  std::vector<std::uint64_t> input_words(nl.inputs().size());
  ParallelSimulator sim(nl);
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    input_words[i] = rng.next_u64();
    sim.set_source(nl.inputs()[i], input_words[i]);
  }
  sim.run();  // the baseline sweep
  std::vector<std::uint64_t> baseline(sim.values().begin(),
                                      sim.values().end());

  // Pick a few gates, override their type, compare against a fresh
  // simulation with the same substitution.
  for (GateId g = 0; g < nl.size(); ++g) {
    if (!nl.is_combinational(g) || g % 13 != 0) continue;
    const GateType replacement =
        nl.type(g) == GateType::kAnd ? GateType::kOr : GateType::kAnd;
    if (!arity_ok(replacement, nl.fanins(g).size())) continue;

    sim.set_type_override(g, replacement);
    sim.run();

    ParallelSimulator check(nl);
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      check.set_source(nl.inputs()[i], input_words[i]);
    }
    check.set_type_override(g, replacement);
    check.run();
    for (GateId h = 0; h < nl.size(); ++h) {
      ASSERT_EQ(sim.value(h), check.value(h)) << "gate " << h;
    }

    // Clearing the override reverts the cone to the baseline.
    sim.clear_overrides();
    sim.run();
    for (GateId h = 0; h < nl.size(); ++h) {
      ASSERT_EQ(sim.value(h), baseline[h]) << "gate " << h;
    }
  }
}

TEST(WhatIfTest, ValueOverridePropagatesAndReverts) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  const GateId h = nl.add_gate(GateType::kNot, "h", {g});
  nl.add_output(h);
  nl.finalize();

  ParallelSimulator sim(nl);
  sim.set_source(a, 0ULL);
  sim.run();
  EXPECT_EQ(sim.value(h), ~0ULL);

  sim.set_value_override(g, ~0ULL);
  sim.run();
  EXPECT_EQ(sim.value(g), ~0ULL);
  EXPECT_EQ(sim.value(h), 0ULL);

  sim.clear_overrides();
  sim.run();
  EXPECT_EQ(sim.value(g), 0ULL);
  EXPECT_EQ(sim.value(h), ~0ULL);
}

TEST(WhatIfTest, DiffAgainstBaselineReportsFlippedPatterns) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();

  ParallelSimulator sim(nl);
  sim.set_source(a, 0b1010);
  sim.run();
  const std::uint64_t baseline = sim.value(g);
  sim.set_value_override(g, 0b1000);
  sim.run();
  EXPECT_EQ(sim.value(g) ^ baseline, 0b0010ULL);
}

TEST(WhatIfTest, NoOpOverrideLeavesAllValuesUnchanged) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.set_source(a, 0x5555ULL);
  sim.run();
  std::vector<std::uint64_t> baseline(sim.values().begin(),
                                      sim.values().end());
  // Override with the value the gate already computes: nothing changes.
  sim.set_value_override(g, 0x5555ULL);
  sim.run();
  for (GateId h = 0; h < nl.size(); ++h) {
    EXPECT_EQ(sim.value(h), baseline[h]);
  }
}

TEST(WhatIfTest, SequentialOverridesAccumulate) {
  const Netlist nl = random_circuit(21);
  Rng rng(4);
  std::vector<std::uint64_t> input_words(nl.inputs().size());
  ParallelSimulator sim(nl);
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    input_words[i] = rng.next_u64();
    sim.set_source(nl.inputs()[i], input_words[i]);
  }
  sim.run();

  // Apply two overrides one after another with a run() in between; the
  // result must equal a fresh simulation with both applied.
  GateId g1 = kNoGate;
  GateId g2 = kNoGate;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) {
      if (g1 == kNoGate) {
        g1 = g;
      } else {
        g2 = g;
        break;
      }
    }
  }
  sim.set_value_override(g1, ~0ULL);
  sim.run();
  sim.set_value_override(g2, 0ULL);
  sim.run();

  ParallelSimulator check(nl);
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    check.set_source(nl.inputs()[i], input_words[i]);
  }
  check.set_value_override(g1, ~0ULL);
  check.set_value_override(g2, 0ULL);
  check.run();
  for (GateId h = 0; h < nl.size(); ++h) {
    ASSERT_EQ(sim.value(h), check.value(h));
  }
}

}  // namespace
}  // namespace satdiag
