#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

Netlist random_circuit(std::uint64_t seed) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 150;
  params.seed = seed;
  return generate_circuit(params);
}

TEST(EventSimTest, PropagateMatchesFullResimulation) {
  const Netlist nl = random_circuit(11);
  Rng rng(2);

  ParallelSimulator full(nl);
  for (GateId in : nl.inputs()) full.set_source(in, rng.next_u64());
  full.run();

  EventSimulator event(nl);
  event.load_baseline(full.values());

  // Pick a few gates, override their type, compare against full resim.
  for (GateId g = 0; g < nl.size(); ++g) {
    if (!nl.is_combinational(g) || g % 13 != 0) continue;
    const GateType replacement =
        nl.type(g) == GateType::kAnd ? GateType::kOr : GateType::kAnd;
    if (!arity_ok(replacement, nl.fanins(g).size())) continue;

    event.set_type_override(g, replacement);
    event.propagate();

    ParallelSimulator check(nl);
    for (GateId in : nl.inputs()) check.set_source(in, full.value(in));
    check.set_type_override(g, replacement);
    check.run();
    for (GateId h = 0; h < nl.size(); ++h) {
      ASSERT_EQ(event.value(h), check.value(h)) << "gate " << h;
    }
    event.revert();
    // After revert, values equal the baseline again.
    for (GateId h = 0; h < nl.size(); ++h) {
      ASSERT_EQ(event.value(h), full.value(h));
    }
  }
}

TEST(EventSimTest, ValueOverridePropagates) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  const GateId h = nl.add_gate(GateType::kNot, "h", {g});
  nl.add_output(h);
  nl.finalize();

  ParallelSimulator full(nl);
  full.set_source(a, 0ULL);
  full.run();

  EventSimulator event(nl);
  event.load_baseline(full.values());
  EXPECT_EQ(event.value(h), ~0ULL);

  event.set_value_override(g, ~0ULL);
  event.propagate();
  EXPECT_EQ(event.value(g), ~0ULL);
  EXPECT_EQ(event.value(h), 0ULL);
  ASSERT_EQ(event.changed().size(), 2u);

  event.revert();
  EXPECT_EQ(event.value(g), 0ULL);
  EXPECT_EQ(event.value(h), ~0ULL);
  EXPECT_TRUE(event.changed().empty());
}

TEST(EventSimTest, DiffMaskReportsFlippedPatterns) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();

  ParallelSimulator full(nl);
  full.set_source(a, 0b1010);
  full.run();
  EventSimulator event(nl);
  event.load_baseline(full.values());
  event.set_value_override(g, 0b1000);
  event.propagate();
  EXPECT_EQ(event.diff_mask(g), 0b0010ULL);
}

TEST(EventSimTest, NoChangeNoEvents) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator full(nl);
  full.set_source(a, 0x5555ULL);
  full.run();
  EventSimulator event(nl);
  event.load_baseline(full.values());
  // Override with the same value: no changed gates.
  event.set_value_override(g, 0x5555ULL);
  event.propagate();
  EXPECT_TRUE(event.changed().empty());
}

TEST(EventSimTest, SequentialOverridesAccumulate) {
  const Netlist nl = random_circuit(21);
  Rng rng(4);
  ParallelSimulator full(nl);
  for (GateId in : nl.inputs()) full.set_source(in, rng.next_u64());
  full.run();
  EventSimulator event(nl);
  event.load_baseline(full.values());

  // Apply two overrides one after another; result must equal a full resim
  // with both applied.
  GateId g1 = kNoGate;
  GateId g2 = kNoGate;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) {
      if (g1 == kNoGate) {
        g1 = g;
      } else {
        g2 = g;
        break;
      }
    }
  }
  event.set_value_override(g1, ~0ULL);
  event.propagate();
  event.set_value_override(g2, 0ULL);
  event.propagate();

  ParallelSimulator check(nl);
  for (GateId in : nl.inputs()) check.set_source(in, full.value(in));
  check.set_value_override(g1, ~0ULL);
  check.set_value_override(g2, 0ULL);
  check.run();
  for (GateId h = 0; h < nl.size(); ++h) {
    ASSERT_EQ(event.value(h), check.value(h));
  }
}

}  // namespace
}  // namespace satdiag
