// Differential tests for the incremental 3-valued backend: two simulators
// over the same netlist receive identical mutation sequences — source words
// with X lanes, per-lane input vectors, X injections at random sites and
// masks, override clears — one evaluated with the dirty-cone run(), the
// other with the retained reference full-resweep path run_full(). All 64
// pattern lanes of every gate must agree after every evaluation (mirroring
// tests/sim/simulator_diff_test.cpp for the 2-valued kernel).
//
// Also pins the consumers rewired onto cone-only resim: xlist candidate
// lists and EffectAnalyzer::x_check must equal a run_full()-driven
// recomputation.
#include <gtest/gtest.h>

#include <algorithm>

#include "diag/effect.hpp"
#include "diag/xlist.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"
#include "gen/generator.hpp"
#include "netlist/scan.hpp"
#include "sim/sim3.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

Netlist random_netlist(std::uint64_t seed, std::size_t gates) {
  GeneratorParams params;
  params.name = "sim3diff";
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_gates = gates;
  params.seed = seed;
  return generate_circuit(params);
}

void expect_all_gates_equal(const ThreeValuedSimulator& inc,
                            const ThreeValuedSimulator& ref, const Netlist& nl,
                            const char* where) {
  for (GateId g = 0; g < nl.size(); ++g) {
    const Val3 a = inc.value(g);
    const Val3 b = ref.value(g);
    ASSERT_EQ(a.one, b.one) << where << ": gate " << nl.gate_name(g);
    ASSERT_EQ(a.zero, b.zero) << where << ": gate " << nl.gate_name(g);
  }
}

Val3 random_val3(Rng& rng) {
  // Random lanes of 0 / 1 / X: two disjoint rails.
  const std::uint64_t known = rng.next_u64() | rng.next_u64();  // bias known
  const std::uint64_t one = rng.next_u64() & known;
  return Val3{one, known & ~one};
}

TEST(Sim3DiffTest, RandomXSequencesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist nl = random_netlist(seed * 71, 260);
    Rng rng(seed * 13 + 3);

    std::vector<GateId> comb;
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) comb.push_back(g);
    }

    ThreeValuedSimulator inc(nl);
    ThreeValuedSimulator ref(nl);
    for (int step = 0; step < 120; ++step) {
      switch (rng.next_below(5)) {
        case 0: {  // random 3-valued word on a random primary input
          const GateId g = rng.pick(nl.inputs());
          const Val3 v = random_val3(rng);
          inc.set_source(g, v);
          ref.set_source(g, v);
          break;
        }
        case 1: {  // X injection at a random combinational gate
          const GateId g = rng.pick(comb);
          const std::uint64_t mask =
              rng.next_bool() ? ~0ULL : rng.next_u64();
          inc.inject_x(g, mask);
          ref.inject_x(g, mask);
          break;
        }
        case 2: {  // widen an existing injection or add a second site
          const GateId g = rng.pick(comb);
          inc.inject_x(g);
          ref.inject_x(g);
          break;
        }
        case 3: {
          inc.clear_overrides();
          ref.clear_overrides();
          break;
        }
        case 4: {  // one binary pattern slot of every primary input
          const std::size_t bit = rng.next_below(64);
          std::vector<bool> bits;
          bits.reserve(nl.inputs().size());
          for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
            bits.push_back(rng.next_bool());
          }
          inc.set_input_vector(bit, bits);
          ref.set_input_vector(bit, bits);
          break;
        }
      }
      if (rng.next_bool(0.7)) {
        inc.run();
        ref.run_full();
        expect_all_gates_equal(inc, ref, nl, "after run");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    inc.run();
    ref.run_full();
    expect_all_gates_equal(inc, ref, nl, "final");
  }
}

TEST(Sim3DiffTest, PerCandidateXInjectionLoopMatchesFreshSimulation) {
  // The X-list hot pattern: one injection per candidate, run, clear. The
  // incremental values must equal a from-scratch run_full() each time.
  const Netlist nl = random_netlist(77, 300);
  Rng rng(99);

  std::vector<std::vector<bool>> vectors;
  for (std::size_t b = 0; b < 8; ++b) {
    std::vector<bool> bits;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      bits.push_back(rng.next_bool());
    }
    vectors.push_back(std::move(bits));
  }

  ThreeValuedSimulator inc(nl);
  for (std::size_t b = 0; b < vectors.size(); ++b) {
    inc.set_input_vector(b, vectors[b]);
  }
  inc.run();

  for (GateId g = 0; g < nl.size(); ++g) {
    if (!nl.is_combinational(g) || g % 3 != 0) continue;
    inc.clear_overrides();
    inc.inject_x(g);
    inc.run();

    ThreeValuedSimulator fresh(nl);
    for (std::size_t b = 0; b < vectors.size(); ++b) {
      fresh.set_input_vector(b, vectors[b]);
    }
    fresh.inject_x(g);
    fresh.run_full();

    for (GateId o : nl.outputs()) {
      const Val3 a = inc.value(o);
      const Val3 b = fresh.value(o);
      ASSERT_EQ(a.one, b.one)
          << "X at " << nl.gate_name(g) << ", output " << nl.gate_name(o);
      ASSERT_EQ(a.zero, b.zero)
          << "X at " << nl.gate_name(g) << ", output " << nl.gate_name(o);
    }
  }
}

TEST(Sim3DiffTest, RunIsIdempotentWithoutChanges) {
  const Netlist nl = random_netlist(5, 150);
  ThreeValuedSimulator sim(nl);
  Rng rng(1);
  for (GateId in : nl.inputs()) sim.set_source(in, random_val3(rng));
  GateId site = kNoGate;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) site = g;
  }
  ASSERT_NE(site, kNoGate);
  sim.inject_x(site);
  sim.run();
  std::vector<Val3> snapshot;
  for (GateId g = 0; g < nl.size(); ++g) snapshot.push_back(sim.value(g));
  sim.run();
  for (GateId g = 0; g < nl.size(); ++g) {
    ASSERT_EQ(sim.value(g), snapshot[g]);
  }
}

// ---------------------------------------------------------------------------
// Consumer equality: the rewired xlist / effect loops must produce the same
// results as a run_full()-driven recomputation.

struct XListScenario {
  Netlist golden;
  Netlist faulty;
  ErrorList errors;
  TestSet tests;
};

XListScenario make_scenario(std::uint64_t seed) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 150;
  params.seed = seed;
  XListScenario s;
  s.golden = make_full_scan(generate_circuit(params)).comb;
  Rng rng(seed + 1);
  InjectorOptions inject;
  inject.num_errors = 1;
  const auto errors = inject_errors(s.golden, rng, inject);
  EXPECT_TRUE(errors.has_value());
  s.errors = *errors;
  s.faulty = apply_errors(s.golden, s.errors);
  s.tests = generate_failing_tests(s.golden, s.errors, 8, rng);
  EXPECT_FALSE(s.tests.empty());
  return s;
}

TEST(Sim3DiffTest, XListCandidatesMatchFullResweepReference) {
  const XListScenario s = make_scenario(55);
  XListOptions options;
  options.restrict_to_fanin_cones = false;  // pool = every combinational gate
  const auto candidates =
      xlist_single_candidates(s.faulty, s.tests, options);

  // Reference: the same criterion evaluated with one fresh run_full()-driven
  // simulator per candidate gate.
  std::vector<GateId> expected;
  for (GateId g = 0; g < s.faulty.size(); ++g) {
    if (!s.faulty.is_combinational(g)) continue;
    ThreeValuedSimulator sim(s.faulty);
    for (std::size_t b = 0; b < s.tests.size(); ++b) {
      sim.set_input_vector(b, s.tests[b].input_values);
    }
    sim.inject_x(g);
    sim.run_full();
    bool all = true;
    for (std::size_t b = 0; b < s.tests.size(); ++b) {
      if (!sim.value(test_output_gate(s.faulty, s.tests[b])).is_x(b)) {
        all = false;
        break;
      }
    }
    if (all) expected.push_back(g);
  }
  EXPECT_EQ(candidates, expected);
}

TEST(Sim3DiffTest, EffectXCheckMatchesFullResweepReference) {
  const XListScenario s = make_scenario(91);
  EffectAnalyzer effect(s.faulty, s.tests);

  const auto reference_x_check = [&](const std::vector<GateId>& candidate) {
    ThreeValuedSimulator sim(s.faulty);
    for (std::size_t b = 0; b < s.tests.size(); ++b) {
      sim.set_input_vector(b, s.tests[b].input_values);
    }
    for (GateId g : candidate) sim.inject_x(g);
    sim.run_full();
    for (std::size_t b = 0; b < s.tests.size(); ++b) {
      if (!sim.value(test_output_gate(s.faulty, s.tests[b])).is_x(b)) {
        return false;
      }
    }
    return true;
  };

  // Repeated calls on the persistent analyzer (the dirty-cone path) must
  // agree with a fresh full resweep for every candidate — singletons over
  // every combinational gate, then a few pairs.
  Rng rng(17);
  std::vector<GateId> comb;
  for (GateId g = 0; g < s.faulty.size(); ++g) {
    if (s.faulty.is_combinational(g)) comb.push_back(g);
  }
  for (GateId g : comb) {
    ASSERT_EQ(effect.x_check({g}), reference_x_check({g})) << "gate " << g;
  }
  for (int i = 0; i < 16; ++i) {
    const std::vector<GateId> pair{rng.pick(comb), rng.pick(comb)};
    ASSERT_EQ(effect.x_check(pair), reference_x_check(pair))
        << pair[0] << "," << pair[1];
  }
}

}  // namespace
}  // namespace satdiag
