#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "bench/builtin_circuits.hpp"
#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

TEST(SimulatorTest, SingleGateTruth) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateType::kXor, "g", {a, b});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.set_source(a, 0b1100);
  sim.set_source(b, 0b1010);
  sim.run();
  EXPECT_EQ(sim.value(g) & 0xF, 0b0110u);
}

TEST(SimulatorTest, SixtyFourPatternsInParallel) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kNot, "g", {a});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  const std::uint64_t word = 0xdeadbeefcafebabeULL;
  sim.set_source(a, word);
  sim.run();
  EXPECT_EQ(sim.value(g), ~word);
}

TEST(SimulatorTest, ConstantsAreFixed) {
  Netlist nl;
  const GateId c0 = nl.add_const(false, "c0");
  const GateId c1 = nl.add_const(true, "c1");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {c0, c1});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.run();
  EXPECT_EQ(sim.value(c0), 0ULL);
  EXPECT_EQ(sim.value(c1), ~0ULL);
  EXPECT_EQ(sim.value(g), 0ULL);
}

TEST(SimulatorTest, SetInputVectorSetsOneSlot) {
  const Netlist c17 = builtin_c17();
  ParallelSimulator sim(c17);
  sim.set_input_vector(0, {true, true, true, true, true});
  sim.set_input_vector(1, {false, false, false, false, false});
  sim.run();
  // Slot 0 and slot 1 differ somewhere on the outputs for these vectors.
  bool differ = false;
  for (GateId o : c17.outputs()) {
    differ |= sim.value_bit(o, 0) != sim.value_bit(o, 1);
  }
  EXPECT_TRUE(differ);
}

TEST(SimulatorTest, ValueOverrideForcesGate) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  const GateId h = nl.add_gate(GateType::kNot, "h", {g});
  nl.add_output(h);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.set_source(a, ~0ULL);
  sim.set_value_override(g, 0ULL);  // stuck-at-0 on g
  sim.run();
  EXPECT_EQ(sim.value(g), 0ULL);
  EXPECT_EQ(sim.value(h), ~0ULL);
  sim.clear_overrides();
  sim.run();
  EXPECT_EQ(sim.value(g), ~0ULL);
  EXPECT_EQ(sim.value(h), 0ULL);
}

TEST(SimulatorTest, TypeOverrideChangesFunction) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.set_source(a, 0b1100);
  sim.set_source(b, 0b1010);
  sim.set_type_override(g, GateType::kOr);
  sim.run();
  EXPECT_EQ(sim.value(g) & 0xF, 0b1110u);
}

TEST(SimulatorTest, SequentialStepLatchesState) {
  // ff holds NOT of itself -> toggles every cycle.
  Netlist nl;
  const GateId ff = nl.add_dff("ff");
  const GateId g = nl.add_gate(GateType::kNot, "g", {ff});
  nl.set_dff_input(ff, g);
  nl.add_input("dummy");
  nl.add_output(g);
  nl.finalize();
  ParallelSimulator sim(nl);
  sim.set_source(ff, 0ULL);
  sim.run();
  EXPECT_EQ(sim.value(g), ~0ULL);
  sim.step_state();
  sim.run();
  EXPECT_EQ(sim.value(ff), ~0ULL);
  EXPECT_EQ(sim.value(g), 0ULL);
  sim.step_state();
  sim.run();
  EXPECT_EQ(sim.value(ff), 0ULL);
}

// Property: parallel word evaluation equals 64 independent single-bit
// evaluations on a random medium circuit.
TEST(SimulatorTest, ParallelMatchesScalarOnRandomCircuit) {
  GeneratorParams params;
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_gates = 300;
  params.seed = 99;
  const Netlist nl = generate_circuit(params);
  Rng rng(5);

  ParallelSimulator par(nl);
  std::vector<std::uint64_t> input_words(nl.inputs().size());
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    input_words[i] = rng.next_u64();
    par.set_source(nl.inputs()[i], input_words[i]);
  }
  par.run();

  for (std::size_t bit : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
    ParallelSimulator scalar(nl);
    std::vector<bool> vec;
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      vec.push_back((input_words[i] >> bit) & 1ULL);
    }
    scalar.set_input_vector(0, vec);
    scalar.run();
    for (GateId o : nl.outputs()) {
      EXPECT_EQ(par.value_bit(o, bit), scalar.value_bit(o, 0)) << "bit " << bit;
    }
  }
}

}  // namespace
}  // namespace satdiag
