#include "sim/sim3.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

TEST(Val3Test, Encoding) {
  const Val3 one = Val3::all(true);
  const Val3 zero = Val3::all(false);
  const Val3 x = Val3::all_x();
  EXPECT_TRUE(one.is_one(0));
  EXPECT_FALSE(one.is_x(5));
  EXPECT_TRUE(zero.is_zero(63));
  EXPECT_TRUE(x.is_x(17));
  EXPECT_EQ(x.x_mask(), ~0ULL);
}

TEST(Val3Test, AndWithControllingZeroKillsX) {
  const Val3 ins[2] = {Val3::all(false), Val3::all_x()};
  const Val3 out = eval_gate_val3(GateType::kAnd, ins, 2);
  EXPECT_TRUE(out.is_zero(0));  // 0 AND X = 0
}

TEST(Val3Test, AndWithNonControllingOnePropagatesX) {
  const Val3 ins[2] = {Val3::all(true), Val3::all_x()};
  const Val3 out = eval_gate_val3(GateType::kAnd, ins, 2);
  EXPECT_TRUE(out.is_x(0));  // 1 AND X = X
}

TEST(Val3Test, OrWithControllingOneKillsX) {
  const Val3 ins[2] = {Val3::all(true), Val3::all_x()};
  const Val3 out = eval_gate_val3(GateType::kOr, ins, 2);
  EXPECT_TRUE(out.is_one(0));
}

TEST(Val3Test, XorAlwaysPropagatesX) {
  const Val3 ins[2] = {Val3::all(true), Val3::all_x()};
  const Val3 out = eval_gate_val3(GateType::kXor, ins, 2);
  EXPECT_TRUE(out.is_x(0));
}

TEST(Val3Test, NotSwapsRails) {
  const Val3 ins[1] = {Val3::all(false)};
  const Val3 out = eval_gate_val3(GateType::kNot, ins, 1);
  EXPECT_TRUE(out.is_one(0));
  const Val3 insx[1] = {Val3::all_x()};
  EXPECT_TRUE(eval_gate_val3(GateType::kNot, insx, 1).is_x(0));
}

TEST(Sim3Test, BinaryValuesMatchTwoValuedSimulator) {
  GeneratorParams params;
  params.num_inputs = 8;
  params.num_outputs = 4;
  params.num_gates = 200;
  params.seed = 42;
  const Netlist nl = generate_circuit(params);
  Rng rng(1);

  ParallelSimulator two(nl);
  ThreeValuedSimulator three(nl);
  for (GateId in : nl.inputs()) {
    const std::uint64_t w = rng.next_u64();
    two.set_source(in, w);
    three.set_source(in, Val3{w, ~w});
  }
  two.run();
  three.run();
  for (GateId g = 0; g < nl.size(); ++g) {
    const Val3 v = three.value(g);
    EXPECT_EQ(v.x_mask(), 0ULL) << "binary inputs must give binary values";
    EXPECT_EQ(v.one, two.value(g));
  }
}

TEST(Sim3Test, InjectedXPropagatesConservatively) {
  // chain: a -> g1=BUF -> g2=NOT -> out
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {g1});
  nl.add_output(g2);
  nl.finalize();
  ThreeValuedSimulator sim(nl);
  sim.set_source(a, Val3::all(true));
  sim.inject_x(g1);
  sim.run();
  EXPECT_TRUE(sim.value(g1).is_x(0));
  EXPECT_TRUE(sim.value(g2).is_x(0));
}

TEST(Sim3Test, XBlockedByControllingSideInput) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kBuf, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kAnd, "g2", {g1, b});
  nl.add_output(g2);
  nl.finalize();
  ThreeValuedSimulator sim(nl);
  sim.set_source(a, Val3::all(true));
  sim.set_source(b, Val3::all(false));  // controlling 0 at the AND
  sim.inject_x(g1);
  sim.run();
  EXPECT_TRUE(sim.value(g2).is_zero(0));
}

TEST(Sim3Test, PerPatternXMask) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kBuf, "g", {a});
  nl.add_output(g);
  nl.finalize();
  ThreeValuedSimulator sim(nl);
  sim.set_source(a, Val3::all(true));
  sim.inject_x(g, 0b10);  // X only in pattern slot 1
  sim.run();
  EXPECT_TRUE(sim.value(g).is_one(0));
  EXPECT_TRUE(sim.value(g).is_x(1));
}

TEST(Sim3Test, ClearOverridesRestoresBinary) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g = nl.add_gate(GateType::kNot, "g", {a});
  nl.add_output(g);
  nl.finalize();
  ThreeValuedSimulator sim(nl);
  sim.set_source(a, Val3::all(false));
  sim.inject_x(g);
  sim.run();
  EXPECT_TRUE(sim.value(g).is_x(0));
  sim.clear_overrides();
  sim.run();
  EXPECT_TRUE(sim.value(g).is_one(0));
}

}  // namespace
}  // namespace satdiag
