// Differential tests for the compiled incremental simulation kernel: two
// simulators over the same netlist receive identical mutation sequences, one
// evaluated with the dirty-cone run(), the other with the retained reference
// full-resim path run_full(). All 64 pattern lanes of every gate must agree
// after every evaluation.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "util/rng.hpp"

namespace satdiag {
namespace {

Netlist random_netlist(std::uint64_t seed, std::size_t gates,
                       std::size_t dffs) {
  GeneratorParams params;
  params.name = "diff";
  params.num_inputs = 10;
  params.num_outputs = 5;
  params.num_dffs = dffs;
  params.num_gates = gates;
  params.seed = seed;
  return generate_circuit(params);
}

void expect_all_gates_equal(const ParallelSimulator& inc,
                            const ParallelSimulator& ref, const Netlist& nl,
                            const char* where) {
  for (GateId g = 0; g < nl.size(); ++g) {
    ASSERT_EQ(inc.value(g), ref.value(g))
        << where << ": gate " << nl.gate_name(g);
  }
}

TEST(SimulatorDiffTest, RandomOverrideSequencesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Netlist nl = random_netlist(seed * 131, 260, 8);
    Rng rng(seed * 17 + 5);

    std::vector<GateId> comb;
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) comb.push_back(g);
    }

    ParallelSimulator inc(nl);
    ParallelSimulator ref(nl);
    for (int step = 0; step < 120; ++step) {
      switch (rng.next_below(6)) {
        case 0: {  // random word on a random source
          const GateId g = rng.next_bool() && !nl.dffs().empty()
                               ? rng.pick(nl.dffs())
                               : rng.pick(nl.inputs());
          const std::uint64_t word = rng.next_u64();
          inc.set_source(g, word);
          ref.set_source(g, word);
          break;
        }
        case 1: {  // stuck-at style value override
          const GateId g = rng.pick(comb);
          const std::uint64_t word =
              rng.next_bool() ? (rng.next_bool() ? ~0ULL : 0ULL)
                              : rng.next_u64();
          inc.set_value_override(g, word);
          ref.set_value_override(g, word);
          break;
        }
        case 2: {  // gate-substitution override
          const GateId g = rng.pick(comb);
          const auto pool = substitutable_types(nl.fanins(g).size());
          const GateType type = rng.pick(pool);
          inc.set_type_override(g, type);
          ref.set_type_override(g, type);
          break;
        }
        case 3: {
          inc.clear_overrides();
          ref.clear_overrides();
          break;
        }
        case 4: {
          inc.step_state();
          ref.step_state();
          break;
        }
        case 5: {  // one pattern slot of every primary input
          const std::size_t bit = rng.next_below(64);
          std::vector<bool> bits;
          bits.reserve(nl.inputs().size());
          for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
            bits.push_back(rng.next_bool());
          }
          inc.set_input_vector(bit, bits);
          ref.set_input_vector(bit, bits);
          break;
        }
      }
      if (rng.next_bool(0.7)) {
        inc.run();
        ref.run_full();
        expect_all_gates_equal(inc, ref, nl, "after run");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    inc.run();
    ref.run_full();
    expect_all_gates_equal(inc, ref, nl, "final");
  }
}

TEST(SimulatorDiffTest, PerCandidateFaultLoopMatchesFreshSimulation) {
  // The diagnosis hot pattern: one override per candidate, run, clear. The
  // incremental values must equal a from-scratch full evaluation each time.
  const Netlist nl = random_netlist(77, 300, 0);
  Rng rng(99);

  ParallelSimulator inc(nl);
  std::vector<std::uint64_t> input_words(nl.inputs().size());
  for (std::size_t i = 0; i < input_words.size(); ++i) {
    input_words[i] = rng.next_u64();
    inc.set_source(nl.inputs()[i], input_words[i]);
  }
  inc.run();

  for (GateId g = 0; g < nl.size(); ++g) {
    if (!nl.is_combinational(g)) continue;
    for (int polarity = 0; polarity < 2; ++polarity) {
      inc.set_value_override(g, polarity ? ~0ULL : 0ULL);
      inc.run();

      ParallelSimulator fresh(nl);
      for (std::size_t i = 0; i < input_words.size(); ++i) {
        fresh.set_source(nl.inputs()[i], input_words[i]);
      }
      fresh.set_value_override(g, polarity ? ~0ULL : 0ULL);
      fresh.run_full();

      for (GateId o : nl.outputs()) {
        ASSERT_EQ(inc.value(o), fresh.value(o))
            << "gate " << nl.gate_name(g) << " polarity " << polarity;
      }
      inc.clear_overrides();
    }
  }
}

TEST(SimulatorDiffTest, RunIsIdempotentWithoutChanges) {
  const Netlist nl = random_netlist(5, 150, 4);
  ParallelSimulator sim(nl);
  Rng rng(1);
  for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
  sim.run();
  std::vector<std::uint64_t> snapshot(sim.values().begin(),
                                      sim.values().end());
  sim.run();
  for (GateId g = 0; g < nl.size(); ++g) {
    ASSERT_EQ(sim.value(g), snapshot[g]);
  }
}

}  // namespace
}  // namespace satdiag
