// The lane-batched candidate X-injection mode of the unified sim3 kernel:
// LanePlan packing, the set_input_lanes broadcast, and Sim3XBatch — pinned
// against the scalar per-candidate path (and the run_full() reference) by
// the shared differential harness in tests/common/diff_harness.{hpp,cpp}.
// Suite names carry "Diff" so `ctest -R Diff` selects the randomized
// differential layer (the nightly CI job cranks SATDIAG_DIFF_ITERS up).
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "common/diff_harness.hpp"
#include "sim/compiled.hpp"
#include "sim/sim3.hpp"

namespace satdiag {
namespace {

using difftest::DiffConfig;

// ---------------------------------------------------------------------------
// LanePlan unit coverage

TEST(LanePlanTest, PacksGroupsOfPatterns) {
  const LanePlan plan = LanePlan::for_patterns(16);
  EXPECT_EQ(plan.group_size, 16u);
  EXPECT_EQ(plan.groups, 4u);
  EXPECT_EQ(plan.lane(0, 0), 0u);
  EXPECT_EQ(plan.lane(2, 5), 37u);
  EXPECT_EQ(plan.group_mask(0), 0xffffULL);
  EXPECT_EQ(plan.group_mask(3), 0xffff000000000000ULL);
  EXPECT_EQ(plan.spread(1ULL << 3), 0x0008000800080008ULL);
}

TEST(LanePlanTest, SingleTestUsesAllLanes) {
  const LanePlan plan = LanePlan::for_patterns(1);
  EXPECT_EQ(plan.groups, 64u);
  EXPECT_EQ(plan.group_mask(63), 1ULL << 63);
  EXPECT_EQ(plan.spread(1ULL), ~0ULL);
}

TEST(LanePlanTest, FullChunkDegeneratesToOneGroup) {
  const LanePlan plan = LanePlan::for_patterns(64);
  EXPECT_EQ(plan.groups, 1u);
  EXPECT_EQ(plan.group_mask(0), ~0ULL);
  EXPECT_EQ(plan.spread(0x123ULL), 0x123ULL);
}

TEST(LanePlanTest, NonDividingChunkLeavesIdleLanes) {
  const LanePlan plan = LanePlan::for_patterns(12);
  EXPECT_EQ(plan.groups, 5u);
  // Lanes 60..63 belong to no group.
  std::uint64_t covered = 0;
  for (std::size_t g = 0; g < plan.groups; ++g) {
    EXPECT_EQ(covered & plan.group_mask(g), 0u) << "groups overlap";
    covered |= plan.group_mask(g);
  }
  EXPECT_EQ(covered, (1ULL << 60) - 1);
}

// ---------------------------------------------------------------------------
// set_input_lanes broadcast

TEST(Sim3BatchTest, SetInputLanesMatchesPerLaneAssignments) {
  const DiffConfig config{.seed = 31, .gates = 120, .candidates = 8,
                          .tests = 6};
  const auto inst = difftest::make_instance(config);
  ThreeValuedSimulator broadcast(inst.nl);
  ThreeValuedSimulator scalar(inst.nl);
  const std::uint64_t lanes = 0x00ff00ff00ff00ffULL;
  broadcast.set_input_lanes(lanes, inst.tests[0].input_values);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    if ((lanes >> bit) & 1ULL) {
      scalar.set_input_vector(bit, inst.tests[0].input_values);
    }
  }
  broadcast.run();
  scalar.run();
  for (GateId g = 0; g < inst.nl.size(); ++g) {
    ASSERT_EQ(broadcast.value(g).one & lanes, scalar.value(g).one & lanes);
    ASSERT_EQ(broadcast.value(g).zero & lanes, scalar.value(g).zero & lanes);
  }
}

// ---------------------------------------------------------------------------
// Harness self-test: the shrinker must bisect a synthetic failure down to
// its exact boundary and emit the one-command repro line.

TEST(DiffHarnessTest, ShrinkReportsMinimalFailingConfig) {
  const auto synthetic = [](const DiffConfig& config) -> std::string {
    return (config.gates >= 37 && config.candidates >= 3) ? "synthetic" : "";
  };
  const ::testing::AssertionResult result = difftest::run_diff(
      "synthetic", synthetic, DiffConfig{.seed = 1, .gates = 220}, 1);
  ASSERT_FALSE(result);
  const std::string message = result.message();
  EXPECT_NE(message.find("gates=37"), std::string::npos) << message;
  EXPECT_NE(message.find("candidates=3"), std::string::npos) << message;
  EXPECT_NE(message.find("SATDIAG_DIFF_SEED=1"), std::string::npos)
      << message;
  EXPECT_NE(message.find("--gtest_filter="), std::string::npos) << message;
}

// ---------------------------------------------------------------------------
// Differential layer (randomized, shrinking harness)

TEST(Sim3BatchDiffTest, BatchedSinglesMatchScalarLoop) {
  EXPECT_TRUE(difftest::run_diff("batched singles vs scalar",
                                 difftest::check_batch_singles_vs_scalar,
                                 DiffConfig{.seed = 1000}, 8));
}

TEST(Sim3BatchDiffTest, BatchedTuplesMatchScalarLoop) {
  EXPECT_TRUE(difftest::run_diff("batched tuples vs scalar",
                                 difftest::check_batch_tuples_vs_scalar,
                                 DiffConfig{.seed = 2000}, 8));
}

TEST(Sim3BatchDiffTest, BatchedSinglesMatchRunFullReference) {
  EXPECT_TRUE(difftest::run_diff("batched singles vs run_full",
                                 difftest::check_batch_vs_run_full,
                                 DiffConfig{.seed = 3000}, 8));
}

TEST(Sim3BatchDiffTest, LanePermutationInvariance) {
  EXPECT_TRUE(difftest::run_diff(
      "lane permutation invariance",
      difftest::check_lane_permutation_invariance, DiffConfig{.seed = 4000},
      8));
}

TEST(Sim3BatchDiffTest, SingleTestChunkPacks64Candidates) {
  // tests=1 is the extreme packing: 64 candidates per sweep.
  EXPECT_TRUE(difftest::run_diff(
      "64-wide packing", difftest::check_batch_singles_vs_scalar,
      DiffConfig{.seed = 5000, .candidates = 150, .tests = 1}, 4));
}

TEST(Sim3BatchDiffTest, FullChunkDegeneratesToScalar) {
  // tests=64 leaves one candidate per sweep; the batched mode must still
  // agree with the scalar loop (capacity() == 1).
  EXPECT_TRUE(difftest::run_diff(
      "64-test chunk", difftest::check_batch_singles_vs_scalar,
      DiffConfig{.seed = 6000, .candidates = 24, .tests = 64}, 4));
}

// ---------------------------------------------------------------------------
// Batch lifecycle edges

TEST(Sim3BatchTest, EmptyBatchIsNoOp) {
  const DiffConfig config{.seed = 7, .gates = 150, .candidates = 12,
                          .tests = 4};
  const auto inst = difftest::make_instance(config);
  Sim3XBatch batch(inst.nl, inst.tests);
  std::uint64_t masks[64];
  std::fill(std::begin(masks), std::end(masks), 0xdeadbeefULL);

  // Evaluate one real batch, then an empty one, then the same real batch:
  // the empty call must leave both the masks buffer and the simulator state
  // untouched.
  const std::span<const GateId> singles(inst.singles);
  const std::size_t n = std::min(batch.capacity(), inst.singles.size());
  std::uint64_t before[64];
  batch.run_singles(singles.subspan(0, n), before);

  batch.run_singles({}, masks);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(masks[i], 0xdeadbeefULL) << "empty batch wrote masks";
  }

  std::uint64_t after[64];
  batch.run_singles(singles.subspan(0, n), after);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(before[i], after[i]) << "empty batch perturbed the simulator";
  }
}

TEST(Sim3BatchTest, PartialFinalBatchHasNoStaleLanes) {
  // A full batch followed by a 1-candidate batch: the shorter batch's idle
  // groups must not inherit the previous batch's injections, and its single
  // mask must equal the scalar answer.
  const DiffConfig config{.seed = 9, .gates = 200, .candidates = 20,
                          .tests = 8};
  const auto inst = difftest::make_instance(config);
  ASSERT_GT(inst.singles.size(), 1u);
  Sim3XBatch batch(inst.nl, inst.tests);
  const std::size_t n = std::min(batch.capacity(), inst.singles.size());

  std::uint64_t scratch[64];
  const std::span<const GateId> singles(inst.singles);
  batch.run_singles(singles.subspan(0, n), scratch);

  std::uint64_t one_mask = 0;
  batch.run_singles(singles.subspan(0, 1), &one_mask);
  const auto scalar = difftest::scalar_reach_masks(
      inst.nl, inst.tests, {{inst.singles[0]}}, /*use_run_full=*/true);
  EXPECT_EQ(one_mask, scalar[0]);

  // And a subsequent full batch still matches the scalar loop (no leakage
  // from the partial batch either).
  batch.run_singles(singles.subspan(0, n), scratch);
  const auto full_scalar = difftest::scalar_reach_masks(
      inst.nl, inst.tests,
      [&] {
        std::vector<std::vector<GateId>> tuples;
        for (std::size_t i = 0; i < n; ++i) tuples.push_back({singles[i]});
        return tuples;
      }(),
      /*use_run_full=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scratch[i], full_scalar[i]) << "candidate " << i;
  }
}

}  // namespace
}  // namespace satdiag
