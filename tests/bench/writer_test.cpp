#include "bench/bench_writer.hpp"

#include <gtest/gtest.h>

#include "bench/bench_parser.hpp"
#include "bench/builtin_circuits.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

// Round-trip equality: same counts, same names, same types, same structure.
void expect_equivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  for (GateId g = 0; g < a.size(); ++g) {
    const GateId h = b.find(a.gate_name(g));
    ASSERT_NE(h, kNoGate) << "missing gate " << a.gate_name(g);
    EXPECT_EQ(a.type(g), b.type(h));
    ASSERT_EQ(a.fanins(g).size(), b.fanins(h).size());
    for (std::size_t i = 0; i < a.fanins(g).size(); ++i) {
      EXPECT_EQ(a.gate_name(a.fanins(g)[i]), b.gate_name(b.fanins(h)[i]));
    }
  }
}

TEST(BenchWriterTest, RoundTripC17) {
  const Netlist c17 = builtin_c17();
  const Netlist back = parse_bench_string(write_bench_string(c17));
  expect_equivalent(c17, back);
}

TEST(BenchWriterTest, RoundTripS27) {
  const Netlist s27 = builtin_s27();
  const Netlist back = parse_bench_string(write_bench_string(s27));
  expect_equivalent(s27, back);
}

TEST(BenchWriterTest, RoundTripPreservesSimulation) {
  const Netlist c17 = builtin_c17();
  const Netlist back = parse_bench_string(write_bench_string(c17));
  ParallelSimulator sim_a(c17);
  ParallelSimulator sim_b(back);
  // Drive both with the same 64 random-ish patterns.
  for (std::size_t i = 0; i < c17.inputs().size(); ++i) {
    const std::uint64_t w = 0x9e3779b97f4a7c15ULL * (i + 1);
    sim_a.set_source(c17.inputs()[i], w);
    sim_b.set_source(back.find(c17.gate_name(c17.inputs()[i])), w);
  }
  sim_a.run();
  sim_b.run();
  for (std::size_t o = 0; o < c17.outputs().size(); ++o) {
    const GateId ga = c17.outputs()[o];
    const GateId gb = back.outputs()[o];
    EXPECT_EQ(sim_a.value(ga), sim_b.value(gb));
  }
}

TEST(BenchWriterTest, UnnamedGatesGetSyntheticNames) {
  Netlist nl;
  const GateId a = nl.add_input("");
  const GateId g = nl.add_gate(GateType::kNot, "", {a});
  nl.add_output(g);
  nl.finalize();
  const std::string text = write_bench_string(nl);
  EXPECT_NE(text.find("n0"), std::string::npos);
  EXPECT_NE(text.find("n1"), std::string::npos);
  // And the synthetic names parse back.
  const Netlist back = parse_bench_string(text);
  EXPECT_EQ(back.size(), 2u);
}

}  // namespace
}  // namespace satdiag
