#include "bench/bench_parser.hpp"

#include <gtest/gtest.h>

namespace satdiag {
namespace {

TEST(BenchParserTest, MinimalCircuit) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
o = AND(a, b)
)");
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  ASSERT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.type(nl.outputs()[0]), GateType::kAnd);
}

TEST(BenchParserTest, CommentsAndBlankLines) {
  const Netlist nl = parse_bench_string(R"(
# full line comment
INPUT(a)   # trailing comment

OUTPUT(o)
o = NOT(a)
)");
  EXPECT_EQ(nl.size(), 2u);
}

TEST(BenchParserTest, ForwardReferences) {
  // `o` references `mid` before its definition line.
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
o = NOT(mid)
mid = BUF(a)
)");
  EXPECT_EQ(nl.size(), 3u);
  const GateId o = nl.find("o");
  EXPECT_EQ(nl.type(o), GateType::kNot);
  EXPECT_EQ(nl.fanins(o)[0], nl.find("mid"));
}

TEST(BenchParserTest, DffFeedbackLoop) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = AND(a, q)
)");
  EXPECT_EQ(nl.dffs().size(), 1u);
  const GateId q = nl.find("q");
  EXPECT_EQ(nl.type(q), GateType::kDff);
  EXPECT_EQ(nl.fanins(q)[0], nl.find("d"));
}

TEST(BenchParserTest, BuffAliasAccepted) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
o = BUFF(a)
)");
  EXPECT_EQ(nl.type(nl.find("o")), GateType::kBuf);
}

TEST(BenchParserTest, UndefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
o = AND(a, ghost)
)"),
               BenchParseError);
}

TEST(BenchParserTest, CombinationalCycleThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = BUF(x)
)"),
               BenchParseError);
}

TEST(BenchParserTest, DuplicateDefinitionThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
o = NOT(a)
o = BUF(a)
)"),
               BenchParseError);
}

TEST(BenchParserTest, RedefiningInputThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(a)
a = NOT(a)
)"),
               BenchParseError);
}

TEST(BenchParserTest, UnknownGateTypeThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
o = MYSTERY(a)
)"),
               BenchParseError);
}

TEST(BenchParserTest, BadArityThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
o = NOT(a, b)
)"),
               BenchParseError);
}

TEST(BenchParserTest, OutputOfUndefinedSignalThrows) {
  EXPECT_THROW(parse_bench_string(R"(
INPUT(a)
OUTPUT(phantom)
)"),
               BenchParseError);
}

TEST(BenchParserTest, MalformedLineThrows) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), BenchParseError);
  EXPECT_THROW(parse_bench_string("x = AND(a\n"), BenchParseError);
}

TEST(BenchParserTest, ErrorMessagesCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\nOUTPUT(o)\no = WAT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchParserTest, MultiInputGate) {
  const Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(o)
o = NAND(a, b, c, d)
)");
  EXPECT_EQ(nl.fanins(nl.find("o")).size(), 4u);
}

}  // namespace
}  // namespace satdiag
