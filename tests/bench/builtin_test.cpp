#include "bench/builtin_circuits.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace satdiag {
namespace {

TEST(BuiltinTest, C17Shape) {
  const Netlist c17 = builtin_c17();
  EXPECT_EQ(c17.inputs().size(), 5u);
  EXPECT_EQ(c17.outputs().size(), 2u);
  EXPECT_EQ(c17.num_combinational_gates(), 6u);
  for (GateId g = 0; g < c17.size(); ++g) {
    if (c17.is_combinational(g)) {
      EXPECT_EQ(c17.type(g), GateType::kNand);
    }
  }
}

TEST(BuiltinTest, C17KnownVector) {
  const Netlist c17 = builtin_c17();
  ParallelSimulator sim(c17);
  // All-ones input: 22 = NAND(10,16), trace by hand:
  // 10 = NAND(1,3) = 0; 11 = NAND(3,6) = 0; 16 = NAND(2,11) = 1;
  // 19 = NAND(11,7) = 1; 22 = NAND(0,1) = 1; 23 = NAND(1,1) = 0.
  sim.set_input_vector(0, {true, true, true, true, true});
  sim.run();
  EXPECT_TRUE(sim.value_bit(c17.find("22"), 0));
  EXPECT_FALSE(sim.value_bit(c17.find("23"), 0));
}

TEST(BuiltinTest, S27Shape) {
  const Netlist s27 = builtin_s27();
  EXPECT_EQ(s27.inputs().size(), 4u);
  EXPECT_EQ(s27.outputs().size(), 1u);
  EXPECT_EQ(s27.dffs().size(), 3u);
  EXPECT_EQ(s27.num_combinational_gates(), 10u);
}

TEST(BuiltinTest, S27SequentialStep) {
  const Netlist s27 = builtin_s27();
  ParallelSimulator sim(s27);
  // Reset state, constant input, two clock cycles run without error.
  for (GateId ff : s27.dffs()) sim.set_source(ff, 0);
  sim.set_input_vector(0, {false, false, false, false});
  sim.run();
  sim.step_state();
  sim.run();
  SUCCEED();
}

TEST(BuiltinTest, Fig5aScenarioIsErroneous) {
  const FigureScenario s = builtin_fig5a();
  ParallelSimulator sim(s.circuit);
  sim.set_input_vector(0, s.test_vector);
  sim.run();
  const GateId out = s.circuit.outputs()[s.output_index];
  // The circuit produces the erroneous value (complement of correct_value).
  EXPECT_EQ(sim.value_bit(out, 0), !s.correct_value);
}

TEST(BuiltinTest, Fig5bScenarioIsErroneous) {
  const FigureScenario s = builtin_fig5b();
  ParallelSimulator sim(s.circuit);
  sim.set_input_vector(0, s.test_vector);
  sim.run();
  const GateId out = s.circuit.outputs()[s.output_index];
  EXPECT_EQ(sim.value_bit(out, 0), !s.correct_value);
}

TEST(BuiltinTest, MakeBuiltinKnowsAllNames) {
  for (const std::string& name : builtin_names()) {
    EXPECT_NO_THROW(make_builtin(name)) << name;
  }
  EXPECT_THROW(make_builtin("s99999"), NetlistError);
}

}  // namespace
}  // namespace satdiag
