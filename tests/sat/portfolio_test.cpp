// Seed-portfolio racing: status correctness at any thread count, loser
// cancellation through the interrupt hook, budgets, and merged counters.
#include "sat/portfolio.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "util/rng.hpp"

namespace satdiag::sat {
namespace {

std::vector<Clause> random_3sat(int num_vars, int num_clauses,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Clause> clauses;
  clauses.reserve(static_cast<std::size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    for (int l = 0; l < 3; ++l) {
      const auto v = static_cast<Var>(
          rng.next_below(static_cast<std::uint64_t>(num_vars)));
      clause.push_back(Lit(v, rng.next_bool()));
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool model_satisfies(const std::vector<Clause>& clauses,
                     const std::vector<LBool>& model) {
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Lit lit : clause) {
      if ((model[static_cast<std::size_t>(lit.var())] ^ lit.sign()) ==
          LBool::kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

TEST(PortfolioTest, SatInstanceYieldsAVerifiedModel) {
  // Loose random 3-SAT (ratio 2.0) is satisfiable with overwhelming
  // probability; the seed is pinned, so this is deterministic in practice.
  const std::vector<Clause> clauses = random_3sat(60, 120, 11);
  for (std::size_t threads : {1u, 4u}) {
    PortfolioOptions options;
    options.num_configs = 4;
    options.num_threads = threads;
    const PortfolioResult result = solve_portfolio(60, clauses, {}, options);
    ASSERT_EQ(result.status, LBool::kTrue) << "threads=" << threads;
    ASSERT_EQ(result.model.size(), 60u);
    EXPECT_LT(result.winner, 4u);
    EXPECT_TRUE(model_satisfies(clauses, result.model));
  }
}

TEST(PortfolioTest, UnsatInstanceAgreesAtEveryThreadCount) {
  // x & ~x through two forced chains.
  std::vector<Clause> clauses = {
      {pos(0)}, {neg(0), pos(1)}, {neg(1), pos(2)}, {neg(2)}};
  for (std::size_t threads : {1u, 2u, 8u}) {
    PortfolioOptions options;
    options.num_configs = 3;
    options.num_threads = threads;
    const PortfolioResult result = solve_portfolio(3, clauses, {}, options);
    EXPECT_EQ(result.status, LBool::kFalse) << "threads=" << threads;
  }
}

TEST(PortfolioTest, AssumptionsAreHonoured) {
  // (a | b) with assumption ~a forces b.
  const std::vector<Clause> clauses = {{pos(0), pos(1)}};
  const std::vector<Lit> assumptions = {neg(0)};
  PortfolioOptions options;
  options.num_configs = 2;
  const PortfolioResult result =
      solve_portfolio(2, clauses, assumptions, options);
  ASSERT_EQ(result.status, LBool::kTrue);
  EXPECT_EQ(result.model[0], LBool::kFalse);
  EXPECT_EQ(result.model[1], LBool::kTrue);
}

TEST(PortfolioTest, SingleThreadWinnerIsTheFirstConfig) {
  // Serial portfolios run configs in index order; an easy instance is
  // decided by config 0 and the rest are cancelled before they start.
  const std::vector<Clause> clauses = {{pos(0)}};
  PortfolioOptions options;
  options.num_configs = 4;
  options.num_threads = 1;
  const PortfolioResult result = solve_portfolio(1, clauses, {}, options);
  EXPECT_EQ(result.status, LBool::kTrue);
  EXPECT_EQ(result.winner, 0u);
}

TEST(PortfolioTest, ClauseSharingPreservesStatusAndModels) {
  // Restart-boundary learnt exchange between configs: the status (and model
  // validity) must be unaffected, on SAT and UNSAT instances, serial and
  // racing. Serial also pins that later configs importing earlier configs'
  // learnts stays sound.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const auto clauses = random_3sat(24, 100, seed);
    PortfolioOptions base;
    base.num_configs = 4;
    base.share_learnts = false;
    base.num_threads = 1;
    const PortfolioResult reference =
        solve_portfolio(24, clauses, {}, base);
    for (const std::size_t threads : {1u, 4u}) {
      PortfolioOptions options = base;
      options.share_learnts = true;
      options.num_threads = threads;
      const PortfolioResult result =
          solve_portfolio(24, clauses, {}, options);
      EXPECT_EQ(result.status, reference.status)
          << "seed " << seed << " threads " << threads;
      if (result.status == LBool::kTrue) {
        EXPECT_TRUE(model_satisfies(clauses, result.model));
      }
    }
  }
}

TEST(PortfolioTest, ExhaustedBudgetReportsUndef) {
  // A hard instance with a zero conflict budget: every config gives up.
  const std::vector<Clause> clauses = random_3sat(120, 511, 5);
  PortfolioOptions options;
  options.num_configs = 3;
  options.num_threads = 2;
  options.conflict_budget = 0;
  const PortfolioResult result = solve_portfolio(120, clauses, {}, options);
  EXPECT_EQ(result.status, LBool::kUndef);
  EXPECT_EQ(result.winner, 3u);  // nobody finished
}

TEST(PortfolioTest, MergedStatsAggregateAcrossConfigs) {
  const std::vector<Clause> clauses = random_3sat(100, 426, 17);
  PortfolioOptions options;
  options.num_configs = 4;
  options.num_threads = 1;  // deterministic: every config's counters merge
  const PortfolioResult result = solve_portfolio(100, clauses, {}, options);
  // In the serial race the winner cancels the remaining configs before they
  // start, but its own decisions are always counted.
  EXPECT_GT(result.stats.decisions + result.stats.propagations, 0u);
}

TEST(SolverInterruptTest, RaisedFlagMakesSolveReturnUndef) {
  Solver solver;
  for (int i = 0; i < 30; ++i) solver.new_var();
  Rng rng(23);
  for (int c = 0; c < 128; ++c) {
    Clause clause;
    for (int l = 0; l < 3; ++l) {
      clause.push_back(
          Lit(static_cast<Var>(rng.next_below(30)), rng.next_bool()));
    }
    ASSERT_TRUE(solver.add_clause(std::move(clause)));
  }
  std::atomic<bool> flag{true};
  solver.set_interrupt(&flag);
  EXPECT_EQ(solver.solve(), LBool::kUndef);
  // Detaching restores normal solving.
  solver.set_interrupt(nullptr);
  EXPECT_NE(solver.solve(), LBool::kUndef);
}

}  // namespace
}  // namespace satdiag::sat
