#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace satdiag::sat {
namespace {

TEST(DimacsTest, ParseWithHeader) {
  const auto cnf = parse_dimacs_string("p cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], pos(0));
  EXPECT_EQ(cnf.clauses[0][1], neg(1));
}

TEST(DimacsTest, ParseWithoutHeader) {
  const auto cnf = parse_dimacs_string("1 2 0\n-1 0\n");
  EXPECT_EQ(cnf.num_vars, 2);
  EXPECT_EQ(cnf.clauses.size(), 2u);
}

TEST(DimacsTest, CommentsSkipped) {
  const auto cnf = parse_dimacs_string("c hello\np cnf 1 1\nc mid\n1 0\n");
  EXPECT_EQ(cnf.clauses.size(), 1u);
}

TEST(DimacsTest, UnterminatedClauseThrows) {
  EXPECT_THROW(parse_dimacs_string("1 2"), DimacsError);
}

TEST(DimacsTest, HeaderMismatchThrows) {
  EXPECT_THROW(parse_dimacs_string("p cnf 1 2\n1 0\n"), DimacsError);
  EXPECT_THROW(parse_dimacs_string("p cnf 1 1\n2 0\n"), DimacsError);
}

TEST(DimacsTest, GarbageTokenThrows) {
  EXPECT_THROW(parse_dimacs_string("1 x 0\n"), DimacsError);
}

TEST(DimacsTest, RoundTrip) {
  const auto cnf = parse_dimacs_string("p cnf 4 3\n1 -2 0\n3 4 0\n-1 -3 0\n");
  std::ostringstream out;
  write_dimacs(out, cnf);
  const auto back = parse_dimacs_string(out.str());
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
  }
}

TEST(DimacsTest, LoadIntoSolverSat) {
  Solver s;
  const auto cnf = parse_dimacs_string("p cnf 2 2\n1 2 0\n-1 2 0\n");
  ASSERT_TRUE(load_into_solver(cnf, s));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(1), LBool::kTrue);
}

TEST(DimacsTest, LoadIntoSolverUnsat) {
  Solver s;
  const auto cnf = parse_dimacs_string("1 0\n-1 0\n");
  EXPECT_FALSE(load_into_solver(cnf, s));
}

}  // namespace
}  // namespace satdiag::sat
