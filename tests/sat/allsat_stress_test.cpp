// Stress: long enumerations add thousands of blocking clauses between
// solves, driving the learnt-DB reduction and arena GC paths while the
// model count stays exactly predictable.
#include <gtest/gtest.h>

#include <set>

#include "sat/allsat.hpp"

namespace satdiag::sat {
namespace {

TEST(AllSatStressTest, FullCubeOverTenVariablesCountsExactly) {
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(solver.new_var());
  AllSatOptions options;
  options.block_positive_subset = false;
  const auto result = enumerate_all(solver, vars, {}, options);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.solutions.size(), 1024u);
  // All distinct.
  std::set<std::vector<Var>> unique(result.solutions.begin(),
                                    result.solutions.end());
  EXPECT_EQ(unique.size(), 1024u);
}

TEST(AllSatStressTest, ConstrainedEnumerationExactCount) {
  // Exactly-one-of-4 groups, 3 groups: 4^3 = 64 models.
  Solver solver;
  std::vector<Var> vars;
  for (int g = 0; g < 3; ++g) {
    Clause at_least;
    std::vector<Var> group;
    for (int i = 0; i < 4; ++i) {
      const Var v = solver.new_var();
      vars.push_back(v);
      group.push_back(v);
      at_least.push_back(pos(v));
    }
    solver.add_clause(std::move(at_least));
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        solver.add_clause(neg(group[static_cast<std::size_t>(i)]),
                          neg(group[static_cast<std::size_t>(j)]));
      }
    }
  }
  AllSatOptions options;
  options.block_positive_subset = false;
  const auto result = enumerate_all(solver, vars, {}, options);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.solutions.size(), 64u);
  for (const auto& model : result.solutions) {
    EXPECT_EQ(model.size(), 3u);  // one asserted var per group
  }
}

TEST(AllSatStressTest, SolverRemainsUsableAfterLongEnumeration) {
  Solver solver;
  std::vector<Var> vars;
  for (int i = 0; i < 9; ++i) vars.push_back(solver.new_var());
  AllSatOptions options;
  options.block_positive_subset = false;
  const auto result = enumerate_all(solver, vars, {}, options);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.solutions.size(), 512u);
  // After exhaustive blocking the instance is UNSAT for good.
  EXPECT_EQ(solver.solve(), LBool::kFalse);
}

}  // namespace
}  // namespace satdiag::sat
