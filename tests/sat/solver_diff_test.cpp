// Differential coverage for the dedicated binary-clause BCP layer: verdicts
// on random binary-heavy CNFs (where every solver code path runs through
// BinWatcher lists and literal-tagged reasons) must match brute force, with
// models checked against the original clauses, both standalone and under
// assumptions. A DIMACS round trip keeps the corpus format honest.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sat/dimacs.hpp"
#include "util/rng.hpp"

namespace satdiag::sat {
namespace {

std::vector<Clause> random_cnf(Rng& rng, int num_vars, std::size_t num_clauses,
                               double binary_fraction) {
  std::vector<Clause> clauses;
  for (std::size_t c = 0; c < num_clauses; ++c) {
    const std::size_t len =
        rng.next_bool(binary_fraction) ? 2 : 1 + rng.next_below(3);
    Clause clause;
    for (std::size_t i = 0; i < len; ++i) {
      const Var v = static_cast<Var>(rng.next_below(
          static_cast<std::uint64_t>(num_vars)));
      clause.push_back(Lit(v, rng.next_bool()));
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool clause_satisfied(const Clause& clause, std::uint32_t assignment) {
  for (Lit l : clause) {
    const bool value = (assignment >> l.var()) & 1u;
    if (value != l.sign()) return true;
  }
  return false;
}

/// Exhaustive SAT check; optionally restricted to assignments consistent
/// with `assumptions`.
bool brute_force_sat(int num_vars, const std::vector<Clause>& clauses,
                     const std::vector<Lit>& assumptions = {}) {
  for (std::uint32_t a = 0; a < (1u << num_vars); ++a) {
    bool ok = true;
    for (Lit l : assumptions) {
      if ((((a >> l.var()) & 1u) != 0) == l.sign()) {
        ok = false;
        break;
      }
    }
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      ok = clause_satisfied(clauses[c], a);
    }
    if (ok) return true;
  }
  return false;
}

void check_model(const Solver& s, const std::vector<Clause>& clauses) {
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (Lit l : clause) satisfied |= s.model_value(l) == LBool::kTrue;
    EXPECT_TRUE(satisfied);
  }
}

TEST(SolverDiffTest, BinaryHeavyRandomCnfMatchesBruteForce) {
  Rng rng(0xb1);
  for (int iter = 0; iter < 400; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(10));
    const std::size_t num_clauses = 1 + rng.next_below(50);
    const auto clauses = random_cnf(rng, num_vars, num_clauses, 0.8);
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool loaded = true;
    for (const Clause& c : clauses) loaded = s.add_clause(c) && loaded;
    const bool expected = brute_force_sat(num_vars, clauses);
    const LBool verdict = s.solve();
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    if (verdict == LBool::kTrue) check_model(s, clauses);
  }
}

TEST(SolverDiffTest, BinaryHeavyCnfUnderAssumptionsMatchesBruteForce) {
  Rng rng(0xb2);
  for (int iter = 0; iter < 200; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(8));
    const std::size_t num_clauses = 1 + rng.next_below(40);
    const auto clauses = random_cnf(rng, num_vars, num_clauses, 0.8);
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const Clause& c : clauses) s.add_clause(c);
    // Distinct assumption variables, random polarity.
    std::vector<Lit> assumptions;
    for (Var v = 0; v < num_vars; ++v) {
      if (rng.next_bool(0.25)) assumptions.push_back(Lit(v, rng.next_bool()));
    }
    const bool expected = brute_force_sat(num_vars, clauses, assumptions);
    const LBool verdict = s.solve(assumptions);
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    if (verdict == LBool::kTrue) {
      check_model(s, clauses);
      for (Lit a : assumptions) EXPECT_EQ(s.model_value(a), LBool::kTrue);
    }
  }
}

TEST(SolverDiffTest, ImplicationChainCountsBinaryPropagations) {
  // x0 -> x1 -> ... -> x19, then assume x0: the whole chain must come from
  // the binary layer.
  Solver s;
  const int n = 20;
  for (int i = 0; i < n; ++i) s.new_var();
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(s.add_clause(neg(i), pos(i + 1)));
  }
  const std::vector<Lit> assumptions{pos(0)};
  ASSERT_EQ(s.solve(assumptions), LBool::kTrue);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(s.model_value(i), LBool::kTrue) << i;
  }
  EXPECT_GE(s.stats().binary_propagations, static_cast<std::uint64_t>(n - 1));
}

TEST(SolverDiffTest, BinaryConflictAnalysisLearnsAcrossRestarts) {
  // 2-SAT contradiction reachable only through binary reasons:
  // x0 -> x1, x1 -> x2, x0 -> x3, (x2 & x3 -> false) as (~x2 | ~x3).
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  ASSERT_TRUE(s.add_clause(neg(0), pos(1)));
  ASSERT_TRUE(s.add_clause(neg(1), pos(2)));
  ASSERT_TRUE(s.add_clause(neg(0), pos(3)));
  ASSERT_TRUE(s.add_clause(neg(2), neg(3)));
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(0)}), LBool::kFalse);
  // The conflict must implicate the single assumption.
  ASSERT_EQ(s.conflict().size(), 1u);
  EXPECT_EQ(s.conflict()[0], neg(0));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(0), LBool::kFalse);
}

std::uint32_t count_models_brute_force(int num_vars,
                                       const std::vector<Clause>& clauses) {
  std::uint32_t count = 0;
  for (std::uint32_t a = 0; a < (1u << num_vars); ++a) {
    bool ok = true;
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      ok = clause_satisfied(clauses[c], a);
    }
    count += ok ? 1 : 0;
  }
  return count;
}

TEST(SolverDiffTest, InSearchBlockingEnumeratesExactlyAllModels) {
  // block_model (in-search continuation) must visit exactly the same model
  // set as restart-based add_clause blocking — checked against brute force.
  Rng rng(0xb4);
  for (int iter = 0; iter < 60; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(7));
    const auto clauses = random_cnf(rng, num_vars, 2 + rng.next_below(16), 0.6);
    const std::uint32_t expected = count_models_brute_force(num_vars, clauses);

    for (const bool in_search : {false, true}) {
      Solver s;
      for (int v = 0; v < num_vars; ++v) s.new_var();
      bool loaded = true;
      for (const Clause& c : clauses) loaded = s.add_clause(c) && loaded;
      std::set<std::uint32_t> models;
      while (loaded && s.solve() == LBool::kTrue) {
        std::uint32_t model = 0;
        Clause blocking;
        for (Var v = 0; v < num_vars; ++v) {
          const bool val = s.model_value(v) == LBool::kTrue;
          model |= static_cast<std::uint32_t>(val) << v;
          blocking.push_back(Lit(v, val));
        }
        ASSERT_TRUE(models.insert(model).second)
            << "model revisited (iter " << iter << ")";
        const bool more = in_search ? s.block_model(std::move(blocking))
                                    : s.add_clause(std::move(blocking));
        if (!more) break;
      }
      EXPECT_EQ(models.size(), expected)
          << "iter " << iter << " in_search=" << in_search;
    }
  }
}

TEST(SolverDiffTest, DimacsRoundTripPreservesVerdicts) {
  Rng rng(0xb3);
  for (int iter = 0; iter < 50; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(8));
    CnfFormula cnf;
    cnf.num_vars = num_vars;
    cnf.clauses = random_cnf(rng, num_vars, 5 + rng.next_below(30), 0.7);

    std::ostringstream out;
    write_dimacs(out, cnf);
    const CnfFormula parsed = parse_dimacs_string(out.str());

    Solver direct;
    for (int v = 0; v < num_vars; ++v) direct.new_var();
    for (const Clause& c : cnf.clauses) direct.add_clause(c);
    Solver reparsed;
    load_into_solver(parsed, reparsed);

    const bool expected = brute_force_sat(num_vars, cnf.clauses);
    EXPECT_EQ(direct.solve() == LBool::kTrue, expected) << "iter " << iter;
    EXPECT_EQ(reparsed.solve() == LBool::kTrue, expected) << "iter " << iter;
  }
}

}  // namespace
}  // namespace satdiag::sat
