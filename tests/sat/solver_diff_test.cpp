// Differential coverage for the dedicated binary-clause BCP layer: verdicts
// on random binary-heavy CNFs (where every solver code path runs through
// BinWatcher lists and literal-tagged reasons) must match brute force, with
// models checked against the original clauses, both standalone and under
// assumptions. A DIMACS round trip keeps the corpus format honest.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/diff_harness.hpp"
#include "sat/dimacs.hpp"
#include "util/rng.hpp"

namespace satdiag::sat {
namespace {

std::vector<Clause> random_cnf(Rng& rng, int num_vars, std::size_t num_clauses,
                               double binary_fraction) {
  std::vector<Clause> clauses;
  for (std::size_t c = 0; c < num_clauses; ++c) {
    const std::size_t len =
        rng.next_bool(binary_fraction) ? 2 : 1 + rng.next_below(3);
    Clause clause;
    for (std::size_t i = 0; i < len; ++i) {
      const Var v = static_cast<Var>(rng.next_below(
          static_cast<std::uint64_t>(num_vars)));
      clause.push_back(Lit(v, rng.next_bool()));
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool clause_satisfied(const Clause& clause, std::uint32_t assignment) {
  for (Lit l : clause) {
    const bool value = (assignment >> l.var()) & 1u;
    if (value != l.sign()) return true;
  }
  return false;
}

/// Exhaustive SAT check; optionally restricted to assignments consistent
/// with `assumptions`.
bool brute_force_sat(int num_vars, const std::vector<Clause>& clauses,
                     const std::vector<Lit>& assumptions = {}) {
  for (std::uint32_t a = 0; a < (1u << num_vars); ++a) {
    bool ok = true;
    for (Lit l : assumptions) {
      if ((((a >> l.var()) & 1u) != 0) == l.sign()) {
        ok = false;
        break;
      }
    }
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      ok = clause_satisfied(clauses[c], a);
    }
    if (ok) return true;
  }
  return false;
}

void check_model(const Solver& s, const std::vector<Clause>& clauses) {
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (Lit l : clause) satisfied |= s.model_value(l) == LBool::kTrue;
    EXPECT_TRUE(satisfied);
  }
}

TEST(SolverDiffTest, BinaryHeavyRandomCnfMatchesBruteForce) {
  Rng rng(0xb1);
  for (int iter = 0; iter < 400; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(10));
    const std::size_t num_clauses = 1 + rng.next_below(50);
    const auto clauses = random_cnf(rng, num_vars, num_clauses, 0.8);
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool loaded = true;
    for (const Clause& c : clauses) loaded = s.add_clause(c) && loaded;
    const bool expected = brute_force_sat(num_vars, clauses);
    const LBool verdict = s.solve();
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    if (verdict == LBool::kTrue) check_model(s, clauses);
  }
}

TEST(SolverDiffTest, BinaryHeavyCnfUnderAssumptionsMatchesBruteForce) {
  Rng rng(0xb2);
  for (int iter = 0; iter < 200; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(8));
    const std::size_t num_clauses = 1 + rng.next_below(40);
    const auto clauses = random_cnf(rng, num_vars, num_clauses, 0.8);
    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const Clause& c : clauses) s.add_clause(c);
    // Distinct assumption variables, random polarity.
    std::vector<Lit> assumptions;
    for (Var v = 0; v < num_vars; ++v) {
      if (rng.next_bool(0.25)) assumptions.push_back(Lit(v, rng.next_bool()));
    }
    const bool expected = brute_force_sat(num_vars, clauses, assumptions);
    const LBool verdict = s.solve(assumptions);
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    if (verdict == LBool::kTrue) {
      check_model(s, clauses);
      for (Lit a : assumptions) EXPECT_EQ(s.model_value(a), LBool::kTrue);
    }
  }
}

TEST(SolverDiffTest, ImplicationChainCountsBinaryPropagations) {
  // x0 -> x1 -> ... -> x19, then assume x0: the whole chain must come from
  // the binary layer.
  Solver s;
  const int n = 20;
  for (int i = 0; i < n; ++i) s.new_var();
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(s.add_clause(neg(i), pos(i + 1)));
  }
  const std::vector<Lit> assumptions{pos(0)};
  ASSERT_EQ(s.solve(assumptions), LBool::kTrue);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(s.model_value(i), LBool::kTrue) << i;
  }
  EXPECT_GE(s.stats().binary_propagations, static_cast<std::uint64_t>(n - 1));
}

TEST(SolverDiffTest, BinaryConflictAnalysisLearnsAcrossRestarts) {
  // 2-SAT contradiction reachable only through binary reasons:
  // x0 -> x1, x1 -> x2, x0 -> x3, (x2 & x3 -> false) as (~x2 | ~x3).
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  ASSERT_TRUE(s.add_clause(neg(0), pos(1)));
  ASSERT_TRUE(s.add_clause(neg(1), pos(2)));
  ASSERT_TRUE(s.add_clause(neg(0), pos(3)));
  ASSERT_TRUE(s.add_clause(neg(2), neg(3)));
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(0)}), LBool::kFalse);
  // The conflict must implicate the single assumption.
  ASSERT_EQ(s.conflict().size(), 1u);
  EXPECT_EQ(s.conflict()[0], neg(0));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(0), LBool::kFalse);
}

std::uint32_t count_models_brute_force(int num_vars,
                                       const std::vector<Clause>& clauses) {
  std::uint32_t count = 0;
  for (std::uint32_t a = 0; a < (1u << num_vars); ++a) {
    bool ok = true;
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      ok = clause_satisfied(clauses[c], a);
    }
    count += ok ? 1 : 0;
  }
  return count;
}

TEST(SolverDiffTest, InSearchBlockingEnumeratesExactlyAllModels) {
  // block_model (in-search continuation) must visit exactly the same model
  // set as restart-based add_clause blocking — checked against brute force.
  Rng rng(0xb4);
  for (int iter = 0; iter < 60; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(7));
    const auto clauses = random_cnf(rng, num_vars, 2 + rng.next_below(16), 0.6);
    const std::uint32_t expected = count_models_brute_force(num_vars, clauses);

    for (const bool in_search : {false, true}) {
      Solver s;
      for (int v = 0; v < num_vars; ++v) s.new_var();
      bool loaded = true;
      for (const Clause& c : clauses) loaded = s.add_clause(c) && loaded;
      std::set<std::uint32_t> models;
      while (loaded && s.solve() == LBool::kTrue) {
        std::uint32_t model = 0;
        Clause blocking;
        for (Var v = 0; v < num_vars; ++v) {
          const bool val = s.model_value(v) == LBool::kTrue;
          model |= static_cast<std::uint32_t>(val) << v;
          blocking.push_back(Lit(v, val));
        }
        ASSERT_TRUE(models.insert(model).second)
            << "model revisited (iter " << iter << ")";
        const bool more = in_search ? s.block_model(std::move(blocking))
                                    : s.add_clause(std::move(blocking));
        if (!more) break;
      }
      EXPECT_EQ(models.size(), expected)
          << "iter " << iter << " in_search=" << in_search;
    }
  }
}

/// An InprocessConfig that fires the whole pipeline before the first search
/// segment and between every pair of restarts.
InprocessConfig aggressive_inprocess() {
  InprocessConfig cfg;
  cfg.enabled = true;
  cfg.first_conflicts = 0;
  cfg.interval_conflicts = 1;
  return cfg;
}

TEST(SolverDiffTest, InprocessingOnAndOffMatchBruteForce) {
  // Same corpus through an inprocessing-disabled and a maximally aggressive
  // solver: both verdicts must match brute force, and every model must
  // satisfy the ORIGINAL clauses (subsumption/strengthening/probing must
  // never change the solution set over decision variables).
  Rng rng(0xb5);
  const std::size_t iters = difftest::iterations(200);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(9));
    const auto clauses = random_cnf(rng, num_vars, 5 + rng.next_below(50), 0.6);
    const bool expected = brute_force_sat(num_vars, clauses);
    for (const bool inprocess : {false, true}) {
      Solver s;
      InprocessConfig cfg = aggressive_inprocess();
      cfg.enabled = inprocess;
      s.set_inprocess(cfg);
      for (int v = 0; v < num_vars; ++v) s.new_var();
      for (const Clause& c : clauses) s.add_clause(c);
      const LBool verdict = s.solve();
      ASSERT_EQ(verdict == LBool::kTrue, expected)
          << "iter " << iter << " inprocess=" << inprocess;
      if (verdict == LBool::kTrue) check_model(s, clauses);
    }
  }
}

TEST(SolverDiffTest, RandomizedInprocessConfigsMatchBruteForce) {
  // Inprocessing-randomized mode: every iteration draws a random
  // InprocessConfig — pass budgets switched off or shrunk, the schedule
  // collapsed to near-every-restart, elimination limits and tier thresholds
  // perturbed — and the verdict must still match brute force, including a
  // follow-up assumption solve (the diag layers re-enter every solver
  // incrementally). The nightly diff-long CI job cranks the iteration count
  // via SATDIAG_DIFF_ITERS.
  Rng rng(0xb7);
  const std::size_t iters = difftest::iterations(120);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const int num_vars = 4 + static_cast<int>(rng.next_below(9));
    const auto clauses = random_cnf(rng, num_vars, 5 + rng.next_below(50), 0.6);

    InprocessConfig cfg;
    cfg.enabled = true;
    cfg.first_conflicts = rng.next_below(3);
    cfg.interval_conflicts = 1 + rng.next_below(4);
    cfg.probe_budget = rng.next_bool() ? 0 : 1 + rng.next_below(100000);
    cfg.vivify_budget = rng.next_bool() ? 0 : 1 + rng.next_below(100000);
    cfg.subsume_budget = rng.next_bool() ? 0 : 1 + rng.next_below(1000000);
    cfg.elim_budget = rng.next_bool() ? 0 : 1 + rng.next_below(1000000);
    cfg.elim_occ_limit = 1 + static_cast<unsigned>(rng.next_below(60));
    cfg.elim_grow = static_cast<unsigned>(rng.next_below(3));
    cfg.elim_resolvent_limit = 2 + static_cast<unsigned>(rng.next_below(40));
    cfg.vivify_clauses = 1 + rng.next_below(100);
    cfg.core_lbd = 2 + static_cast<unsigned>(rng.next_below(3));
    cfg.mid_lbd = cfg.core_lbd + 1 + static_cast<unsigned>(rng.next_below(4));

    Solver s;
    s.set_inprocess(cfg);
    for (int v = 0; v < num_vars; ++v) s.new_var();
    for (const Clause& c : clauses) s.add_clause(c);
    const bool expected = brute_force_sat(num_vars, clauses);
    const LBool verdict = s.solve();
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    if (verdict == LBool::kTrue) check_model(s, clauses);

    std::vector<Lit> assumptions;
    for (Var v = 0; v < num_vars; ++v) {
      if (rng.next_bool(0.25)) assumptions.push_back(Lit(v, rng.next_bool()));
    }
    const bool expected_assumed =
        brute_force_sat(num_vars, clauses, assumptions);
    const LBool verdict2 = s.solve(assumptions);
    ASSERT_EQ(verdict2 == LBool::kTrue, expected_assumed) << "iter " << iter;
    if (verdict2 == LBool::kTrue) check_model(s, clauses);
  }
}

TEST(SolverDiffTest, EliminatedVariableModelsAreReconstructed) {
  // Tseitin-style corpus: decision inputs feeding non-decision aux gates
  // (AND/OR/XOR), plus random constraint clauses over everything. Bounded
  // variable elimination targets exactly such aux variables; model_value on
  // an eliminated variable must come back through the reconstruction stack
  // consistent with the variable's definition — checked by evaluating every
  // ORIGINAL clause against the reported model.
  Rng rng(0xb6);
  std::uint64_t eliminated_total = 0;
  const std::size_t iters = difftest::iterations(150);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const int num_inputs = 3 + static_cast<int>(rng.next_below(5));
    const int num_aux = 2 + static_cast<int>(rng.next_below(6));
    const int num_vars = num_inputs + num_aux;

    Solver s;
    s.set_inprocess(aggressive_inprocess());
    for (int v = 0; v < num_inputs; ++v) s.new_var();
    struct AuxDef {
      int op;  // 0 = AND, 1 = OR, 2 = XOR
      Lit a, b;
    };
    std::vector<AuxDef> defs;
    std::vector<Clause> all_clauses;  // definitional + constraints
    const auto emit = [&](Clause c) {
      all_clauses.push_back(c);
      s.add_clause(std::move(c));
    };
    for (int i = 0; i < num_aux; ++i) {
      const Var out = s.new_var(/*decidable=*/false);
      const int below = num_inputs + i;
      AuxDef d;
      d.op = static_cast<int>(rng.next_below(3));
      d.a = Lit(static_cast<Var>(rng.next_below(
                    static_cast<std::uint64_t>(below))),
                rng.next_bool());
      d.b = Lit(static_cast<Var>(rng.next_below(
                    static_cast<std::uint64_t>(below))),
                rng.next_bool());
      defs.push_back(d);
      const Lit o = pos(out);
      switch (d.op) {
        case 0:  // out <-> a & b
          emit({~o, d.a});
          emit({~o, d.b});
          emit({o, ~d.a, ~d.b});
          break;
        case 1:  // out <-> a | b
          emit({o, ~d.a});
          emit({o, ~d.b});
          emit({~o, d.a, d.b});
          break;
        default:  // out <-> a ^ b
          emit({~o, d.a, d.b});
          emit({~o, ~d.a, ~d.b});
          emit({o, ~d.a, d.b});
          emit({o, d.a, ~d.b});
          break;
      }
    }
    const std::size_t num_constraints = 1 + rng.next_below(6);
    for (std::size_t c = 0; c < num_constraints; ++c) {
      Clause clause;
      const std::size_t len = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < len; ++i) {
        clause.push_back(Lit(static_cast<Var>(rng.next_below(
                                 static_cast<std::uint64_t>(num_vars))),
                             rng.next_bool()));
      }
      emit(std::move(clause));
    }

    // Brute force over the inputs only: aux values are functions of them.
    const auto eval = [&](std::uint32_t inputs, Lit l) -> bool {
      std::uint32_t a = inputs;
      for (std::size_t i = 0; i < defs.size(); ++i) {
        const auto va = [&](Lit x) { return ((a >> x.var()) & 1u) != x.sign(); };
        bool out = false;
        switch (defs[i].op) {
          case 0: out = va(defs[i].a) && va(defs[i].b); break;
          case 1: out = va(defs[i].a) || va(defs[i].b); break;
          default: out = va(defs[i].a) != va(defs[i].b); break;
        }
        a |= static_cast<std::uint32_t>(out) << (num_inputs + i);
      }
      return ((a >> l.var()) & 1u) != l.sign();
    };
    bool expected = false;
    for (std::uint32_t in = 0; in < (1u << num_inputs) && !expected; ++in) {
      bool ok = true;
      for (const Clause& c : all_clauses) {
        bool sat_c = false;
        for (Lit l : c) sat_c |= eval(in, l);
        if (!sat_c) {
          ok = false;
          break;
        }
      }
      expected = ok;
    }

    const LBool verdict = s.solve();
    ASSERT_EQ(verdict == LBool::kTrue, expected) << "iter " << iter;
    for (int v = 0; v < num_vars; ++v) {
      if (s.is_eliminated(static_cast<Var>(v))) {
        ASSERT_GE(v, num_inputs) << "decision variable eliminated";
        ++eliminated_total;
      }
    }
    if (verdict == LBool::kTrue) {
      check_model(s, all_clauses);
      // Incremental follow-up under assumptions over the (decision) inputs:
      // inprocessing between solves must not break later assumption solves.
      std::vector<Lit> assumptions;
      for (int v = 0; v < num_inputs; ++v) {
        if (rng.next_bool(0.3)) {
          assumptions.push_back(Lit(static_cast<Var>(v), rng.next_bool()));
        }
      }
      bool expected_assumed = false;
      for (std::uint32_t in = 0; in < (1u << num_inputs) && !expected_assumed;
           ++in) {
        bool ok = true;
        for (Lit a : assumptions) ok = ok && eval(in, a);
        for (const Clause& c : all_clauses) {
          if (!ok) break;
          bool sat_c = false;
          for (Lit l : c) sat_c |= eval(in, l);
          ok = sat_c;
        }
        expected_assumed = ok;
      }
      const LBool verdict2 = s.solve(assumptions);
      ASSERT_EQ(verdict2 == LBool::kTrue, expected_assumed) << "iter " << iter;
      if (verdict2 == LBool::kTrue) check_model(s, all_clauses);
    }
  }
  // The corpus must actually exercise elimination + reconstruction.
  EXPECT_GT(eliminated_total, 0u);
}

TEST(SolverDiffTest, DimacsRoundTripPreservesVerdicts) {
  Rng rng(0xb3);
  for (int iter = 0; iter < 50; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.next_below(8));
    CnfFormula cnf;
    cnf.num_vars = num_vars;
    cnf.clauses = random_cnf(rng, num_vars, 5 + rng.next_below(30), 0.7);

    std::ostringstream out;
    write_dimacs(out, cnf);
    const CnfFormula parsed = parse_dimacs_string(out.str());

    Solver direct;
    for (int v = 0; v < num_vars; ++v) direct.new_var();
    for (const Clause& c : cnf.clauses) direct.add_clause(c);
    Solver reparsed;
    load_into_solver(parsed, reparsed);

    const bool expected = brute_force_sat(num_vars, cnf.clauses);
    EXPECT_EQ(direct.solve() == LBool::kTrue, expected) << "iter " << iter;
    EXPECT_EQ(reparsed.solve() == LBool::kTrue, expected) << "iter " << iter;
  }
}

}  // namespace
}  // namespace satdiag::sat
