#include "sat/allsat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace satdiag::sat {
namespace {

TEST(AllSatTest, FullCubeEnumerationCountsModels) {
  // (a or b): exactly 3 models over {a, b}.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(pos(a), pos(b));
  AllSatOptions options;
  options.block_positive_subset = false;
  const auto result = enumerate_all(s, {a, b}, {}, options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.solutions.size(), 3u);
}

TEST(AllSatTest, SubsetBlockingYieldsMinimalSets) {
  // (a or b) with subset blocking: the minimal hitting sets {a} and {b}.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(pos(a), pos(b));
  const auto result = enumerate_all(s, {a, b}, {});
  EXPECT_TRUE(result.complete);
  std::set<std::vector<Var>> sets(result.solutions.begin(),
                                  result.solutions.end());
  // Supersets like {a, b} may appear first, but after blocking both
  // singletons no further solution exists; all solutions must be unique.
  EXPECT_EQ(sets.size(), result.solutions.size());
  EXPECT_LE(result.solutions.size(), 3u);
  EXPECT_GE(result.solutions.size(), 1u);
}

TEST(AllSatTest, UnsatGivesEmptyComplete) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  s.add_clause(neg(a));
  const auto result = enumerate_all(s, {a}, {});
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.solutions.empty());
}

TEST(AllSatTest, MaxSolutionsTruncates) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(s.new_var());
  // No constraints: full-cube enumeration has 16 models.
  AllSatOptions options;
  options.block_positive_subset = false;
  options.max_solutions = 5;
  const auto result = enumerate_all(s, vars, {}, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.solutions.size(), 5u);
}

TEST(AllSatTest, AssumptionsRestrictEnumeration) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(pos(a), pos(b));
  std::vector<Lit> assume{neg(a)};
  AllSatOptions options;
  options.block_positive_subset = false;
  const auto result = enumerate_all(s, {a, b}, assume, options);
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_EQ(result.solutions[0], std::vector<Var>{b});
}

TEST(AllSatTest, EmptyProjectionSolutionTerminates) {
  // Satisfiable with all projection vars false: the empty set blocks
  // everything and enumeration reports completeness.
  Solver s;
  const Var a = s.new_var();
  (void)a;
  const Var unconstrained = s.new_var();
  s.add_clause(neg(unconstrained));
  const auto result = enumerate_all(s, {unconstrained}, {});
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.solutions.size(), 1u);
  EXPECT_TRUE(result.solutions[0].empty());
}

TEST(AllSatTest, ExpiredDeadlineStopsImmediately) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  AllSatOptions options;
  options.deadline = Deadline::after_seconds(-1.0);
  const auto result = enumerate_all(s, {a}, {}, options);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.solutions.empty());
}

}  // namespace
}  // namespace satdiag::sat
