#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace satdiag::sat {
namespace {

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverTest, SingleUnit) {
  Solver s;
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(x)));
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(x), LBool::kTrue);
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var x = s.new_var();
  EXPECT_TRUE(s.add_clause(pos(x)));
  EXPECT_FALSE(s.add_clause(neg(x)));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SolverTest, TautologyIgnored) {
  Solver s;
  const Var x = s.new_var();
  EXPECT_TRUE(s.add_clause(Clause{pos(x), neg(x)}));
  EXPECT_EQ(s.num_clauses(), 0u);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverTest, DuplicateLiteralsDeduplicated) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  EXPECT_TRUE(s.add_clause(Clause{pos(x), pos(x), pos(y)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause(neg(a), pos(b));
  s.add_clause(neg(b), pos(c));
  s.add_clause(pos(a));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(c), LBool::kTrue);
}

TEST(SolverTest, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0: satisfiable.
  Solver s;
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  const Var x3 = s.new_var();
  auto add_xor = [&](Var a, Var b, bool value) {
    if (value) {
      s.add_clause(pos(a), pos(b));
      s.add_clause(neg(a), neg(b));
    } else {
      s.add_clause(neg(a), pos(b));
      s.add_clause(pos(a), neg(b));
    }
  };
  add_xor(x1, x2, true);
  add_xor(x2, x3, true);
  add_xor(x1, x3, false);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverTest, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
  Solver s;
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  const Var x3 = s.new_var();
  auto add_xor1 = [&](Var a, Var b) {
    s.add_clause(pos(a), pos(b));
    s.add_clause(neg(a), neg(b));
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  add_xor1(x1, x3);
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

// Pigeonhole principle PHP(n+1, n): classic hard UNSAT family.
void build_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(
      static_cast<std::size_t>(pigeons),
      std::vector<Var>(static_cast<std::size_t>(holes)));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    Clause c;
    for (int j = 0; j < holes; ++j) {
      c.push_back(pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]));
    }
    s.add_clause(std::move(c));
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        s.add_clause(neg(p[static_cast<std::size_t>(i1)][static_cast<std::size_t>(j)]),
                     neg(p[static_cast<std::size_t>(i2)][static_cast<std::size_t>(j)]));
      }
    }
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int n = 2; n <= 6; ++n) {
    Solver s;
    build_php(s, n + 1, n);
    EXPECT_EQ(s.solve(), LBool::kFalse) << "PHP(" << n + 1 << "," << n << ")";
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(SolverTest, PigeonholeExactFitSat) {
  Solver s;
  build_php(s, 5, 5);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

// Brute-force cross-check on random 3-SAT instances.
bool brute_force_sat(int num_vars, const std::vector<Clause>& clauses) {
  for (std::uint32_t assignment = 0; assignment < (1u << num_vars);
       ++assignment) {
    bool all = true;
    for (const Clause& c : clauses) {
      bool any = false;
      for (Lit l : c) {
        const bool value = (assignment >> l.var()) & 1;
        if (value != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SolverTest, RandomThreeSatMatchesBruteForce) {
  Rng rng(1234);
  int sat_count = 0;
  for (int round = 0; round < 60; ++round) {
    const int n = 8;
    const int m = 30 + static_cast<int>(rng.next_below(20));
    std::vector<Clause> clauses;
    for (int i = 0; i < m; ++i) {
      Clause c;
      for (int j = 0; j < 3; ++j) {
        c.push_back(Lit(static_cast<Var>(rng.next_below(n)), rng.next_bool()));
      }
      clauses.push_back(std::move(c));
    }
    Solver s;
    for (int v = 0; v < n; ++v) s.new_var();
    bool trivially_unsat = false;
    for (const Clause& c : clauses) {
      if (!s.add_clause(c)) trivially_unsat = true;
    }
    const bool expected = brute_force_sat(n, clauses);
    const LBool got = trivially_unsat ? LBool::kFalse : s.solve();
    ASSERT_EQ(got == LBool::kTrue, expected) << "round " << round;
    if (expected) ++sat_count;
    // When SAT, verify the model actually satisfies every clause.
    if (got == LBool::kTrue) {
      for (const Clause& c : clauses) {
        bool any = false;
        for (Lit l : c) any |= s.model_value(l) == LBool::kTrue;
        ASSERT_TRUE(any);
      }
    }
  }
  // The mix should contain both SAT and UNSAT instances.
  EXPECT_GT(sat_count, 5);
  EXPECT_LT(sat_count, 55);
}

TEST(SolverTest, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause(neg(a), pos(b));

  std::vector<Lit> assume{pos(a)};
  ASSERT_EQ(s.solve(assume), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);

  std::vector<Lit> assume2{pos(a), neg(b)};
  EXPECT_EQ(s.solve(assume2), LBool::kFalse);
  EXPECT_FALSE(s.conflict().empty());

  // Solver is reusable after an UNSAT-under-assumptions call.
  EXPECT_EQ(s.solve(assume), LBool::kTrue);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SolverTest, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_EQ(s.solve(), LBool::kTrue);
  s.add_clause(pos(a), pos(b));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  s.add_clause(neg(a));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(b), LBool::kTrue);
  s.add_clause(neg(b));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SolverTest, ConflictBudgetReturnsUndef) {
  Solver s;
  build_php(s, 9, 8);  // hard enough to exceed a tiny budget
  s.set_conflict_budget(10);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  s.clear_budgets();
}

TEST(SolverTest, DecisionMarkersRestrictBranching) {
  Solver s;
  const Var a = s.new_var(/*decidable=*/false);
  const Var b = s.new_var();
  // a is implied by b through clauses; solver may only decide b.
  s.add_clause(neg(b), pos(a));
  s.add_clause(pos(b), neg(a));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), s.model_value(b));
}

TEST(SolverTest, PolarityHintBiasesModel) {
  Solver s;
  const Var a = s.new_var();
  s.set_polarity_hint(a, true);
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_EQ(s.model_value(a), LBool::kTrue);

  Solver s2;
  const Var c = s2.new_var();
  s2.set_polarity_hint(c, false);
  ASSERT_EQ(s2.solve(), LBool::kTrue);
  EXPECT_EQ(s2.model_value(c), LBool::kFalse);
}

TEST(SolverTest, LargeRandomInstanceStressesReduceDbAndGc) {
  // Big enough to trigger restarts, clause DB reduction and arena GC.
  Rng rng(777);
  Solver s;
  const int n = 120;
  for (int v = 0; v < n; ++v) s.new_var();
  const int m = 480;  // clause/var ratio ~4: near threshold, nontrivial
  for (int i = 0; i < m; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      c.push_back(Lit(static_cast<Var>(rng.next_below(n)), rng.next_bool()));
    }
    s.add_clause(std::move(c));
  }
  const LBool result = s.solve();
  EXPECT_NE(result, LBool::kUndef);
  if (result == LBool::kTrue) {
    // Spot-check the model on the original clauses is impossible here (they
    // were consumed), but model values must be assigned for every variable.
    for (Var v = 0; v < n; ++v) {
      EXPECT_NE(s.model_value(v), LBool::kUndef);
    }
  }
}

TEST(SolverTest, StatsAccumulate) {
  Solver s;
  build_php(s, 6, 5);
  EXPECT_EQ(s.solve(), LBool::kFalse);
  const auto& st = s.stats();
  EXPECT_GT(st.conflicts, 0u);
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
}

}  // namespace
}  // namespace satdiag::sat
