// Thread-count invariance of the parallel consumers: diagnosis solution
// lists, fault-sim detection counts, X-lists, effect checks, and experiment
// tables must be bit-identical for threads in {1, 2, 8}.
#include <gtest/gtest.h>

#include <optional>

#include "diag/bsat.hpp"
#include "diag/effect.hpp"
#include "diag/hybrid.hpp"
#include "diag/xlist.hpp"
#include "fault/fault_sim.hpp"
#include "report/experiment.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

PreparedExperiment prepare(const char* circuit, std::size_t errors,
                           std::size_t tests, double scale = 0.5,
                           std::uint64_t seed = 3) {
  ExperimentConfig config;
  config.circuit = circuit;
  config.scale = scale;
  config.num_errors = errors;
  config.num_tests = tests;
  config.seed = seed;
  auto prepared = prepare_experiment(config);
  EXPECT_TRUE(prepared.has_value());
  return std::move(*prepared);
}

TEST(ParallelDeterminismTest, BsatSolutionListsAreThreadCountInvariant) {
  const PreparedExperiment prepared = prepare("s526_like", 2, 6);
  std::optional<BsatResult> reference;
  for (std::size_t threads : kThreadCounts) {
    BsatOptions options;
    options.k = 2;
    options.num_threads = threads;
    const BsatResult result =
        basic_sat_diagnose(prepared.faulty, prepared.tests, options);
    EXPECT_TRUE(result.complete);
    if (!reference) {
      reference = result;
      EXPECT_FALSE(result.solutions.empty());
      continue;
    }
    // Bit-identical: same solutions in the same (canonical) order.
    EXPECT_EQ(result.solutions, reference->solutions)
        << "threads=" << threads;
    EXPECT_EQ(result.complete, reference->complete);
  }
}

TEST(ParallelDeterminismTest, BsatRestrictedInstrumentationStaysInvariant) {
  // Exercise the universe partition on a caller-restricted instrumented
  // set (the hybrid kRepairCover shape).
  const PreparedExperiment prepared = prepare("s298_like", 1, 4);
  std::vector<GateId> instrumented;
  for (GateId g = 0; g < prepared.faulty.size(); ++g) {
    if (prepared.faulty.is_combinational(g) && g % 2 == 0) {
      instrumented.push_back(g);
    }
  }
  ASSERT_GT(instrumented.size(), 2u);
  std::optional<BsatResult> reference;
  for (std::size_t threads : kThreadCounts) {
    BsatOptions options;
    options.k = 2;
    options.num_threads = threads;
    options.instance.instrumented = instrumented;
    const BsatResult result =
        basic_sat_diagnose(prepared.faulty, prepared.tests, options);
    EXPECT_TRUE(result.complete);
    if (!reference) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.solutions, reference->solutions)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, TinyUniverseWithMoreThreadsThanGates) {
  // Regression: ceil-partitioning used to place a shard's begin past the
  // universe end (9 gates on 8 lanes -> shard 5 begin == 10), crashing in
  // the reversed-range instrumented.assign. The hybrid kRepairCover path
  // reaches this shape whenever the covered neighbourhood is small.
  const PreparedExperiment prepared = prepare("s298_like", 1, 4);
  std::vector<GateId> instrumented;
  for (GateId g = 0; g < prepared.faulty.size() && instrumented.size() < 9;
       ++g) {
    if (prepared.faulty.is_combinational(g)) instrumented.push_back(g);
  }
  ASSERT_EQ(instrumented.size(), 9u);
  std::optional<BsatResult> reference;
  for (std::size_t threads : {1u, 8u, 16u}) {
    BsatOptions options;
    options.k = 2;
    options.num_threads = threads;
    options.instance.instrumented = instrumented;
    const BsatResult result =
        basic_sat_diagnose(prepared.faulty, prepared.tests, options);
    if (!reference) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.solutions, reference->solutions)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, BsatClauseSharingKeepsSolutionSetsIdentical) {
  // The per-bound-barrier learnt exchange may only change search effort,
  // never the enumerated sets — and it must actually fire.
  const PreparedExperiment prepared = prepare("s526_like", 2, 6);
  BsatOptions options;
  options.k = 2;
  options.num_threads = 4;
  options.share_learnts = true;
  const BsatResult shared =
      basic_sat_diagnose(prepared.faulty, prepared.tests, options);
  options.share_learnts = false;
  const BsatResult isolated =
      basic_sat_diagnose(prepared.faulty, prepared.tests, options);
  EXPECT_EQ(shared.solutions, isolated.solutions);
  EXPECT_TRUE(shared.complete);
  EXPECT_GT(shared.solver_stats.learnts_exported, 0u);
  EXPECT_EQ(isolated.solver_stats.learnts_exported, 0u);
  EXPECT_EQ(isolated.solver_stats.learnts_imported, 0u);
}

TEST(ParallelDeterminismTest, BsatMergedStatsCountAllWorkers) {
  const PreparedExperiment prepared = prepare("s526_like", 2, 6);
  BsatOptions options;
  options.k = 2;
  options.num_threads = 4;
  const BsatResult result =
      basic_sat_diagnose(prepared.faulty, prepared.tests, options);
  // Every worker instance at least propagates its test-vector units; a
  // zeroed merge (e.g. only worker 0 counted) cannot reach the serial
  // propagation volume.
  BsatOptions serial = options;
  serial.num_threads = 1;
  const BsatResult serial_result =
      basic_sat_diagnose(prepared.faulty, prepared.tests, serial);
  EXPECT_GE(result.solver_stats.propagations,
            serial_result.solver_stats.propagations);
  EXPECT_GT(result.solver_stats.propagations, 0u);
}

TEST(ParallelDeterminismTest, HybridSolutionsAreThreadCountInvariant) {
  const PreparedExperiment prepared = prepare("s526_like", 2, 6);
  std::optional<HybridResult> reference;
  for (std::size_t threads : kThreadCounts) {
    HybridOptions options;
    options.k = 2;
    options.num_threads = threads;
    const HybridResult result =
        hybrid_diagnose(prepared.faulty, prepared.tests, options);
    if (!reference) {
      reference = result;
      EXPECT_FALSE(result.solutions.empty());
      continue;
    }
    EXPECT_EQ(result.solutions, reference->solutions)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, FaultSimCountsAreThreadCountInvariant) {
  const PreparedExperiment prepared = prepare("s1423_like", 1, 4);
  const std::vector<GateId> sites = stuck_at_sites(prepared.golden);
  std::optional<StuckAtFaultSimResult> reference;
  for (std::size_t threads : kThreadCounts) {
    Rng rng(99);
    StuckAtFaultSimOptions options;
    options.rounds = 2;
    options.num_threads = threads;
    const StuckAtFaultSimResult result =
        simulate_stuck_at_faults(prepared.golden, sites, rng, options);
    if (!reference) {
      reference = result;
      EXPECT_GT(result.detected, 0u);
      continue;
    }
    EXPECT_EQ(result.faults, reference->faults) << "threads=" << threads;
    EXPECT_EQ(result.detected, reference->detected) << "threads=" << threads;
    EXPECT_EQ(result.site_detected, reference->site_detected)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, FaultSimMatchesTheSerialReferenceLoop) {
  // Independent serial re-implementation (the historical bench loop): one
  // simulator, golden sweep, then override/run/diff per fault.
  const PreparedExperiment prepared = prepare("s298_like", 1, 4);
  const Netlist& nl = prepared.golden;
  const std::vector<GateId> sites = stuck_at_sites(nl);

  Rng rng(7);
  StuckAtFaultSimOptions options;
  options.rounds = 2;
  options.num_threads = 8;
  const StuckAtFaultSimResult result =
      simulate_stuck_at_faults(nl, sites, rng, options);

  Rng ref_rng(7);
  ParallelSimulator sim(nl);
  std::vector<std::uint64_t> golden(nl.outputs().size());
  std::size_t ref_faults = 0;
  std::size_t ref_detected = 0;
  for (std::size_t round = 0; round < 2; ++round) {
    for (GateId in : nl.inputs()) sim.set_source(in, ref_rng.next_u64());
    sim.run();
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      golden[i] = sim.value(nl.outputs()[i]);
    }
    for (GateId g : sites) {
      for (int polarity = 0; polarity < 2; ++polarity) {
        sim.set_value_override(g, polarity ? ~0ULL : 0ULL);
        sim.run();
        ++ref_faults;
        std::uint64_t diff = 0;
        for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
          diff |= golden[i] ^ sim.value(nl.outputs()[i]);
        }
        if (diff != 0) ++ref_detected;
        sim.clear_overrides();
      }
    }
  }
  EXPECT_EQ(result.faults, ref_faults);
  EXPECT_EQ(result.detected, ref_detected);
}

TEST(ParallelDeterminismTest, XListCandidatesAreThreadCountInvariant) {
  const PreparedExperiment prepared = prepare("s1423_like", 2, 8);
  std::optional<std::vector<GateId>> reference;
  for (std::size_t threads : kThreadCounts) {
    XListOptions options;
    options.num_threads = threads;
    const std::vector<GateId> candidates =
        xlist_single_candidates(prepared.faulty, prepared.tests, options);
    if (!reference) {
      reference = candidates;
      continue;
    }
    EXPECT_EQ(candidates, *reference) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, EffectXCheckBatchMatchesSerialCalls) {
  const PreparedExperiment prepared = prepare("s526_like", 1, 4);
  EffectAnalyzer analyzer(prepared.faulty, prepared.tests);
  std::vector<std::vector<GateId>> candidates;
  for (GateId g = 0; g < prepared.faulty.size(); ++g) {
    if (prepared.faulty.is_combinational(g)) candidates.push_back({g});
  }
  std::vector<std::uint8_t> serial;
  serial.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    serial.push_back(analyzer.x_check(candidate) ? 1 : 0);
  }
  for (std::size_t threads : kThreadCounts) {
    EXPECT_EQ(analyzer.x_check_batch(candidates, threads), serial)
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, ExperimentTablesAreThreadCountInvariant) {
  std::vector<ExperimentConfig> configs;
  for (const char* circuit : {"s298_like", "s526_like"}) {
    for (std::size_t m : {4, 6}) {
      ExperimentConfig config;
      config.circuit = circuit;
      config.scale = 0.5;
      config.num_errors = 1;
      config.num_tests = m;
      config.seed = 3;
      configs.push_back(std::move(config));
    }
  }
  std::optional<std::vector<ExperimentCell>> reference;
  for (std::size_t threads : kThreadCounts) {
    ExperimentGridOptions options;
    options.num_threads = threads;
    const std::vector<ExperimentCell> cells =
        run_experiment_grid(configs, options);
    ASSERT_EQ(cells.size(), configs.size());
    if (!reference) {
      reference = cells;
      continue;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const ExperimentCell& a = cells[i];
      const ExperimentCell& b = (*reference)[i];
      EXPECT_EQ(a.prepared, b.prepared) << "cell " << i;
      if (!a.prepared) continue;
      // Everything except the wall-clock columns must match bit for bit.
      EXPECT_EQ(a.row.circuit_size, b.row.circuit_size) << "cell " << i;
      EXPECT_EQ(a.row.cov.solutions, b.row.cov.solutions) << "cell " << i;
      EXPECT_EQ(a.row.bsat.solutions, b.row.bsat.solutions) << "cell " << i;
      EXPECT_EQ(a.row.cov.complete, b.row.cov.complete) << "cell " << i;
      EXPECT_EQ(a.row.bsat.complete, b.row.bsat.complete) << "cell " << i;
      EXPECT_EQ(a.row.bsim_quality.union_size, b.row.bsim_quality.union_size);
      EXPECT_EQ(a.row.bsim_quality.gmax_size, b.row.bsim_quality.gmax_size);
      EXPECT_EQ(a.row.bsat.quality.num_solutions,
                b.row.bsat.quality.num_solutions);
      EXPECT_EQ(a.row.bsat.quality.hit_rate, b.row.bsat.quality.hit_rate);
    }
  }
}

}  // namespace
}  // namespace satdiag
