// ThreadPool lifecycle, batch semantics, and exception propagation.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

namespace satdiag::exec {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneLane) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SingleLaneRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  std::size_t calls = 0;
  pool.run_on_all([&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    seen = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, EveryLaneRunsExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4u);
  std::mutex mutex;
  std::multiset<std::size_t> lanes;
  pool.run_on_all([&](std::size_t lane) {
    std::lock_guard<std::mutex> lock(mutex);
    lanes.insert(lane);
  });
  EXPECT_EQ(lanes, (std::multiset<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, ManySequentialBatchesReuseTheWorkers) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 100; ++batch) {
    pool.run_on_all([&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 300u);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_on_all([&](std::size_t lane) {
                 if (lane == 2) throw std::runtime_error("lane 2 failed");
               }),
               std::runtime_error);
}

TEST(ThreadPoolTest, LowestLaneExceptionWinsAndBatchCompletes) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  try {
    pool.run_on_all([&](std::size_t lane) {
      ran.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("lane " + std::to_string(lane));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane 0");
  }
  // No lane is torn down by a sibling's failure.
  EXPECT_EQ(ran.load(), 4u);
}

TEST(ThreadPoolTest, PoolIsUsableAfterAnExceptionBatch) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_on_all([](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<std::size_t> calls{0};
  pool.run_on_all([&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 2u);
}

TEST(ThreadPoolTest, CallerLaneExceptionPropagatesFromSingleLanePool) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.run_on_all([](std::size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

}  // namespace
}  // namespace satdiag::exec
