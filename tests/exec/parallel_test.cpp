// Deterministic sharded map-reduce: shard plans, ordered reduction, lane
// state, per-shard Rng streams, and deterministic exception propagation.
#include "exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace satdiag::exec {
namespace {

TEST(ShardPlanTest, CoversTheRangeWithDisjointContiguousShards) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 65u, 1000u}) {
    for (std::size_t grain : {0u, 1u, 3u, 64u}) {
      const ShardPlan plan = ShardPlan::make(n, grain);
      std::size_t covered = 0;
      for (std::size_t s = 0; s < plan.num_shards(); ++s) {
        const auto [begin, end] = plan.bounds(s);
        EXPECT_EQ(begin, covered);
        EXPECT_GT(end, begin);
        covered = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ShardPlanTest, DefaultGrainIsAPureFunctionOfTheItemCount) {
  // No thread count enters the plan: the same n always shards identically.
  const ShardPlan a = ShardPlan::make(1000);
  const ShardPlan b = ShardPlan::make(1000);
  EXPECT_EQ(a.grain, b.grain);
  EXPECT_LE(a.num_shards(), ShardPlan::kDefaultMaxShards);
  EXPECT_EQ(ShardPlan::make(3).num_shards(), 3u);  // tiny n: one item each
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnceAtAnyThreadCount) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    parallel_for(pool, visits.size(), [&](std::size_t i, std::size_t) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out = parallel_map<std::size_t>(
      pool, 100, [](std::size_t i, std::size_t) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapReduceTest, NonCommutativeReductionMatchesTheSerialFold) {
  // String concatenation is order-sensitive: any reordering of items or
  // shard accumulators would change the result.
  std::string expected;
  for (int i = 0; i < 200; ++i) expected += std::to_string(i) + ",";
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::string folded = parallel_map_reduce<std::string>(
        pool, 200, std::string(),
        [](std::size_t i, std::string& acc, std::size_t) {
          acc += std::to_string(i) + ",";
        },
        [](std::string& total, std::string&& part) { total += part; });
    EXPECT_EQ(folded, expected);
  }
}

TEST(ParallelMapReduceTest, SumOverShardsMatchesSerialSum) {
  ThreadPool pool(3);
  const std::uint64_t total = parallel_map_reduce<std::uint64_t>(
      pool, 10000, 0ULL,
      [](std::size_t i, std::uint64_t& acc, std::size_t) { acc += i; },
      [](std::uint64_t& t, std::uint64_t&& part) { t += part; },
      /*grain=*/7);
  EXPECT_EQ(total, 10000ULL * 9999ULL / 2ULL);
}

TEST(ShardRngTest, StreamsAreReproducibleAndDistinctPerShard) {
  Rng a = shard_rng(42, 0);
  Rng a2 = shard_rng(42, 0);
  Rng b = shard_rng(42, 1);
  const std::uint64_t first_a = a.next_u64();
  EXPECT_EQ(first_a, a2.next_u64());
  EXPECT_NE(first_a, b.next_u64());
  Rng other_seed = shard_rng(43, 0);
  EXPECT_NE(first_a, other_seed.next_u64());
}

TEST(ShardRngTest, ParallelDrawsEqualSerialDraws) {
  // The canonical stochastic-shard pattern: per-shard streams derived from
  // the root seed make the draws independent of thread count.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    const ShardPlan plan = ShardPlan::make(100, 10);
    std::vector<std::uint64_t> draws(plan.num_shards());
    parallel_for(
        pool, plan.num_shards(),
        [&](std::size_t shard, std::size_t) {
          draws[shard] = shard_rng(7, shard).next_u64();
        },
        /*grain=*/1);
    return draws;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelForTest, LowestShardExceptionIsRethrownDeterministically) {
  for (std::size_t threads : {1u, 8u}) {
    ThreadPool pool(threads);
    try {
      // grain 1: shard index == item index; items 3, 5, 9 throw.
      parallel_for(
          pool, 12,
          [&](std::size_t i, std::size_t) {
            if (i == 3 || i == 5 || i == 9) {
              throw std::runtime_error("shard " + std::to_string(i));
            }
          },
          /*grain=*/1);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 3");
    }
  }
}

TEST(ParallelForTest, AllShardsRunDespiteAFailure) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(20);
  for (auto& v : visits) v.store(0);
  EXPECT_THROW(parallel_for(
                   pool, visits.size(),
                   [&](std::size_t i, std::size_t) {
                     visits[i].fetch_add(1, std::memory_order_relaxed);
                     if (i == 0) throw std::runtime_error("first");
                   },
                   /*grain=*/1),
               std::runtime_error);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(LaneLocalTest, StateIsCreatedOncePerLaneAndResettable) {
  LaneLocal<std::vector<int>> state(2);
  std::size_t factory_calls = 0;
  const auto factory = [&] {
    ++factory_calls;
    return std::vector<int>{1, 2, 3};
  };
  auto& first = state.get(0, factory);
  auto& again = state.get(0, factory);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(factory_calls, 1u);
  state.get(1, factory);
  EXPECT_EQ(factory_calls, 2u);
  state.reset();
  state.get(0, factory);
  EXPECT_EQ(factory_calls, 3u);
}

}  // namespace
}  // namespace satdiag::exec
