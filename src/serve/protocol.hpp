// Wire protocol of the `satdiag serve` daemon (ROADMAP item 2 transport).
//
// Framing is newline-delimited JSON: one request object per line in, one
// response object per line out, over a plain TCP stream. A request body is
// exactly the existing CLI surface — the same subcommand names with the
// same flag sets:
//
//   {"id": "r1", "command": "diagnose", "positional": ["faulty.bench"],
//    "args": {"tests": "tests.txt", "approach": "bsat", "k": 2}}
//
// `id` is an opaque client token echoed into the response (any scalar).
// `args` values may be JSON strings, numbers, or booleans; they are coerced
// to the CLI's string form and validated by the same strict CliArgs value
// parsing the one-shot CLI uses, so "k": "2x" is a structured bad_request,
// never a garbage budget. Responses carry a status ("ok", "error",
// "overloaded") and, for executed commands, the schema-versioned
// "satdiag.report" v1 run report as their body.
//
// Hardening: frames are size-capped (kMaxRequestBytes), the JSON reader is
// depth-bounded, nested args are rejected, and unknown commands or flags
// are structured errors.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace satdiag::serve {

/// Upper bound on one request frame (bytes, newline included). A client
/// exceeding it gets one framing error reply and its connection closed.
inline constexpr std::size_t kMaxRequestBytes = 1u << 20;

/// Machine-readable error codes used in "error"/"overloaded" responses.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExpired = "deadline_expired";
inline constexpr const char* kErrInternal = "internal_error";

struct Request {
  /// Client-chosen token, echoed verbatim (JSON-escaped string form).
  std::string id;
  std::string command;
  /// Flag map in CLI spelling (no "--"), values in CLI string form.
  std::map<std::string, std::string> args;
  /// Positional operands (e.g. the diagnose .bench path).
  std::vector<std::string> positional;
};

/// Parse one request frame. Returns false and a client-facing message on
/// malformed input (not JSON, missing/invalid fields, nested arg values).
bool parse_request(std::string_view frame, Request& out, std::string& error);

/// One-line response builders (no trailing newline; the transport appends
/// the frame delimiter).
std::string ok_response(const std::string& id, std::string_view report_json);
std::string error_response(const std::string& id, std::string_view code,
                           std::string_view message);
/// Load-shed reply: admission state at rejection time rides along so
/// clients can back off proportionally.
std::string overloaded_response(const std::string& id, std::size_t active,
                                std::size_t queued);

}  // namespace satdiag::serve
