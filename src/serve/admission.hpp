// Admission control for the serve daemon: a bounded wait queue in front of
// a fixed number of execution slots.
//
// Every admitted request occupies one slot for its whole execution; at most
// `max_inflight` requests execute concurrently (the CLI derives it from
// --threads: the box has that many useful lanes, queueing more work only
// adds latency). When every slot is busy, up to `queue_depth` requests wait
// their turn; beyond that the controller LOAD-SHEDS — admit() returns
// kOverloaded immediately and the transport replies with a structured
// "overloaded" frame instead of letting latency grow without bound
// (Mallob-style SAT-as-a-service discipline: reject early, never brown out).
//
// A waiting request carries its per-request Deadline into the queue: budgets
// cover queue time, so a request whose deadline lapses before a slot frees
// is failed with kExpired rather than executed with no budget left.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/timer.hpp"

namespace satdiag::serve {

struct AdmissionConfig {
  std::size_t max_inflight = 1;
  std::size_t queue_depth = 16;
};

class AdmissionController {
 public:
  enum class Admit {
    kAdmitted,    // slot acquired; caller must release()
    kOverloaded,  // every slot busy and the wait queue is full
    kExpired,     // deadline lapsed while waiting for a slot
    kShutdown,    // controller shut down while waiting
  };

  explicit AdmissionController(const AdmissionConfig& config);

  /// Acquire an execution slot, waiting in the bounded queue if necessary.
  /// Returns kAdmitted on success — the caller MUST call release() when the
  /// request finishes (however it finishes).
  Admit admit(const Deadline& deadline);

  /// Return an admitted request's slot and wake one waiter.
  void release();

  /// Fail every current and future admit() with kShutdown.
  void shutdown();

  std::size_t active() const;
  std::size_t queued() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const AdmissionConfig config_;
  std::size_t active_ = 0;
  std::size_t queued_ = 0;
  bool shutdown_ = false;
};

}  // namespace satdiag::serve
