#include "serve/admission.hpp"

#include <algorithm>
#include <chrono>

namespace satdiag::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_{std::max<std::size_t>(config.max_inflight, 1),
              config.queue_depth} {}

AdmissionController::Admit AdmissionController::admit(
    const Deadline& deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Admit::kShutdown;
  if (active_ < config_.max_inflight) {
    ++active_;
    return Admit::kAdmitted;
  }
  if (queued_ >= config_.queue_depth) return Admit::kOverloaded;
  ++queued_;
  for (;;) {
    // Wake-ups are driven by release()/shutdown(); the extra periodic wake
    // only exists to notice an expired deadline without a dedicated timer
    // thread.
    auto wait_for = std::chrono::milliseconds(50);
    if (deadline.limited()) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(
          std::chrono::duration<double>(deadline.remaining_seconds()));
      wait_for = std::clamp(remaining, std::chrono::milliseconds(1),
                            std::chrono::milliseconds(50));
    }
    cv_.wait_for(lock, wait_for);
    if (shutdown_) {
      --queued_;
      return Admit::kShutdown;
    }
    if (active_ < config_.max_inflight) {
      --queued_;
      ++active_;
      return Admit::kAdmitted;
    }
    if (deadline.expired()) {
      --queued_;
      return Admit::kExpired;
    }
  }
}

void AdmissionController::release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ > 0) --active_;
  }
  cv_.notify_one();
}

void AdmissionController::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace satdiag::serve
