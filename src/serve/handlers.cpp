#include "serve/handlers.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_parser.hpp"
#include "bench/bench_writer.hpp"
#include "cache/artifact_cache.hpp"
#include "diag/bsat.hpp"
#include "diag/bsim.hpp"
#include "diag/cover.hpp"
#include "diag/hybrid.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "report/experiment.hpp"
#include "report/testfile.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace satdiag::serve {
namespace {

/// A request failure with a machine-readable code; caught at the
/// execute_request boundary and rendered as a structured error response.
class HandlerError : public std::runtime_error {
 public:
  HandlerError(const char* code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  const char* code() const { return code_; }

 private:
  const char* code_;
};

[[noreturn]] void bad_request(const std::string& message) {
  throw HandlerError(kErrBadRequest, message);
}

/// Flags each served command accepts — the serve analogue of the CLI's
/// kKnownFlags (no --stats/--csv: formatting flags are meaningless over the
/// wire, and the `metrics` command is the stats surface).
const std::map<std::string, std::vector<std::string>>& serve_flags() {
  static const std::map<std::string, std::vector<std::string>> kFlags = {
      {"gen", {"profile", "scale", "seed", "out"}},
      {"diagnose",
       {"tests", "approach", "k", "limit", "max-solutions", "threads"}},
      {"experiment",
       {"circuits", "errors", "tests", "scale", "seed", "limit",
        "max-solutions", "threads"}},
      {"ping", {"sleep-ms"}},
      {"metrics", {}},
  };
  return kFlags;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_request("cannot read '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Parsed, diagnosis-ready (full-scan when sequential) netlist, cached by
/// file content so a renamed copy of the same circuit still hits.
std::shared_ptr<const Netlist> load_netlist_cached(const std::string& path) {
  const std::string content = read_file(path);
  const cache::ArtifactKey key = cache::KeyBuilder(cache::ArtifactKind::kNetlist)
                                     .mix("serve.bench")
                                     .mix(content)
                                     .key();
  return cache::ArtifactCache::global().get_or_build<Netlist>(key, [&] {
    Netlist nl = parse_bench_string(content);
    if (!nl.dffs().empty()) nl = make_full_scan(nl).comb;
    const std::size_t bytes = nl.size() * 64 + content.size();
    return std::make_pair(std::make_shared<const Netlist>(std::move(nl)),
                          bytes);
  });
}

/// Parsed test-set, cached by (netlist fingerprint, file content): golden
/// observations are only meaningful relative to one circuit structure.
std::shared_ptr<const TestSet> load_tests_cached(const Netlist& nl,
                                                 const std::string& path) {
  const std::string content = read_file(path);
  const cache::ArtifactKey key =
      cache::KeyBuilder(cache::ArtifactKind::kGoldenOutputs)
          .mix(cache::netlist_fingerprint(nl))
          .mix("serve.tests")
          .mix(content)
          .key();
  return cache::ArtifactCache::global().get_or_build<TestSet>(key, [&] {
    TestSet tests = read_test_set_string(content, nl);
    const std::size_t bytes = content.size() + tests.size() * 32;
    return std::make_pair(std::make_shared<const TestSet>(std::move(tests)),
                          bytes);
  });
}

/// Generated profile circuit, cached by the full generation recipe.
std::shared_ptr<const Netlist> gen_circuit_cached(const CircuitProfile& profile,
                                                  double scale,
                                                  std::uint64_t seed) {
  const cache::ArtifactKey key = cache::KeyBuilder(cache::ArtifactKind::kNetlist)
                                     .mix("serve.gen")
                                     .mix(profile.name)
                                     .mix_double(scale)
                                     .mix(seed)
                                     .key();
  return cache::ArtifactCache::global().get_or_build<Netlist>(key, [&] {
    Netlist nl = make_profile_circuit(profile, scale, seed);
    const std::size_t bytes = nl.size() * 64;
    return std::make_pair(std::make_shared<const Netlist>(std::move(nl)),
                          bytes);
  });
}

void write_solutions(JsonWriter& w, const Netlist& nl,
                     const std::vector<std::vector<GateId>>& solutions) {
  w.key("corrections");
  w.begin_array();
  for (const auto& solution : solutions) {
    w.begin_array();
    for (GateId g : solution) w.value(nl.gate_name(g));
    w.end_array();
  }
  w.end_array();
}

/// Execution budget: the command's own --limit, clamped to what is left of
/// the request deadline after the admission-queue wait.
Deadline execution_deadline(double limit_seconds, const Deadline& deadline) {
  return Deadline::after_seconds(
      std::min(limit_seconds, deadline.remaining_seconds()));
}

std::string handle_gen(const CliArgs& args) {
  const std::string profile_name = args.get_string("profile", "s1423_like");
  const auto profile = find_profile(profile_name);
  if (!profile) bad_request("unknown profile '" + profile_name + "'");
  const double scale = args.get_double("scale", 1.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::shared_ptr<const Netlist> nl =
      gen_circuit_cached(*profile, scale, seed);

  const std::string out_path = args.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) bad_request("cannot write '" + out_path + "'");
    write_bench(out, *nl);
  }
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("profile", profile_name);
  w.kv("gates", static_cast<std::uint64_t>(nl->size()));
  w.kv("inputs", static_cast<std::uint64_t>(nl->inputs().size()));
  w.kv("outputs", static_cast<std::uint64_t>(nl->outputs().size()));
  w.kv("dffs", static_cast<std::uint64_t>(nl->dffs().size()));
  if (out_path.empty()) {
    // No server-side file requested: the bench text IS the result.
    w.kv("bench", write_bench_string(*nl));
  } else {
    w.kv("path", out_path);
  }
  w.end_object();
  return os.str();
}

std::string handle_diagnose(const CliArgs& args, const Deadline& deadline) {
  if (args.positional().size() < 2) bad_request("diagnose needs a .bench file");
  const std::shared_ptr<const Netlist> nl_ptr =
      load_netlist_cached(args.positional()[1]);
  const Netlist& nl = *nl_ptr;
  const std::string tests_path = args.get_string("tests", "");
  if (tests_path.empty()) bad_request("--tests required");
  const std::shared_ptr<const TestSet> tests_ptr =
      load_tests_cached(nl, tests_path);
  const TestSet& tests = *tests_ptr;
  if (tests.empty()) bad_request("empty test set");

  const unsigned k = static_cast<unsigned>(args.get_int("k", 1));
  const double limit = args.get_double("limit", 300.0);
  const std::int64_t cap = args.get_int("max-solutions", -1);
  const std::string approach = args.get_string("approach", "bsat");
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    bad_request("--threads must be >= 1 (got " + std::to_string(threads) +
                ")");
  }
  if (threads > 1 && approach != "bsat" && approach != "hybrid") {
    bad_request("--threads requires a SAT-backed approach (bsat or hybrid)");
  }

  const auto render = [&](const char* approach_name,
                          const std::vector<std::vector<GateId>>& solutions,
                          bool complete, double build_s, double first_s,
                          double all_s) {
    std::ostringstream os;
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("approach", approach_name);
    w.kv("solutions", static_cast<std::uint64_t>(solutions.size()));
    w.kv("complete", complete);
    w.kv("build_seconds", build_s);
    w.kv("first_seconds", first_s);
    w.kv("all_seconds", all_s);
    write_solutions(w, nl, solutions);
    w.end_object();
    return os.str();
  };

  if (approach == "bsim") {
    const BsimResult result = basic_sim_diagnose(nl, tests);
    std::vector<std::vector<GateId>> gmax;
    for (GateId g : result.gmax) gmax.push_back({g});
    return render("bsim", gmax, true, 0.0, 0.0, 0.0);
  }
  if (approach == "cov") {
    CovOptions options;
    options.k = k;
    options.deadline = execution_deadline(limit, deadline);
    options.max_solutions = cap;
    const CovResult result = sc_diagnose(nl, tests, options);
    return render("cov", result.solutions, result.complete,
                  result.build_seconds, result.first_seconds,
                  result.all_seconds);
  }
  if (approach == "bsat") {
    BsatOptions options;
    options.k = k;
    options.deadline = execution_deadline(limit, deadline);
    options.max_solutions = cap;
    options.num_threads = static_cast<std::size_t>(threads);
    const BsatResult result = basic_sat_diagnose(nl, tests, options);
    obs::add_solver_stats(result.solver_stats);
    return render("bsat", result.solutions, result.complete,
                  result.build_seconds, result.first_seconds,
                  result.all_seconds);
  }
  if (approach == "hybrid") {
    HybridOptions options;
    options.mode = HybridMode::kSeedActivity;
    options.k = k;
    options.deadline = execution_deadline(limit, deadline);
    options.max_solutions = cap;
    options.num_threads = static_cast<std::size_t>(threads);
    const HybridResult result = hybrid_diagnose(nl, tests, options);
    obs::add_solver_stats(result.solver_stats);
    return render("hybrid", result.solutions, result.complete,
                  result.sim_seconds, 0.0, result.sat_seconds);
  }
  bad_request("unknown approach '" + approach + "'");
}

std::string handle_experiment(const CliArgs& args, const Deadline& deadline) {
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 1) {
    bad_request("--threads must be >= 1 (got " + std::to_string(threads) +
                ")");
  }
  std::vector<std::string> circuits;
  const std::string circuits_arg = args.get_string("circuits", "s1423_like");
  for (std::string_view name : split(circuits_arg, ',')) {
    name = trim(name);
    if (name.empty()) continue;
    if (!find_profile(std::string(name))) {
      bad_request("unknown profile '" + std::string(name) + "'");
    }
    circuits.emplace_back(name);
  }
  if (circuits.empty()) bad_request("--circuits requires at least one name");
  std::vector<std::size_t> test_counts;
  const std::string tests_arg = args.get_string("tests", "4,8");
  for (std::string_view m : split(tests_arg, ',')) {
    m = trim(m);
    if (m.empty()) continue;
    if (m.find_first_not_of("0123456789") != std::string_view::npos) {
      bad_request("--tests entries must be positive integers (got '" +
                  std::string(m) + "')");
    }
    const long value = std::stol(std::string(m));
    if (value < 1) bad_request("--tests entries must be >= 1");
    test_counts.push_back(static_cast<std::size_t>(value));
  }
  if (test_counts.empty()) bad_request("--tests requires at least one count");

  const double limit = args.get_double("limit", 60.0);
  const Deadline exec_deadline = execution_deadline(limit, deadline);
  std::vector<ExperimentConfig> configs;
  for (const std::string& circuit : circuits) {
    for (std::size_t m : test_counts) {
      ExperimentConfig config;
      config.circuit = circuit;
      config.scale = args.get_double("scale", 0.25);
      config.num_errors = static_cast<std::size_t>(args.get_int("errors", 2));
      config.num_tests = m;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      config.time_limit_seconds = exec_deadline.remaining_seconds();
      config.max_solutions = args.get_int("max-solutions", -1);
      configs.push_back(std::move(config));
    }
  }

  ExperimentGridOptions grid;
  grid.num_threads = static_cast<std::size_t>(threads);
  const std::vector<ExperimentCell> cells = run_experiment_grid(configs, grid);

  // Same row shape as the CLI's experiment result section (satdiag_cli.cpp)
  // so report consumers need one schema for both transports.
  sat::Solver::Stats grid_stats;
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("cells", static_cast<std::uint64_t>(cells.size()));
  w.key("rows");
  w.begin_array();
  for (const ExperimentCell& cell : cells) {
    w.begin_object();
    w.kv("circuit", cell.config.circuit);
    w.kv("tests", static_cast<std::uint64_t>(cell.config.num_tests));
    w.kv("errors", static_cast<std::uint64_t>(cell.config.num_errors));
    w.kv("prepared", cell.prepared);
    if (cell.prepared) {
      grid_stats.merge(cell.row.bsat.solver_stats);
      w.kv("bsim_seconds", cell.row.bsim_seconds);
      w.kv("bsat_solutions",
           static_cast<std::uint64_t>(cell.row.bsat.solutions.size()));
      w.kv("bsat_all_seconds", cell.row.bsat.all_seconds);
      w.kv("bsat_complete", cell.row.bsat.complete);
      w.kv("bsat_conflicts", cell.row.bsat.solver_stats.conflicts);
      w.kv("bsat_decisions", cell.row.bsat.solver_stats.decisions);
      w.kv("bsat_propagations", cell.row.bsat.solver_stats.propagations);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  obs::add_solver_stats(grid_stats);
  return os.str();
}

std::string handle_ping(const CliArgs& args) {
  const std::int64_t sleep_ms = args.get_int("sleep-ms", 0);
  if (sleep_ms < 0) bad_request("--sleep-ms must be >= 0");
  // Deterministic load-test stand-in: occupy an execution slot for a known
  // time. Capped so a typo cannot wedge a slot for minutes.
  const std::int64_t capped = std::min<std::int64_t>(sleep_ms, 10'000);
  if (capped > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(capped));
  }
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("pong", true);
  w.kv("slept_ms", static_cast<std::uint64_t>(capped));
  w.end_object();
  return os.str();
}

std::string handle_metrics() {
  obs::refresh_process_metrics();
  std::ostringstream metrics;
  obs::MetricsRegistry::global().write_json(metrics, /*indent=*/0);
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("schema", "satdiag.metrics");
  w.kv("schema_version", static_cast<std::uint64_t>(obs::kSchemaVersion));
  w.key("metrics");
  w.raw(metrics.str());
  w.end_object();
  return os.str();
}

/// The "satdiag.report" v1 envelope around a command's result section —
/// identical to the CLI's --report-json artifact, rendered compact and with
/// the trailing newline stripped so it splices into a one-line frame.
std::string wrap_report(const std::string& command, const CliArgs& args,
                        double wall_seconds, std::string result_json) {
  obs::RunReport report;
  report.command = command;
  for (const auto& [flag, value] : args.raw_values()) {
    report.config[flag] = value;
  }
  const auto& pos = args.positional();
  std::string joined;
  for (std::size_t i = 1; i < pos.size(); ++i) {
    if (!joined.empty()) joined += ' ';
    joined += pos[i];
  }
  report.config["positional"] = joined;
  report.wall_seconds = wall_seconds;
  report.result_json = std::move(result_json);
  std::ostringstream os;
  report.write_json(os, /*indent=*/0);
  std::string text = os.str();
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

bool known_command(const std::string& command) {
  return serve_flags().count(command) != 0;
}

std::string execute_request(const Request& req, const Deadline& deadline) {
  try {
    if (!known_command(req.command)) {
      bad_request("unknown command '" + req.command + "'");
    }
    // Rebuild an argv so the request goes through the same CliArgs parsing
    // and strict value validation as the one-shot CLI.
    std::vector<std::string> tokens = {"satdiag", req.command};
    tokens.insert(tokens.end(), req.positional.begin(), req.positional.end());
    for (const auto& [name, value] : req.args) {
      tokens.push_back("--" + name + "=" + value);
    }
    std::vector<const char*> argv;
    argv.reserve(tokens.size());
    for (const std::string& token : tokens) argv.push_back(token.c_str());
    CliArgs args;
    std::string parse_error;
    if (!args.parse(static_cast<int>(argv.size()), argv.data(), parse_error)) {
      bad_request(parse_error);
    }
    const std::vector<std::string>& known = serve_flags().at(req.command);
    for (const auto& [name, value] : req.args) {
      (void)value;
      if (std::find(known.begin(), known.end(), name) == known.end()) {
        bad_request("unknown flag --" + name + " for '" + req.command + "'");
      }
    }

    Timer wall;
    std::string result;
    if (req.command == "metrics") {
      // Observability must stay readable under load and is not wrapped in a
      // run report: there is no "run" behind it.
      return ok_response(req.id, handle_metrics());
    } else if (req.command == "gen") {
      result = handle_gen(args);
    } else if (req.command == "diagnose") {
      result = handle_diagnose(args, deadline);
    } else if (req.command == "experiment") {
      result = handle_experiment(args, deadline);
    } else {
      result = handle_ping(args);
    }
    return ok_response(req.id,
                       wrap_report(req.command, args, wall.seconds(),
                                   std::move(result)));
  } catch (const CliUsageError& e) {
    return error_response(req.id, kErrBadRequest, e.what());
  } catch (const HandlerError& e) {
    return error_response(req.id, e.code(), e.what());
  } catch (const std::exception& e) {
    // Parser/loader exceptions carry input-shaped messages; anything the
    // handlers did not classify is the request's fault only if it came from
    // parsing, so surface it as bad_request with the message and keep
    // internal_error for the truly unexpected (bad_alloc has no message).
    const char* what = e.what();
    if (what != nullptr && *what != '\0') {
      return error_response(req.id, kErrBadRequest, what);
    }
    return error_response(req.id, kErrInternal, "unexpected server error");
  }
}

}  // namespace satdiag::serve
