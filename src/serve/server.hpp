// The `satdiag serve` daemon: a blocking TCP listener speaking the
// newline-delimited JSON protocol of serve/protocol.hpp, with admission
// control (serve/admission.hpp) in front of request execution
// (serve/handlers.hpp).
//
// Threading model: one accept loop (run()), one thread per connection with
// serial request processing per connection — ordering within a connection
// is the client's ordering, concurrency comes from multiple connections.
// Admission bounds the damage: at most max_inflight requests execute at
// once, queue_depth more wait, the rest get structured "overloaded" frames.
//
// Observability: the server registers the serve.* metrics
// (serve.accepted / serve.rejected counters, serve.active /
// serve.queue_depth gauges, serve.request_us histogram) in the global
// MetricsRegistry; the `metrics` request — which deliberately bypasses
// admission so the stats surface stays readable under load — returns the
// whole registry. Tracing stays disabled in serve mode: the trace ring
// drain contract (obs/trace.hpp) forbids walking rings while request
// threads could write spans.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "serve/admission.hpp"

namespace satdiag::serve {

struct ServeOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the bound one.
  int port = 0;
  /// Execution lanes per request (forwarded as the CLI --threads would be)
  /// and the default admission width.
  std::size_t threads = 1;
  /// Max concurrently executing requests; 0 derives from `threads`.
  std::size_t max_inflight = 0;
  /// Requests allowed to wait for a slot before load-shedding.
  std::size_t queue_depth = 16;
  /// Per-request wall-clock budget, queue wait included.
  double max_request_seconds = 300.0;
};

class Server {
 public:
  explicit Server(const ServeOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen. Returns false and fills `error` on failure. After a
  /// successful start, port() is the actual bound port.
  bool start(std::string& error);
  int port() const { return port_; }

  /// Blocking accept loop; returns after shutdown() (or a `shutdown`
  /// request) once every connection thread has been joined.
  void run();

  /// Thread-safe and signal-tolerant: wakes the accept loop and unblocks
  /// every connection read.
  void shutdown();

  /// Async-signal-safe stop request (atomic store + pipe write only); the
  /// accept loop notices and performs the full shutdown itself. This is the
  /// ONLY Server method a signal handler may call.
  void request_stop_from_signal();

 private:
  struct Impl;
  void handle_connection(int fd);
  /// Dispatch one frame and return the response line (newline excluded).
  /// Sets *shutdown_requested on a `shutdown` command.
  std::string process_frame(const std::string& frame,
                            bool* shutdown_requested);

  ServeOptions options_;
  AdmissionController admission_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<Impl> impl_;
};

}  // namespace satdiag::serve
