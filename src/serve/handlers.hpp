// Request execution for the serve daemon.
//
// One admitted request = one library call on the exec/ runtime, with the
// same option derivation as the one-shot CLI (tools/satdiag_cli.cpp): the
// same defaults, the same strict value parsing, the same flag whitelists.
// That is the serve bit-identity contract — a diagnose request returns the
// same solution sets the CLI prints for the same inputs.
//
// Repeat requests on the same inputs hit cache::ArtifactCache: parsed
// .bench netlists (full-scan view included) are cached under kNetlist keyed
// by file CONTENT, parsed test-sets under kGoldenOutputs keyed by netlist
// fingerprint + file content, and generated circuits under kNetlist keyed
// by (profile, scale, seed) — warm requests pay only the solve.
#pragma once

#include <string>

#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace satdiag::serve {

/// True for commands execute_request understands ("shutdown" is handled by
/// the server itself; anything else is a bad_request).
bool known_command(const std::string& command);

/// Execute one admitted request and return its complete one-line response
/// frame (no trailing newline). `deadline` is the request's remaining
/// budget — it already covered the admission-queue wait, and execution
/// limits (--limit) are clamped to what is left. Never throws: every
/// failure becomes a structured error response.
std::string execute_request(const Request& req, const Deadline& deadline);

}  // namespace satdiag::serve
