#include "serve/protocol.hpp"

#include <sstream>

#include "util/json.hpp"

namespace satdiag::serve {
namespace {

/// Coerce a scalar JSON arg value to the CLI's string form. Integers print
/// exactly; doubles use the writer's shortest round-trip form so a value
/// survives client -> serve -> CliArgs::get_double bit-exactly.
bool scalar_to_cli_string(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kString:
      out = v.string;
      return true;
    case JsonValue::Kind::kBool:
      out = v.boolean ? "true" : "false";
      return true;
    case JsonValue::Kind::kNumber: {
      std::ostringstream os;
      JsonWriter w(os, /*indent=*/0);
      if (v.is_integer) {
        w.value(v.integer);
      } else {
        w.value(v.number);
      }
      out = os.str();
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool parse_request(std::string_view frame, Request& out, std::string& error) {
  JsonValue doc;
  if (!json_parse(frame, doc, error)) {
    error = "invalid JSON: " + error;
    return false;
  }
  if (!doc.is_object()) {
    error = "request must be a JSON object";
    return false;
  }

  Request req;
  if (const JsonValue* id = doc.find("id")) {
    if (!scalar_to_cli_string(*id, req.id)) {
      error = "'id' must be a string, number, or boolean";
      return false;
    }
  }
  const JsonValue* command = doc.find("command");
  if (command == nullptr || !command->is_string() || command->string.empty()) {
    error = "missing or non-string 'command'";
    return false;
  }
  req.command = command->string;

  if (const JsonValue* args = doc.find("args")) {
    if (!args->is_object()) {
      error = "'args' must be an object of flag: value pairs";
      return false;
    }
    for (const auto& [name, value] : args->object) {
      if (name.empty() || name.rfind("--", 0) == 0) {
        error = "arg names use the bare CLI spelling (got '" + name + "')";
        return false;
      }
      std::string cli_value;
      if (!scalar_to_cli_string(value, cli_value)) {
        error = "arg '" + name + "' must be a scalar (string/number/bool)";
        return false;
      }
      if (!req.args.emplace(name, std::move(cli_value)).second) {
        error = "duplicate arg '" + name + "'";
        return false;
      }
    }
  }
  if (const JsonValue* pos = doc.find("positional")) {
    if (!pos->is_array()) {
      error = "'positional' must be an array of strings";
      return false;
    }
    for (const JsonValue& entry : pos->array) {
      if (!entry.is_string()) {
        error = "'positional' entries must be strings";
        return false;
      }
      req.positional.push_back(entry.string);
    }
  }
  for (const auto& [key, value] : doc.object) {
    (void)value;
    if (key != "id" && key != "command" && key != "args" &&
        key != "positional") {
      error = "unknown request field '" + key + "'";
      return false;
    }
  }
  out = std::move(req);
  return true;
}

std::string ok_response(const std::string& id, std::string_view report_json) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "ok");
  w.key("report");
  w.raw(report_json);
  w.end_object();
  return os.str();
}

std::string error_response(const std::string& id, std::string_view code,
                           std::string_view message) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("id", id);
  w.kv("status", code == kErrOverloaded ? "overloaded" : "error");
  w.key("error");
  w.begin_object();
  w.kv("code", code);
  w.kv("message", message);
  w.end_object();
  w.end_object();
  return os.str();
}

std::string overloaded_response(const std::string& id, std::size_t active,
                                std::size_t queued) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("id", id);
  w.kv("status", "overloaded");
  w.key("error");
  w.begin_object();
  w.kv("code", kErrOverloaded);
  w.kv("message", "admission queue full; retry with backoff");
  w.kv("active", static_cast<std::uint64_t>(active));
  w.kv("queued", static_cast<std::uint64_t>(queued));
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace satdiag::serve
