#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/handlers.hpp"
#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace satdiag::serve {
namespace {

/// serve.request_us buckets: 100us .. 10s in decades.
constexpr std::uint64_t kLatencyBounds[] = {100,     1'000,     10'000,
                                            100'000, 1'000'000, 10'000'000};

struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Gauge& active;
  obs::Gauge& queue_depth;
  obs::Histogram& request_us;

  static ServeMetrics& get() {
    static ServeMetrics m{
        obs::MetricsRegistry::global().counter("serve.accepted"),
        obs::MetricsRegistry::global().counter("serve.rejected"),
        obs::MetricsRegistry::global().gauge("serve.active"),
        obs::MetricsRegistry::global().gauge("serve.queue_depth"),
        obs::MetricsRegistry::global().histogram("serve.request_us",
                                                 kLatencyBounds),
    };
    return m;
  }
};

/// send() the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, std::string line) {
  line.push_back('\n');
  return send_all(fd, line);
}

}  // namespace

struct Server::Impl {
  int listen_fd = -1;
  int wake_pipe[2] = {-1, -1};

  std::mutex mu;
  std::set<int> connection_fds;
  std::vector<std::thread> connection_threads;

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_pipe[0] >= 0) ::close(wake_pipe[0]);
    if (wake_pipe[1] >= 0) ::close(wake_pipe[1]);
  }
};

Server::Server(const ServeOptions& options)
    : options_(options),
      admission_(AdmissionConfig{
          options.max_inflight != 0 ? options.max_inflight
                                    : std::max<std::size_t>(options.threads, 1),
          options.queue_depth}),
      impl_(std::make_unique<Impl>()) {
  // Register the serve.* catalogue up front so the very first `metrics`
  // request already shows every name.
  ServeMetrics::get();
}

Server::~Server() {
  shutdown();
  // run() joins the connection threads; if it never ran (start() failed or
  // the owner stopped before run()), there is nothing to join.
}

bool Server::start(std::string& error) {
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error = "invalid bind address '" + options_.bind_address + "'";
    return false;
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(impl_->listen_fd, 64) != 0) {
    error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  if (::pipe(impl_->wake_pipe) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  return true;
}

void Server::run() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {
        {impl_->listen_fd, POLLIN, 0},
        {impl_->wake_pipe[0], POLLIN, 0},
    };
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown() wrote the wake byte
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(client);
      break;
    }
    impl_->connection_fds.insert(client);
    impl_->connection_threads.emplace_back(
        [this, client] { handle_connection(client); });
  }
  // Fail queued admissions and unblock reads, then join every connection
  // thread. shutdown() already did this for the normal path; repeating it
  // covers the signal path, where only the stop flag and wake byte were set.
  admission_.shutdown();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (int fd : impl_->connection_fds) ::shutdown(fd, SHUT_RDWR);
    threads.swap(impl_->connection_threads);
  }
  for (std::thread& t : threads) t.join();
}

void Server::request_stop_from_signal() {
  stopping_.store(true, std::memory_order_relaxed);
  if (impl_->wake_pipe[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &byte, 1);
  }
}

void Server::shutdown() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) return;
  admission_.shutdown();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (int fd : impl_->connection_fds) ::shutdown(fd, SHUT_RDWR);
  }
  if (impl_->wake_pipe[1] >= 0) {
    const char byte = 'x';
    // A full pipe just means a wake byte is already pending.
    [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &byte, 1);
  }
}

std::string Server::process_frame(const std::string& frame,
                                  bool* shutdown_requested) {
  ServeMetrics& metrics = ServeMetrics::get();
  Request req;
  std::string parse_error;
  if (!parse_request(frame, req, parse_error)) {
    metrics.rejected.add();
    return error_response("", kErrBadRequest, parse_error);
  }
  if (req.command == "shutdown") {
    *shutdown_requested = true;
    return ok_response(req.id, "{\"shutting_down\":true}");
  }
  if (req.command == "metrics") {
    // Observability bypasses admission: a saturated server must still
    // answer "how saturated are you?".
    metrics.queue_depth.set(static_cast<std::int64_t>(admission_.queued()));
    return execute_request(req, Deadline::after_seconds(5.0));
  }

  const Deadline deadline =
      Deadline::after_seconds(options_.max_request_seconds);
  metrics.queue_depth.set(static_cast<std::int64_t>(admission_.queued() + 1));
  const AdmissionController::Admit admit = admission_.admit(deadline);
  metrics.queue_depth.set(static_cast<std::int64_t>(admission_.queued()));
  switch (admit) {
    case AdmissionController::Admit::kOverloaded:
      metrics.rejected.add();
      return overloaded_response(req.id, admission_.active(),
                                 admission_.queued());
    case AdmissionController::Admit::kExpired:
      metrics.rejected.add();
      return error_response(req.id, kErrDeadlineExpired,
                            "deadline expired while queued for admission");
    case AdmissionController::Admit::kShutdown:
      metrics.rejected.add();
      return error_response(req.id, kErrInternal, "server is shutting down");
    case AdmissionController::Admit::kAdmitted:
      break;
  }
  metrics.accepted.add();
  metrics.active.set(static_cast<std::int64_t>(admission_.active()));
  // Requests that omit --threads run with the server's lane count, exactly
  // as `satdiag diagnose --threads N` would.
  if (options_.threads > 1 && req.args.find("threads") == req.args.end() &&
      (req.command == "diagnose" || req.command == "experiment")) {
    req.args.emplace("threads", std::to_string(options_.threads));
  }
  Timer request_timer;
  std::string response = execute_request(req, deadline);
  metrics.request_us.observe(
      static_cast<std::uint64_t>(request_timer.seconds() * 1e6));
  admission_.release();
  metrics.active.set(static_cast<std::int64_t>(admission_.active()));
  return response;
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, error, or shutdown() half-closed us
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string frame = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!frame.empty() && frame.back() == '\r') frame.pop_back();
      if (frame.empty()) continue;
      if (!send_frame(fd, process_frame(frame, &shutdown_requested))) break;
      if (shutdown_requested) break;
    }
    if (shutdown_requested) break;
    if (buffer.size() > kMaxRequestBytes) {
      // An unterminated over-long line can never become a valid frame:
      // reply once and drop the connection.
      ServeMetrics::get().rejected.add();
      send_frame(fd, error_response("", kErrBadRequest,
                                    "request frame exceeds size limit"));
      break;
    }
  }
  // Deregister before close: a closed fd number can be recycled by the next
  // accept, and shutdown() must never half-close an unrelated connection.
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->connection_fds.erase(fd);
  }
  ::close(fd);
  if (shutdown_requested) shutdown();
}

}  // namespace satdiag::serve
