// Conflict-driven clause-learning SAT solver with an inprocessing core.
//
// A from-scratch reimplementation of the Chaff/MiniSat architecture the paper
// relies on ("conflict-based learning [14] and efficient Boolean constraint
// propagation [15]"): two-watched-literal BCP with a dedicated out-of-arena
// binary-clause layer (implication lists drained before long-clause watches,
// as in CryptoMiniSat/Glucose), first-UIP learning with recursive clause
// minimization, EVSIDS decision heuristic with phase saving, Luby restarts,
// incremental solving under assumptions (the paper's BSAT procedure reuses
// learnt clauses across the k=1..K iterations this way), and in-search model
// blocking (block_model) so all-solutions enumeration continues from the
// live trail instead of restarting per solution.
//
// Long-lived incremental health comes from two subsystems (see the README's
// "SAT core" subsection for the full contract):
//
//  * A glue-tiered learnt database (Glucose/CryptoMiniSat style): learnts
//    live in core (LBD <= 3, kept), mid (LBD <= 6, demoted when unused for
//    two reduce rounds), or local (everything else, activity-sorted halving)
//    tiers. LBD is recomputed whenever a learnt serves as a reason, and
//    improvements promote the clause.
//  * inprocess(): a budgeted simplification pipeline run between restarts at
//    the root level — clause cleaning, binary-implication-graph subsumption
//    and self-subsuming resolution (subsume.hpp), failed-literal probing on
//    BIG roots (probe.hpp), learnt-clause vivification (vivify.hpp), and
//    bounded variable elimination (elim.hpp) with a model-reconstruction
//    stack (extend.hpp) so model_value stays exact on eliminated variables.
//
// Frozen-variable contract: elimination only ever touches variables that are
// neither decision variables nor frozen. Callers that will mention a
// variable in *future* clauses or assumptions (select lines, correction
// values, cardinality geq indicators, shard activation vars) must freeze it;
// reading a variable out of model_value needs no freezing — reconstruction
// is exact.
//
// Clause sharing: export_learnts()/import_clause() move low-LBD learnts
// between solvers working on the *same* base formula (the BSAT partition
// shards exchange at the per-bound barrier; solve_portfolio exchanges via
// set_share_hook between restarts). Learnt clauses are implied by the clause
// database alone — assumptions never taint them — so exchange is sound
// whenever the receivers' clause databases are supersets of the exporter's.
//
// Extra hooks used by the diagnosis layer:
//  * decision markers — BSAT restricts decisions to select/correction vars,
//  * external activity bumps and polarity hints — the hybrid approach seeds
//    the heuristic from simulation results (Sec. 6 of the paper).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "sat/extend.hpp"
#include "sat/types.hpp"
#include "util/timer.hpp"

namespace satdiag::sat {

/// A learnt clause in transit between solvers (sorted literals + the
/// exporter's glue). See Solver::export_learnts / import_clause.
struct SharedClause {
  Clause lits;
  unsigned lbd = 0;
};

/// One deferred watch attachment of a stamped clause stream: push clause
/// number `clause`'s watcher onto watch list `watch_index`, with
/// `other_index` the Lit::index() of the other watched literal (the blocker
/// for long clauses, the implied literal for binaries). Streams carry these
/// pre-sorted by watch_index so Solver::add_clause_stream can fill each
/// watch list in one contiguous run instead of 2·|clauses| random appends —
/// the dominant cost of bulk instance construction (see clause_stream.hpp).
///
/// `arena_offset` is the clause's word offset within the stream's arena
/// segment assuming no clause simplifies away (kStampClauseOverhead words of
/// header per clause): the pristine loader resolves an op's clause reference
/// as segment base + arena_offset, with no per-clause bookkeeping. Zero for
/// binary ops (binaries live outside the arena).
struct StreamWatchOp {
  std::uint32_t watch_index;
  std::uint32_t other_index;
  std::uint32_t clause;
  std::uint32_t arena_offset;
};

/// Arena words per clause beyond its literals, fixed by the solver's clause
/// layout; stream builders use it to precompute StreamWatchOp::arena_offset.
inline constexpr std::uint32_t kStampClauseOverhead = 3;

/// Budgets and thresholds of the inprocessing pipeline. The defaults suit
/// the diagnosis workloads; tests shrink the intervals to force the pipeline
/// onto tiny formulas.
struct InprocessConfig {
  bool enabled = true;
  /// Conflict count before the first run (0 = preprocess on first solve).
  /// Preprocessing up front pays off on the search-bound diagnosis
  /// instances; enumeration-style instances whose formula stops
  /// simplifying are protected by the no-progress back-off instead (a run
  /// that accomplishes nothing multiplies the interval by 8, see
  /// Solver::inprocess).
  std::uint64_t first_conflicts = 0;
  /// Conflicts between runs; doubles after every productive run
  /// (geometric back-off).
  std::uint64_t interval_conflicts = 2000;
  /// Propagation budgets per run.
  std::uint64_t probe_budget = 200000;
  std::uint64_t vivify_budget = 100000;
  /// Literal-visit budget of the subsumption pass per run.
  std::uint64_t subsume_budget = 2000000;
  /// Resolvent-construction budget of the elimination pass per run.
  std::uint64_t elim_budget = 1000000;
  /// Skip elimination candidates with more occurrences on one polarity.
  unsigned elim_occ_limit = 40;
  /// Allowed clause-count growth per eliminated variable (0 = MiniSat rule).
  unsigned elim_grow = 0;
  /// Skip eliminations that would create a resolvent longer than this.
  unsigned elim_resolvent_limit = 32;
  /// Learnts vivified per run (round-robin over the tiers).
  std::size_t vivify_clauses = 64;
  /// Glue thresholds of the learnt-DB tiers.
  unsigned core_lbd = 3;
  unsigned mid_lbd = 6;
};

class Solver {
 public:
  Solver();

  // ---- problem construction ----------------------------------------------
  Var new_var(bool decidable = true, bool default_phase = false);
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Pre-extend every per-variable array for `extra` upcoming new_var calls
  /// (one reallocation instead of ~13 amortized growths per variable). Used
  /// by the template-stamping path, which knows each copy's variable count
  /// up front.
  void reserve_vars(std::size_t extra);

  /// Batch variable allocation: equivalent to flags.size() new_var calls but
  /// with one resize of every per-variable array instead of ~17 push_backs
  /// per variable. Bit 0 of a flag marks the variable decidable (entering
  /// the order heap with zero activity, an O(1) max-heap append), bit 1
  /// frozen; phases start false. Returns the first new variable.
  static constexpr std::uint8_t kVarDecidable = 1;
  static constexpr std::uint8_t kVarFrozen = 2;
  Var new_vars(std::span<const std::uint8_t> flags);

  /// Add a clause; returns false when the formula is already UNSAT at the
  /// root level. Literals may be unsorted and contain duplicates. When
  /// called with a search trail left over from a satisfiable solve() the
  /// trail is reset first (root-level addition).
  bool add_clause(Clause lits);
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Bulk-load path for stamped clause templates: `lits` is the concatenated
  /// literal stream, `sizes` the clause lengths in order. Semantically
  /// equivalent to one add_clause call per clause — root-satisfied clauses
  /// are dropped, root-false literals stripped, shrunken units enqueued and
  /// propagated in sequence — but with no per-clause allocation or sorting.
  ///
  /// `plan_long`/`plan_bin` are the stream's watch attachments (two per
  /// clause of size >= 3 resp. == 2), sorted by watch_index, with literal
  /// indices already relocated to this solver's variables. Clauses whose
  /// literals are all unassigned at the root — the entire stream in the
  /// common instance-construction case — have their watchers appended
  /// list-by-list from the plan after the arena pass, turning the random
  /// watch-list appends (the dominant bulk-load cost) into sequential runs
  /// with one capacity reservation each. A clause the root trail shortens is
  /// attached immediately instead and its plan ops are skipped; the first
  /// clause that *enqueues* (a unit) flushes the plan, propagates, and drops
  /// the remainder of the stream to the clause-at-a-time path so every later
  /// clause sees the propagated values exactly as a sequence of add_clause
  /// calls would.
  ///
  /// Preconditions (guaranteed by ClauseStream normalization/relocation): no
  /// clause contains duplicate or complementary literals, and the plans list
  /// every size >= 2 clause of the stream. Returns false when the formula
  /// becomes UNSAT at the root.
  bool add_clause_stream(std::span<const Lit> lits,
                         std::span<const std::uint32_t> sizes,
                         std::span<const StreamWatchOp> plan_long,
                         std::span<const StreamWatchOp> plan_bin);

  /// Pristine template stamping, fused with relocation: `codes` are
  /// unrelocated stream codes ((var << 1) | sign) where var < extern_base
  /// is a stream-local variable (resolved to local_base + var) and var >=
  /// extern_base maps through extern_vars[var - extern_base]. The caller
  /// guarantees that no resolved literal is assigned at the root (fresh
  /// copy variables plus unassigned extern variables — see any_assigned)
  /// and that every clause has size >= 2: nothing simplifies or propagates,
  /// so the load skips value checks, fills the arena in one swept resize,
  /// and attaches watches straight from the sorted plan — no intermediate
  /// relocation buffers, no per-clause bookkeeping. This is the standard
  /// instance-construction case; streams with units or assigned externs go
  /// through add_clause_stream instead.
  bool add_stamped_stream(std::span<const std::uint32_t> codes,
                          std::span<const std::uint32_t> sizes,
                          std::span<const StreamWatchOp> plan_long,
                          std::span<const StreamWatchOp> plan_bin,
                          Var local_base, Var extern_base,
                          std::span<const Var> extern_vars);

  /// True when any of `vars` is assigned at the root level — the template
  /// stamping path probes its extern (select) variables with this to decide
  /// whether the pristine bulk load applies.
  bool any_assigned(std::span<const Var> vars) const;

  /// Snapshot of the irredundant clause database — the binary layer plus
  /// non-learnt arena clauses, with root-level trail literals included as
  /// unit clauses. Every clause comes out sorted. For differential tests
  /// (walk-vs-stamp instance equality) and external tooling; not a hot path.
  std::vector<Clause> snapshot_clauses() const;

  /// Enumeration fast path: add a clause whose literals are all false under
  /// the current model (a blocking clause) *without* resetting the search.
  /// The solver backjumps just far enough to make the clause attachable and
  /// the next solve() with the same assumptions continues in place instead
  /// of re-deciding and re-propagating the whole trail. Falls back to
  /// add_clause() semantics when no search state is active; returns false
  /// when the formula became UNSAT at the root.
  ///
  /// Precondition: every literal's variable must be a decision variable
  /// (the default). Completeness of the in-place continuation relies on the
  /// search re-deciding a blocking literal that a later backjump unassigns;
  /// a non-decidable variable could leave the clause silently unsatisfied
  /// in a "model". All enumeration loops in-tree block over decision
  /// variables (selects / selectors / inputs).
  bool block_model(Clause lits);

  bool ok() const { return ok_; }

  // ---- frozen-variable contract ------------------------------------------
  /// Exempt v from variable elimination. Mandatory for any variable that
  /// future add_clause/solve calls will mention (decision variables are
  /// exempt automatically — every enumeration loop blocks over them).
  /// Freezing is permanent and cheap; model reads need no freezing.
  void freeze(Var v) { frozen_[static_cast<std::size_t>(v)] = true; }
  bool is_frozen(Var v) const { return frozen_[static_cast<std::size_t>(v)]; }
  /// True once elimination removed v; model_value(v) remains exact (the
  /// reconstruction stack replays the clauses that defined it).
  bool is_eliminated(Var v) const {
    return eliminated_[static_cast<std::size_t>(v)];
  }

  // ---- inprocessing -------------------------------------------------------
  void set_inprocess(const InprocessConfig& config);
  const InprocessConfig& inprocess_config() const { return inprocess_cfg_; }

  // ---- solving --------------------------------------------------------------
  /// kTrue: model available; kFalse: UNSAT under assumptions; kUndef: budget
  /// or deadline exhausted.
  LBool solve(std::span<const Lit> assumptions = {});

  LBool model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }
  LBool model_value(Lit l) const { return model_value(l.var()) ^ l.sign(); }

  /// After kFalse under assumptions: the subset of assumptions proven
  /// contradictory (in negated form, as in MiniSat's conflict vector).
  const std::vector<Lit>& conflict() const { return conflict_; }

  // ---- clause sharing -------------------------------------------------------
  /// Append learnts not yet exported — root units, learnt binaries, and
  /// core/mid arena learnts with glue <= max_lbd (each clause leaves once;
  /// literals sorted so receivers can deduplicate). Returns the number
  /// appended; stops at max_clauses.
  std::size_t export_learnts(unsigned max_lbd, std::size_t max_clauses,
                             std::vector<SharedClause>& out);
  /// Import a clause learnt by a solver over the same base formula (sound
  /// whenever this solver's clause set implies the exporter's). Added as a
  /// learnt at the root level; dropped (returns false) when it mentions an
  /// eliminated variable or is already satisfied at the root. Imported
  /// clauses are not re-exported.
  bool import_clause(const SharedClause& shared);
  /// Invoked at every restart boundary (root level, before the next search
  /// segment) — the portfolio's lock-light exchange point. The hook may call
  /// export_learnts/import_clause on the passed solver.
  void set_share_hook(std::function<void(Solver&)> hook) {
    share_hook_ = std::move(hook);
  }

  // ---- budgets ----------------------------------------------------------------
  void set_conflict_budget(std::int64_t conflicts) { conflict_budget_ = conflicts; }
  void clear_budgets() { conflict_budget_ = -1; deadline_ = Deadline(); }
  void set_deadline(Deadline d) { deadline_ = d; }
  /// Cooperative cancellation for portfolio racing: while `flag` is set the
  /// solver behaves as if its budget expired (solve() returns kUndef at the
  /// next budget check). The flag outlives the solve call; nullptr detaches.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  // ---- heuristic hooks ------------------------------------------------------
  void set_decision_var(Var v, bool decidable);
  void set_polarity_hint(Var v, bool phase) {
    saved_phase_[static_cast<std::size_t>(v)] = phase;
  }
  /// Multiplies into the EVSIDS activity; larger = decided earlier.
  void boost_activity(Var v, double factor);

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t binary_propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t removed = 0;
    std::uint64_t gc_runs = 0;
    // Inprocessing pipeline counters.
    std::uint64_t inprocess_runs = 0;
    std::uint64_t subsumed = 0;       // clauses removed by BIG subsumption
    std::uint64_t strengthened = 0;   // literals removed by self-subsumption
    std::uint64_t vivified = 0;       // learnts shortened by vivification
    std::uint64_t vars_eliminated = 0;
    std::uint64_t failed_literals = 0;
    // Clause sharing.
    std::uint64_t learnts_exported = 0;
    std::uint64_t learnts_imported = 0;
    // Learnt-DB tier sizes (snapshot; summed across workers by merge()).
    std::uint64_t tier_core = 0;
    std::uint64_t tier_mid = 0;
    std::uint64_t tier_local = 0;

    /// Aggregate another solver's counters (per-worker stats of the
    /// parallel diagnosis paths and the portfolio merge into one report).
    void merge(const Stats& other) {
      conflicts += other.conflicts;
      decisions += other.decisions;
      propagations += other.propagations;
      binary_propagations += other.binary_propagations;
      restarts += other.restarts;
      learned += other.learned;
      removed += other.removed;
      gc_runs += other.gc_runs;
      inprocess_runs += other.inprocess_runs;
      subsumed += other.subsumed;
      strengthened += other.strengthened;
      vivified += other.vivified;
      vars_eliminated += other.vars_eliminated;
      failed_literals += other.failed_literals;
      learnts_exported += other.learnts_exported;
      learnts_imported += other.learnts_imported;
      tier_core += other.tier_core;
      tier_mid += other.tier_mid;
      tier_local += other.tier_local;
    }
  };
  const Stats& stats() const { return stats_; }

  std::size_t num_clauses() const;
  std::size_t num_learnts() const;

 private:
  friend class Subsumer;
  friend class Prober;
  friend class Vivifier;
  friend class Eliminator;

  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xffffffffu;

  // Binary clauses live outside the arena in dedicated watch lists (see
  // bin_watches_). Their reasons are encoded as the other literal of the
  // clause with the top bit set, so they fit the CRef-typed reason slots
  // without allocating; the arena asserts it never grows into the tag range.
  static constexpr CRef kBinReasonFlag = 0x80000000u;
  static constexpr bool is_bin_reason(CRef r) {
    return r != kCRefUndef && (r & kBinReasonFlag) != 0;
  }
  static constexpr Lit bin_reason_lit(CRef r) {
    return Lit::from_index(static_cast<int>(r & ~kBinReasonFlag));
  }
  static constexpr CRef bin_reason(Lit other) {
    return kBinReasonFlag | static_cast<CRef>(other.index());
  }

  // Learnt-DB tiers (meta word, bits 12..13).
  enum Tier : std::uint32_t { kTierCore = 0, kTierMid = 1, kTierLocal = 2 };

  // Arena clause layout: [header][activity bits][meta][lits...]
  // header = (size << 2) | (learnt << 1) | deleted.
  // meta   = lbd (bits 0..11) | tier (12..13) | exported (14) |
  //          unused reduce rounds (16..23); meaningful for learnts only.
  struct Arena {
    static constexpr std::uint32_t kLbdMask = 0xfffu;
    static constexpr std::uint32_t kTierShift = 12;
    static constexpr std::uint32_t kExportedBit = 1u << 14;
    static constexpr std::uint32_t kUnusedShift = 16;
    static constexpr std::uint32_t kUnusedMask = 0xffu;

    std::vector<std::uint32_t> data;

    CRef alloc(std::span<const Lit> lits, bool learnt);
    std::uint32_t size(CRef c) const { return data[c] >> 2; }
    bool learnt(CRef c) const { return (data[c] >> 1) & 1; }
    bool deleted(CRef c) const { return data[c] & 1; }
    void mark_deleted(CRef c) { data[c] |= 1; }
    Lit lit(CRef c, std::uint32_t i) const {
      return Lit::from_index(static_cast<int>(data[c + 3 + i]));
    }
    void set_lit(CRef c, std::uint32_t i, Lit l) {
      data[c + 3 + i] = static_cast<std::uint32_t>(l.index());
    }
    void shrink(CRef c, std::uint32_t new_size) {
      data[c] = (new_size << 2) | (data[c] & 3);
    }
    float activity(CRef c) const;
    void set_activity(CRef c, float a);

    std::uint32_t lbd(CRef c) const { return data[c + 2] & kLbdMask; }
    void set_lbd(CRef c, std::uint32_t lbd) {
      data[c + 2] = (data[c + 2] & ~kLbdMask) | std::min(lbd, kLbdMask);
    }
    Tier tier(CRef c) const {
      return static_cast<Tier>((data[c + 2] >> kTierShift) & 3u);
    }
    void set_tier(CRef c, Tier t) {
      data[c + 2] = (data[c + 2] & ~(3u << kTierShift)) |
                    (static_cast<std::uint32_t>(t) << kTierShift);
    }
    bool exported(CRef c) const { return data[c + 2] & kExportedBit; }
    void set_exported(CRef c) { data[c + 2] |= kExportedBit; }
    std::uint32_t unused_rounds(CRef c) const {
      return (data[c + 2] >> kUnusedShift) & kUnusedMask;
    }
    void set_unused_rounds(CRef c, std::uint32_t n) {
      data[c + 2] = (data[c + 2] & ~(kUnusedMask << kUnusedShift)) |
                    ((n & kUnusedMask) << kUnusedShift);
    }
    std::uint32_t meta(CRef c) const { return data[c + 2]; }
    void set_meta(CRef c, std::uint32_t m) { data[c + 2] = m; }
  };
  /// Words per arena clause beyond its literals (header, activity, meta).
  static constexpr std::uint32_t kClauseOverhead = 3;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // Watcher for a size-2 clause: when the watching literal becomes false,
  // `implied` is the only other literal — no arena load, no watch movement,
  // no replacement-watch scan. `learnt` tags redundant binaries (subsumption
  // may promote them to irredundant; the counts track both kinds).
  struct BinWatcher {
    Lit implied;
    std::uint32_t learnt;
  };

  struct VarData {
    CRef reason = kCRefUndef;
    int level = 0;
  };

  // internal engine
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool value(Lit l) const { return value(l.var()) ^ l.sign(); }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  /// Trail prefix assigned at the root (stable across backjumps; root units
  /// only ever append).
  std::size_t root_trail_size() const {
    return trail_lim_.empty() ? trail_.size()
                              : static_cast<std::size_t>(trail_lim_[0]);
  }

  void attach_clause(CRef c);
  void attach_binary(Lit a, Lit b, bool learnt);
  /// Apply the deferred watch attachments of the current clause stream
  /// (clauses with stream_fast_ set), one sorted run per watch list.
  void apply_stream_plan(std::span<const StreamWatchOp> plan_long,
                         std::span<const StreamWatchOp> plan_bin);
  void detach_clause(CRef c);
  void remove_clause(CRef c);
  void unchecked_enqueue(Lit p, CRef reason);
  CRef propagate();
  void cancel_until(int level);
  Lit pick_branch_lit();
  void analyze(CRef conflict, Clause& out_learnt, int& out_btlevel,
               unsigned& out_lbd);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p);
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump_activity(CRef c);
  void cla_decay_activity() { cla_inc_ *= (1.0f / 0.999f); }
  /// Recompute the glue of a learnt serving as a reason; promote on
  /// improvement and reset its unused-round counter.
  void update_learnt_on_use(CRef c);
  std::vector<CRef>& tier_list(Tier t);
  void push_learnt(CRef c, unsigned lbd);
  void reduce_db();
  void garbage_collect();
  LBool search();
  bool within_budget() const;
  static double luby(double y, int i);

  // ---- inprocessing internals (solver.cpp + the sat/ module files) -------
  bool inprocess();
  bool inprocess_due() const {
    return inprocess_cfg_.enabled && stats_.conflicts >= next_inprocess_;
  }
  /// Forget root-level reasons (analyze/analyze_final skip level-0 vars, so
  /// they are never read): afterwards no arena clause is locked and the
  /// simplification passes may remove or rewrite any clause.
  void clear_root_reasons();
  /// Remove root-satisfied clauses and strip root-false literals, in the
  /// arena and the binary layer.
  void clean_clauses();
  /// Erase deleted CRefs from clauses_ and the learnt tiers (the
  /// simplification passes delete lazily; GC requires compacted lists).
  void compact_clause_lists();
  /// Rewrite the (detached) clause c to `lits` — a subset of its literals,
  /// none assigned at the root, size >= 1. Migrates to the binary layer or
  /// the trail when it shrinks past the arena threshold.
  void shrink_clause_detached(CRef c, std::span<const Lit> lits);
  /// Enqueue a root-level unit and propagate; updates ok_.
  bool enqueue_root(Lit p);
  void update_tier_stats();

  /// Totalizing fallback once elimination has run: BVE resolvents can lose
  /// the propagation-completeness of the original encodings, so after every
  /// decision variable is assigned, remaining non-eliminated variables are
  /// decided too — a total BCP fixpoint satisfies every clause, which the
  /// reconstruction stack requires. Scans from totalize_head_ (reset on
  /// every backjump).
  Lit pick_totalize_lit();

  // order heap (max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_in(Var v) const { return heap_pos_[static_cast<std::size_t>(v)] >= 0; }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  bool heap_lt(Var a, Var b) const {
    return activity_[static_cast<std::size_t>(a)] >
           activity_[static_cast<std::size_t>(b)];
  }

  bool ok_ = true;
  Arena arena_;
  std::vector<CRef> clauses_;  // arena clauses (size >= 3) only
  // Learnt tiers (arena learnts, size >= 3): core is kept, mid demotes to
  // local when unused, local is halved by activity in reduce_db(). analyze
  // promotes by glue; reduce_db() re-buckets by the tier tag.
  std::vector<CRef> learnts_core_;
  std::vector<CRef> learnts_mid_;
  std::vector<CRef> learnts_local_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  // Dedicated binary-clause layer: bin_watches_[l.index()] holds the implied
  // literals of all binary clauses containing ~l. Binary clauses are only
  // removed by inprocessing (root-satisfied) and never garbage collected.
  std::vector<std::vector<BinWatcher>> bin_watches_;
  std::size_t num_bin_clauses_ = 0;
  std::size_t num_bin_learnts_ = 0;
  Lit bin_conflict_other_ = Lit::undef();  // second literal of a binary conflict

  std::vector<LBool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<bool> saved_phase_;
  std::vector<bool> decision_;
  std::vector<bool> frozen_;
  std::vector<bool> eliminated_;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_pos_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;
  std::vector<LBool> model_;
  ExtendStack extend_;

  // add_clause_stream scratch: the per-clause filter buffer plus the
  // deferred-attach state (per stream clause: its arena reference and
  // whether its plan ops apply).
  std::vector<Lit> stream_clause_;
  std::vector<CRef> stream_crefs_;
  std::vector<std::uint8_t> stream_fast_;

  // analyze() scratch
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
  std::vector<Var> redundant_clear_;
  // LBD stamp array: lbd_stamp_[level] == lbd_epoch_ marks a decision level
  // already counted for the current learnt clause — O(1) per literal instead
  // of a linear scan over the levels seen so far. Seeded with the level-0
  // slot; new_var appends one slot, covering levels 0..num_vars.
  std::vector<std::uint64_t> lbd_stamp_{0};
  std::uint64_t lbd_epoch_ = 0;

  // Mirror the InprocessConfig defaults so a solver that never calls
  // set_inprocess() still honors first_conflicts instead of running the
  // pipeline on its first visit to decision level 0.
  InprocessConfig inprocess_cfg_;
  std::uint64_t next_inprocess_ = InprocessConfig{}.first_conflicts;
  std::uint64_t inprocess_interval_ = InprocessConfig{}.interval_conflicts;
  int totalize_head_ = 0;  // pick_totalize_lit() scan cursor

  // Clause-sharing state: units exported so far (prefix of the root trail),
  // learnt binaries awaiting export.
  std::size_t export_unit_watermark_ = 0;
  std::vector<std::pair<Lit, Lit>> bin_export_queue_;
  std::function<void(Solver&)> share_hook_;

  double max_learnts_ = 0;
  std::int64_t conflict_budget_ = -1;
  Deadline deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  std::uint64_t wasted_ = 0;  // arena words lost to deleted clauses

  Stats stats_;
};

}  // namespace satdiag::sat
