// Conflict-driven clause-learning SAT solver.
//
// A from-scratch reimplementation of the Chaff/MiniSat architecture the paper
// relies on ("conflict-based learning [14] and efficient Boolean constraint
// propagation [15]"): two-watched-literal BCP with a dedicated out-of-arena
// binary-clause layer (implication lists drained before long-clause watches,
// as in CryptoMiniSat/Glucose), first-UIP learning with recursive clause
// minimization, EVSIDS decision heuristic with phase saving, Luby restarts,
// activity-driven learnt-clause reduction with arena GC, incremental
// solving under assumptions (the paper's BSAT procedure reuses learnt
// clauses across the k=1..K iterations this way), and in-search model
// blocking (block_model) so all-solutions enumeration continues from the
// live trail instead of restarting per solution.
//
// Extra hooks used by the diagnosis layer:
//  * decision markers — BSAT restricts decisions to select/correction vars,
//  * external activity bumps and polarity hints — the hybrid approach seeds
//    the heuristic from simulation results (Sec. 6 of the paper).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "util/timer.hpp"

namespace satdiag::sat {

class Solver {
 public:
  Solver();

  // ---- problem construction ----------------------------------------------
  Var new_var(bool decidable = true, bool default_phase = false);
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Add a clause; returns false when the formula is already UNSAT at the
  /// root level. Literals may be unsorted and contain duplicates. When
  /// called with a search trail left over from a satisfiable solve() the
  /// trail is reset first (root-level addition).
  bool add_clause(Clause lits);
  bool add_clause(Lit a) { return add_clause(Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(Clause{a, b, c}); }

  /// Enumeration fast path: add a clause whose literals are all false under
  /// the current model (a blocking clause) *without* resetting the search.
  /// The solver backjumps just far enough to make the clause attachable and
  /// the next solve() with the same assumptions continues in place instead
  /// of re-deciding and re-propagating the whole trail. Falls back to
  /// add_clause() semantics when no search state is active; returns false
  /// when the formula became UNSAT at the root.
  ///
  /// Precondition: every literal's variable must be a decision variable
  /// (the default). Completeness of the in-place continuation relies on the
  /// search re-deciding a blocking literal that a later backjump unassigns;
  /// a non-decidable variable could leave the clause silently unsatisfied
  /// in a "model". All enumeration loops in-tree block over decision
  /// variables (selects / selectors / inputs).
  bool block_model(Clause lits);

  bool ok() const { return ok_; }

  // ---- solving --------------------------------------------------------------
  /// kTrue: model available; kFalse: UNSAT under assumptions; kUndef: budget
  /// or deadline exhausted.
  LBool solve(std::span<const Lit> assumptions = {});

  LBool model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }
  LBool model_value(Lit l) const { return model_value(l.var()) ^ l.sign(); }

  /// After kFalse under assumptions: the subset of assumptions proven
  /// contradictory (in negated form, as in MiniSat's conflict vector).
  const std::vector<Lit>& conflict() const { return conflict_; }

  // ---- budgets ----------------------------------------------------------------
  void set_conflict_budget(std::int64_t conflicts) { conflict_budget_ = conflicts; }
  void clear_budgets() { conflict_budget_ = -1; deadline_ = Deadline(); }
  void set_deadline(Deadline d) { deadline_ = d; }
  /// Cooperative cancellation for portfolio racing: while `flag` is set the
  /// solver behaves as if its budget expired (solve() returns kUndef at the
  /// next budget check). The flag outlives the solve call; nullptr detaches.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  // ---- heuristic hooks ------------------------------------------------------
  void set_decision_var(Var v, bool decidable);
  void set_polarity_hint(Var v, bool phase) {
    saved_phase_[static_cast<std::size_t>(v)] = phase;
  }
  /// Multiplies into the EVSIDS activity; larger = decided earlier.
  void boost_activity(Var v, double factor);

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t binary_propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t removed = 0;
    std::uint64_t gc_runs = 0;

    /// Aggregate another solver's counters (per-worker stats of the
    /// parallel diagnosis paths and the portfolio merge into one report).
    void merge(const Stats& other) {
      conflicts += other.conflicts;
      decisions += other.decisions;
      propagations += other.propagations;
      binary_propagations += other.binary_propagations;
      restarts += other.restarts;
      learned += other.learned;
      removed += other.removed;
      gc_runs += other.gc_runs;
    }
  };
  const Stats& stats() const { return stats_; }

  std::size_t num_clauses() const;
  std::size_t num_learnts() const;

 private:
  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xffffffffu;

  // Binary clauses live outside the arena in dedicated watch lists (see
  // bin_watches_). Their reasons are encoded as the other literal of the
  // clause with the top bit set, so they fit the CRef-typed reason slots
  // without allocating; the arena asserts it never grows into the tag range.
  static constexpr CRef kBinReasonFlag = 0x80000000u;
  static constexpr bool is_bin_reason(CRef r) {
    return r != kCRefUndef && (r & kBinReasonFlag) != 0;
  }
  static constexpr Lit bin_reason_lit(CRef r) {
    return Lit::from_index(static_cast<int>(r & ~kBinReasonFlag));
  }
  static constexpr CRef bin_reason(Lit other) {
    return kBinReasonFlag | static_cast<CRef>(other.index());
  }

  // Arena clause layout: [header][activity bits][lits...]
  // header = (size << 2) | (learnt << 1) | deleted.
  struct Arena {
    std::vector<std::uint32_t> data;

    CRef alloc(std::span<const Lit> lits, bool learnt);
    std::uint32_t size(CRef c) const { return data[c] >> 2; }
    bool learnt(CRef c) const { return (data[c] >> 1) & 1; }
    bool deleted(CRef c) const { return data[c] & 1; }
    void mark_deleted(CRef c) { data[c] |= 1; }
    Lit lit(CRef c, std::uint32_t i) const {
      return Lit::from_index(static_cast<int>(data[c + 2 + i]));
    }
    void set_lit(CRef c, std::uint32_t i, Lit l) {
      data[c + 2 + i] = static_cast<std::uint32_t>(l.index());
    }
    void shrink(CRef c, std::uint32_t new_size) {
      data[c] = (new_size << 2) | (data[c] & 3);
    }
    float activity(CRef c) const;
    void set_activity(CRef c, float a);
  };

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // Watcher for a size-2 clause: when the watching literal becomes false,
  // `implied` is the only other literal — no arena load, no watch movement,
  // no replacement-watch scan.
  struct BinWatcher {
    Lit implied;
  };


  struct VarData {
    CRef reason = kCRefUndef;
    int level = 0;
  };

  // internal engine
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool value(Lit l) const { return value(l.var()) ^ l.sign(); }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  void attach_clause(CRef c);
  void attach_binary(Lit a, Lit b);
  void detach_clause(CRef c);
  void remove_clause(CRef c);
  void unchecked_enqueue(Lit p, CRef reason);
  CRef propagate();
  void cancel_until(int level);
  Lit pick_branch_lit();
  void analyze(CRef conflict, Clause& out_learnt, int& out_btlevel,
               unsigned& out_lbd);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p);
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump_activity(CRef c);
  void cla_decay_activity() { cla_inc_ *= (1.0f / 0.999f); }
  void reduce_db();
  void garbage_collect();
  LBool search();
  bool within_budget() const;
  static double luby(double y, int i);

  // order heap (max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_in(Var v) const { return heap_pos_[static_cast<std::size_t>(v)] >= 0; }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  bool heap_lt(Var a, Var b) const {
    return activity_[static_cast<std::size_t>(a)] >
           activity_[static_cast<std::size_t>(b)];
  }

  bool ok_ = true;
  Arena arena_;
  std::vector<CRef> clauses_;  // arena clauses (size >= 3) only
  std::vector<CRef> learnts_;  // arena learnts (size >= 3) only
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  // Dedicated binary-clause layer: bin_watches_[l.index()] holds the implied
  // literals of all binary clauses containing ~l. Binary clauses are never
  // deleted (they are the strongest learnts) and never garbage collected.
  std::vector<std::vector<BinWatcher>> bin_watches_;
  std::size_t num_bin_clauses_ = 0;
  std::size_t num_bin_learnts_ = 0;
  Lit bin_conflict_other_ = Lit::undef();  // second literal of a binary conflict

  std::vector<LBool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<bool> saved_phase_;
  std::vector<bool> decision_;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<Var> heap_;
  std::vector<int> heap_pos_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;
  std::vector<LBool> model_;

  // analyze() scratch
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
  std::vector<Var> redundant_clear_;
  // LBD stamp array: lbd_stamp_[level] == lbd_epoch_ marks a decision level
  // already counted for the current learnt clause — O(1) per literal instead
  // of a linear scan over the levels seen so far. Seeded with the level-0
  // slot; new_var appends one slot, covering levels 0..num_vars.
  std::vector<std::uint64_t> lbd_stamp_{0};
  std::uint64_t lbd_epoch_ = 0;

  double max_learnts_ = 0;
  std::int64_t conflict_budget_ = -1;
  Deadline deadline_;
  const std::atomic<bool>* interrupt_ = nullptr;
  std::uint64_t wasted_ = 0;  // arena words lost to deleted clauses

  Stats stats_;
};

}  // namespace satdiag::sat
