#include "sat/probe.hpp"

#include <cassert>

namespace satdiag::sat {

bool Prober::run() {
  assert(s_.decision_level() == 0);
  const std::uint64_t start = s_.stats_.propagations;
  const int num_lits = 2 * s_.num_vars();
  for (int idx = 0; idx < num_lits; ++idx) {
    if (s_.stats_.propagations - start > s_.inprocess_cfg_.probe_budget) {
      break;
    }
    const Lit r = Lit::from_index(idx);
    // Root of the binary implication graph: r propagates over binaries
    // (entries under r.index()) but nothing implies r (no binary clause
    // contains r, i.e. no entries under (~r).index()).
    if (s_.bin_watches_[static_cast<std::size_t>(idx)].empty() ||
        !s_.bin_watches_[static_cast<std::size_t>((~r).index())].empty()) {
      continue;
    }
    if (s_.value(r.var()) != LBool::kUndef ||
        s_.eliminated_[static_cast<std::size_t>(r.var())]) {
      continue;
    }
    s_.new_decision_level();
    s_.unchecked_enqueue(r, Solver::kCRefUndef);
    const Solver::CRef conflict = s_.propagate();
    s_.cancel_until(0);
    if (conflict != Solver::kCRefUndef) {
      ++s_.stats_.failed_literals;
      if (!s_.enqueue_root(~r)) return false;  // formula UNSAT at the root
    }
  }
  return s_.ok_;
}

}  // namespace satdiag::sat
