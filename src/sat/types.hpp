// Core SAT types: variables, literals, ternary logic values.
//
// Follows the MiniSat conventions: a literal packs (variable << 1 | sign),
// sign 1 meaning negation, so literals index watch lists directly.
#pragma once

#include <cstdint>
#include <vector>

namespace satdiag::sat {

using Var = std::int32_t;
inline constexpr Var kVarUndef = -1;

class Lit {
 public:
  constexpr Lit() : x_(-2) {}
  constexpr Lit(Var v, bool negated) : x_((v << 1) | (negated ? 1 : 0)) {}

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool sign() const { return x_ & 1; }  // true = negated
  constexpr int index() const { return x_; }      // watch-list index
  constexpr Lit operator~() const { return from_index(x_ ^ 1); }

  static constexpr Lit from_index(int idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }
  static constexpr Lit undef() { return Lit(); }

  constexpr bool operator==(const Lit&) const = default;
  constexpr bool operator<(const Lit& other) const { return x_ < other.x_; }

 private:
  std::int32_t x_;
};

/// Positive literal of v.
constexpr Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of v.
constexpr Lit neg(Var v) { return Lit(v, true); }

enum class LBool : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

constexpr LBool lbool_from(bool b) {
  return b ? LBool::kTrue : LBool::kFalse;
}
constexpr LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return (v == LBool::kTrue) != flip ? LBool::kTrue : LBool::kFalse;
}

using Clause = std::vector<Lit>;

}  // namespace satdiag::sat
