#include "sat/subsume.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace satdiag::sat {

namespace {

struct BinaryClause {
  Lit a;
  Lit b;
  bool learnt;
};

}  // namespace

bool Subsumer::run() {
  assert(s_.decision_level() == 0);
  using CRef = Solver::CRef;

  // Occurrence index over the arena clauses (the binary layer is the set of
  // subsumers, not a target).
  std::vector<std::vector<CRef>> occ(
      static_cast<std::size_t>(2 * s_.num_vars()));
  const auto index_list = [&](const std::vector<CRef>& list) {
    for (CRef c : list) {
      if (s_.arena_.deleted(c)) continue;
      const std::uint32_t size = s_.arena_.size(c);
      for (std::uint32_t i = 0; i < size; ++i) {
        occ[static_cast<std::size_t>(s_.arena_.lit(c, i).index())].push_back(
            c);
      }
    }
  };
  index_list(s_.clauses_);
  index_list(s_.learnts_core_);
  index_list(s_.learnts_mid_);
  index_list(s_.learnts_local_);

  // Snapshot the binary clauses: strengthening can migrate arena clauses
  // into the binary layer mid-pass, and those must not perturb this
  // iteration (they subsume on the next inprocess run).
  std::vector<BinaryClause> bins;
  for (std::size_t idx = 0; idx < s_.bin_watches_.size(); ++idx) {
    const Lit a = ~Lit::from_index(static_cast<int>(idx));
    for (const Solver::BinWatcher& w : s_.bin_watches_[idx]) {
      if (a.index() < w.implied.index()) {
        bins.push_back({a, w.implied, w.learnt != 0});
      }
    }
  }

  std::uint64_t budget = s_.inprocess_cfg_.subsume_budget;
  const auto contains = [&](CRef c, Lit l) {
    const std::uint32_t size = s_.arena_.size(c);
    budget -= std::min<std::uint64_t>(budget, size);
    for (std::uint32_t i = 0; i < size; ++i) {
      if (s_.arena_.lit(c, i) == l) return true;
    }
    return false;
  };
  const auto promote = [&](BinaryClause& bin) {
    for (auto [x, y] : {std::pair{bin.a, bin.b}, std::pair{bin.b, bin.a}}) {
      auto& list = s_.bin_watches_[static_cast<std::size_t>((~x).index())];
      for (Solver::BinWatcher& w : list) {
        if (w.implied == y && w.learnt != 0) {
          w.learnt = 0;
          break;
        }
      }
    }
    --s_.num_bin_learnts_;
    ++s_.num_bin_clauses_;
    bin.learnt = false;
  };

  std::vector<Lit> kept;
  for (BinaryClause& bin : bins) {
    if (budget == 0 || !s_.ok_) break;
    if (s_.value(bin.a) != LBool::kUndef ||
        s_.value(bin.b) != LBool::kUndef) {
      continue;  // root-satisfied; clean_clauses drops it
    }
    // Subsumption: clauses containing both a and b. Iterate the shorter
    // occurrence list; contains() re-verifies both anchors, so stale
    // entries of already-rewritten clauses are skipped naturally.
    {
      const auto& oa = occ[static_cast<std::size_t>(bin.a.index())];
      const auto& ob = occ[static_cast<std::size_t>(bin.b.index())];
      const auto& shorter = oa.size() <= ob.size() ? oa : ob;
      for (CRef c : shorter) {
        if (budget == 0) break;
        if (s_.arena_.deleted(c)) continue;
        if (!contains(c, bin.a) || !contains(c, bin.b)) continue;
        if (!s_.arena_.learnt(c) && bin.learnt) promote(bin);
        s_.remove_clause(c);
        ++s_.stats_.subsumed;
      }
    }
    // Self-subsuming resolution, both directions: drop ~b from clauses
    // containing a, and ~a from clauses containing b.
    for (auto [keep, drop] : {std::pair{bin.a, ~bin.b},
                              std::pair{bin.b, ~bin.a}}) {
      const auto& ok_list = occ[static_cast<std::size_t>(keep.index())];
      const auto& od_list = occ[static_cast<std::size_t>(drop.index())];
      const auto& shorter = ok_list.size() <= od_list.size() ? ok_list
                                                             : od_list;
      // Collect first: shrink_clause_detached may rewrite a clause into the
      // binary layer, which must not invalidate the list being iterated.
      std::vector<CRef> targets;
      for (CRef c : shorter) {
        if (budget == 0) break;
        if (s_.arena_.deleted(c)) continue;
        if (contains(c, keep) && contains(c, drop)) targets.push_back(c);
      }
      for (CRef c : targets) {
        if (s_.arena_.deleted(c)) continue;
        kept.clear();
        const std::uint32_t size = s_.arena_.size(c);
        for (std::uint32_t i = 0; i < size; ++i) {
          const Lit l = s_.arena_.lit(c, i);
          if (l != drop) kept.push_back(l);
        }
        if (kept.size() == size) continue;  // stale entry
        s_.detach_clause(c);
        s_.shrink_clause_detached(c, kept);
        ++s_.stats_.strengthened;
        if (!s_.ok_) return false;
      }
    }
  }
  return s_.ok_;
}

}  // namespace satdiag::sat
