// Clause vivification over the tiered learnt database.
//
// For a learnt (l1 | ... | ln), assume ~l1, ~l2, ... in turn and propagate
// (with the clause detached). Three outcomes shorten the clause: a literal
// already false under the prefix is dropped; a literal propagated true means
// the prefix implies the clause, which truncates it there; a conflict proves
// the prefix plus the current literal inconsistent, truncating likewise. The
// shortened clause subsumes the original, so the rewrite is sound for both
// redundant and irredundant clauses; only learnts are vivified here because
// they are what an incremental enumeration accumulates.
#pragma once

#include "sat/solver.hpp"

namespace satdiag::sat {

class Vivifier {
 public:
  explicit Vivifier(Solver& s) : s_(s) {}

  /// One budgeted pass (InprocessConfig::vivify_budget propagations, at most
  /// vivify_clauses clauses, core tier first). Returns Solver::ok().
  bool run();

 private:
  /// Vivify one detachable arena learnt; returns false when the budget or a
  /// root conflict ended the pass.
  bool vivify_one(Solver::CRef c);

  Solver& s_;
  std::uint64_t propagation_start_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace satdiag::sat
