// All-solutions SAT enumeration over a projection variable set.
//
// BasicSATDiagnose (Fig. 3 of the paper) enumerates every satisfying
// assignment of the diagnosis instance, projected onto the multiplexer
// select lines, and "adds a blocking clause for each solution". This helper
// implements exactly that loop: solve, project the model onto the tracked
// variables, block the projected cube, repeat until UNSAT.
//
// Blocking clauses here negate the *positive* select literals only (the
// projected solutions of interest are the sets of asserted selects, and the
// enumeration below is used with cardinality bounds that keep those sets
// small); with `block_full_cube` the classic full-cube blocking over all
// projection variables is used instead.
#pragma once

#include <functional>
#include <vector>

#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace satdiag::sat {

struct AllSatOptions {
  /// Block only the asserted projection variables (subset blocking: forbids
  /// every superset too — what BSAT wants, since supersets of a correction
  /// are non-essential). When false, blocks the full cube (exact model
  /// enumeration over the projection).
  bool block_positive_subset = true;
  Deadline deadline;
  std::int64_t max_solutions = -1;  // unlimited when negative
};

struct AllSatResult {
  /// One entry per enumerated solution: the asserted projection variables.
  std::vector<std::vector<Var>> solutions;
  bool complete = false;  // false when a budget stopped the enumeration
};

/// Enumerate solutions projected onto `projection` under `assumptions`.
/// The solver keeps the blocking clauses afterwards (that is what Fig. 3
/// prescribes: smaller corrections stay blocked as k increases).
AllSatResult enumerate_all(Solver& solver, const std::vector<Var>& projection,
                           std::span<const Lit> assumptions,
                           const AllSatOptions& options = {});

}  // namespace satdiag::sat
