// Failed-literal probing on the roots of the binary implication graph.
//
// A literal r is a BIG root when some binary clause propagates from r but no
// binary clause implies r: assigning r and running BCP then covers every
// literal r dominates, so probing roots visits each implication chain once
// instead of once per member (dawn-style probing). A probe that conflicts
// proves ~r at the root level; the unit is enqueued and propagated
// immediately, shrinking the formula for the passes that follow.
#pragma once

#include "sat/solver.hpp"

namespace satdiag::sat {

class Prober {
 public:
  explicit Prober(Solver& s) : s_(s) {}

  /// One budgeted pass (InprocessConfig::probe_budget propagations).
  /// Returns Solver::ok().
  bool run();

 private:
  Solver& s_;
};

}  // namespace satdiag::sat
