#include "sat/extend.hpp"

namespace satdiag::sat {

void ExtendStack::push_clause(Lit elim, std::span<const Lit> others) {
  const auto begin = static_cast<std::uint32_t>(others_.size());
  others_.insert(others_.end(), others.begin(), others.end());
  entries_.push_back({elim, begin, static_cast<std::uint32_t>(others_.size())});
}

void ExtendStack::extend(std::vector<LBool>& model) const {
  const auto lit_true = [&](Lit l) {
    return (model[static_cast<std::size_t>(l.var())] ^ l.sign()) ==
           LBool::kTrue;
  };
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    bool satisfied = lit_true(it->lit);
    for (std::uint32_t i = it->begin; !satisfied && i < it->end; ++i) {
      satisfied = lit_true(others_[static_cast<std::size_t>(i)]);
    }
    if (!satisfied) {
      model[static_cast<std::size_t>(it->lit.var())] =
          lbool_from(!it->lit.sign());
    }
  }
}

}  // namespace satdiag::sat
