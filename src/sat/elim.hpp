// Bounded variable elimination (MiniSat/SatELite style) with model
// reconstruction.
//
// A variable v neither frozen, nor a decision variable, nor assigned, nor
// mentioned by the active assumptions may be eliminated: every pairwise
// resolvent of its positive and negative irredundant occurrences is added,
// all clauses containing v are removed, and the smaller-polarity side is
// saved on the solver's ExtendStack so model_value(v) stays exact (see
// extend.hpp). Learnt clauses containing v are discarded unsaved — they are
// implied by the irredundant set. Elimination is bounded: it is skipped when
// either polarity occurs too often, when the resolvent count would grow the
// formula, or when a resolvent would be too long (elim_occ_limit, elim_grow,
// elim_resolvent_limit).
#pragma once

#include "sat/solver.hpp"

namespace satdiag::sat {

class Eliminator {
 public:
  explicit Eliminator(Solver& s) : s_(s) {}

  /// One budgeted pass (InprocessConfig::elim_budget literal visits in
  /// resolvent construction). Returns Solver::ok().
  bool run();

 private:
  Solver& s_;
};

}  // namespace satdiag::sat
