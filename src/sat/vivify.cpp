#include "sat/vivify.hpp"

#include <cassert>
#include <vector>

namespace satdiag::sat {

bool Vivifier::run() {
  assert(s_.decision_level() == 0);
  propagation_start_ = s_.stats_.propagations;
  processed_ = 0;
  for (const std::vector<Solver::CRef>* list :
       {&s_.learnts_core_, &s_.learnts_mid_, &s_.learnts_local_}) {
    for (Solver::CRef c : *list) {
      if (processed_ >= s_.inprocess_cfg_.vivify_clauses) return s_.ok_;
      if (s_.stats_.propagations - propagation_start_ >
          s_.inprocess_cfg_.vivify_budget) {
        return s_.ok_;
      }
      if (s_.arena_.deleted(c)) continue;
      ++processed_;
      if (!vivify_one(c)) return s_.ok_;
    }
  }
  return s_.ok_;
}

bool Vivifier::vivify_one(Solver::CRef c) {
  std::vector<Lit> lits;
  const std::uint32_t size = s_.arena_.size(c);
  lits.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) lits.push_back(s_.arena_.lit(c, i));

  // Detach first: the clause must not propagate against its own probe.
  s_.detach_clause(c);
  std::vector<Lit> kept;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit li = lits[i];
    const LBool v = s_.value(li);
    if (v == LBool::kFalse) continue;  // implied out by the prefix: drop
    if (v == LBool::kTrue) {
      // Prefix implies li: (kept | li) subsumes the clause.
      kept.push_back(li);
      break;
    }
    s_.new_decision_level();
    s_.unchecked_enqueue(~li, Solver::kCRefUndef);
    const Solver::CRef conflict = s_.propagate();
    kept.push_back(li);
    if (conflict != Solver::kCRefUndef) break;  // prefix + ~li inconsistent
  }
  s_.cancel_until(0);

  if (kept.size() < lits.size()) {
    ++s_.stats_.vivified;
    s_.shrink_clause_detached(c, kept);
    return s_.ok_;
  }
  s_.attach_clause(c);
  return true;
}

}  // namespace satdiag::sat
