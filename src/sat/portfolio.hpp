// Seed portfolio over the CDCL solver (the CryptoMiniSat-style
// races-over-configurations pattern).
//
// N solver instances attack the same formula with seed-perturbed heuristics
// (config 0 is always the pristine solver): random initial polarities and
// activity noise derived from a per-config Rng stream. The configurations
// race on the execution runtime's thread pool; the first genuine answer
// (kTrue/kFalse) raises a shared interrupt flag and the losers cancel at
// their next budget check (Solver::set_interrupt — the same hook the
// wall-clock deadline uses).
//
// Determinism contract: the *status* is deterministic (every configuration
// agrees on satisfiability). The winning configuration — and therefore the
// model and the merged counters — depends on wall-clock racing when
// num_threads > 1; with num_threads == 1 configurations run in index order
// and the result is fully deterministic. Diagnosis paths under the
// bit-identity guarantee must therefore consume only the status, or run the
// portfolio single-threaded.
#pragma once

#include <span>

#include "sat/solver.hpp"

namespace satdiag::sat {

struct PortfolioOptions {
  /// Racing configurations; config 0 is the unperturbed solver.
  std::size_t num_configs = 4;
  /// Lanes of the execution runtime; 1 = run configs in index order.
  std::size_t num_threads = 1;
  /// Root seed of the per-config heuristic perturbation streams.
  std::uint64_t seed = 1;
  /// Fraction of variables whose initial polarity / activity gets noised in
  /// perturbed configs.
  double perturb_fraction = 0.5;
  Deadline deadline;
  std::int64_t conflict_budget = -1;  // per configuration
  /// Exchange low-glue learnt clauses between configurations at restart
  /// boundaries (lock-light, via sat::ClauseExchange). Sound because every
  /// configuration attacks the identical formula. With num_threads > 1 the
  /// exchange adds run-to-run search variance (the status stays
  /// deterministic); with num_threads == 1 it degenerates to later configs
  /// inheriting earlier configs' learnts, still fully deterministic.
  bool share_learnts = true;
  /// Glue cap and per-exchange batch cap for share_learnts.
  unsigned share_max_lbd = 4;
  std::size_t share_max_clauses = 1024;
};

struct PortfolioResult {
  LBool status = LBool::kUndef;
  /// Index of the configuration that produced `status` (first finisher);
  /// undefined (== num_configs) when every config ran out of budget.
  std::size_t winner = 0;
  /// Winner's model (indexed by Var) when status == kTrue.
  std::vector<LBool> model;
  /// Counters summed over every configuration that ran.
  Solver::Stats stats;
};

/// Race `options.num_configs` solvers on the formula (clauses over variables
/// 0..num_vars-1) under the given assumptions.
PortfolioResult solve_portfolio(int num_vars,
                                std::span<const Clause> clauses,
                                std::span<const Lit> assumptions,
                                const PortfolioOptions& options);

}  // namespace satdiag::sat
