// Lock-light clause exchange between solvers over the same base formula.
//
// DataSync-style (CryptoMiniSat): each producer appends its exported learnts
// to its own mutex-guarded log; consumers keep a private read cursor per
// producer and copy anything new. publish() takes only the producer's own
// mutex; collect() try-locks each peer and simply skips one it cannot get —
// a missed batch is picked up at the next exchange point, so no solver ever
// blocks on another's critical section.
//
// Soundness: importing is valid whenever the importer's clause database
// implies the exporter's (learnts are implied by the clause set alone —
// assumptions never taint them). Both in-tree users satisfy this with
// identical base formulas: the BSAT partition shards (exchange at the
// per-bound barrier) and the portfolio workers (exchange at restart
// boundaries via Solver::set_share_hook).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "sat/solver.hpp"

namespace satdiag::sat {

class ClauseExchange {
 public:
  /// `producers` fixed up front: one append-only log + one cursor row each.
  explicit ClauseExchange(std::size_t producers);

  /// Append a batch to `producer`'s log (blocks only on that log's mutex).
  /// Logs are bounded; clauses past the cap are dropped.
  void publish(std::size_t producer, std::vector<SharedClause> batch);

  /// Copy every clause other producers published since `consumer`'s last
  /// collect into `out`. Peers whose log is momentarily locked are skipped
  /// (their clauses arrive next round). Returns the number appended.
  std::size_t collect(std::size_t consumer, std::vector<SharedClause>& out);

 private:
  struct Slot {
    std::mutex mutex;
    std::vector<SharedClause> log;
  };
  static constexpr std::size_t kMaxLog = 1 << 16;

  std::vector<std::unique_ptr<Slot>> slots_;
  // cursors_[consumer][producer]: log entries already collected. Each row is
  // touched only by its consumer thread.
  std::vector<std::vector<std::size_t>> cursors_;
};

}  // namespace satdiag::sat
