#include "sat/solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sat/elim.hpp"
#include "sat/probe.hpp"
#include "sat/subsume.hpp"
#include "sat/vivify.hpp"

namespace satdiag::sat {

// ---------------------------------------------------------------------------
// Arena

Solver::CRef Solver::Arena::alloc(std::span<const Lit> lits, bool learnt) {
  const CRef cref = static_cast<CRef>(data.size());
  // Crefs must stay below the binary-reason tag bit (see kBinReasonFlag);
  // past it, is_bin_reason() would misread arena references as literal
  // tags, so fail loudly rather than corrupt reasons in release builds.
  if (cref >= kBinReasonFlag) {
    throw std::length_error("sat arena exceeds 2^31 words");
  }
  data.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                 (learnt ? 2u : 0u));
  data.push_back(std::bit_cast<std::uint32_t>(0.0f));
  data.push_back(0);  // meta word (lbd / tier / exported / unused rounds)
  for (Lit l : lits) data.push_back(static_cast<std::uint32_t>(l.index()));
  return cref;
}

float Solver::Arena::activity(CRef c) const {
  return std::bit_cast<float>(data[c + 1]);
}

void Solver::Arena::set_activity(CRef c, float a) {
  data[c + 1] = std::bit_cast<std::uint32_t>(a);
}

// ---------------------------------------------------------------------------
// Construction

Solver::Solver() = default;

Var Solver::new_var(bool decidable, bool default_phase) {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  vardata_.push_back(VarData{});
  saved_phase_.push_back(default_phase);
  decision_.push_back(decidable);
  frozen_.push_back(false);
  eliminated_.push_back(false);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(false);
  model_.push_back(LBool::kUndef);
  lbd_stamp_.push_back(0);  // decision levels are bounded by #vars
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  if (decidable) heap_insert(v);
  return v;
}

namespace {
// Reserving to the exact needed size on every bulk load would defeat the
// vectors' amortized doubling — each of m stamped copies would reallocate
// and copy the whole array, turning construction quadratic. Grow
// geometrically, and only when actually short.
template <typename Vec>
void reserve_amortized(Vec& v, std::size_t needed) {
  if (needed > v.capacity()) v.reserve(std::max(needed, v.capacity() * 2));
}
}  // namespace

Var Solver::new_vars(std::span<const std::uint8_t> flags) {
  const Var base = num_vars();
  const std::size_t n = assigns_.size() + flags.size();
  reserve_vars(flags.size());
  assigns_.resize(n, LBool::kUndef);
  vardata_.resize(n);
  saved_phase_.resize(n, false);
  decision_.resize(n, false);
  frozen_.resize(n, false);
  eliminated_.resize(n, false);
  activity_.resize(n, 0.0);
  heap_pos_.resize(n, -1);
  seen_.resize(n, false);
  model_.resize(n, LBool::kUndef);
  lbd_stamp_.resize(n + 1, 0);
  watches_.resize(2 * n);
  bin_watches_.resize(2 * n);
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const Var v = base + static_cast<Var>(i);
    if ((flags[i] & kVarFrozen) != 0) frozen_[static_cast<std::size_t>(v)] = true;
    if ((flags[i] & kVarDecidable) != 0) {
      decision_[static_cast<std::size_t>(v)] = true;
      // Zero activity never beats a parent in the max-heap, so each insert
      // is a constant-time append.
      heap_insert(v);
    }
  }
  return base;
}

void Solver::reserve_vars(std::size_t extra) {
  const std::size_t n = assigns_.size() + extra;
  reserve_amortized(assigns_, n);
  reserve_amortized(vardata_, n);
  reserve_amortized(saved_phase_, n);
  reserve_amortized(decision_, n);
  reserve_amortized(frozen_, n);
  reserve_amortized(eliminated_, n);
  reserve_amortized(activity_, n);
  reserve_amortized(heap_pos_, n);
  reserve_amortized(seen_, n);
  reserve_amortized(model_, n);
  reserve_amortized(lbd_stamp_, n + 1);
  reserve_amortized(heap_, n);
  reserve_amortized(watches_, 2 * n);
  reserve_amortized(bin_watches_, 2 * n);
}

void Solver::set_inprocess(const InprocessConfig& config) {
  inprocess_cfg_ = config;
  next_inprocess_ = stats_.conflicts + config.first_conflicts;
  inprocess_interval_ = std::max<std::uint64_t>(1, config.interval_conflicts);
}

bool Solver::add_clause(Clause lits) {
  if (decision_level() != 0) cancel_until(0);  // leftover solve() trail
  if (!ok_) return false;
#ifndef NDEBUG
  // The freeze contract: clauses must never mention eliminated variables
  // (the caller should have frozen them before the elimination ran).
  for (Lit l : lits) assert(!is_eliminated(l.var()));
#endif
  std::sort(lits.begin(), lits.end());
  Lit prev = Lit::undef();
  std::size_t out = 0;
  for (Lit l : lits) {
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) != LBool::kFalse && l != prev) {
      lits[out++] = prev = l;
    }
  }
  lits.resize(out);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    unchecked_enqueue(lits[0], kCRefUndef);
    ok_ = (propagate() == kCRefUndef);
    return ok_;
  }
  if (lits.size() == 2) {
    attach_binary(lits[0], lits[1], /*learnt=*/false);
    ++num_bin_clauses_;
    return true;
  }
  const CRef cref = arena_.alloc(lits, /*learnt=*/false);
  clauses_.push_back(cref);
  attach_clause(cref);
  return true;
}

bool Solver::any_assigned(std::span<const Var> vars) const {
  for (const Var v : vars) {
    const auto i = static_cast<std::size_t>(v);
    if (assigns_[i] != LBool::kUndef && vardata_[i].level == 0) return true;
  }
  return false;
}

bool Solver::add_stamped_stream(std::span<const std::uint32_t> codes,
                                std::span<const std::uint32_t> sizes,
                                std::span<const StreamWatchOp> plan_long,
                                std::span<const StreamWatchOp> plan_bin,
                                Var local_base, Var extern_base,
                                std::span<const Var> extern_vars) {
  static_assert(kStampClauseOverhead == kClauseOverhead);
  if (decision_level() != 0) cancel_until(0);  // leftover solve() trail
  if (!ok_) return false;
  // Relocation on raw codes: (var << 1) | sign, so a local shifts by
  // 2 * local_base and an extern slot swaps its variable bits wholesale.
  const auto ext_base = static_cast<std::uint32_t>(extern_base);
  const std::uint32_t local_off = static_cast<std::uint32_t>(local_base) << 1;
  const auto reloc = [&](std::uint32_t code) -> std::uint32_t {
    const std::uint32_t v = code >> 1;
    if (v < ext_base) return code + local_off;
    const Var ext = extern_vars[static_cast<std::size_t>(v - ext_base)];
    return (static_cast<std::uint32_t>(ext) << 1) | (code & 1u);
  };
#ifndef NDEBUG
  for (const std::uint32_t c : codes) {
    const Lit l = Lit::from_index(static_cast<int>(reloc(c)));
    assert(!is_eliminated(l.var()));
    assert(value(l) == LBool::kUndef);
  }
  for (const std::uint32_t s : sizes) assert(s >= 2);
#endif
  // No literal is assigned and no clause can become one: nothing simplifies,
  // nothing propagates. Fill the arena in one resize + relocation sweep and
  // attach everything from the plan — the ops carry each clause's relative
  // arena offset, so there is no per-clause cref bookkeeping either.
  std::size_t arena_words = 0;
  std::size_t num_long = 0;
  std::size_t num_bin = 0;
  for (const std::uint32_t s : sizes) {
    if (s >= 3) {
      arena_words += s + kClauseOverhead;
      ++num_long;
    } else {
      ++num_bin;
    }
  }
  const std::size_t old_words = arena_.data.size();
  if (old_words + arena_words >= kBinReasonFlag) {
    throw std::length_error("sat arena exceeds 2^31 words");
  }
  reserve_amortized(arena_.data, old_words + arena_words);
  arena_.data.resize(old_words + arena_words);
  reserve_amortized(clauses_, clauses_.size() + num_long);
  std::uint32_t* p = arena_.data.data() + old_words;
  std::size_t pos = 0;
  for (const std::uint32_t size : sizes) {
    if (size >= 3) {
      clauses_.push_back(
          static_cast<CRef>(static_cast<std::size_t>(p - arena_.data.data())));
      p[0] = size << 2;  // header: irredundant, not deleted
      p[1] = 0;          // activity 0.0f
      p[2] = 0;          // meta
      for (std::uint32_t k = 0; k < size; ++k) p[3 + k] = reloc(codes[pos + k]);
      p += kClauseOverhead + size;
    }
    pos += size;
  }
  num_bin_clauses_ += num_bin;
  // Ops arrive sorted by watch list and relocation is injective, so runs stay
  // contiguous: relocate each list index once and fill the list in one go.
  const auto arena_base = static_cast<std::uint32_t>(old_words);
  std::size_t i = 0;
  while (i < plan_long.size()) {
    const std::uint32_t idx = plan_long[i].watch_index;
    std::size_t j = i;
    while (j < plan_long.size() && plan_long[j].watch_index == idx) ++j;
    auto& list = watches_[reloc(idx)];
    reserve_amortized(list, list.size() + (j - i));
    for (; i < j; ++i) {
      const StreamWatchOp& op = plan_long[i];
      list.push_back(
          {arena_base + op.arena_offset,
           Lit::from_index(static_cast<int>(reloc(op.other_index)))});
    }
  }
  i = 0;
  while (i < plan_bin.size()) {
    const std::uint32_t idx = plan_bin[i].watch_index;
    std::size_t j = i;
    while (j < plan_bin.size() && plan_bin[j].watch_index == idx) ++j;
    auto& list = bin_watches_[reloc(idx)];
    reserve_amortized(list, list.size() + (j - i));
    for (; i < j; ++i) {
      list.push_back(
          {Lit::from_index(static_cast<int>(reloc(plan_bin[i].other_index))),
           /*learnt=*/0u});
    }
  }
  return true;
}

bool Solver::add_clause_stream(std::span<const Lit> lits,
                               std::span<const std::uint32_t> sizes,
                               std::span<const StreamWatchOp> plan_long,
                               std::span<const StreamWatchOp> plan_bin) {
  if (decision_level() != 0) cancel_until(0);  // leftover solve() trail
  if (!ok_) return false;
#ifndef NDEBUG
  for (Lit l : lits) assert(!is_eliminated(l.var()));
#endif
  // Arena upper bound up front; watch capacity is handled run-by-run when
  // the plan is applied.
  reserve_amortized(arena_.data, arena_.data.size() + lits.size() +
                                     kClauseOverhead * sizes.size());
  stream_crefs_.assign(sizes.size(), kCRefUndef);
  stream_fast_.assign(sizes.size(), 0);

  bool flushed = false;
  const auto flush = [&]() {
    if (flushed) return;
    flushed = true;
    apply_stream_plan(plan_long, plan_bin);
  };

  // Fast pass: while nothing gets enqueued, root values cannot change, so
  // untouched clauses go straight to the arena and their watch attachments
  // defer to the sorted plan. The first unit flushes the plan (propagation
  // must see every prior clause attached, exactly like incremental
  // add_clause) and demotes the rest of the stream to the slow path.
  std::size_t ci = 0;
  std::size_t pos = 0;
  for (; ci < sizes.size(); ++ci) {
    const std::uint32_t size = sizes[ci];
    const std::span<const Lit> clause = lits.subspan(pos, size);
    pos += size;
    bool satisfied = false;
    std::uint32_t num_false = 0;
    for (const Lit l : clause) {
      const LBool v = value(l);
      if (v == LBool::kTrue) {
        satisfied = true;
        break;
      }
      num_false += static_cast<std::uint32_t>(v == LBool::kFalse);
    }
    if (satisfied) continue;
    if (num_false == 0) {
      if (size >= 3) {
        const CRef cref = arena_.alloc(clause, /*learnt=*/false);
        clauses_.push_back(cref);
        stream_crefs_[ci] = cref;
        stream_fast_[ci] = 1;
        continue;
      }
      if (size == 2) {
        stream_fast_[ci] = 1;  // bin watches come from the plan
        ++num_bin_clauses_;
        continue;
      }
      flush();
      unchecked_enqueue(clause[0], kCRefUndef);
      if (propagate() != kCRefUndef) {
        ok_ = false;
        return false;
      }
      ++ci;
      break;
    }
    // The root trail shortens this clause: attach it immediately (its plan
    // ops stay disabled). Only a shrunken *unit* changes values and forces
    // the slow path.
    stream_clause_.clear();
    for (const Lit l : clause) {
      if (value(l) != LBool::kFalse) stream_clause_.push_back(l);
    }
    if (stream_clause_.empty()) {
      flush();
      ok_ = false;
      return false;
    }
    if (stream_clause_.size() == 1) {
      flush();
      unchecked_enqueue(stream_clause_[0], kCRefUndef);
      if (propagate() != kCRefUndef) {
        ok_ = false;
        return false;
      }
      ++ci;
      break;
    }
    if (stream_clause_.size() == 2) {
      attach_binary(stream_clause_[0], stream_clause_[1], /*learnt=*/false);
      ++num_bin_clauses_;
      continue;
    }
    const CRef cref = arena_.alloc(stream_clause_, /*learnt=*/false);
    clauses_.push_back(cref);
    attach_clause(cref);
  }

  // Slow path: values are re-read per clause so a unit propagated mid-stream
  // simplifies everything after it, exactly as a sequence of add_clause
  // calls would.
  for (; ci < sizes.size(); ++ci) {
    const std::uint32_t size = sizes[ci];
    const std::span<const Lit> clause = lits.subspan(pos, size);
    pos += size;
    stream_clause_.clear();
    bool satisfied = false;
    for (const Lit l : clause) {
      const LBool v = value(l);
      if (v == LBool::kTrue) {
        satisfied = true;
        break;
      }
      if (v != LBool::kFalse) stream_clause_.push_back(l);
    }
    if (satisfied) continue;
    if (stream_clause_.empty()) {
      ok_ = false;
      return false;
    }
    if (stream_clause_.size() == 1) {
      unchecked_enqueue(stream_clause_[0], kCRefUndef);
      if (propagate() != kCRefUndef) {
        ok_ = false;
        return false;
      }
      continue;
    }
    if (stream_clause_.size() == 2) {
      attach_binary(stream_clause_[0], stream_clause_[1], /*learnt=*/false);
      ++num_bin_clauses_;
      continue;
    }
    const CRef cref = arena_.alloc(stream_clause_, /*learnt=*/false);
    clauses_.push_back(cref);
    attach_clause(cref);
  }
  flush();
  return true;
}

void Solver::apply_stream_plan(std::span<const StreamWatchOp> plan_long,
                               std::span<const StreamWatchOp> plan_bin) {
  // Ops arrive sorted by watch_index: fill each list in one run with one
  // capacity reservation, sweeping the list headers in index order instead
  // of jumping between 2·|clauses| random lists.
  std::size_t i = 0;
  while (i < plan_long.size()) {
    const std::uint32_t idx = plan_long[i].watch_index;
    std::size_t j = i;
    while (j < plan_long.size() && plan_long[j].watch_index == idx) ++j;
    auto& list = watches_[idx];
    reserve_amortized(list, list.size() + (j - i));
    for (; i < j; ++i) {
      const StreamWatchOp& op = plan_long[i];
      if (!stream_fast_[op.clause]) continue;
      list.push_back({stream_crefs_[op.clause],
                      Lit::from_index(static_cast<int>(op.other_index))});
    }
  }
  i = 0;
  while (i < plan_bin.size()) {
    const std::uint32_t idx = plan_bin[i].watch_index;
    std::size_t j = i;
    while (j < plan_bin.size() && plan_bin[j].watch_index == idx) ++j;
    auto& list = bin_watches_[idx];
    reserve_amortized(list, list.size() + (j - i));
    for (; i < j; ++i) {
      const StreamWatchOp& op = plan_bin[i];
      if (!stream_fast_[op.clause]) continue;
      list.push_back(
          {Lit::from_index(static_cast<int>(op.other_index)), /*learnt=*/0u});
    }
  }
}

std::vector<Clause> Solver::snapshot_clauses() const {
  std::vector<Clause> out;
  for (std::size_t i = 0; i < root_trail_size(); ++i) {
    out.push_back(Clause{trail_[i]});
  }
  for (std::size_t idx = 0; idx < bin_watches_.size(); ++idx) {
    const Lit a = ~Lit::from_index(static_cast<int>(idx));
    for (const BinWatcher& w : bin_watches_[idx]) {
      if (w.learnt) continue;
      if (a < w.implied) out.push_back(Clause{a, w.implied});
    }
  }
  for (const CRef c : clauses_) {
    if (arena_.deleted(c)) continue;
    Clause lits;
    lits.reserve(arena_.size(c));
    for (std::uint32_t i = 0; i < arena_.size(c); ++i) {
      lits.push_back(arena_.lit(c, i));
    }
    std::sort(lits.begin(), lits.end());
    out.push_back(std::move(lits));
  }
  return out;
}

bool Solver::block_model(Clause lits) {
  if (!ok_) return false;
  if (decision_level() == 0) return add_clause(std::move(lits));

  // Root-level simplification only: literals decided at level 0 are
  // permanent, everything else must stay in the clause.
  std::sort(lits.begin(), lits.end());
  Lit prev = Lit::undef();
  std::size_t out = 0;
  for (Lit l : lits) {
    const auto v = static_cast<std::size_t>(l.var());
    if (value(l.var()) != LBool::kUndef && vardata_[v].level == 0) {
      if (value(l) == LBool::kTrue) return true;  // satisfied forever
      continue;                                   // false forever
    }
    if (l == ~prev) return true;  // tautology
    if (l != prev) lits[out++] = prev = l;
  }
  lits.resize(out);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  // The fast path handles the blocking-clause shape: every remaining
  // literal false (or unassigned after an earlier backjump). Anything else
  // goes through the root-level path.
  for (Lit l : lits) {
    if (value(l) == LBool::kTrue) return add_clause(std::move(lits));
    // See the header: in-search blocking is only complete over decision
    // variables (the search must be able to re-decide a literal that a
    // later backjump unassigns).
    assert(decision_[static_cast<std::size_t>(l.var())]);
  }

  // Order by decreasing assignment level, unassigned literals first, so
  // lits[0]/lits[1] are the correct watches after the backjump.
  constexpr int kUnassigned = 0x7fffffff;
  const auto lit_level = [&](Lit l) {
    const auto v = static_cast<std::size_t>(l.var());
    return value(l.var()) == LBool::kUndef ? kUnassigned : vardata_[v].level;
  };
  std::sort(lits.begin(), lits.end(), [&](Lit a, Lit b) {
    return lit_level(a) > lit_level(b);
  });

  if (lits.size() == 1) {
    cancel_until(0);
    if (value(lits[0]) == LBool::kUndef) {
      unchecked_enqueue(lits[0], kCRefUndef);
      ok_ = (propagate() == kCRefUndef);
    }
    return ok_;
  }

  // Chronological backtracking: undo only the levels at and above the
  // highest literal, keeping the rest of the trail alive. The clause then
  // has >= 1 free literal; if it is unit it is enqueued below, and the
  // next solve() resumes from here instead of replaying the search.
  const int top = lit_level(lits[0]);
  if (top != kUnassigned) cancel_until(top - 1);
  assert(value(lits[0]) == LBool::kUndef);

  if (lits.size() == 2) {
    attach_binary(lits[0], lits[1], /*learnt=*/false);
    ++num_bin_clauses_;
    if (value(lits[1]) == LBool::kFalse) {
      unchecked_enqueue(lits[0], bin_reason(lits[1]));
    }
    return true;
  }
  const CRef cref = arena_.alloc(lits, /*learnt=*/false);
  clauses_.push_back(cref);
  attach_clause(cref);
  if (value(lits[1]) == LBool::kFalse) {
    unchecked_enqueue(lits[0], cref);
  }
  return true;
}

std::size_t Solver::num_clauses() const {
  return clauses_.size() + num_bin_clauses_;
}

std::size_t Solver::num_learnts() const {
  return learnts_core_.size() + learnts_mid_.size() + learnts_local_.size() +
         num_bin_learnts_;
}

void Solver::attach_binary(Lit a, Lit b, bool learnt) {
  const std::uint32_t flag = learnt ? 1u : 0u;
  bin_watches_[static_cast<std::size_t>((~a).index())].push_back({b, flag});
  bin_watches_[static_cast<std::size_t>((~b).index())].push_back({a, flag});
}

void Solver::attach_clause(CRef c) {
  assert(arena_.size(c) >= 3);
  const Lit l0 = arena_.lit(c, 0);
  const Lit l1 = arena_.lit(c, 1);
  watches_[static_cast<std::size_t>((~l0).index())].push_back({c, l1});
  watches_[static_cast<std::size_t>((~l1).index())].push_back({c, l0});
}

void Solver::detach_clause(CRef c) {
  for (int i = 0; i < 2; ++i) {
    const Lit w = ~arena_.lit(c, static_cast<std::uint32_t>(i));
    auto& list = watches_[static_cast<std::size_t>(w.index())];
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].cref == c) {
        list[j] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

void Solver::remove_clause(CRef c) {
  detach_clause(c);
  // A clause locked as a reason must not be deleted; callers filter those.
  arena_.mark_deleted(c);
  wasted_ += arena_.size(c) + kClauseOverhead;
}

// ---------------------------------------------------------------------------
// Propagation

void Solver::unchecked_enqueue(Lit p, CRef reason) {
  assert(value(p) == LBool::kUndef);
  assigns_[static_cast<std::size_t>(p.var())] = lbool_from(!p.sign());
  vardata_[static_cast<std::size_t>(p.var())] = {reason, decision_level()};
  trail_.push_back(p);
}

Solver::CRef Solver::propagate() {
  CRef conflict = kCRefUndef;
  // Branchless truth lookup for the hot loop: LBool's underlying value XOR
  // the literal sign gives 0 = true, 1 = false, >= 2 = unassigned.
  static_assert(static_cast<int>(LBool::kTrue) == 0 &&
                static_cast<int>(LBool::kFalse) == 1 &&
                static_cast<int>(LBool::kUndef) == 2);
  const LBool* const assigns = assigns_.data();
  const auto val = [assigns](Lit l) -> unsigned {
    return static_cast<unsigned>(static_cast<std::uint8_t>(
               assigns[static_cast<std::size_t>(l.var())])) ^
           static_cast<unsigned>(l.sign());
  };
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[static_cast<std::size_t>(qhead_++)];
    ++stats_.propagations;
    // Binary implications first: one cache line per watcher, no arena access,
    // no watch movement, and any conflict is found before touching the
    // heavier long-clause lists.
    for (const BinWatcher& w :
         bin_watches_[static_cast<std::size_t>(p.index())]) {
      const unsigned v = val(w.implied);
      if (v == 1u) {
        conflict = bin_reason(w.implied);
        bin_conflict_other_ = ~p;
        qhead_ = static_cast<int>(trail_.size());
        break;
      }
      if (v >= 2u) {
        ++stats_.binary_propagations;
        unchecked_enqueue(w.implied, bin_reason(~p));
      }
    }
    if (conflict != kCRefUndef) break;
    auto& list = watches_[static_cast<std::size_t>(p.index())];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < list.size()) {
      const Watcher w = list[i];
      if (val(w.blocker) == 0u) {
        list[j++] = list[i++];
        continue;
      }
      const CRef c = w.cref;
      // Ensure the false literal (~p) is at slot 1.
      if (arena_.lit(c, 0) == ~p) {
        arena_.set_lit(c, 0, arena_.lit(c, 1));
        arena_.set_lit(c, 1, ~p);
      }
      ++i;
      const Lit first = arena_.lit(c, 0);
      if (first != w.blocker && val(first) == 0u) {
        list[j++] = {c, first};
        continue;
      }
      // Look for a new watch.
      const std::uint32_t size = arena_.size(c);
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit lk = arena_.lit(c, k);
        if (val(lk) != 1u) {
          arena_.set_lit(c, 1, lk);
          arena_.set_lit(c, k, ~p);
          watches_[static_cast<std::size_t>((~lk).index())].push_back(
              {c, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      list[j++] = {c, first};
      if (val(first) == 1u) {
        conflict = c;
        qhead_ = static_cast<int>(trail_.size());
        while (i < list.size()) list[j++] = list[i++];
      } else {
        unchecked_enqueue(first, c);
      }
    }
    list.resize(j);
    if (conflict != kCRefUndef) break;
  }
  return conflict;
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const int bound = trail_lim_[static_cast<std::size_t>(level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Lit p = trail_[static_cast<std::size_t>(i)];
    const Var v = p.var();
    assigns_[static_cast<std::size_t>(v)] = LBool::kUndef;
    saved_phase_[static_cast<std::size_t>(v)] = !p.sign();  // phase saving
    if (decision_[static_cast<std::size_t>(v)] && !heap_in(v)) heap_insert(v);
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = bound;
  totalize_head_ = 0;  // unassigned vars may now precede the scan cursor
}

// ---------------------------------------------------------------------------
// Decision heuristic

void Solver::var_bump_activity(Var v) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act += var_inc_;
  if (act > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_in(v)) heap_update(v);
}

void Solver::boost_activity(Var v, double factor) {
  auto& act = activity_[static_cast<std::size_t>(v)];
  act = act * factor + var_inc_ * factor;
  if (heap_in(v)) heap_update(v);
}

void Solver::set_decision_var(Var v, bool decidable) {
  decision_[static_cast<std::size_t>(v)] = decidable;
  if (decidable && !heap_in(v)) {
    heap_insert(v);
  }
}

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  heap_percolate_up(heap_pos_[static_cast<std::size_t>(v)]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    const Var pv = heap_[static_cast<std::size_t>(parent)];
    if (!heap_lt(v, pv)) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_pos_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_lt(heap_[static_cast<std::size_t>(child + 1)],
                                 heap_[static_cast<std::size_t>(child)])) {
      ++child;
    }
    const Var cv = heap_[static_cast<std::size_t>(child)];
    if (!heap_lt(cv, v)) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_pos_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_[0];
    if (value(v) == LBool::kUndef && decision_[static_cast<std::size_t>(v)]) {
      heap_pop();
      return Lit(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
    heap_pop();
  }
  return Lit::undef();
}

Lit Solver::pick_totalize_lit() {
  for (; totalize_head_ < num_vars(); ++totalize_head_) {
    const Var v = totalize_head_;
    if (value(v) == LBool::kUndef &&
        !eliminated_[static_cast<std::size_t>(v)]) {
      return Lit(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  return Lit::undef();
}

// ---------------------------------------------------------------------------
// Conflict analysis (first UIP + recursive minimization)

void Solver::cla_bump_activity(CRef c) {
  float act = arena_.activity(c) + cla_inc_;
  if (act > 1e20f) {
    for (const std::vector<CRef>* list :
         {&learnts_core_, &learnts_mid_, &learnts_local_}) {
      for (CRef l : *list) {
        arena_.set_activity(l, arena_.activity(l) * 1e-20f);
      }
    }
    cla_inc_ *= 1e-20f;
    act = arena_.activity(c) + cla_inc_;
  }
  arena_.set_activity(c, act);
}

void Solver::update_learnt_on_use(CRef c) {
  arena_.set_unused_rounds(c, 0);
  const std::uint32_t size = arena_.size(c);
  ++lbd_epoch_;
  std::uint32_t lbd = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto lev = static_cast<std::size_t>(
        vardata_[static_cast<std::size_t>(arena_.lit(c, i).var())].level);
    if (lbd_stamp_[lev] != lbd_epoch_) {
      lbd_stamp_[lev] = lbd_epoch_;
      ++lbd;
    }
  }
  if (lbd < arena_.lbd(c)) {
    arena_.set_lbd(c, lbd);
    // Promote on improved glue; the tier tag moves the clause at the next
    // reduce_db() re-bucketing.
    if (lbd <= inprocess_cfg_.core_lbd) {
      arena_.set_tier(c, kTierCore);
    } else if (lbd <= inprocess_cfg_.mid_lbd &&
               arena_.tier(c) == kTierLocal) {
      arena_.set_tier(c, kTierMid);
    }
  }
}

void Solver::analyze(CRef conflict, Clause& out_learnt, int& out_btlevel,
                     unsigned& out_lbd) {
  int path_count = 0;
  Lit p = Lit::undef();
  out_learnt.clear();
  out_learnt.push_back(Lit::undef());  // slot for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  CRef reason = conflict;
  do {
    assert(reason != kCRefUndef);
    const bool bin = is_bin_reason(reason);
    if (!bin && arena_.learnt(reason)) {
      cla_bump_activity(reason);
      update_learnt_on_use(reason);
    }
    const std::uint32_t size = bin ? 2 : arena_.size(reason);
    for (std::uint32_t i = (p == Lit::undef() ? 0 : 1); i < size; ++i) {
      // Binary reasons store only the "other" literal; a binary conflict
      // additionally carries its second literal in bin_conflict_other_.
      const Lit q = !bin              ? arena_.lit(reason, i)
                    : (i == 0)        ? bin_reason_lit(reason)
                    : p == Lit::undef() ? bin_conflict_other_
                                        : bin_reason_lit(reason);
      const Var v = q.var();
      if (seen_[static_cast<std::size_t>(v)] ||
          vardata_[static_cast<std::size_t>(v)].level == 0) {
        continue;
      }
      seen_[static_cast<std::size_t>(v)] = true;
      var_bump_activity(v);
      if (vardata_[static_cast<std::size_t>(v)].level >= decision_level()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Next literal on the trail that participates in the conflict.
    while (!seen_[static_cast<std::size_t>(
        trail_[static_cast<std::size_t>(index)].var())]) {
      --index;
    }
    p = trail_[static_cast<std::size_t>(index)];
    --index;
    reason = vardata_[static_cast<std::size_t>(p.var())].reason;
    seen_[static_cast<std::size_t>(p.var())] = false;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Recursive minimization: drop literals implied by the rest of the clause.
  analyze_clear_.assign(out_learnt.begin() + 1, out_learnt.end());
  for (Lit l : analyze_clear_) seen_[static_cast<std::size_t>(l.var())] = true;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (vardata_[static_cast<std::size_t>(
                                  out_learnt[i].var())].level & 31);
  }
  std::size_t out = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Lit l = out_learnt[i];
    if (vardata_[static_cast<std::size_t>(l.var())].reason == kCRefUndef ||
        !lit_redundant(l, abstract_levels)) {
      out_learnt[out++] = l;
    }
  }
  out_learnt.resize(out);

  // Backtrack level: the second-highest level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (vardata_[static_cast<std::size_t>(out_learnt[i].var())].level >
          vardata_[static_cast<std::size_t>(out_learnt[max_i].var())].level) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = vardata_[static_cast<std::size_t>(out_learnt[1].var())].level;
  }

  // Literal-block distance (the tier placement of the new learnt).
  out_lbd = 0;
  ++lbd_epoch_;
  for (Lit l : out_learnt) {
    const auto lev = static_cast<std::size_t>(
        vardata_[static_cast<std::size_t>(l.var())].level);
    if (lbd_stamp_[lev] != lbd_epoch_) {
      lbd_stamp_[lev] = lbd_epoch_;
      ++out_lbd;
    }
  }

  for (Lit l : analyze_clear_) seen_[static_cast<std::size_t>(l.var())] = false;
  seen_[static_cast<std::size_t>(out_learnt[0].var())] = false;
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  auto& to_clear = redundant_clear_;
  to_clear.clear();
  bool redundant = true;
  while (!analyze_stack_.empty() && redundant) {
    const Lit l = analyze_stack_.back();
    analyze_stack_.pop_back();
    const CRef reason = vardata_[static_cast<std::size_t>(l.var())].reason;
    assert(reason != kCRefUndef);
    const bool bin = is_bin_reason(reason);
    const std::uint32_t size = bin ? 2 : arena_.size(reason);
    for (std::uint32_t i = 1; i < size; ++i) {
      const Lit q = bin ? bin_reason_lit(reason) : arena_.lit(reason, i);
      const Var v = q.var();
      const int level = vardata_[static_cast<std::size_t>(v)].level;
      if (seen_[static_cast<std::size_t>(v)] || level == 0) continue;
      if (vardata_[static_cast<std::size_t>(v)].reason == kCRefUndef ||
          ((1u << (level & 31)) & abstract_levels) == 0) {
        redundant = false;
        break;
      }
      seen_[static_cast<std::size_t>(v)] = true;
      to_clear.push_back(v);
      analyze_stack_.push_back(q);
    }
  }
  if (redundant) {
    // Keep the marks: they are part of the learnt-clause closure and are
    // cleared wholesale at the end of analyze().
    for (Var v : to_clear) analyze_clear_.push_back(Lit(v, false));
  } else {
    for (Var v : to_clear) seen_[static_cast<std::size_t>(v)] = false;
  }
  return redundant;
}

void Solver::analyze_final(Lit p) {
  conflict_.clear();
  conflict_.push_back(p);
  if (decision_level() == 0) return;
  seen_[static_cast<std::size_t>(p.var())] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    const Var v = trail_[static_cast<std::size_t>(i)].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    const CRef reason = vardata_[static_cast<std::size_t>(v)].reason;
    if (reason == kCRefUndef) {
      if (vardata_[static_cast<std::size_t>(v)].level > 0) {
        conflict_.push_back(~trail_[static_cast<std::size_t>(i)]);
      }
    } else {
      const bool bin = is_bin_reason(reason);
      const std::uint32_t size = bin ? 2 : arena_.size(reason);
      for (std::uint32_t j = 1; j < size; ++j) {
        const Var u =
            (bin ? bin_reason_lit(reason) : arena_.lit(reason, j)).var();
        if (vardata_[static_cast<std::size_t>(u)].level > 0) {
          seen_[static_cast<std::size_t>(u)] = true;
        }
      }
    }
    seen_[static_cast<std::size_t>(v)] = false;
  }
  seen_[static_cast<std::size_t>(p.var())] = false;
}

// ---------------------------------------------------------------------------
// Learnt DB management (glue tiers)

std::vector<Solver::CRef>& Solver::tier_list(Tier t) {
  switch (t) {
    case kTierCore: return learnts_core_;
    case kTierMid: return learnts_mid_;
    default: return learnts_local_;
  }
}

void Solver::push_learnt(CRef c, unsigned lbd) {
  arena_.set_lbd(c, lbd);
  const Tier t = lbd <= inprocess_cfg_.core_lbd  ? kTierCore
                 : lbd <= inprocess_cfg_.mid_lbd ? kTierMid
                                                 : kTierLocal;
  arena_.set_tier(c, t);
  tier_list(t).push_back(c);
}

void Solver::reduce_db() {
  obs::Span span("sat.reduce_db");
  // Re-bucket by tier tag (analyze promotes by lowering the tag), demote
  // mid-tier clauses unused for two consecutive reduce rounds, then halve
  // the local tier by activity. Core clauses are kept outright — they carry
  // the enumeration across the k = 1..K bound loop.
  std::vector<CRef> core;
  std::vector<CRef> mid;
  std::vector<CRef> local;
  const auto bucket = [&](std::vector<CRef>& list) {
    for (CRef c : list) {
      Tier t = arena_.tier(c);
      if (t == kTierMid) {
        const std::uint32_t unused = arena_.unused_rounds(c) + 1;
        arena_.set_unused_rounds(c, unused);
        if (unused > 2) {
          arena_.set_tier(c, kTierLocal);
          t = kTierLocal;
        }
      }
      (t == kTierCore ? core : t == kTierMid ? mid : local).push_back(c);
    }
  };
  bucket(learnts_core_);
  bucket(learnts_mid_);
  bucket(learnts_local_);

  std::sort(local.begin(), local.end(), [&](CRef a, CRef b) {
    return arena_.activity(a) < arena_.activity(b);
  });
  const auto is_locked = [&](CRef c) {
    const Lit l0 = arena_.lit(c, 0);
    return value(l0) == LBool::kTrue &&
           vardata_[static_cast<std::size_t>(l0.var())].reason == c;
  };
  std::size_t out = 0;
  for (std::size_t i = 0; i < local.size(); ++i) {
    const CRef c = local[i];
    if (!is_locked(c) && (i < local.size() / 2)) {
      remove_clause(c);
      ++stats_.removed;
    } else {
      local[out++] = c;
    }
  }
  local.resize(out);

  learnts_core_ = std::move(core);
  learnts_mid_ = std::move(mid);
  learnts_local_ = std::move(local);
  update_tier_stats();
  if (wasted_ * 2 > arena_.data.size()) garbage_collect();
}

void Solver::update_tier_stats() {
  stats_.tier_core = learnts_core_.size();
  stats_.tier_mid = learnts_mid_.size();
  stats_.tier_local = learnts_local_.size();
}

void Solver::garbage_collect() {
  ++stats_.gc_runs;
  Arena fresh;
  fresh.data.reserve(arena_.data.size() - wasted_);
  std::vector<Lit> scratch;
  auto reloc = [&](CRef& c) {
    if (c == kCRefUndef || arena_.deleted(c)) return;
    // Move the clause and leave a forwarding pointer in the activity slot.
    if (arena_.data[c] & 1u) return;  // deleted
    // Forwarding: reuse header bit pattern 0xffffffff impossible for live
    // clause headers (size would be huge); store new cref in data[c+1] and
    // set a dedicated tag in data[c].
    scratch.clear();
    const std::uint32_t size = arena_.size(c);
    for (std::uint32_t i = 0; i < size; ++i) scratch.push_back(arena_.lit(c, i));
    const CRef moved = fresh.alloc(scratch, arena_.learnt(c));
    fresh.set_activity(moved, arena_.activity(c));
    fresh.set_meta(moved, arena_.meta(c));
    arena_.mark_deleted(c);
    arena_.data[c + 1] = moved;  // forwarding pointer
    c = moved;
  };
  auto follow = [&](CRef& c) {
    if (c == kCRefUndef) return;
    if (arena_.data[c] & 1u) {
      c = arena_.data[c + 1];
    } else {
      reloc(c);
    }
  };
  for (CRef& c : clauses_) reloc(c);
  for (CRef& c : learnts_core_) reloc(c);
  for (CRef& c : learnts_mid_) reloc(c);
  for (CRef& c : learnts_local_) reloc(c);
  for (Var v = 0; v < num_vars(); ++v) {
    auto& vd = vardata_[static_cast<std::size_t>(v)];
    if (value(v) == LBool::kUndef || vd.level == 0) {
      // Stale reasons — of unassigned variables (their clause may be gone)
      // and of root assignments (never read; the clause may have been
      // deleted by inprocessing) — are dropped rather than followed.
      vd.reason = kCRefUndef;
    } else if (vd.reason != kCRefUndef && !is_bin_reason(vd.reason)) {
      // Binary reasons are literal-encoded, not arena references; they
      // survive garbage collection untouched.
      follow(vd.reason);
    }
  }
  // Rebuild watches from scratch.
  for (auto& list : watches_) list.clear();
  arena_ = std::move(fresh);
  for (CRef c : clauses_) attach_clause(c);
  for (CRef c : learnts_core_) attach_clause(c);
  for (CRef c : learnts_mid_) attach_clause(c);
  for (CRef c : learnts_local_) attach_clause(c);
  wasted_ = 0;
}

// ---------------------------------------------------------------------------
// Inprocessing

void Solver::clear_root_reasons() {
  assert(decision_level() == 0);
  // Level-0 reasons are never read by analyze/analyze_final (they skip
  // level-0 variables); forgetting them unlocks every arena clause so the
  // simplification passes may remove or rewrite anything.
  for (Lit p : trail_) {
    vardata_[static_cast<std::size_t>(p.var())].reason = kCRefUndef;
  }
}

bool Solver::enqueue_root(Lit p) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  if (value(p) == LBool::kTrue) return true;
  if (value(p) == LBool::kFalse) {
    ok_ = false;
    return false;
  }
  const std::size_t before = trail_.size();
  unchecked_enqueue(p, kCRefUndef);
  ok_ = (propagate() == kCRefUndef);
  // The simplification passes delete clauses freely, and a root reason must
  // not outlive the clause it points to; root reasons are never read (see
  // clear_root_reasons), so drop them as they appear.
  for (std::size_t i = before; i < trail_.size(); ++i) {
    vardata_[static_cast<std::size_t>(trail_[i].var())].reason = kCRefUndef;
  }
  return ok_;
}

void Solver::shrink_clause_detached(CRef c, std::span<const Lit> lits) {
  assert(!lits.empty());
  const std::uint32_t old_size = arena_.size(c);
  const bool learnt = arena_.learnt(c);
  if (lits.size() == 1) {
    arena_.mark_deleted(c);
    wasted_ += old_size + kClauseOverhead;
    enqueue_root(lits[0]);
    return;
  }
  if (lits.size() == 2) {
    arena_.mark_deleted(c);
    wasted_ += old_size + kClauseOverhead;
    attach_binary(lits[0], lits[1], learnt);
    if (learnt) {
      ++num_bin_learnts_;
      if (bin_export_queue_.size() < 65536) {
        bin_export_queue_.emplace_back(lits[0], lits[1]);
      }
    } else {
      ++num_bin_clauses_;
    }
    return;
  }
  for (std::size_t i = 0; i < lits.size(); ++i) {
    arena_.set_lit(c, static_cast<std::uint32_t>(i), lits[i]);
  }
  arena_.shrink(c, static_cast<std::uint32_t>(lits.size()));
  wasted_ += old_size - static_cast<std::uint32_t>(lits.size());
  attach_clause(c);
}

void Solver::clean_clauses() {
  assert(decision_level() == 0);
  std::vector<Lit> kept;
  const auto clean_list = [&](std::vector<CRef>& list) {
    for (CRef c : list) {
      if (arena_.deleted(c) || !ok_) continue;
      const std::uint32_t size = arena_.size(c);
      bool satisfied = false;
      bool changed = false;
      kept.clear();
      for (std::uint32_t i = 0; i < size && !satisfied; ++i) {
        const Lit l = arena_.lit(c, i);
        if (value(l) == LBool::kTrue) {
          satisfied = true;
        } else if (value(l) == LBool::kFalse) {
          changed = true;
        } else {
          kept.push_back(l);
        }
      }
      if (satisfied) {
        remove_clause(c);
        continue;
      }
      if (!changed) continue;
      // Root BCP forces the last literal of an almost-false clause, so at
      // least two unassigned literals remain here.
      detach_clause(c);
      shrink_clause_detached(c, kept);
    }
  };
  clean_list(clauses_);
  clean_list(learnts_core_);
  clean_list(learnts_mid_);
  clean_list(learnts_local_);

  // Binary layer: a binary with a root-assigned variable is satisfied
  // (when one literal went false, BCP made the other true), so drop every
  // watcher entry touching an assigned variable.
  for (std::size_t idx = 0; idx < bin_watches_.size(); ++idx) {
    auto& list = bin_watches_[idx];
    if (list.empty()) continue;
    const Lit a = ~Lit::from_index(static_cast<int>(idx));
    std::size_t out = 0;
    for (const BinWatcher& w : list) {
      if (value(a) == LBool::kUndef && value(w.implied) == LBool::kUndef) {
        list[out++] = w;
        continue;
      }
      if (a.index() < w.implied.index()) {  // count each clause once
        if (w.learnt) {
          --num_bin_learnts_;
        } else {
          --num_bin_clauses_;
        }
      }
    }
    list.resize(out);
  }
}

void Solver::compact_clause_lists() {
  const auto compact = [&](std::vector<CRef>& list) {
    std::erase_if(list, [&](CRef c) { return arena_.deleted(c); });
  };
  compact(clauses_);
  compact(learnts_core_);
  compact(learnts_mid_);
  compact(learnts_local_);
}

bool Solver::inprocess() {
  obs::Span span("sat.inprocess");
  assert(decision_level() == 0);
  if (!ok_) return false;
  ++stats_.inprocess_runs;
  const std::uint64_t work_before = stats_.subsumed + stats_.strengthened +
                                    stats_.vivified + stats_.vars_eliminated +
                                    stats_.failed_literals;
  clear_root_reasons();
  clean_clauses();
  if (ok_) {
    Subsumer subsumer(*this);
    subsumer.run();
  }
  if (ok_) {
    Prober prober(*this);
    prober.run();
  }
  if (ok_) clean_clauses();  // probing may have fixed new root units
  if (ok_) {
    Vivifier vivifier(*this);
    vivifier.run();
  }
  if (ok_) {
    Eliminator eliminator(*this);
    eliminator.run();
  }
  compact_clause_lists();
  if (ok_ && wasted_ * 4 > arena_.data.size()) garbage_collect();
  update_tier_stats();
  // Geometric back-off keeps the total inprocessing effort logarithmic in
  // the conflict count. A run that accomplished nothing backs off 4x harder:
  // the occurrence-index setup of the passes is paid per run even when every
  // pass comes back empty, which dominates on enumeration-style instances
  // whose formula stops simplifying after the first pass.
  const std::uint64_t work_after = stats_.subsumed + stats_.strengthened +
                                   stats_.vivified + stats_.vars_eliminated +
                                   stats_.failed_literals;
  const std::uint64_t factor = work_after == work_before ? 8 : 2;
  inprocess_interval_ = std::min<std::uint64_t>(inprocess_interval_ * factor,
                                                std::uint64_t{1} << 20);
  next_inprocess_ = stats_.conflicts + inprocess_interval_;
  return ok_;
}

// ---------------------------------------------------------------------------
// Clause sharing

std::size_t Solver::export_learnts(unsigned max_lbd, std::size_t max_clauses,
                                   std::vector<SharedClause>& out) {
  std::size_t exported = 0;
  // Root units first — the strongest facts the search produced.
  const std::size_t root_end = root_trail_size();
  while (export_unit_watermark_ < root_end && exported < max_clauses) {
    SharedClause sc;
    sc.lits.push_back(trail_[export_unit_watermark_++]);
    sc.lbd = 1;
    out.push_back(std::move(sc));
    ++exported;
  }
  // Learnt binaries queued since the last export.
  while (!bin_export_queue_.empty() && exported < max_clauses) {
    const auto [a, b] = bin_export_queue_.back();
    bin_export_queue_.pop_back();
    SharedClause sc;
    sc.lits = {std::min(a, b), std::max(a, b)};
    sc.lbd = 2;
    out.push_back(std::move(sc));
    ++exported;
  }
  // Core/mid arena learnts under the glue cap, each exported at most once.
  for (const std::vector<CRef>* list : {&learnts_core_, &learnts_mid_}) {
    for (CRef c : *list) {
      if (exported >= max_clauses) break;
      if (arena_.deleted(c) || arena_.exported(c) ||
          arena_.lbd(c) > max_lbd) {
        continue;
      }
      arena_.set_exported(c);
      SharedClause sc;
      sc.lbd = arena_.lbd(c);
      const std::uint32_t size = arena_.size(c);
      sc.lits.reserve(size);
      for (std::uint32_t i = 0; i < size; ++i) {
        sc.lits.push_back(arena_.lit(c, i));
      }
      std::sort(sc.lits.begin(), sc.lits.end());
      out.push_back(std::move(sc));
      ++exported;
    }
  }
  stats_.learnts_exported += exported;
  return exported;
}

bool Solver::import_clause(const SharedClause& shared) {
  if (!ok_) return false;
  if (decision_level() != 0) cancel_until(0);
  for (Lit l : shared.lits) {
    // This solver eliminated a variable the exporter still resolves on; the
    // clause is implied but may mention reconstructed-only variables.
    if (eliminated_[static_cast<std::size_t>(l.var())]) return false;
  }
  Clause lits = shared.lits;
  std::sort(lits.begin(), lits.end());
  Lit prev = Lit::undef();
  std::size_t out = 0;
  for (Lit l : lits) {
    if (value(l) == LBool::kTrue || l == ~prev) return false;  // nothing new
    if (value(l) != LBool::kFalse && l != prev) {
      lits[out++] = prev = l;
    }
  }
  lits.resize(out);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  ++stats_.learnts_imported;
  if (lits.size() == 1) {
    return enqueue_root(lits[0]);
  }
  if (lits.size() == 2) {
    attach_binary(lits[0], lits[1], /*learnt=*/true);
    ++num_bin_learnts_;
    return true;
  }
  const CRef cref = arena_.alloc(lits, /*learnt=*/true);
  push_learnt(cref, std::max<unsigned>(shared.lbd, 2));
  arena_.set_exported(cref);  // never bounce an import back out
  attach_clause(cref);
  return true;
}

// ---------------------------------------------------------------------------
// Search

bool Solver::within_budget() const {
  if (conflict_budget_ >= 0 &&
      stats_.conflicts >= static_cast<std::uint64_t>(conflict_budget_)) {
    return false;
  }
  if (interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed)) {
    return false;
  }
  return !deadline_.expired();
}

double Solver::luby(double y, int i) {
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

LBool Solver::search() {
  // BCP-adjacent: compiled out unless -DSATDIAG_OBS_HOT_SPANS (one span per
  // restart-quantum of search; propagate() itself stays uninstrumented).
  SATDIAG_HOT_SPAN(search_span, "sat.search");
  const int restart_base = 100;
  int conflicts_this_restart = 0;
  const double restart_factor =
      luby(2.0, static_cast<int>(stats_.restarts));
  const int restart_limit =
      static_cast<int>(restart_factor * restart_base);
  Clause learnt;

  for (;;) {
    const CRef conflict = propagate();
    if (conflict != kCRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        // Root-level conflict: UNSAT independent of assumptions, forever.
        ok_ = false;
        return LBool::kFalse;
      }
      int backtrack_level = 0;
      unsigned lbd = 0;
      analyze(conflict, learnt, backtrack_level, lbd);
      cancel_until(backtrack_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], kCRefUndef);
      } else if (learnt.size() == 2) {
        // Learnt binaries go straight to the binary layer and are kept
        // forever: they are the strongest clauses the search produces.
        attach_binary(learnt[0], learnt[1], /*learnt=*/true);
        ++num_bin_learnts_;
        if (bin_export_queue_.size() < 65536) {
          bin_export_queue_.emplace_back(learnt[0], learnt[1]);
        }
        unchecked_enqueue(learnt[0], bin_reason(learnt[1]));
        ++stats_.learned;
      } else {
        const CRef cref = arena_.alloc(learnt, /*learnt=*/true);
        push_learnt(cref, lbd);
        attach_clause(cref);
        cla_bump_activity(cref);
        unchecked_enqueue(learnt[0], cref);
        ++stats_.learned;
      }
      var_decay_activity();
      cla_decay_activity();
      continue;
    }

    // No conflict.
    if ((stats_.conflicts & 1023) == 0 && !within_budget()) {
      cancel_until(0);
      return LBool::kUndef;
    }
    if (conflicts_this_restart >= restart_limit) {
      cancel_until(0);
      ++stats_.restarts;
      return LBool::kUndef;  // caller loops; learnt clauses kept
    }
    if (static_cast<double>(learnts_local_.size()) >= max_learnts_) {
      reduce_db();
    }

    // Extend with assumptions first.
    Lit next = Lit::undef();
    while (decision_level() < static_cast<int>(assumptions_.size())) {
      const Lit a = assumptions_[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // already satisfied; dummy level keeps indexing
      } else if (value(a) == LBool::kFalse) {
        analyze_final(~a);
        return LBool::kFalse;
      } else {
        next = a;
        break;
      }
    }
    if (next == Lit::undef()) {
      ++stats_.decisions;
      next = pick_branch_lit();
      if (next == Lit::undef() && !extend_.empty()) {
        // See pick_totalize_lit(): with eliminated variables around, a model
        // must assign *every* remaining variable before it can be trusted.
        next = pick_totalize_lit();
      }
      if (next == Lit::undef()) return LBool::kTrue;  // all assigned: model
    }
    new_decision_level();
    unchecked_enqueue(next, kCRefUndef);
  }
}

LBool Solver::solve(std::span<const Lit> assumptions) {
  conflict_.clear();
  if (!ok_) return LBool::kFalse;
  if (decision_level() > 0) {
    // Search state left over from a previous satisfiable call (see
    // block_model): continue in place when the assumptions are unchanged,
    // otherwise start over.
    const bool same_assumptions =
        assumptions.size() == assumptions_.size() &&
        std::equal(assumptions.begin(), assumptions.end(),
                   assumptions_.begin());
    if (!same_assumptions) cancel_until(0);
  }
  assumptions_.assign(assumptions.begin(), assumptions.end());
#ifndef NDEBUG
  // Assumption variables must be frozen or decision vars; an eliminated one
  // means the caller broke the freeze contract.
  for (Lit a : assumptions_) assert(!is_eliminated(a.var()));
#endif
  max_learnts_ = std::max<double>(
      static_cast<double>(clauses_.size()) / 3.0, 2000.0);

  LBool status = LBool::kUndef;
  while (status == LBool::kUndef) {
    if (!within_budget()) break;
    if (decision_level() == 0) {
      // Restart boundary: exchange clauses (portfolio hook), then run the
      // budgeted simplification pipeline when it is due.
      if (share_hook_) share_hook_(*this);
      if (!ok_ || (inprocess_due() && !inprocess())) {
        status = LBool::kFalse;
        break;
      }
    }
    status = search();
    max_learnts_ *= 1.05;
  }
  if (status == LBool::kTrue) {
    for (Var v = 0; v < num_vars(); ++v) {
      model_[static_cast<std::size_t>(v)] = value(v);
    }
    // Exact values for eliminated variables: replay the reconstruction
    // stack (every non-eliminated variable is assigned — see
    // pick_totalize_lit).
    if (!extend_.empty()) extend_.extend(model_);
    // Keep the trail: an enumeration loop's block_model() + re-solve
    // continues from here instead of replaying the whole search.
    return status;
  }
  cancel_until(0);
  return status;
}

}  // namespace satdiag::sat
