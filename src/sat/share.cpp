#include "sat/share.hpp"

namespace satdiag::sat {

ClauseExchange::ClauseExchange(std::size_t producers) {
  slots_.reserve(producers);
  for (std::size_t i = 0; i < producers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  cursors_.assign(producers, std::vector<std::size_t>(producers, 0));
}

void ClauseExchange::publish(std::size_t producer,
                             std::vector<SharedClause> batch) {
  if (batch.empty()) return;
  Slot& slot = *slots_[producer];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  for (auto& sc : batch) {
    if (slot.log.size() >= kMaxLog) break;
    slot.log.push_back(std::move(sc));
  }
}

std::size_t ClauseExchange::collect(std::size_t consumer,
                                    std::vector<SharedClause>& out) {
  std::size_t appended = 0;
  auto& cursors = cursors_[consumer];
  for (std::size_t p = 0; p < slots_.size(); ++p) {
    if (p == consumer) continue;
    Slot& slot = *slots_[p];
    const std::unique_lock<std::mutex> lock(slot.mutex, std::try_to_lock);
    if (!lock.owns_lock()) continue;  // busy peer: catch up next round
    for (std::size_t i = cursors[p]; i < slot.log.size(); ++i) {
      out.push_back(slot.log[i]);
      ++appended;
    }
    cursors[p] = slot.log.size();
  }
  return appended;
}

}  // namespace satdiag::sat
