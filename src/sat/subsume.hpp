// Binary-implication-graph subsumption and self-subsuming resolution.
//
// Every binary clause (a | b) is matched against an occurrence index of the
// arena clauses: a clause containing both a and b is subsumed (removed), and
// a clause containing a and ~b is strengthened by removing ~b (resolving it
// with the binary on b yields the same clause minus the literal, so the
// rewrite preserves equivalence). Binaries are by far the most effective
// subsumers and the only ones cheap enough to match exhaustively, which is
// why the pass stops there (CryptoMiniSat's str-with-bins idea).
//
// Soundness note: when a *learnt* binary subsumes an irredundant clause, the
// binary is promoted to irredundant first — otherwise variable elimination
// (which discards learnts unsaved) could later delete the only clause
// carrying that constraint.
#pragma once

#include "sat/solver.hpp"

namespace satdiag::sat {

class Subsumer {
 public:
  explicit Subsumer(Solver& s) : s_(s) {}

  /// One budgeted pass (InprocessConfig::subsume_budget literal visits).
  /// Returns Solver::ok().
  bool run();

 private:
  Solver& s_;
};

}  // namespace satdiag::sat
