#include "sat/allsat.hpp"

namespace satdiag::sat {

AllSatResult enumerate_all(Solver& solver, const std::vector<Var>& projection,
                           std::span<const Lit> assumptions,
                           const AllSatOptions& options) {
  AllSatResult result;
  for (;;) {
    if (options.deadline.expired()) return result;
    if (options.max_solutions >= 0 &&
        static_cast<std::int64_t>(result.solutions.size()) >=
            options.max_solutions) {
      return result;
    }
    solver.set_deadline(options.deadline);
    const LBool status = solver.solve(assumptions);
    if (status == LBool::kUndef) return result;  // budget exhausted
    if (status == LBool::kFalse) {
      result.complete = true;
      return result;
    }
    std::vector<Var> asserted;
    for (Var v : projection) {
      if (solver.model_value(v) == LBool::kTrue) asserted.push_back(v);
    }
    Clause blocking;
    if (options.block_positive_subset) {
      for (Var v : asserted) blocking.push_back(neg(v));
    } else {
      for (Var v : projection) {
        blocking.push_back(solver.model_value(v) == LBool::kTrue ? neg(v)
                                                                 : pos(v));
      }
    }
    result.solutions.push_back(std::move(asserted));
    if (blocking.empty()) {
      // The empty projection satisfied the instance; no further distinct
      // projected solution exists under subset blocking.
      result.complete = true;
      return result;
    }
    // In-search blocking: keeps the trail so the next solve() continues
    // where this model was found instead of replaying the search.
    if (!solver.block_model(std::move(blocking))) {
      result.complete = true;
      return result;
    }
  }
}

}  // namespace satdiag::sat
