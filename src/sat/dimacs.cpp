#include "sat/dimacs.hpp"

#include <sstream>
#include <string>

#include "util/strings.hpp"

namespace satdiag::sat {

CnfFormula parse_dimacs(std::istream& in) {
  CnfFormula cnf;
  int declared_vars = -1;
  long declared_clauses = -1;
  Clause current;
  std::string token;
  bool in_header = false;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      in >> token;
      if (token != "cnf") throw DimacsError("expected 'p cnf' header");
      in >> declared_vars >> declared_clauses;
      if (!in || declared_vars < 0 || declared_clauses < 0) {
        throw DimacsError("malformed 'p cnf' header");
      }
      in_header = true;
      (void)in_header;
      continue;
    }
    long value = 0;
    try {
      value = std::stol(token);
    } catch (const std::exception&) {
      throw DimacsError(strprintf("unexpected token '%s'", token.c_str()));
    }
    if (value == 0) {
      cnf.clauses.push_back(current);
      current.clear();
      continue;
    }
    const int var = static_cast<int>(value < 0 ? -value : value) - 1;
    cnf.num_vars = std::max(cnf.num_vars, var + 1);
    current.push_back(Lit(var, value < 0));
  }
  if (!current.empty()) {
    throw DimacsError("last clause not terminated by 0");
  }
  if (declared_vars >= 0 && cnf.num_vars > declared_vars) {
    throw DimacsError("clause references variable beyond header bound");
  }
  if (declared_vars >= 0) cnf.num_vars = declared_vars;
  if (declared_clauses >= 0 &&
      static_cast<long>(cnf.clauses.size()) != declared_clauses) {
    throw DimacsError("clause count differs from header");
  }
  return cnf;
}

CnfFormula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

bool load_into_solver(const CnfFormula& cnf, Solver& solver) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  for (const Clause& clause : cnf.clauses) {
    if (!solver.add_clause(clause)) return false;
  }
  return solver.ok();
}

void write_dimacs(std::ostream& out, const CnfFormula& cnf) {
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const Clause& clause : cnf.clauses) {
    for (Lit l : clause) {
      out << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    }
    out << "0\n";
  }
}

}  // namespace satdiag::sat
