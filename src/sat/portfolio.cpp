#include "sat/portfolio.hpp"

#include <atomic>
#include <mutex>

#include "exec/parallel.hpp"
#include "sat/share.hpp"
#include "util/rng.hpp"

namespace satdiag::sat {

PortfolioResult solve_portfolio(int num_vars,
                                std::span<const Clause> clauses,
                                std::span<const Lit> assumptions,
                                const PortfolioOptions& options) {
  const std::size_t configs = std::max<std::size_t>(1, options.num_configs);
  PortfolioResult result;
  result.winner = configs;

  exec::ThreadPool pool(std::min(options.num_threads, configs));
  std::atomic<bool> cancel{false};
  std::mutex winner_mutex;
  std::vector<Solver::Stats> per_config_stats(configs);
  ClauseExchange exchange(configs);

  // One config per shard (grain 1): each lane owns one solver at a time, the
  // interrupt flag is the only cross-lane communication.
  exec::parallel_for(
      pool, configs,
      [&](std::size_t config, std::size_t) {
        if (cancel.load(std::memory_order_relaxed)) return;
        Solver solver;
        for (int v = 0; v < num_vars; ++v) solver.new_var();
        bool ok = true;
        for (const Clause& clause : clauses) {
          if (!solver.add_clause(clause)) {
            ok = false;
            break;
          }
        }
        if (ok && config > 0) {
          // Seed-perturbed heuristics: initial polarities flipped and
          // activities noised on a random variable subset, drawn from this
          // config's private stream.
          Rng rng = exec::shard_rng(options.seed, config);
          for (int v = 0; v < num_vars; ++v) {
            if (!rng.next_bool(options.perturb_fraction)) continue;
            solver.set_polarity_hint(v, rng.next_bool());
            solver.boost_activity(v, 1.0 + rng.next_double());
          }
        }
        LBool status = LBool::kFalse;  // !ok: UNSAT at the root
        if (ok) {
          solver.set_deadline(options.deadline);
          solver.set_conflict_budget(options.conflict_budget);
          solver.set_interrupt(&cancel);
          if (options.share_learnts && configs > 1) {
            // Restart-boundary exchange: publish fresh low-glue learnts,
            // then import everything peers published since the last visit.
            // collect() try-locks peers, so the hook never blocks the lane.
            solver.set_share_hook([&exchange, &options, config,
                                   batch = std::vector<SharedClause>(),
                                   incoming = std::vector<SharedClause>()](
                                      Solver& s) mutable {
              batch.clear();
              s.export_learnts(options.share_max_lbd,
                               options.share_max_clauses, batch);
              if (!batch.empty()) exchange.publish(config, std::move(batch));
              incoming.clear();
              exchange.collect(config, incoming);
              for (const SharedClause& shared : incoming) {
                s.import_clause(shared);  // drops stale/eliminated-var clauses
              }
            });
          }
          status = solver.solve(assumptions);
        }
        per_config_stats[config] = solver.stats();
        if (status == LBool::kUndef) return;  // budget / cancelled
        std::lock_guard<std::mutex> lock(winner_mutex);
        if (result.winner == configs) {
          result.winner = config;
          result.status = status;
          if (status == LBool::kTrue) {
            result.model.resize(static_cast<std::size_t>(num_vars));
            for (int v = 0; v < num_vars; ++v) {
              result.model[static_cast<std::size_t>(v)] =
                  solver.model_value(v);
            }
          }
          cancel.store(true, std::memory_order_relaxed);
        }
      },
      /*grain=*/1);

  for (const Solver::Stats& stats : per_config_stats) {
    result.stats.merge(stats);
  }
  return result;
}

}  // namespace satdiag::sat
