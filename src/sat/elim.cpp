#include "sat/elim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace satdiag::sat {

namespace {

struct BinRec {
  Lit a;
  Lit b;
  bool learnt;
  bool deleted;
};

// Resolve two sorted clauses on `v` (first contains pos(v), second neg(v)).
// Returns false for a tautology; otherwise `out` is the sorted resolvent.
bool resolve(const std::vector<Lit>& p, const std::vector<Lit>& n, Var v,
             std::vector<Lit>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  const auto push = [&](Lit l) {
    if (l.var() == v) return true;
    if (!out.empty() && out.back() == l) return true;       // duplicate
    if (!out.empty() && out.back() == ~l) return false;     // tautology
    out.push_back(l);
    return true;
  };
  while (i < p.size() || j < n.size()) {
    const bool take_p =
        j >= n.size() || (i < p.size() && p[i] < n[j]);
    if (!push(take_p ? p[i++] : n[j++])) return false;
  }
  return true;
}

}  // namespace

bool Eliminator::run() {
  assert(s_.decision_level() == 0);
  using CRef = Solver::CRef;
  const int nv = s_.num_vars();
  const auto& cfg = s_.inprocess_cfg_;

  // Occurrence index: arena clauses by literal, plus a materialized record
  // per binary clause (the binary layer has no CRefs).
  std::vector<std::vector<CRef>> occ(static_cast<std::size_t>(2 * nv));
  const auto index_list = [&](const std::vector<CRef>& list) {
    for (CRef c : list) {
      if (s_.arena_.deleted(c)) continue;
      const std::uint32_t size = s_.arena_.size(c);
      for (std::uint32_t i = 0; i < size; ++i) {
        occ[static_cast<std::size_t>(s_.arena_.lit(c, i).index())].push_back(
            c);
      }
    }
  };
  index_list(s_.clauses_);
  index_list(s_.learnts_core_);
  index_list(s_.learnts_mid_);
  index_list(s_.learnts_local_);

  std::vector<BinRec> bins;
  std::vector<std::vector<std::uint32_t>> bin_occ(
      static_cast<std::size_t>(2 * nv));
  for (std::size_t idx = 0; idx < s_.bin_watches_.size(); ++idx) {
    const Lit a = ~Lit::from_index(static_cast<int>(idx));
    for (const Solver::BinWatcher& w : s_.bin_watches_[idx]) {
      if (a.index() < w.implied.index()) {
        const auto rec = static_cast<std::uint32_t>(bins.size());
        bins.push_back({a, w.implied, w.learnt != 0, false});
        bin_occ[static_cast<std::size_t>(a.index())].push_back(rec);
        bin_occ[static_cast<std::size_t>(w.implied.index())].push_back(rec);
      }
    }
  }

  // Candidates, cheapest first. Decision variables are exempt (enumeration
  // loops block over them), frozen variables by contract, assumption
  // variables defensively (they should all be frozen or decision already).
  std::vector<bool> assumed(static_cast<std::size_t>(nv), false);
  for (Lit a : s_.assumptions_) {
    assumed[static_cast<std::size_t>(a.var())] = true;
  }
  std::vector<std::pair<std::uint32_t, Var>> cands;
  for (Var v = 0; v < nv; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (s_.decision_[vi] || s_.frozen_[vi] || s_.eliminated_[vi] ||
        assumed[vi] || s_.value(v) != LBool::kUndef) {
      continue;
    }
    const auto p = static_cast<std::size_t>(pos(v).index());
    const auto n = static_cast<std::size_t>(neg(v).index());
    cands.emplace_back(static_cast<std::uint32_t>(
                           occ[p].size() + occ[n].size() + bin_occ[p].size() +
                           bin_occ[n].size()),
                       v);
  }
  std::sort(cands.begin(), cands.end());

  std::uint64_t budget = cfg.elim_budget;

  // Materialize the live irredundant clauses containing `l` as sorted
  // literal vectors (root-satisfied ones are skipped: deleting them later
  // loses nothing). Returns false when the side exceeds elim_occ_limit.
  std::vector<std::vector<Lit>> side_pos;
  std::vector<std::vector<Lit>> side_neg;
  const auto gather = [&](Lit l, std::vector<std::vector<Lit>>& out) {
    out.clear();
    for (CRef c : occ[static_cast<std::size_t>(l.index())]) {
      if (s_.arena_.deleted(c) || s_.arena_.learnt(c)) continue;
      const std::uint32_t size = s_.arena_.size(c);
      budget -= std::min<std::uint64_t>(budget, size);
      std::vector<Lit> lits;
      lits.reserve(size);
      bool satisfied = false;
      for (std::uint32_t i = 0; i < size && !satisfied; ++i) {
        const Lit li = s_.arena_.lit(c, i);
        if (s_.value(li) == LBool::kTrue) satisfied = true;
        else if (s_.value(li) != LBool::kFalse) lits.push_back(li);
      }
      if (satisfied) continue;
      std::sort(lits.begin(), lits.end());
      out.push_back(std::move(lits));
      if (out.size() > cfg.elim_occ_limit) return false;
    }
    for (std::uint32_t rec : bin_occ[static_cast<std::size_t>(l.index())]) {
      const BinRec& b = bins[rec];
      if (b.deleted || b.learnt) continue;
      const Lit other = (b.a == l) ? b.b : b.a;
      if (s_.value(other) == LBool::kTrue) continue;
      out.push_back({std::min(l, other), std::max(l, other)});
      if (out.size() > cfg.elim_occ_limit) return false;
    }
    return true;
  };

  const auto detach_bin = [&](BinRec& b) {
    for (auto [x, y] : {std::pair{b.a, b.b}, std::pair{b.b, b.a}}) {
      auto& list = s_.bin_watches_[static_cast<std::size_t>((~x).index())];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].implied == y &&
            (list[i].learnt != 0) == b.learnt) {
          list[i] = list.back();
          list.pop_back();
          break;
        }
      }
    }
    if (b.learnt) --s_.num_bin_learnts_; else --s_.num_bin_clauses_;
    b.deleted = true;
  };

  std::vector<std::vector<Lit>> resolvents;
  std::vector<Lit> res;
  for (const auto& [cost, v] : cands) {
    (void)cost;
    if (!s_.ok_ || budget == 0) break;
    const auto vi = static_cast<std::size_t>(v);
    if (s_.eliminated_[vi] || s_.value(v) != LBool::kUndef) continue;
    const Lit pv = pos(v);
    if (!gather(pv, side_pos) || !gather(~pv, side_neg)) continue;

    // Count and collect the non-tautological resolvents; bail out when the
    // formula would grow or a resolvent would be too long.
    resolvents.clear();
    const std::size_t limit = side_pos.size() + side_neg.size() + cfg.elim_grow;
    bool accept = true;
    for (const auto& p : side_pos) {
      for (const auto& n : side_neg) {
        budget -= std::min<std::uint64_t>(budget, p.size() + n.size());
        if (!resolve(p, n, v, res)) continue;
        if (res.size() > cfg.elim_resolvent_limit ||
            resolvents.size() >= limit) {
          accept = false;
          break;
        }
        resolvents.push_back(res);
      }
      if (!accept || budget == 0) break;
    }
    if (!accept || budget == 0) continue;

    // Model reconstruction: save the smaller-polarity side (every clause
    // with v's literal distinguished), closed by a unit of the opposite
    // polarity. See extend.hpp for the replay semantics.
    const bool save_pos = side_pos.size() <= side_neg.size();
    const Lit saved_lit = save_pos ? pv : ~pv;
    std::vector<Lit> others;
    for (const auto& cl : (save_pos ? side_pos : side_neg)) {
      others.clear();
      for (Lit l : cl) {
        if (l != saved_lit) others.push_back(l);
      }
      s_.extend_.push_clause(saved_lit, others);
    }
    s_.extend_.push_unit(~saved_lit);

    // Remove every clause mentioning v (learnts are implied by the
    // irredundant set, so they go unsaved).
    for (Lit l : {pv, ~pv}) {
      for (CRef c : occ[static_cast<std::size_t>(l.index())]) {
        if (!s_.arena_.deleted(c)) s_.remove_clause(c);
      }
      for (std::uint32_t rec : bin_occ[static_cast<std::size_t>(l.index())]) {
        if (!bins[rec].deleted) detach_bin(bins[rec]);
      }
    }

    // Add the resolvents as irredundant root clauses.
    for (const auto& r : resolvents) {
      if (r.empty()) {
        s_.ok_ = false;
        break;
      }
      if (r.size() == 1) {
        if (!s_.enqueue_root(r[0])) break;
      } else if (r.size() == 2) {
        s_.attach_binary(r[0], r[1], /*learnt=*/false);
        ++s_.num_bin_clauses_;
        const auto rec = static_cast<std::uint32_t>(bins.size());
        bins.push_back({r[0], r[1], false, false});
        bin_occ[static_cast<std::size_t>(r[0].index())].push_back(rec);
        bin_occ[static_cast<std::size_t>(r[1].index())].push_back(rec);
      } else {
        const CRef nc = s_.arena_.alloc(r, /*learnt=*/false);
        s_.clauses_.push_back(nc);
        s_.attach_clause(nc);
        for (Lit l : r) {
          occ[static_cast<std::size_t>(l.index())].push_back(nc);
        }
      }
    }
    s_.eliminated_[vi] = true;
    ++s_.stats_.vars_eliminated;
  }
  return s_.ok_;
}

}  // namespace satdiag::sat
