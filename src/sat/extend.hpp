// Model-reconstruction stack for bounded variable elimination.
//
// Variable elimination removes every clause containing the eliminated
// variable, so a model of the simplified formula says nothing about it. The
// MiniSat elimclauses scheme keeps just enough to reconstruct an exact value:
// when v is eliminated, the clauses of its smaller-occurrence polarity are
// pushed (with v's literal distinguished), closed by a unit of the opposite
// polarity. extend() replays the stack backwards — the unit provides the
// default value, and any saved clause left unsatisfied by the rest of the
// model flips it — so Solver::model_value stays exact for eliminated
// variables (the repair layer reads arbitrary gate variables out of models).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace satdiag::sat {

class ExtendStack {
 public:
  /// Record a clause containing `elim` (the eliminated variable's literal as
  /// it appears in the clause); `others` are the remaining literals.
  void push_clause(Lit elim, std::span<const Lit> others);
  /// Record the closing unit: the eliminated variable's default polarity
  /// when every saved clause is already satisfied.
  void push_unit(Lit elim) { push_clause(elim, {}); }

  /// Walk the stack backwards over `model` (indexed by Var): any entry whose
  /// clause is unsatisfied sets its distinguished literal true. kUndef never
  /// satisfies a literal, so every eliminated variable ends up assigned.
  /// Non-eliminated variables must already carry their model values.
  void extend(std::vector<LBool>& model) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() {
    entries_.clear();
    others_.clear();
  }

 private:
  struct Entry {
    Lit lit;  // the eliminated variable's literal in this clause
    std::uint32_t begin;
    std::uint32_t end;  // [begin, end) into others_
  };
  std::vector<Entry> entries_;
  std::vector<Lit> others_;
};

}  // namespace satdiag::sat
