// DIMACS CNF import/export — interoperability with external SAT tooling and
// a convenient fixture format for solver tests.
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "sat/solver.hpp"

namespace satdiag::sat {

class DimacsError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed CNF in clause-list form.
struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parse DIMACS text ("p cnf V C" header optional but checked when present).
CnfFormula parse_dimacs(std::istream& in);
CnfFormula parse_dimacs_string(const std::string& text);

/// Load a formula into a solver (creating variables 0..num_vars-1).
/// Returns false when the formula is trivially UNSAT during loading.
bool load_into_solver(const CnfFormula& cnf, Solver& solver);

void write_dimacs(std::ostream& out, const CnfFormula& cnf);

}  // namespace satdiag::sat
