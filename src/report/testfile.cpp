#include "report/testfile.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace satdiag {

void write_test_set(std::ostream& out, const TestSet& tests) {
  out << "# <input-vector> <output-index> <correct-value>\n";
  for (const Test& test : tests) {
    for (bool b : test.input_values) out << (b ? '1' : '0');
    out << ' ' << test.output_index << ' ' << (test.correct_value ? 1 : 0)
        << '\n';
  }
}

std::string write_test_set_string(const TestSet& tests) {
  std::ostringstream out;
  write_test_set(out, tests);
  return out.str();
}

TestSet read_test_set(std::istream& in, const Netlist& nl) {
  TestSet tests;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    std::istringstream fields{std::string(line)};
    std::string vector_text;
    std::uint64_t output_index = 0;
    int correct = 0;
    if (!(fields >> vector_text >> output_index >> correct)) {
      throw TestFileError(strprintf("line %d: malformed test line", line_no));
    }
    if (vector_text.size() != nl.inputs().size()) {
      throw TestFileError(
          strprintf("line %d: vector has %zu bits, circuit has %zu inputs",
                    line_no, vector_text.size(), nl.inputs().size()));
    }
    if (output_index >= nl.outputs().size()) {
      throw TestFileError(strprintf("line %d: output index %llu out of range",
                                    line_no,
                                    static_cast<unsigned long long>(output_index)));
    }
    if (correct != 0 && correct != 1) {
      throw TestFileError(
          strprintf("line %d: correct value must be 0 or 1", line_no));
    }
    Test test;
    test.input_values.reserve(vector_text.size());
    for (char c : vector_text) {
      if (c != '0' && c != '1') {
        throw TestFileError(
            strprintf("line %d: vector must be over {0,1}", line_no));
      }
      test.input_values.push_back(c == '1');
    }
    test.output_index = static_cast<std::size_t>(output_index);
    test.correct_value = correct == 1;
    tests.push_back(std::move(test));
  }
  return tests;
}

TestSet read_test_set_string(const std::string& text, const Netlist& nl) {
  std::istringstream in(text);
  return read_test_set(in, nl);
}

}  // namespace satdiag
