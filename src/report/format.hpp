// Row formatting for the reproduction tables.
#pragma once

#include <string>
#include <vector>

#include "report/experiment.hpp"

namespace satdiag {

/// Header of the Table 2 reproduction (runtime comparison).
std::vector<std::string> table2_header();
/// One Table 2 row: I, p, m, BSIM, COV CNF/One/All, BSAT CNF/One/All.
std::vector<std::string> table2_row(const ExperimentRow& row);

/// Header of the Table 3 reproduction (quality comparison).
std::vector<std::string> table3_header();
std::vector<std::string> table3_row(const ExperimentRow& row);

/// Figure 6 scatter points: "circuit,p,m,cov_value,bsat_value".
std::string fig6_avg_csv_row(const ExperimentRow& row);
std::string fig6_nsol_csv_row(const ExperimentRow& row);

/// Format a timing cell, marking incomplete runs ("DNF" policy).
std::string timing_cell(double seconds, bool complete);

}  // namespace satdiag
