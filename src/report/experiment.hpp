// Shared experiment pipeline for the paper's evaluation (Section 5).
//
// One experiment cell = (circuit, p errors, m tests): generate the circuit,
// take the full-scan view, inject p random gate-change errors, harvest m
// failing tests, then run BSIM / COV / BSAT with the paper's resource
// discipline (per-approach wall-clock limit; "DNF" cells instead of hangs).
#pragma once

#include <optional>
#include <span>
#include <string>

#include "diag/bsat.hpp"
#include "diag/cover.hpp"
#include "diag/metrics.hpp"
#include "fault/injector.hpp"
#include "fault/testgen.hpp"

namespace satdiag {

struct ExperimentConfig {
  std::string circuit = "s1423_like";  // profile name or builtin name
  double scale = 1.0;                  // generator scale for quick runs
  std::size_t num_errors = 1;          // p
  std::size_t num_tests = 4;           // m
  unsigned k = 0;                      // 0 = "set to the number of errors"
  std::uint64_t seed = 1;
  double time_limit_seconds = 1800.0;  // paper: 30 CPU-minutes
  std::int64_t max_solutions = -1;
  /// Extra deterministic injection/testgen seed attempts when the first one
  /// yields no detectable error or no failing tests. Attempt 0 reproduces
  /// the historical single-try behaviour bit for bit; the circuit itself is
  /// derived from `seed` alone and never changes across attempts.
  std::size_t seed_retries = 4;
};

struct PreparedExperiment {
  Netlist golden;  // full-scan combinational view, error-free
  Netlist faulty;  // the implementation I (errors applied)
  ErrorList errors;
  std::vector<GateId> error_sites;
  TestSet tests;
};

/// Builds the circuit (profile or builtin), injects errors, generates tests.
/// nullopt when no detectable error set / not enough failing tests exist.
std::optional<PreparedExperiment> prepare_experiment(
    const ExperimentConfig& config);

struct ApproachOutcome {
  double cnf_seconds = 0.0;
  double one_seconds = 0.0;
  double all_seconds = 0.0;
  bool complete = true;
  std::vector<std::vector<GateId>> solutions;
  SolutionSetQuality quality;
  /// Per-cell solver counters, merged over the approach's workers (BSAT
  /// fills it; COV has no SAT solver behind it and leaves it zeroed).
  sat::Solver::Stats solver_stats;
};

struct ExperimentRow {
  ExperimentConfig config;
  std::size_t circuit_size = 0;

  double bsim_seconds = 0.0;
  BsimQuality bsim_quality;

  ApproachOutcome cov;
  ApproachOutcome bsat;
};

struct RunSelection {
  bool run_cov = true;
  bool run_bsat = true;
};

/// Run the three basic approaches on a prepared experiment.
ExperimentRow run_experiment(const PreparedExperiment& prepared,
                             const ExperimentConfig& config,
                             const RunSelection& selection = {});

struct ExperimentGridOptions {
  /// Instance-parallel lanes (exec/ runtime): whole (circuit, p, m) cells
  /// are sharded across the pool; every cell derives its randomness from
  /// its own config seed, so the grid is bit-identical for every thread
  /// count (timing columns excepted — they measure wall clock).
  std::size_t num_threads = 1;
  RunSelection selection;
};

struct ExperimentCell {
  ExperimentConfig config;
  /// False when prepare_experiment found no detectable error / no failing
  /// tests for this cell; `row` is then default-constructed.
  bool prepared = false;
  ExperimentRow row;
};

/// Prepare + run every config, one cell per grid entry, in input order.
std::vector<ExperimentCell> run_experiment_grid(
    std::span<const ExperimentConfig> configs,
    const ExperimentGridOptions& options = {});

/// The pinned Table-2 reproduction grid: {s1423_like p=4, s6669_like p=3,
/// s38417_like p=2} x m in {4, 8, 16, 32}. One definition shared by
/// bench_table2_runtime and bench_parallel's "table2_mt" workload so the
/// serial and multi-threaded BENCH rows always measure identical work.
std::vector<ExperimentConfig> table2_grid_configs(double scale, double limit,
                                                  std::int64_t max_solutions,
                                                  std::uint64_t seed);

}  // namespace satdiag
