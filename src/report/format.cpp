#include "report/format.hpp"

#include "util/strings.hpp"
#include "util/table.hpp"

namespace satdiag {

std::string timing_cell(double seconds, bool complete) {
  std::string cell = format_seconds(seconds);
  if (!complete) cell += "*";  // truncated by the resource limit
  return cell;
}

std::vector<std::string> table2_header() {
  return {"I",        "p",       "m",        "BSIM",     "COV.CNF",
          "COV.One",  "COV.All", "BSAT.CNF", "BSAT.One", "BSAT.All"};
}

std::vector<std::string> table2_row(const ExperimentRow& row) {
  return {
      row.config.circuit,
      strprintf("%zu", row.config.num_errors),
      strprintf("%zu", row.config.num_tests),
      format_seconds(row.bsim_seconds),
      format_seconds(row.cov.cnf_seconds),
      timing_cell(row.cov.one_seconds, true),
      timing_cell(row.cov.all_seconds, row.cov.complete),
      format_seconds(row.bsat.cnf_seconds),
      timing_cell(row.bsat.one_seconds, true),
      timing_cell(row.bsat.all_seconds, row.bsat.complete),
  };
}

std::vector<std::string> table3_header() {
  return {"I",        "p",        "m",        "|UCi|",    "avgA",
          "Gmax",     "minG",     "maxG",     "avgG",     "COV.#sol",
          "COV.min",  "COV.max",  "COV.avg",  "SAT.#sol", "SAT.min",
          "SAT.max",  "SAT.avg"};
}

std::vector<std::string> table3_row(const ExperimentRow& row) {
  const auto& b = row.bsim_quality;
  const auto& c = row.cov.quality;
  const auto& s = row.bsat.quality;
  return {
      row.config.circuit,
      strprintf("%zu", row.config.num_errors),
      strprintf("%zu", row.config.num_tests),
      strprintf("%zu", b.union_size),
      format_stat(b.avg_all),
      strprintf("%zu", b.gmax_size),
      format_stat(b.min_g),
      format_stat(b.max_g),
      format_stat(b.avg_g),
      strprintf("%zu", c.num_solutions),
      format_stat(c.min_avg),
      format_stat(c.max_avg),
      format_stat(c.mean_avg),
      strprintf("%zu", s.num_solutions),
      format_stat(s.min_avg),
      format_stat(s.max_avg),
      format_stat(s.mean_avg),
  };
}

std::string fig6_avg_csv_row(const ExperimentRow& row) {
  return strprintf("%s,%zu,%zu,%.4f,%.4f", row.config.circuit.c_str(),
                   row.config.num_errors, row.config.num_tests,
                   row.cov.quality.mean_avg, row.bsat.quality.mean_avg);
}

std::string fig6_nsol_csv_row(const ExperimentRow& row) {
  return strprintf("%s,%zu,%zu,%zu,%zu", row.config.circuit.c_str(),
                   row.config.num_errors, row.config.num_tests,
                   row.cov.quality.num_solutions,
                   row.bsat.quality.num_solutions);
}

}  // namespace satdiag
