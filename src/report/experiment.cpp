#include "report/experiment.hpp"

#include <algorithm>
#include <memory>
#include <string_view>
#include <utility>

#include "bench/builtin_circuits.hpp"
#include "cache/artifact_cache.hpp"
#include "exec/parallel.hpp"
#include "gen/profiles.hpp"
#include "netlist/scan.hpp"
#include "sim/compiled.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace satdiag {
namespace {
Netlist build_circuit(const ExperimentConfig& config) {
  if (const auto profile = find_profile(config.circuit)) {
    return make_profile_circuit(*profile, config.scale, config.seed);
  }
  return make_builtin(config.circuit);
}

/// Cached compile products of one experiment circuit: the full-scan golden
/// view plus its simulator compilation (bound to this bundle's own netlist;
/// consumers rebind it onto their copies). Immutable once built.
struct CircuitArtifacts {
  explicit CircuitArtifacts(Netlist g) : golden(std::move(g)), compiled(golden) {}
  Netlist golden;
  CompiledNetlist compiled;

  std::size_t bytes() const {
    // Rough: gates dominate both the netlist (fanin/fanout CSR-ish vectors)
    // and the opcode stream; good enough for the cache's LRU budget.
    return golden.size() * 64;
  }
};

std::shared_ptr<const CircuitArtifacts> cached_circuit(
    const ExperimentConfig& config) {
  // The circuit is a pure function of (name, scale, seed) — retries and all
  // downstream randomness never change it, so the grid's 12 cells over 3
  // profiles build each circuit once and the bench harness's repeat runs
  // skip generation + scan insertion + compilation entirely.
  cache::KeyBuilder kb(cache::ArtifactKind::kCompiled);
  kb.mix(std::string_view(config.circuit));
  kb.mix_double(config.scale);
  kb.mix(config.seed);
  return cache::ArtifactCache::global().get_or_build<CircuitArtifacts>(
      kb.key(),
      [&]() -> std::pair<std::shared_ptr<const CircuitArtifacts>,
                         std::size_t> {
        auto artifacts = std::make_shared<CircuitArtifacts>(
            make_full_scan(build_circuit(config)).comb);
        const std::size_t bytes = artifacts->bytes();
        return {std::move(artifacts), bytes};
      });
}
}  // namespace

std::optional<PreparedExperiment> prepare_experiment(
    const ExperimentConfig& config) {
  const std::shared_ptr<const CircuitArtifacts> artifacts =
      cached_circuit(config);
  const Netlist& golden = artifacts->golden;

  for (std::size_t attempt = 0; attempt <= config.seed_retries; ++attempt) {
    PreparedExperiment prepared;
    prepared.golden = golden;
    // Attempt 0 matches the historical single-seed stream exactly; each
    // retry perturbs the stream deterministically.
    Rng rng((config.seed + attempt * 0x517cc1b727220a95ULL) *
                0x9e3779b97f4a7c15ULL +
            0x7f4a7c15ULL);
    InjectorOptions inject;
    inject.num_errors = config.num_errors;
    auto errors = inject_errors(prepared.golden, rng, inject);
    if (!errors) {
      SATDIAG_WARN() << "experiment " << config.circuit
                     << ": no detectable error set found (attempt " << attempt
                     << ")";
      continue;
    }
    prepared.errors = *errors;
    prepared.error_sites = error_sites(prepared.errors);
    prepared.faulty = apply_errors(prepared.golden, prepared.errors);

    TestGenOptions testgen;
    testgen.deadline = Deadline::after_seconds(config.time_limit_seconds);
    // prepared.golden is a copy of the cached netlist, so the cached
    // compilation rebinds onto it directly.
    testgen.compiled_prototype = &artifacts->compiled;
    prepared.tests = generate_failing_tests(prepared.golden, prepared.errors,
                                            config.num_tests, rng, testgen);
    if (prepared.tests.size() < config.num_tests) {
      SATDIAG_WARN() << "experiment " << config.circuit << ": only "
                     << prepared.tests.size() << "/" << config.num_tests
                     << " failing tests (attempt " << attempt << ")";
      if (prepared.tests.empty()) continue;
    }
    return prepared;
  }
  return std::nullopt;
}

ExperimentRow run_experiment(const PreparedExperiment& prepared,
                             const ExperimentConfig& config,
                             const RunSelection& selection) {
  ExperimentRow row;
  row.config = config;
  row.circuit_size = prepared.faulty.size();
  const unsigned k =
      config.k != 0 ? config.k : static_cast<unsigned>(config.num_errors);

  // ---- BSIM ---------------------------------------------------------------
  Timer bsim_timer;
  const BsimResult bsim = basic_sim_diagnose(prepared.faulty, prepared.tests);
  row.bsim_seconds = bsim_timer.seconds();
  row.bsim_quality =
      evaluate_bsim_quality(prepared.faulty, bsim, prepared.error_sites);

  // ---- COV ----------------------------------------------------------------
  if (selection.run_cov) {
    CovOptions cov;
    cov.k = k;
    cov.deadline = Deadline::after_seconds(config.time_limit_seconds);
    cov.max_solutions = config.max_solutions;
    bool coverable = true;
    for (const auto& set : bsim.candidate_sets) coverable &= !set.empty();
    if (coverable) {
      const CovResult result = solve_covering_sat(bsim.candidate_sets, cov);
      // The paper's COV "CNF" time includes running BSIM first.
      row.cov.cnf_seconds = row.bsim_seconds + result.build_seconds;
      row.cov.one_seconds = result.first_seconds;
      row.cov.all_seconds = result.all_seconds;
      row.cov.complete = result.complete;
      row.cov.solutions = result.solutions;
      row.cov.quality = evaluate_solution_quality(
          prepared.faulty, result.solutions, prepared.error_sites);
    } else {
      row.cov.complete = false;
    }
  }

  // ---- BSAT ---------------------------------------------------------------
  if (selection.run_bsat) {
    BsatOptions bsat;
    bsat.k = k;
    bsat.deadline = Deadline::after_seconds(config.time_limit_seconds);
    bsat.max_solutions = config.max_solutions;
    bsat.instance.gating_clauses = true;
    bsat.instance.internal_decisions = false;
    const BsatResult result =
        basic_sat_diagnose(prepared.faulty, prepared.tests, bsat);
    row.bsat.cnf_seconds = result.build_seconds;
    row.bsat.one_seconds = result.first_seconds;
    row.bsat.all_seconds = result.all_seconds;
    row.bsat.complete = result.complete;
    row.bsat.solutions = result.solutions;
    row.bsat.quality = evaluate_solution_quality(
        prepared.faulty, result.solutions, prepared.error_sites);
    row.bsat.solver_stats = result.solver_stats;
  }
  return row;
}

std::vector<ExperimentConfig> table2_grid_configs(double scale, double limit,
                                                  std::int64_t max_solutions,
                                                  std::uint64_t seed) {
  struct Cell {
    const char* circuit;
    std::size_t p;
  };
  static constexpr Cell kCells[] = {
      {"s1423_like", 4}, {"s6669_like", 3}, {"s38417_like", 2}};
  std::vector<ExperimentConfig> configs;
  for (const Cell& cell : kCells) {
    for (std::size_t m : {4, 8, 16, 32}) {
      ExperimentConfig config;
      config.circuit = cell.circuit;
      config.scale = scale;
      config.num_errors = cell.p;
      config.num_tests = m;
      config.seed = seed;
      config.time_limit_seconds = limit;
      config.max_solutions = max_solutions;
      configs.push_back(std::move(config));
    }
  }
  return configs;
}

std::vector<ExperimentCell> run_experiment_grid(
    std::span<const ExperimentConfig> configs,
    const ExperimentGridOptions& options) {
  exec::ThreadPool pool(options.num_threads);
  std::vector<ExperimentCell> cells(configs.size());
  // Grain 1: a cell is minutes of work, so every cell is its own shard and
  // idle lanes steal the next one. Each cell's randomness comes from its
  // config seed alone — no cross-cell state, results land by index.
  exec::parallel_for(
      pool, configs.size(),
      [&](std::size_t i, std::size_t) {
        ExperimentCell& cell = cells[i];
        cell.config = configs[i];
        const auto prepared = prepare_experiment(cell.config);
        if (!prepared) return;
        cell.prepared = true;
        cell.row = run_experiment(*prepared, cell.config, options.selection);
      },
      /*grain=*/1);
  return cells;
}

}  // namespace satdiag
