// Plain-text interchange format for test-sets (Definition 1 triples).
//
// One test per line:  <01-input-vector> <output_index> <correct_value>
// '#' starts a comment. The vector is ordered like netlist.inputs().
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>

#include "netlist/testset.hpp"

namespace satdiag {

class TestFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void write_test_set(std::ostream& out, const TestSet& tests);
std::string write_test_set_string(const TestSet& tests);

/// Parse and validate against `nl` (vector width, output index range).
TestSet read_test_set(std::istream& in, const Netlist& nl);
TestSet read_test_set_string(const std::string& text, const Netlist& nl);

}  // namespace satdiag
