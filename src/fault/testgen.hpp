// Failing-test generation (the test-sets T of Definition 1/2).
//
// Random parallel simulation of golden vs faulty behaviour harvests input
// vectors with erroneous outputs; a SAT-based ATPG fallback (miter between
// the golden circuit and the faulty behaviour, enumerated with input-cube
// blocking) guarantees enough distinct failing tests even for
// hard-to-sensitize errors. Operates on combinational (full-scan) views.
#pragma once

#include "fault/error_model.hpp"
#include "netlist/testset.hpp"
#include "sim/compiled.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct TestGenOptions {
  /// Random-simulation budget: words of 64 patterns each.
  std::size_t max_random_words = 256;
  /// How many triples one input vector may contribute (distinct vectors give
  /// better diagnosis resolution, so the default keeps one per vector until
  /// the vector pool runs dry).
  std::size_t max_triples_per_vector = 1;
  /// Use the SAT miter when random simulation cannot fill the request.
  bool use_atpg_fallback = true;
  Deadline deadline;
  /// Optional cached compilation of a netlist structurally identical to the
  /// one being tested (the artifact cache's CompiledNetlist for the golden
  /// circuit): the simulator rebinds it instead of re-flattening.
  const CompiledNetlist* compiled_prototype = nullptr;
};

/// Generate up to `count` failing tests for `errors` on `nl` (combinational
/// view; nl.dffs() must be empty). May return fewer when the fault is
/// untestable or budgets expire.
TestSet generate_failing_tests(const Netlist& nl, const ErrorList& errors,
                               std::size_t count, Rng& rng,
                               const TestGenOptions& options = {});

/// Golden (error-free) output values of `nl` under `input_values`.
std::vector<bool> golden_output_values(const Netlist& nl,
                                       const std::vector<bool>& input_values);

/// Golden outputs for every test in a test-set (rows align with `tests`).
std::vector<std::vector<bool>> golden_outputs_for_tests(const Netlist& nl,
                                                        const TestSet& tests);

}  // namespace satdiag
