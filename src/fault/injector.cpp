#include "fault/injector.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace satdiag {

void configure_faulty_simulator(ParallelSimulator& sim,
                                const ErrorList& errors) {
  for (const DesignError& error : errors) {
    if (const auto* gc = std::get_if<GateChangeError>(&error)) {
      sim.set_type_override(gc->gate, gc->replacement);
    } else {
      const auto& sa = std::get<StuckAtError>(error);
      sim.set_value_override(sa.gate, sa.value ? ~0ULL : 0ULL);
    }
  }
}

namespace {

/// True when golden and faulty behaviour differ on at least one of
/// `patterns` random input vectors at an observed point.
///
/// One simulator runs both personalities per word: the golden sweep is a
/// full evaluation (every input changed), while the faulty sweep after
/// applying the overrides re-evaluates only the error cones.
bool detectable_by_random_sim(const Netlist& nl, const ErrorList& errors,
                              Rng& rng, std::size_t patterns) {
  ParallelSimulator sim(nl);
  const std::size_t words = (patterns + 63) / 64;
  std::vector<std::uint64_t> golden_obs;
  for (std::size_t w = 0; w < words; ++w) {
    for (GateId in : nl.inputs()) sim.set_source(in, rng.next_u64());
    // DFF outputs are free state in the sequential view; randomize them the
    // same way (full-scan assumption).
    for (GateId ff : nl.dffs()) sim.set_source(ff, rng.next_u64());
    sim.run();
    golden_obs.clear();
    for (GateId out : nl.outputs()) golden_obs.push_back(sim.value(out));
    for (GateId ff : nl.dffs()) {
      golden_obs.push_back(sim.value(nl.fanins(ff)[0]));
    }
    configure_faulty_simulator(sim, errors);
    sim.run();
    std::size_t i = 0;
    bool differ = false;
    for (GateId out : nl.outputs()) {
      differ |= sim.value(out) != golden_obs[i++];
    }
    for (GateId ff : nl.dffs()) {
      differ |= sim.value(nl.fanins(ff)[0]) != golden_obs[i++];
    }
    if (differ) return true;
    sim.clear_overrides();
  }
  return false;
}

DesignError random_error_at(const Netlist& nl, GateId gate, Rng& rng,
                            bool stuck_at) {
  if (stuck_at) {
    return StuckAtError{gate, rng.next_bool()};
  }
  const GateType original = nl.type(gate);
  std::vector<GateType> pool = substitutable_types(nl.fanins(gate).size());
  pool.erase(std::remove(pool.begin(), pool.end(), original), pool.end());
  // XOR->XNOR style swaps are always functionally different; at arity 1 the
  // pool is just {BUF, NOT} minus the original, which is fine too.
  return GateChangeError{gate, original, rng.pick(pool)};
}

}  // namespace

std::optional<ErrorList> inject_errors(const Netlist& golden, Rng& rng,
                                       const InjectorOptions& options) {
  std::vector<GateId> candidates;
  for (GateId g = 0; g < golden.size(); ++g) {
    if (golden.is_combinational(g) &&
        substitutable_types(golden.fanins(g).size()).size() > 1) {
      candidates.push_back(g);
    }
  }
  if (candidates.size() < options.num_errors) return std::nullopt;

  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    // Distinct random sites.
    std::vector<GateId> sites;
    while (sites.size() < options.num_errors) {
      const GateId g = rng.pick(candidates);
      if (std::find(sites.begin(), sites.end(), g) == sites.end()) {
        sites.push_back(g);
      }
    }
    ErrorList errors;
    for (GateId g : sites) {
      errors.push_back(random_error_at(golden, g, rng,
                                       rng.next_bool(options.stuck_at_fraction)));
    }
    if (options.detectability_patterns == 0 ||
        detectable_by_random_sim(golden, errors, rng,
                                 options.detectability_patterns)) {
      return errors;
    }
    SATDIAG_DEBUG() << "injection attempt " << attempt
                    << " undetectable; retrying";
  }
  return std::nullopt;
}

}  // namespace satdiag
