#include "fault/injector.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace satdiag {

void configure_faulty_simulator(ParallelSimulator& sim,
                                const ErrorList& errors) {
  for (const DesignError& error : errors) {
    if (const auto* gc = std::get_if<GateChangeError>(&error)) {
      sim.set_type_override(gc->gate, gc->replacement);
    } else {
      const auto& sa = std::get<StuckAtError>(error);
      sim.set_value_override(sa.gate, sa.value ? ~0ULL : 0ULL);
    }
  }
}

namespace {

/// True when golden and faulty behaviour differ on at least one of
/// `patterns` random input vectors at an observed point.
bool detectable_by_random_sim(const Netlist& nl, const ErrorList& errors,
                              Rng& rng, std::size_t patterns) {
  ParallelSimulator golden(nl);
  ParallelSimulator faulty(nl);
  configure_faulty_simulator(faulty, errors);
  const std::size_t words = (patterns + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    for (GateId in : nl.inputs()) {
      const std::uint64_t word = rng.next_u64();
      golden.set_source(in, word);
      faulty.set_source(in, word);
    }
    // DFF outputs are free state in the sequential view; randomize them the
    // same way (full-scan assumption).
    for (GateId ff : nl.dffs()) {
      const std::uint64_t word = rng.next_u64();
      golden.set_source(ff, word);
      faulty.set_source(ff, word);
    }
    golden.run();
    faulty.run();
    for (GateId out : nl.outputs()) {
      if (golden.value(out) != faulty.value(out)) return true;
    }
    for (GateId ff : nl.dffs()) {
      const GateId data = nl.fanins(ff)[0];
      if (golden.value(data) != faulty.value(data)) return true;
    }
  }
  return false;
}

DesignError random_error_at(const Netlist& nl, GateId gate, Rng& rng,
                            bool stuck_at) {
  if (stuck_at) {
    return StuckAtError{gate, rng.next_bool()};
  }
  const GateType original = nl.type(gate);
  std::vector<GateType> pool = substitutable_types(nl.fanins(gate).size());
  pool.erase(std::remove(pool.begin(), pool.end(), original), pool.end());
  // XOR->XNOR style swaps are always functionally different; at arity 1 the
  // pool is just {BUF, NOT} minus the original, which is fine too.
  return GateChangeError{gate, original, rng.pick(pool)};
}

}  // namespace

std::optional<ErrorList> inject_errors(const Netlist& golden, Rng& rng,
                                       const InjectorOptions& options) {
  std::vector<GateId> candidates;
  for (GateId g = 0; g < golden.size(); ++g) {
    if (golden.is_combinational(g) &&
        substitutable_types(golden.fanins(g).size()).size() > 1) {
      candidates.push_back(g);
    }
  }
  if (candidates.size() < options.num_errors) return std::nullopt;

  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    // Distinct random sites.
    std::vector<GateId> sites;
    while (sites.size() < options.num_errors) {
      const GateId g = rng.pick(candidates);
      if (std::find(sites.begin(), sites.end(), g) == sites.end()) {
        sites.push_back(g);
      }
    }
    ErrorList errors;
    for (GateId g : sites) {
      errors.push_back(random_error_at(golden, g, rng,
                                       rng.next_bool(options.stuck_at_fraction)));
    }
    if (options.detectability_patterns == 0 ||
        detectable_by_random_sim(golden, errors, rng,
                                 options.detectability_patterns)) {
      return errors;
    }
    SATDIAG_DEBUG() << "injection attempt " << attempt
                    << " undetectable; retrying";
  }
  return std::nullopt;
}

}  // namespace satdiag
