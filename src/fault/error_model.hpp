// Design-error models.
//
// The paper injects "gate change errors": "An error is considered to be the
// replacement of the function of a gate by another arbitrary Boolean
// function." GateChangeError substitutes a different gate type at unchanged
// fan-in; StuckAtError (the production-test flavour of the same diagnosis
// problem) pins a gate's output to a constant.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

struct GateChangeError {
  GateId gate = kNoGate;
  GateType original = GateType::kBuf;
  GateType replacement = GateType::kBuf;
};

struct StuckAtError {
  GateId gate = kNoGate;
  bool value = false;
};

using DesignError = std::variant<GateChangeError, StuckAtError>;

/// The gate an error is located at.
GateId error_site(const DesignError& error);

/// Human-readable description ("g42: AND -> NOR", "g7: stuck-at-1").
std::string describe_error(const DesignError& error);

/// A set of simultaneous errors ("p actual error sites e1..ep").
using ErrorList = std::vector<DesignError>;

std::vector<GateId> error_sites(const ErrorList& errors);

/// Apply errors to a copy of `golden` (which stays untouched). The faulty
/// netlist has identical structure and gate ids.
Netlist apply_errors(const Netlist& golden, const ErrorList& errors);

}  // namespace satdiag
