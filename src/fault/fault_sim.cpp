#include "fault/fault_sim.hpp"

#include <cassert>

#include "exec/parallel.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace satdiag {

std::vector<GateId> stuck_at_sites(const Netlist& nl) {
  std::vector<GateId> sites;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g)) sites.push_back(g);
  }
  return sites;
}

StuckAtFaultSimResult simulate_stuck_at_faults(
    const Netlist& nl, std::span<const GateId> sites, Rng& rng,
    const StuckAtFaultSimOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for fault simulation");
  StuckAtFaultSimResult result;
  result.site_detected.assign(sites.size(), 0);

  exec::ThreadPool pool(options.num_threads);
  ParallelSimulator prototype(nl);
  std::vector<std::uint64_t> golden(nl.outputs().size());
  // Per-round per-site detection counts (0..2, one per polarity); summed
  // serially after the join so `detected` is thread-count invariant.
  std::vector<std::uint8_t> round_detections(sites.size(), 0);
  exec::LaneLocal<ParallelSimulator> lane_sim(pool.num_threads());

  for (std::size_t round = 0; round < options.rounds; ++round) {
    obs::Span round_span("fault_sim.round", "round",
                         static_cast<std::int64_t>(round));
    // Input words come from the caller's Rng serially, outside the parallel
    // region: the pattern stream is identical to the serial driver's.
    for (GateId in : nl.inputs()) prototype.set_source(in, rng.next_u64());
    prototype.run();
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      golden[i] = prototype.value(nl.outputs()[i]);
    }
    // The golden plane changed: workers re-clone the prototype lazily.
    lane_sim.reset();

    exec::parallel_for(pool, sites.size(), [&](std::size_t i,
                                               std::size_t lane) {
      ParallelSimulator& sim =
          lane_sim.get(lane, [&] { return prototype; });
      std::uint8_t detections = 0;
      for (int polarity = 0; polarity < 2; ++polarity) {
        sim.set_value_override(sites[i], polarity ? ~0ULL : 0ULL);
        sim.run();
        std::uint64_t diff = 0;
        for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
          diff |= golden[o] ^ sim.value(nl.outputs()[o]);
        }
        if (diff != 0) ++detections;
        sim.clear_overrides();
      }
      round_detections[i] = detections;
    });

    result.faults += sites.size() * 2;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      result.detected += round_detections[i];
      if (round_detections[i] != 0) result.site_detected[i] = 1;
    }
  }
  return result;
}

}  // namespace satdiag
