#include "fault/error_model.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace satdiag {

GateId error_site(const DesignError& error) {
  return std::visit([](const auto& e) { return e.gate; }, error);
}

std::string describe_error(const DesignError& error) {
  if (const auto* gc = std::get_if<GateChangeError>(&error)) {
    return strprintf("gate %u: %s -> %s", gc->gate,
                     std::string(gate_type_name(gc->original)).c_str(),
                     std::string(gate_type_name(gc->replacement)).c_str());
  }
  const auto& sa = std::get<StuckAtError>(error);
  return strprintf("gate %u: stuck-at-%d", sa.gate, sa.value ? 1 : 0);
}

std::vector<GateId> error_sites(const ErrorList& errors) {
  std::vector<GateId> sites;
  sites.reserve(errors.size());
  for (const DesignError& e : errors) sites.push_back(error_site(e));
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  return sites;
}

Netlist apply_errors(const Netlist& golden, const ErrorList& errors) {
  Netlist faulty = golden.clone();
  for (const DesignError& error : errors) {
    if (const auto* gc = std::get_if<GateChangeError>(&error)) {
      faulty.substitute_type(gc->gate, gc->replacement);
    } else {
      // A stuck-at fault is a physical defect, not a netlist edit: the
      // implementation being diagnosed keeps the golden structure while the
      // defective behaviour is modelled with simulator value overrides
      // (see configure_faulty_simulator in fault/injector.hpp).
      throw NetlistError(
          "apply_errors: stuck-at errors are applied via simulator overrides,"
          " not structural substitution");
    }
  }
  return faulty;
}

}  // namespace satdiag
