// Random error injection.
//
// Reproduces the experimental setup of Section 5: "A number of 1-4 gate
// change errors were injected into circuits". The injector picks distinct
// combinational gates, replaces each with a different random type of the same
// arity, and (optionally) verifies with random simulation that the injected
// error set is detectable at all — undetectable replacements (e.g. AND->NAND
// on a gate whose output is re-inverted) would make a diagnosis experiment
// vacuous.
#pragma once

#include <optional>

#include "fault/error_model.hpp"
#include "util/rng.hpp"

namespace satdiag {

class ParallelSimulator;

struct InjectorOptions {
  std::size_t num_errors = 1;
  /// Verify detectability with this many random patterns (0 disables).
  std::size_t detectability_patterns = 256;
  /// Retry budget for finding a detectable error set.
  std::size_t max_attempts = 64;
  /// Fraction of stuck-at errors in the mix (0 = pure gate changes, as in
  /// the paper's experiments).
  double stuck_at_fraction = 0.0;
};

/// Pick a random error set on `golden`. Returns nullopt when no detectable
/// set was found within the attempt budget (tiny or degenerate circuits).
std::optional<ErrorList> inject_errors(const Netlist& golden, Rng& rng,
                                       const InjectorOptions& options);

/// Configure `sim` (constructed over the *golden* netlist) so that running
/// it produces the faulty behaviour: gate changes become type overrides,
/// stuck-at faults become value overrides.
void configure_faulty_simulator(ParallelSimulator& sim,
                                const ErrorList& errors);

}  // namespace satdiag
