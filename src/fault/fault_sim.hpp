// Candidate-parallel exhaustive stuck-at fault simulation.
//
// The diagnosis engines' inner loop shape — one small change per candidate,
// full readback — made into a library routine on the exec/ runtime: per
// 64-pattern round a golden sweep on a prototype simulator, then the
// candidate axis sharded across the thread pool, each worker owning a
// ParallelSimulator clone of the golden prototype (the clone shares the
// netlist and copies the compiled opcode stream plus the golden value
// plane, so a worker pays only dirty-cone resimulation per fault, never a
// full sweep). Detection results land in per-site slots, making the outcome
// bit-identical for every thread count; random input words are drawn from
// the caller's Rng once per round, outside the parallel region, so the
// pattern stream matches the historical serial driver exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace satdiag {

struct StuckAtFaultSimOptions {
  /// Rounds of 64 random patterns each.
  std::size_t rounds = 1;
  /// Lanes of the execution runtime; 1 = serial (same code path).
  std::size_t num_threads = 1;
};

struct StuckAtFaultSimResult {
  std::size_t faults = 0;    // (site, polarity, round) simulations performed
  std::size_t detected = 0;  // how many of them reached an output
  /// Per site (aligned with the `sites` argument): detected by any polarity
  /// in any round.
  std::vector<std::uint8_t> site_detected;
};

/// All single stuck-at sites of the combinational view (every combinational
/// gate, both polarities are simulated per site).
std::vector<GateId> stuck_at_sites(const Netlist& nl);

/// Exhaustive stuck-at-0/1 simulation of `sites` under `options.rounds`
/// random 64-pattern words drawn from `rng`. nl must be combinational
/// (full-scan view).
StuckAtFaultSimResult simulate_stuck_at_faults(
    const Netlist& nl, std::span<const GateId> sites, Rng& rng,
    const StuckAtFaultSimOptions& options);

}  // namespace satdiag
