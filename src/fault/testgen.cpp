#include "fault/testgen.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>

#include "cnf/tseitin.hpp"
#include "fault/injector.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "util/logging.hpp"

namespace satdiag {
namespace {

std::vector<bool> extract_vector(const std::vector<std::uint64_t>& input_words,
                                 std::size_t bit) {
  std::vector<bool> v;
  v.reserve(input_words.size());
  for (const std::uint64_t word : input_words) {
    v.push_back((word >> bit) & 1ULL);
  }
  return v;
}

/// Encode the faulty behaviour of `nl` under `errors` into CNF over the
/// given encoding's variables: replaced gates get their replacement
/// function, stuck-at gates a unit clause.
CircuitEncoding encode_faulty_circuit(sat::Solver& solver, const Netlist& nl,
                                      const ErrorList& errors) {
  std::vector<const DesignError*> at(nl.size(), nullptr);
  for (const DesignError& e : errors) at[error_site(e)] = &e;

  CircuitEncoding enc;
  enc.gate_var.resize(nl.size());
  for (GateId g = 0; g < nl.size(); ++g) {
    enc.gate_var[g] = solver.new_var(nl.is_source(g));
  }
  std::vector<sat::Lit> ins;
  for (GateId g : nl.topo_order()) {
    if (const DesignError* e = at[g]; e != nullptr) {
      if (const auto* sa = std::get_if<StuckAtError>(e)) {
        solver.add_clause(enc.lit(g, /*negated=*/!sa->value));
        continue;
      }
      const auto& gc = std::get<GateChangeError>(*e);
      ins.clear();
      for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
      encode_gate_function(solver, gc.replacement, enc.lit(g), ins);
      continue;
    }
    switch (nl.type(g)) {
      case GateType::kInput:
      case GateType::kDff:
        break;
      case GateType::kConst0:
        solver.add_clause(enc.lit(g, /*negated=*/true));
        break;
      case GateType::kConst1:
        solver.add_clause(enc.lit(g));
        break;
      default: {
        ins.clear();
        for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
        encode_gate_function(solver, nl.type(g), enc.lit(g), ins);
        break;
      }
    }
  }
  return enc;
}

}  // namespace

std::vector<bool> golden_output_values(const Netlist& nl,
                                       const std::vector<bool>& input_values) {
  ParallelSimulator sim(nl);
  sim.set_input_vector(0, input_values);
  sim.run();
  std::vector<bool> out;
  out.reserve(nl.outputs().size());
  for (GateId o : nl.outputs()) out.push_back(sim.value_bit(o, 0));
  return out;
}

std::vector<std::vector<bool>> golden_outputs_for_tests(const Netlist& nl,
                                                        const TestSet& tests) {
  // 64 tests per sweep: test base+b rides pattern lane b, so one simulator
  // evaluation serves a whole batch instead of one full sweep per test.
  std::vector<std::vector<bool>> rows(tests.size());
  ParallelSimulator sim(nl);
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, tests.size() - base);
    for (std::size_t b = 0; b < batch; ++b) {
      sim.set_input_vector(b, tests[base + b].input_values);
    }
    sim.run();
    for (std::size_t b = 0; b < batch; ++b) {
      std::vector<bool>& row = rows[base + b];
      row.reserve(nl.outputs().size());
      for (GateId o : nl.outputs()) row.push_back(sim.value_bit(o, b));
    }
  }
  return rows;
}

TestSet generate_failing_tests(const Netlist& nl, const ErrorList& errors,
                               std::size_t count, Rng& rng,
                               const TestGenOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for test generation");
  TestSet tests;
  std::set<std::vector<bool>> used_vectors;

  // One simulator runs both personalities per word: a full golden sweep,
  // then an incremental faulty sweep that re-evaluates only the error cones.
  ParallelSimulator sim = options.compiled_prototype != nullptr
                              ? ParallelSimulator(nl, *options.compiled_prototype)
                              : ParallelSimulator(nl);
  std::vector<std::uint64_t> input_words(nl.inputs().size());
  std::vector<std::uint64_t> golden_out(nl.outputs().size());

  for (std::size_t w = 0;
       w < options.max_random_words && tests.size() < count; ++w) {
    if (options.deadline.expired()) return tests;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      input_words[i] = rng.next_u64();
      sim.set_source(nl.inputs()[i], input_words[i]);
    }
    sim.run();
    for (std::size_t oi = 0; oi < nl.outputs().size(); ++oi) {
      golden_out[oi] = sim.value(nl.outputs()[oi]);
    }
    configure_faulty_simulator(sim, errors);
    sim.run();
    // Which pattern slots fail at all?
    std::uint64_t fail_mask = 0;
    for (std::size_t oi = 0; oi < nl.outputs().size(); ++oi) {
      fail_mask |= golden_out[oi] ^ sim.value(nl.outputs()[oi]);
    }
    while (fail_mask != 0 && tests.size() < count) {
      const int bit = std::countr_zero(fail_mask);
      fail_mask &= fail_mask - 1;
      std::vector<bool> vec =
          extract_vector(input_words, static_cast<std::size_t>(bit));
      if (!used_vectors.insert(vec).second) continue;
      std::size_t added = 0;
      for (std::size_t oi = 0;
           oi < nl.outputs().size() && tests.size() < count &&
           added < options.max_triples_per_vector;
           ++oi) {
        const std::uint64_t diff =
            golden_out[oi] ^ sim.value(nl.outputs()[oi]);
        if ((diff >> bit) & 1ULL) {
          tests.push_back(
              Test{vec, oi, ((golden_out[oi] >> bit) & 1ULL) != 0});
          ++added;
        }
      }
    }
    sim.clear_overrides();
  }
  if (tests.size() >= count || !options.use_atpg_fallback) return tests;

  // ---- SAT ATPG fallback: miter golden vs faulty behaviour -----------------
  SATDIAG_INFO() << "testgen: random simulation found " << tests.size() << "/"
                 << count << " tests; switching to SAT ATPG";
  sat::Solver solver;
  const CircuitEncoding gold_enc =
      encode_circuit(solver, nl, /*internal_decisions=*/false);
  const CircuitEncoding fault_enc = encode_faulty_circuit(solver, nl, errors);
  // Shared inputs.
  for (GateId in : nl.inputs()) {
    solver.add_clause(gold_enc.lit(in, true), fault_enc.lit(in, false));
    solver.add_clause(gold_enc.lit(in, false), fault_enc.lit(in, true));
  }
  // diff_o <-> golden_o XOR faulty_o ; require at least one diff.
  sat::Clause any_diff;
  std::vector<sat::Var> diff_vars;
  for (GateId o : nl.outputs()) {
    const sat::Var d = solver.new_var(/*decidable=*/false);
    const sat::Lit dl = sat::pos(d);
    const sat::Lit a = gold_enc.lit(o);
    const sat::Lit b = fault_enc.lit(o);
    solver.add_clause(~dl, a, b);
    solver.add_clause(~dl, ~a, ~b);
    solver.add_clause(dl, ~a, b);
    solver.add_clause(dl, a, ~b);
    diff_vars.push_back(d);
    any_diff.push_back(dl);
  }
  solver.add_clause(std::move(any_diff));
  // Block vectors already harvested by random simulation.
  for (const auto& vec : used_vectors) {
    sat::Clause block;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      block.push_back(gold_enc.lit(nl.inputs()[i], /*negated=*/vec[i]));
    }
    solver.add_clause(std::move(block));
  }

  while (tests.size() < count) {
    if (options.deadline.expired()) break;
    solver.set_deadline(options.deadline);
    const sat::LBool status = solver.solve();
    if (status != sat::LBool::kTrue) break;  // no more distinct failing tests
    std::vector<bool> vec;
    vec.reserve(nl.inputs().size());
    for (GateId in : nl.inputs()) {
      vec.push_back(solver.model_value(gold_enc.gate_var[in]) ==
                    sat::LBool::kTrue);
    }
    std::size_t added = 0;
    for (std::size_t oi = 0; oi < nl.outputs().size() &&
                             tests.size() < count &&
                             added < options.max_triples_per_vector;
         ++oi) {
      if (solver.model_value(diff_vars[oi]) == sat::LBool::kTrue) {
        const bool golden_value =
            solver.model_value(gold_enc.gate_var[nl.outputs()[oi]]) ==
            sat::LBool::kTrue;
        tests.push_back(Test{vec, oi, golden_value});
        ++added;
      }
    }
    // Block this input cube (in-search: the next solve() resumes in place).
    sat::Clause block;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      block.push_back(gold_enc.lit(nl.inputs()[i], /*negated=*/vec[i]));
    }
    if (!solver.block_model(std::move(block))) break;
  }
  return tests;
}

}  // namespace satdiag
