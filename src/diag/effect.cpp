#include "diag/effect.hpp"

#include <algorithm>
#include <cassert>
#include <span>

#include "exec/parallel.hpp"
#include "sim/sim3.hpp"

namespace satdiag {
namespace {

/// The x_check body over an explicit simulator (the member one for serial
/// calls, a lane-owned clone for the batch path).
bool x_check_with(ThreeValuedSimulator& sim, const Netlist& nl,
                  const TestSet& tests, const std::vector<GateId>& candidate) {
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, tests.size() - base);
    for (std::size_t b = 0; b < batch; ++b) {
      sim.set_input_vector(b, tests[base + b].input_values);
    }
    sim.clear_overrides();
    for (GateId g : candidate) sim.inject_x(g);
    sim.run();
    for (std::size_t b = 0; b < batch; ++b) {
      const GateId out = test_output_gate(nl, tests[base + b]);
      if (!sim.value(out).is_x(b)) return false;
    }
  }
  return true;
}

DiagnosisInstanceOptions effect_instance_options() {
  DiagnosisInstanceOptions options;
  options.max_k = 0;  // bounds are imposed via select assumptions instead
  options.gating_clauses = true;
  options.internal_decisions = false;
  // Sound for validity queries: a candidate gate outside every erroneous
  // output's cone cannot affect any constrained value, so dropping its
  // (absent) select from the assumptions never changes the answer.
  options.cone_of_influence = true;
  return options;
}
}  // namespace

// The instance is template-stamped: when the BSAT/hybrid pass already built
// an instance on this circuit, the analyzer's copies relocate the cached
// ClauseStream templates instead of re-running the encoder walk.
EffectAnalyzer::EffectAnalyzer(const Netlist& nl, const TestSet& tests)
    : nl_(&nl),
      tests_(&tests),
      inst_(build_diagnosis_instance(nl, tests, effect_instance_options())),
      sim3_(nl) {}

bool EffectAnalyzer::is_valid_correction(const std::vector<GateId>& candidate,
                                         Deadline deadline) {
  ++checks_;
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(inst_.select_var.size());
  std::vector<bool> on(nl_->size(), false);
  for (GateId g : candidate) {
    assert(g < nl_->size());
    on[g] = true;
  }
  for (std::size_t i = 0; i < inst_.instrumented.size(); ++i) {
    assumptions.push_back(
        sat::Lit(inst_.select_var[i], /*negated=*/!on[inst_.instrumented[i]]));
  }
  inst_.solver.set_deadline(deadline);
  return inst_.solver.solve(assumptions) == sat::LBool::kTrue;
}

bool EffectAnalyzer::x_check(const std::vector<GateId>& candidate) const {
  // Reuses the member simulator: re-assigning identical input words is a
  // no-op for the dirty-cone engine, so with one pattern batch (≤ 64 tests)
  // only the candidate's injection cones — and the previous call's revert
  // cones — are re-evaluated.
  return x_check_with(sim3_, *nl_, *tests_, candidate);
}

std::vector<std::uint8_t> EffectAnalyzer::x_check_batch(
    const std::vector<std::vector<GateId>>& candidates,
    std::size_t num_threads) const {
  std::vector<std::uint8_t> valid(candidates.size(), 1);
  if (candidates.empty()) return valid;
  exec::ThreadPool pool(num_threads);
  const std::span<const std::vector<GateId>> all(candidates);
  // Per 64-test chunk: one primed lane-batched evaluator is cloned per
  // worker, whole batches of 64 / |chunk| candidates are sharded over the
  // runtime, and a candidate stays valid only while every chunk's reach
  // mask is full. Lane groups never interact, so entry i is bit-identical
  // to the serial x_check(candidates[i]) at any thread count.
  for (std::size_t base = 0; base < tests_->size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests_->size() - base);
    const Sim3XBatch prototype(*nl_, *tests_, base, count);
    const std::size_t cap = prototype.capacity();
    const std::uint64_t full = prototype.full_mask();
    const std::size_t num_batches = (candidates.size() + cap - 1) / cap;
    exec::LaneLocal<Sim3XBatch> lane_batch(pool.num_threads());
    exec::parallel_for(pool, num_batches, [&](std::size_t batch,
                                              std::size_t lane) {
      Sim3XBatch& xb = lane_batch.get(lane, [&] { return prototype; });
      const std::size_t begin = batch * cap;
      const std::size_t end = std::min(begin + cap, candidates.size());
      std::uint64_t masks[64];
      xb.run_tuples(all.subspan(begin, end - begin), masks);
      for (std::size_t i = begin; i < end; ++i) {
        if (masks[i - begin] != full) valid[i] = 0;
      }
    });
  }
  return valid;
}

}  // namespace satdiag
