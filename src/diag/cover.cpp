#include "diag/cover.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "sat/allsat.hpp"

namespace satdiag {

bool is_cover(const std::vector<std::vector<GateId>>& sets,
              const std::vector<GateId>& cover) {
  for (const auto& s : sets) {
    bool hit = false;
    for (GateId g : s) {
      if (std::binary_search(cover.begin(), cover.end(), g)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

bool is_irredundant_cover(const std::vector<std::vector<GateId>>& sets,
                          const std::vector<GateId>& cover) {
  if (!is_cover(sets, cover)) return false;
  for (std::size_t i = 0; i < cover.size(); ++i) {
    std::vector<GateId> reduced;
    reduced.reserve(cover.size() - 1);
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (j != i) reduced.push_back(cover[j]);
    }
    if (is_cover(sets, reduced)) return false;
  }
  return true;
}

CovResult solve_covering_sat(const std::vector<std::vector<GateId>>& sets,
                             const CovOptions& options) {
  CovResult result;
  Timer build_timer;

  // Universe and gate <-> variable maps.
  std::vector<GateId> universe;
  for (const auto& s : sets) universe.insert(universe.end(), s.begin(), s.end());
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  std::map<GateId, sat::Var> var_of;

  sat::Solver solver;
  std::vector<sat::Var> selectors;
  for (GateId g : universe) {
    // Frozen: blocking clauses mention selectors across the whole
    // enumeration (they are decision vars too, but the contract is explicit).
    const sat::Var v = solver.new_var(/*decidable=*/true);
    solver.freeze(v);
    var_of[g] = v;
    selectors.push_back(v);
  }
  bool ok = true;
  for (const auto& s : sets) {
    assert(!s.empty() && "empty candidate set cannot be covered");
    sat::Clause clause;
    clause.reserve(s.size());
    for (GateId g : s) clause.push_back(sat::pos(var_of[g]));
    ok = solver.add_clause(std::move(clause)) && ok;
  }
  std::vector<sat::Lit> selector_lits;
  for (sat::Var v : selectors) selector_lits.push_back(sat::pos(v));
  CardinalityTracker tracker = encode_cardinality_tracker(
      solver, selector_lits, options.k, options.card_encoding);
  result.build_seconds = build_timer.seconds();
  if (!ok) {
    result.complete = true;
    return result;
  }

  // Enumerate bound 1..k; model-minimize before blocking so spuriously
  // asserted selectors cannot produce redundant covers.
  Timer solve_timer;
  bool first_recorded = false;
  std::set<std::vector<GateId>> emitted;
  for (unsigned bound = 1; bound <= options.k; ++bound) {
    const auto assumptions = tracker.assume_at_most(bound);
    for (;;) {
      if (options.deadline.expired() ||
          (options.max_solutions >= 0 &&
           static_cast<std::int64_t>(result.solutions.size()) >=
               options.max_solutions)) {
        result.complete = false;
        result.first_seconds =
            first_recorded ? result.first_seconds : solve_timer.seconds();
        result.all_seconds = solve_timer.seconds();
        return result;
      }
      solver.set_deadline(options.deadline);
      const sat::LBool status = solver.solve(assumptions);
      if (status == sat::LBool::kUndef) {
        result.complete = false;
        break;
      }
      if (status == sat::LBool::kFalse) break;  // next bound
      // Project the model.
      std::vector<GateId> cover;
      for (std::size_t i = 0; i < universe.size(); ++i) {
        if (solver.model_value(selectors[i]) == sat::LBool::kTrue) {
          cover.push_back(universe[i]);
        }
      }
      // Greedy minimization: drop elements that are not needed. The result
      // is an irredundant sub-cover of the model.
      for (std::size_t i = 0; i < cover.size();) {
        std::vector<GateId> reduced;
        reduced.reserve(cover.size() - 1);
        for (std::size_t j = 0; j < cover.size(); ++j) {
          if (j != i) reduced.push_back(cover[j]);
        }
        if (is_cover(sets, reduced)) {
          cover = std::move(reduced);
        } else {
          ++i;
        }
      }
      if (!first_recorded) {
        result.first_seconds = solve_timer.seconds();
        first_recorded = true;
      }
      if (emitted.insert(cover).second) {
        result.solutions.push_back(cover);
      }
      // Subset blocking: any superset of an irredundant cover is redundant.
      // block_model resumes the search in place on the next solve().
      sat::Clause blocking;
      for (GateId g : cover) blocking.push_back(sat::neg(var_of[g]));
      if (!solver.block_model(std::move(blocking))) {
        result.all_seconds = solve_timer.seconds();
        if (!first_recorded) result.first_seconds = result.all_seconds;
        return result;
      }
    }
    if (!result.complete) break;
  }
  result.all_seconds = solve_timer.seconds();
  if (!first_recorded) result.first_seconds = result.all_seconds;
  if (result.complete) {
    // A complete enumeration yields exactly the irredundant covers of size
    // <= k regardless of search order (no irredundant cover is a proper
    // superset of another, so subset blocking never drops one). Canonical
    // order makes the output invariant under solver perturbations
    // (inprocessing, clause sharing, thread count).
    std::sort(result.solutions.begin(), result.solutions.end(),
              [](const std::vector<GateId>& a, const std::vector<GateId>& b) {
                if (a.size() != b.size()) return a.size() < b.size();
                return a < b;
              });
  }
  return result;
}

namespace {
void bnb_recurse(const std::vector<std::vector<GateId>>& sets,
                 std::vector<bool>& covered, std::size_t num_covered,
                 std::vector<GateId>& chosen, unsigned k,
                 std::set<std::vector<GateId>>& out) {
  if (num_covered == sets.size()) {
    std::vector<GateId> cover(chosen);
    std::sort(cover.begin(), cover.end());
    if (is_irredundant_cover(sets, cover)) out.insert(std::move(cover));
    return;
  }
  if (chosen.size() == k) return;
  // Branch on the first uncovered set.
  std::size_t pivot = 0;
  while (covered[pivot]) ++pivot;
  for (GateId g : sets[pivot]) {
    if (std::find(chosen.begin(), chosen.end(), g) != chosen.end()) continue;
    chosen.push_back(g);
    std::vector<std::size_t> newly;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!covered[i] &&
          std::find(sets[i].begin(), sets[i].end(), g) != sets[i].end()) {
        covered[i] = true;
        newly.push_back(i);
      }
    }
    bnb_recurse(sets, covered, num_covered + newly.size(), chosen, k, out);
    for (std::size_t i : newly) covered[i] = false;
    chosen.pop_back();
  }
}
}  // namespace

std::vector<std::vector<GateId>> solve_covering_bnb(
    const std::vector<std::vector<GateId>>& sets, unsigned k) {
  std::set<std::vector<GateId>> out;
  std::vector<bool> covered(sets.size(), false);
  std::vector<GateId> chosen;
  bnb_recurse(sets, covered, 0, chosen, k, out);
  return {out.begin(), out.end()};
}

CovResult sc_diagnose(const Netlist& nl, const TestSet& tests,
                      const CovOptions& options,
                      const PathTraceOptions& trace_options, Rng* rng) {
  const BsimResult bsim = basic_sim_diagnose(nl, tests, trace_options, rng);
  for (const auto& set : bsim.candidate_sets) {
    if (set.empty()) {
      // A test whose sensitized path contains no correctable gate (can only
      // happen when everything marked was a source); covering is infeasible.
      CovResult empty;
      empty.complete = true;
      return empty;
    }
  }
  return solve_covering_sat(bsim.candidate_sets, options);
}

}  // namespace satdiag
