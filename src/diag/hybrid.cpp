#include "diag/hybrid.hpp"

#include <algorithm>
#include <set>

#include "netlist/analysis.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace satdiag {

HybridResult hybrid_diagnose(const Netlist& nl, const TestSet& tests,
                             const HybridOptions& options, Rng* rng) {
  HybridResult result;
  Timer sim_timer;

  BsatOptions bsat;
  bsat.k = options.k;
  bsat.max_solutions = options.max_solutions;
  bsat.deadline = options.deadline;
  bsat.instance.gating_clauses = true;
  bsat.instance.internal_decisions = false;
  bsat.num_threads = options.num_threads;

  if (options.mode == HybridMode::kSeedActivity) {
    obs::Span sim_span("phase.sim");
    const BsimResult bsim =
        basic_sim_diagnose(nl, tests, options.trace_options, rng);
    bsat.select_activity_seed = bsim.mark_count;
    result.sim_seconds = sim_timer.seconds();
  } else {
    obs::Span sim_span("phase.sim");
    CovOptions cov;
    cov.k = options.k;
    cov.deadline = options.deadline;
    const CovResult covers =
        sc_diagnose(nl, tests, cov, options.trace_options, rng);
    sim_span.close();
    result.sim_seconds = sim_timer.seconds();

    // Instrument the covered gates plus an undirected structural
    // neighbourhood (Lemma 4 shows the true correction can sit just outside
    // the marked universe; the radius recovers such near-misses).
    std::set<GateId> region;
    for (const auto& cover : covers.solutions) {
      region.insert(cover.begin(), cover.end());
    }
    if (region.empty()) return result;
    std::vector<GateId> seeds(region.begin(), region.end());
    const auto distance = undirected_distances(nl, seeds);
    std::vector<GateId> instrumented;
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g) &&
          distance[g] <= options.neighbourhood_radius) {
        instrumented.push_back(g);
      }
    }
    bsat.instance.instrumented = std::move(instrumented);
    result.complete = false;  // complete only relative to the neighbourhood
  }

  Timer sat_timer;
  // The SAT phase goes through the template-stamped instance builder: its
  // restricted-universe instance gets its own cached ClauseStream keyed on
  // the final instrumented set, so repeated hybrid runs on one circuit (and
  // all shards of a multi-threaded run) stamp instead of re-encoding.
  const BsatResult sat = basic_sat_diagnose(nl, tests, bsat);
  result.sat_seconds = sat_timer.seconds();
  result.solutions = sat.solutions;
  result.complete = result.complete && sat.complete;
  result.instrumented = bsat.instance.instrumented.empty()
                            ? nl.num_combinational_gates()
                            : bsat.instance.instrumented.size();
  result.solver_stats = sat.solver_stats;
  return result;
}

}  // namespace satdiag
