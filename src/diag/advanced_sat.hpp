// Advanced SAT-based diagnosis heuristics (Smith/Veneris/Viglas, ASP-DAC'04;
// Sec. 2.3 of the paper).
//
// Beyond the gating clauses and non-decision internal variables (handled by
// DiagnosisInstanceOptions), this implements the two search-space reductions
// the paper describes:
//
//  * Two-pass region diagnosis — "instead of inserting a multiplexer at each
//    gate only dominators are selected in a first run. In a second run a
//    finer level of granularity ... in the dominated regions that may
//    contain an error." Pass 1 instruments only region heads (roots of
//    fanout-free regions — the gates every other gate's effect must flow
//    through); pass 2 instruments all gates of the implicated regions and
//    enumerates the final corrections on the full test-set.
//
//  * Test-set partitioning — for large m the instance is built over a test
//    subset; the resulting candidates are then validated against the whole
//    test-set with the exact effect analyzer and refined on the implicated
//    gate set. A heuristic: completeness on the full test-set is restored
//    by the refinement pass over implicated regions.
#pragma once

#include "diag/bsat.hpp"

namespace satdiag {

struct AdvancedSatOptions {
  unsigned k = 1;
  CardEncoding card_encoding = CardEncoding::kSequential;
  std::int64_t max_solutions = -1;
  Deadline deadline;
  /// Tests per partition in pass 1 (0 = use the whole test-set).
  std::size_t partition_size = 0;
  /// Structural slack added around implicated regions in pass 2 (levels of
  /// transitive fanin to include).
  std::size_t region_fanin_depth = 2;
};

struct AdvancedSatResult {
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;
  double pass1_seconds = 0.0;
  double pass2_seconds = 0.0;
  std::size_t pass1_instrumented = 0;
  std::size_t pass2_instrumented = 0;
};

/// Roots of fanout-free regions: gates with fanout count != 1 or observed
/// at an output; every gate's error effect propagates through its region
/// root before reaching an observation point.
std::vector<GateId> region_heads(const Netlist& nl);

/// Map each gate to its region head (itself when it is a head).
std::vector<GateId> region_head_of(const Netlist& nl);

AdvancedSatResult advanced_sat_diagnose(const Netlist& nl,
                                        const TestSet& tests,
                                        const AdvancedSatOptions& options);

}  // namespace satdiag
