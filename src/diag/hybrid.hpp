// Hybrid diagnosis — the future-work proposal of Section 6, implemented.
//
// "The fast engines of BSIM and COV can be used to direct the SAT-search by
//  tuning the decision heuristics of the solver. A second possibility is to
//  choose an initial correction (that may not be valid) and use SAT-based
//  diagnosis to turn it into a valid correction."
//
// Mode kSeedActivity: run BSIM, boost the activity of the select variables
// of heavily marked gates (and hint their polarity to 1); then run plain
// BSAT. Same solution space, typically fewer decisions to the first
// solution.
//
// Mode kRepairCover: run COV; take the covers (cheap, possibly invalid) and
// restrict the BSAT instrumented set to the covered gates plus a structural
// neighbourhood; enumerate valid corrections there. Much smaller instance;
// sound (only valid corrections are returned) but complete only relative to
// the neighbourhood.
#pragma once

#include "diag/bsat.hpp"
#include "diag/cover.hpp"

namespace satdiag {

enum class HybridMode {
  kSeedActivity,
  kRepairCover,
};

struct HybridOptions {
  HybridMode mode = HybridMode::kSeedActivity;
  unsigned k = 1;
  std::int64_t max_solutions = -1;
  Deadline deadline;
  /// kRepairCover: radius (in undirected structural steps) of the
  /// neighbourhood added around covered gates.
  std::size_t neighbourhood_radius = 2;
  PathTraceOptions trace_options;
  /// Candidate-parallel lanes for the SAT stage (see BsatOptions).
  std::size_t num_threads = 1;
};

struct HybridResult {
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;  // kRepairCover: relative to the neighbourhood
  double sim_seconds = 0.0;
  double sat_seconds = 0.0;
  std::size_t instrumented = 0;
  sat::Solver::Stats solver_stats;
};

HybridResult hybrid_diagnose(const Netlist& nl, const TestSet& tests,
                             const HybridOptions& options, Rng* rng = nullptr);

}  // namespace satdiag
