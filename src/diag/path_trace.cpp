#include "diag/path_trace.hpp"

#include <algorithm>
#include <cassert>

namespace satdiag {

std::vector<GateId> path_trace(const Netlist& nl,
                               std::span<const std::uint64_t> values,
                               std::size_t bit, GateId erroneous_output,
                               const PathTraceOptions& options, Rng* rng) {
  assert(values.size() == nl.size());
  std::vector<bool> marked(nl.size(), false);
  std::vector<GateId> stack;
  auto mark = [&](GateId g) {
    if (!marked[g]) {
      marked[g] = true;
      stack.push_back(g);
    }
  };
  mark(erroneous_output);

  std::vector<GateId> controlling;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    if (nl.is_source(g)) continue;  // nothing to trace through
    const auto fanins = nl.fanins(g);
    if (fanins.empty()) continue;  // constants
    const auto cv = controlling_value(nl.type(g));
    controlling.clear();
    if (cv.has_value()) {
      for (GateId f : fanins) {
        const bool value = (values[f] >> bit) & 1ULL;
        if (value == *cv) controlling.push_back(f);
      }
    }
    if (controlling.empty()) {
      // No input at controlling value (or the gate type has none, e.g.
      // XOR/NOT/BUF): every input is on the sensitized path.
      for (GateId f : fanins) mark(f);
      continue;
    }
    GateId chosen = controlling.front();
    switch (options.policy) {
      case MarkPolicy::kFirstControlling:
        break;
      case MarkPolicy::kRandomControlling:
        assert(rng != nullptr);
        chosen = rng->pick(controlling);
        break;
      case MarkPolicy::kLowestLevel:
        for (GateId f : controlling) {
          if (nl.levels()[f] < nl.levels()[chosen]) chosen = f;
        }
        break;
    }
    mark(chosen);
  }

  std::vector<GateId> result;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (!marked[g]) continue;
    if (!options.include_sources && nl.is_source(g)) continue;
    result.push_back(g);
  }
  return result;
}

}  // namespace satdiag
