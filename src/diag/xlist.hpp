// X-list diagnosis (Boppana et al., DAC'99) — the simulation-based approach
// the paper cites as the PT alternative: instead of backtracing sensitized
// paths, inject X at a candidate location and forward-propagate; a location
// is kept when the X reaches the erroneous output of every test ("the effect
// of changing a value at a certain position is considered").
//
// Implemented for single locations (one 3-valued sweep per candidate gate,
// all tests in parallel pattern slots) and, for multiple errors, greedily:
// the size-k candidate tuples are assembled from single-location lists using
// the same forward-X criterion on the joint injection.
#pragma once

#include <span>

#include "exec/thread_pool.hpp"
#include "netlist/testset.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct XListOptions {
  /// Restrict candidates to the union of the erroneous outputs' fanin cones
  /// (an X injected elsewhere can never reach them).
  bool restrict_to_fanin_cones = true;
  Deadline deadline;
  /// Candidate-parallel lanes (exec/ runtime): whole 64-candidate injection
  /// batches are sharded over per-thread Sim3XBatch evaluators cloned from
  /// one primed prototype. Results are bit-identical for every thread count
  /// (per-candidate masks land in per-candidate slots).
  std::size_t num_threads = 1;
};

/// Batched X-reach masks: bit b of result[i] is set iff injecting X at
/// candidates[i] drives test b's erroneous output to X (tests.size() must be
/// in [1, 64]). The inner loop is the lane-batched injection mode of the
/// unified sim3 kernel — 64 / |tests| candidates per sweep — sharded over
/// the exec/ runtime in whole batches; results are bit-identical for every
/// thread count. Shared by the X-list engines, the BSIM X-refinement, and
/// the differential test harness.
std::vector<std::uint64_t> x_reach_masks(exec::ThreadPool& pool,
                                         const Netlist& nl,
                                         const TestSet& tests,
                                         std::span<const GateId> candidates,
                                         const Deadline& deadline = {});

/// Gates g such that injecting X at g makes every test's erroneous output X.
std::vector<GateId> xlist_single_candidates(const Netlist& nl,
                                            const TestSet& tests,
                                            const XListOptions& options = {});

/// Greedy multi-error extension: find up to `max_tuples` size-k tuples whose
/// joint X injection covers every test's erroneous output, seeded from the
/// per-test single-location lists.
std::vector<std::vector<GateId>> xlist_tuple_candidates(
    const Netlist& nl, const TestSet& tests, unsigned k,
    std::size_t max_tuples, const XListOptions& options = {});

}  // namespace satdiag
