#include "diag/bsim.hpp"

#include <algorithm>
#include <cassert>

#include "sim/simulator.hpp"

namespace satdiag {

BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const PathTraceOptions& options, Rng* rng) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  BsimResult result;
  result.mark_count.assign(nl.size(), 0);
  result.candidate_sets.resize(tests.size());

  ParallelSimulator sim(nl);
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, tests.size() - base);
    for (std::size_t b = 0; b < batch; ++b) {
      sim.set_input_vector(b, tests[base + b].input_values);
    }
    sim.run();
    for (std::size_t b = 0; b < batch; ++b) {
      const Test& test = tests[base + b];
      auto candidates = path_trace(nl, sim.values(), b,
                                   test_output_gate(nl, test), options, rng);
      for (GateId g : candidates) ++result.mark_count[g];
      result.candidate_sets[base + b] = std::move(candidates);
    }
  }

  for (GateId g = 0; g < nl.size(); ++g) {
    if (result.mark_count[g] > 0) result.marked_union.push_back(g);
    result.max_marks = std::max(result.max_marks, result.mark_count[g]);
  }
  for (GateId g : result.marked_union) {
    if (result.mark_count[g] == result.max_marks) result.gmax.push_back(g);
  }
  return result;
}

}  // namespace satdiag
