#include "diag/bsim.hpp"

#include <algorithm>
#include <cassert>

#include "diag/xlist.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace satdiag {
namespace {

/// Intersect every C_i with the gates whose injected X reaches test i's
/// erroneous output, over the lane-batched injection mode (whole batches of
/// the marked union per sweep, per 64-test chunk).
void refine_candidate_sets(const Netlist& nl, const TestSet& tests,
                           const BsimOptions& options, BsimResult& result) {
  result.refined_sets.assign(tests.size(), {});
  if (result.marked_union.empty()) return;
  exec::ThreadPool pool(options.num_threads);
  std::vector<std::uint32_t> index_of(nl.size(), 0);
  for (std::size_t i = 0; i < result.marked_union.size(); ++i) {
    index_of[result.marked_union[i]] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - base);
    const TestSet chunk(tests.begin() + static_cast<std::ptrdiff_t>(base),
                        tests.begin() +
                            static_cast<std::ptrdiff_t>(base + count));
    const auto masks = x_reach_masks(pool, nl, chunk, result.marked_union);
    for (std::size_t b = 0; b < count; ++b) {
      std::vector<GateId>& refined = result.refined_sets[base + b];
      for (GateId g : result.candidate_sets[base + b]) {
        if ((masks[index_of[g]] >> b) & 1ULL) refined.push_back(g);
      }
    }
  }
}

}  // namespace

BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsimOptions& options, Rng* rng) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  BsimResult result;
  result.mark_count.assign(nl.size(), 0);
  result.candidate_sets.resize(tests.size());

  ParallelSimulator sim(nl);
  obs::Span sweep_span("bsim.sweep", "tests",
                       static_cast<std::int64_t>(tests.size()));
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, tests.size() - base);
    for (std::size_t b = 0; b < batch; ++b) {
      sim.set_input_vector(b, tests[base + b].input_values);
    }
    sim.run();
    for (std::size_t b = 0; b < batch; ++b) {
      const Test& test = tests[base + b];
      auto candidates =
          path_trace(nl, sim.values(), b, test_output_gate(nl, test),
                     options.trace, rng);
      for (GateId g : candidates) ++result.mark_count[g];
      result.candidate_sets[base + b] = std::move(candidates);
    }
  }

  for (GateId g = 0; g < nl.size(); ++g) {
    if (result.mark_count[g] > 0) result.marked_union.push_back(g);
    result.max_marks = std::max(result.max_marks, result.mark_count[g]);
  }
  for (GateId g : result.marked_union) {
    if (result.mark_count[g] == result.max_marks) result.gmax.push_back(g);
  }
  if (options.x_refine && !tests.empty()) {
    refine_candidate_sets(nl, tests, options, result);
  }
  return result;
}

BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const PathTraceOptions& options, Rng* rng) {
  BsimOptions full;
  full.trace = options;
  return basic_sim_diagnose(nl, tests, full, rng);
}

}  // namespace satdiag
