#include "diag/advanced_sat.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "diag/effect.hpp"
#include "netlist/analysis.hpp"
#include "util/timer.hpp"

namespace satdiag {

std::vector<GateId> region_heads(const Netlist& nl) {
  std::vector<bool> observed(nl.size(), false);
  for (GateId p : observation_points(nl)) observed[p] = true;
  std::vector<GateId> heads;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (!nl.is_combinational(g)) continue;
    std::size_t comb_fanouts = 0;
    for (GateId out : nl.fanouts(g)) {
      if (!nl.is_source(out)) ++comb_fanouts;
    }
    if (observed[g] || comb_fanouts != 1) heads.push_back(g);
  }
  return heads;
}

std::vector<GateId> region_head_of(const Netlist& nl) {
  std::vector<bool> is_head(nl.size(), false);
  for (GateId h : region_heads(nl)) is_head[h] = true;
  std::vector<GateId> head(nl.size(), kNoGate);
  // Reverse topological order: the unique combinational fanout of a non-head
  // gate is processed first.
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    if (!nl.is_combinational(g)) continue;
    if (is_head[g]) {
      head[g] = g;
      continue;
    }
    for (GateId out : nl.fanouts(g)) {
      if (!nl.is_source(out)) {
        head[g] = head[out];
        break;
      }
    }
    if (head[g] == kNoGate) head[g] = g;  // dangling gate: its own head
  }
  return head;
}

AdvancedSatResult advanced_sat_diagnose(const Netlist& nl,
                                        const TestSet& tests,
                                        const AdvancedSatOptions& options) {
  AdvancedSatResult result;
  Timer timer;

  // ---- pass 1: coarse diagnosis on region heads (maybe on a partition) ----
  TestSet pass1_tests;
  if (options.partition_size > 0 && options.partition_size < tests.size()) {
    pass1_tests.assign(tests.begin(),
                       tests.begin() + static_cast<std::ptrdiff_t>(
                                           options.partition_size));
  } else {
    pass1_tests = tests;
  }

  BsatOptions pass1;
  pass1.k = options.k;
  pass1.max_solutions = options.max_solutions;
  pass1.deadline = options.deadline;
  pass1.instance.instrumented = region_heads(nl);
  pass1.instance.card_encoding = options.card_encoding;
  pass1.instance.gating_clauses = true;
  pass1.instance.internal_decisions = false;
  const BsatResult coarse = basic_sat_diagnose(nl, pass1_tests, pass1);
  result.pass1_seconds = timer.seconds();
  result.pass1_instrumented = pass1.instance.instrumented.size();
  result.complete = coarse.complete;

  // Implicated regions: all gates whose region head appears in a coarse
  // solution, plus a little transitive fanin slack.
  std::set<GateId> implicated_heads;
  for (const auto& solution : coarse.solutions) {
    implicated_heads.insert(solution.begin(), solution.end());
  }
  if (implicated_heads.empty()) return result;  // nothing diagnosable

  const std::vector<GateId> head = region_head_of(nl);
  std::vector<GateId> fine_set;
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.is_combinational(g) && head[g] != kNoGate &&
        implicated_heads.count(head[g])) {
      fine_set.push_back(g);
    }
  }
  // Fanin slack: errors just below a region boundary can masquerade as the
  // head; include a few levels of structural fanin.
  std::vector<GateId> frontier = fine_set;
  for (std::size_t depth = 0; depth < options.region_fanin_depth; ++depth) {
    std::vector<GateId> next;
    for (GateId g : frontier) {
      for (GateId f : nl.fanins(g)) {
        if (nl.is_combinational(f) &&
            std::find(fine_set.begin(), fine_set.end(), f) == fine_set.end()) {
          fine_set.push_back(f);
          next.push_back(f);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(fine_set.begin(), fine_set.end());
  fine_set.erase(std::unique(fine_set.begin(), fine_set.end()),
                 fine_set.end());

  // ---- pass 2: fine-grained diagnosis on the full test-set ----------------
  Timer pass2_timer;
  BsatOptions pass2;
  pass2.k = options.k;
  pass2.max_solutions = options.max_solutions;
  pass2.deadline = options.deadline;
  pass2.instance.instrumented = fine_set;
  pass2.instance.card_encoding = options.card_encoding;
  pass2.instance.gating_clauses = true;
  pass2.instance.internal_decisions = false;
  const BsatResult fine = basic_sat_diagnose(nl, tests, pass2);
  result.pass2_seconds = pass2_timer.seconds();
  result.pass2_instrumented = fine_set.size();
  result.solutions = fine.solutions;
  result.complete = result.complete && fine.complete;
  return result;
}

}  // namespace satdiag
