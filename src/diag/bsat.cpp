#include "diag/bsat.hpp"

#include <algorithm>
#include <cassert>

namespace satdiag {

BsatResult basic_sat_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsatOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  assert(!tests.empty());
  BsatResult result;

  Timer build_timer;
  DiagnosisInstanceOptions inst_options = options.instance;
  inst_options.max_k = options.k;
  DiagnosisInstance inst = build_diagnosis_instance(nl, tests, inst_options);
  sat::Solver& solver = inst.solver;
  result.build_seconds = build_timer.seconds();
  result.num_vars = static_cast<std::size_t>(solver.num_vars());
  result.num_clauses = solver.num_clauses();

  if (!options.select_activity_seed.empty()) {
    assert(options.select_activity_seed.size() == nl.size());
    std::uint32_t max_marks = 1;
    for (GateId g : inst.instrumented) {
      max_marks = std::max(max_marks, options.select_activity_seed[g]);
    }
    for (std::size_t i = 0; i < inst.instrumented.size(); ++i) {
      const std::uint32_t marks =
          options.select_activity_seed[inst.instrumented[i]];
      if (marks == 0) continue;
      solver.boost_activity(inst.select_var[i],
                            static_cast<double>(marks) /
                                static_cast<double>(max_marks));
      solver.set_polarity_hint(inst.select_var[i], true);
    }
  }

  Timer solve_timer;
  bool first_recorded = false;
  for (unsigned bound = 1; bound <= options.k; ++bound) {
    const auto assumptions = inst.assume_at_most(bound);
    for (;;) {
      if (options.deadline.expired() ||
          (options.max_solutions >= 0 &&
           static_cast<std::int64_t>(result.solutions.size()) >=
               options.max_solutions)) {
        result.complete = false;
        result.all_seconds = solve_timer.seconds();
        if (!first_recorded) result.first_seconds = result.all_seconds;
        result.solver_stats = solver.stats();
        return result;
      }
      solver.set_deadline(options.deadline);
      const sat::LBool status = solver.solve(assumptions);
      if (status == sat::LBool::kUndef) {
        result.complete = false;
        break;
      }
      if (status == sat::LBool::kFalse) break;  // bound exhausted
      std::vector<GateId> correction = inst.selected_gates_from_model();
      if (!first_recorded) {
        result.first_seconds = solve_timer.seconds();
        first_recorded = true;
      }
      // Block this correction and every superset of it.
      sat::Clause blocking;
      for (GateId g : correction) {
        blocking.push_back(sat::neg(inst.select_var[inst.select_index[g]]));
      }
      result.solutions.push_back(std::move(correction));
      // block_model keeps the search trail alive: the next solve() with the
      // same assumptions resumes instead of replaying the whole instance.
      if (blocking.empty() || !solver.block_model(std::move(blocking))) {
        // Empty correction satisfies every test (cannot happen with failing
        // tests) or the instance became UNSAT: enumeration finished.
        result.all_seconds = solve_timer.seconds();
        if (!first_recorded) result.first_seconds = result.all_seconds;
        result.solver_stats = solver.stats();
        return result;
      }
    }
    if (!result.complete) break;
  }
  result.all_seconds = solve_timer.seconds();
  if (!first_recorded) result.first_seconds = result.all_seconds;
  result.solver_stats = solver.stats();
  return result;
}

}  // namespace satdiag
