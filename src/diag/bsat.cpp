#include "diag/bsat.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <optional>
#include <set>

#include "exec/parallel.hpp"
#include "netlist/analysis.hpp"
#include "obs/trace.hpp"

namespace satdiag {
namespace {

void seed_select_activity(sat::Solver& solver,
                          const DiagnosisInstance& inst,
                          const std::vector<std::uint32_t>& marks,
                          std::size_t netlist_size) {
  assert(marks.size() == netlist_size);
  (void)netlist_size;
  std::uint32_t max_marks = 1;
  for (GateId g : inst.instrumented) {
    max_marks = std::max(max_marks, marks[g]);
  }
  for (std::size_t i = 0; i < inst.instrumented.size(); ++i) {
    const std::uint32_t m = marks[inst.instrumented[i]];
    if (m == 0) continue;
    solver.boost_activity(inst.select_var[i],
                          static_cast<double>(m) /
                              static_cast<double>(max_marks));
    solver.set_polarity_hint(inst.select_var[i], true);
  }
}

BsatResult serial_sat_diagnose(const Netlist& nl, const TestSet& tests,
                               const BsatOptions& options) {
  BsatResult result;

  Timer build_timer;
  DiagnosisInstanceOptions inst_options = options.instance;
  inst_options.max_k = options.k;
  inst_options.cone_of_influence = options.cone_of_influence;
  // Declared before the instance so instance teardown at function exit is
  // still inside the enumerate phase (the report's phase split is expected
  // to account for (nearly) the whole run).
  obs::Span enumerate_span(obs::Span::kDeferred);
  std::optional<DiagnosisInstance> inst_holder;
  {
    obs::Span build_span("phase.build");
    inst_holder.emplace(build_diagnosis_instance(nl, tests, inst_options));
  }
  DiagnosisInstance& inst = *inst_holder;
  sat::Solver& solver = inst.solver;
  result.build_seconds = build_timer.seconds();
  result.num_vars = static_cast<std::size_t>(solver.num_vars());
  result.num_clauses = solver.num_clauses();

  if (!options.select_activity_seed.empty()) {
    seed_select_activity(solver, inst, options.select_activity_seed,
                         nl.size());
  }

  enumerate_span.open("phase.enumerate");
  Timer solve_timer;
  bool first_recorded = false;
  // Index of the current bound's first solution: each bound's slice is
  // sorted into the canonical order when the bound finishes (or on early
  // exit), matching the parallel path's merge order.
  std::size_t bound_start = 0;
  const auto finish = [&] {
    std::sort(result.solutions.begin() +
                  static_cast<std::ptrdiff_t>(bound_start),
              result.solutions.end());
    result.all_seconds = solve_timer.seconds();
    if (!first_recorded) result.first_seconds = result.all_seconds;
    result.solver_stats = solver.stats();
  };
  for (unsigned bound = 1; bound <= options.k; ++bound) {
    obs::Span bound_span("bsat.bound", "bound", bound);
    const auto assumptions = inst.assume_at_most(bound);
    bound_start = result.solutions.size();
    for (;;) {
      if (options.deadline.expired() ||
          (options.max_solutions >= 0 &&
           static_cast<std::int64_t>(result.solutions.size()) >=
               options.max_solutions)) {
        result.complete = false;
        finish();
        return result;
      }
      solver.set_deadline(options.deadline);
      const sat::LBool status = solver.solve(assumptions);
      if (status == sat::LBool::kUndef) {
        result.complete = false;
        break;
      }
      if (status == sat::LBool::kFalse) break;  // bound exhausted
      std::vector<GateId> correction = inst.selected_gates_from_model();
      if (!first_recorded) {
        result.first_seconds = solve_timer.seconds();
        first_recorded = true;
      }
      // Block this correction and every superset of it.
      sat::Clause blocking;
      for (GateId g : correction) {
        blocking.push_back(sat::neg(inst.select_var[inst.select_index[g]]));
      }
      result.solutions.push_back(std::move(correction));
      // block_model keeps the search trail alive: the next solve() with the
      // same assumptions resumes instead of replaying the whole instance.
      if (blocking.empty() || !solver.block_model(std::move(blocking))) {
        // Empty correction satisfies every test (cannot happen with failing
        // tests) or the instance became UNSAT: enumeration finished.
        finish();
        return result;
      }
    }
    std::sort(result.solutions.begin() +
                  static_cast<std::ptrdiff_t>(bound_start),
              result.solutions.end());
    bound_start = result.solutions.size();
    if (!result.complete) break;
  }
  result.all_seconds = solve_timer.seconds();
  if (!first_recorded) result.first_seconds = result.all_seconds;
  result.solver_stats = solver.stats();
  return result;
}

/// One worker of the candidate-parallel enumeration. Every shard builds an
/// IDENTICAL full-universe instance and restricts itself to corrections
/// whose minimum gate falls in its partition by assuming a per-partition
/// activation variable (the partition clauses of *all* partitions are
/// present in *every* shard, guarded by their act vars). Identical clause
/// databases are what makes cross-shard learnt sharing sound: after the
/// symmetric cross-blocking at a bound barrier, every shard's irredundant
/// set implies every other's, so any learnt is implied everywhere. The
/// partitions stay disjoint and exhaustive over the solution space, so the
/// merged per-bound sets equal the serial enumeration's.
struct BsatShard {
  std::unique_ptr<DiagnosisInstance> inst;
  sat::Lit activate = sat::Lit::undef();  // this shard's partition act var
  std::vector<std::vector<GateId>> bound_solutions;
  bool exhausted = false;  // instance became UNSAT at the root
};

// Per-barrier learnt exchange limits: glue cap and batch size per shard.
constexpr unsigned kShardShareMaxLbd = 4;
constexpr std::size_t kShardShareMaxClauses = 4096;

BsatResult parallel_sat_diagnose(const Netlist& nl, const TestSet& tests,
                                 const BsatOptions& options,
                                 const std::vector<GateId>& universe) {
  BsatResult result;
  // Covers shard teardown and the pool join at function exit (see the
  // serial path for the ordering rationale).
  obs::Span enumerate_span(obs::Span::kDeferred);
  // Ceil division twice: first the partition width for the requested lane
  // count, then the number of shards that width actually fills — e.g. 9
  // gates on 8 lanes give width 2 and only 5 shards, never a shard whose
  // begin lies past the universe end.
  const std::size_t width =
      std::min(options.num_threads, universe.size());
  const std::size_t partition = (universe.size() + width - 1) / width;
  const std::size_t num_shards =
      (universe.size() + partition - 1) / partition;

  exec::ThreadPool pool(options.num_threads);
  std::vector<BsatShard> shards(num_shards);

  Timer build_timer;
  obs::Span build_span("phase.build");
  exec::parallel_for(
      pool, num_shards,
      [&](std::size_t s, std::size_t) {
        DiagnosisInstanceOptions inst_options = options.instance;
        inst_options.max_k = options.k;
        inst_options.cone_of_influence = options.cone_of_influence;
        // Identical instance in every shard: same universe, same variable
        // numbering (required for sharing blocking clauses and learnts).
        inst_options.instrumented = universe;
        shards[s].inst = std::make_unique<DiagnosisInstance>(
            build_diagnosis_instance(nl, tests, inst_options));
        DiagnosisInstance& inst = *shards[s].inst;
        // Partition restriction, act-var guarded so every shard carries all
        // partitions' clauses: act_p -> (no select before partition p) and
        // act_p -> (some select inside partition p). Shard s assumes act_s.
        // Frozen non-decision vars: they appear in future assumptions.
        for (std::size_t p = 0; p < num_shards; ++p) {
          const sat::Var act =
              inst.solver.new_var(/*decidable=*/false);
          inst.solver.freeze(act);
          if (p == s) shards[s].activate = sat::pos(act);
          const std::size_t begin = p * partition;
          const std::size_t end =
              std::min(begin + partition, universe.size());
          for (std::size_t i = 0; i < begin; ++i) {
            inst.solver.add_clause(sat::neg(act),
                                   sat::neg(inst.select_var[i]));
          }
          sat::Clause any_in_partition;
          any_in_partition.push_back(sat::neg(act));
          for (std::size_t i = begin; i < end; ++i) {
            any_in_partition.push_back(sat::pos(inst.select_var[i]));
          }
          inst.solver.add_clause(std::move(any_in_partition));
        }
        if (!inst.solver.ok()) shards[s].exhausted = true;
        if (!options.select_activity_seed.empty()) {
          seed_select_activity(inst.solver, inst,
                               options.select_activity_seed, nl.size());
        }
      },
      /*grain=*/1);
  build_span.close();
  result.build_seconds = build_timer.seconds();
  // Every shard stamps its copies from the SAME cached ClauseStream
  // template: the first shard to miss the artifact cache runs the encoder
  // walk once, the others block on its in-flight future and relocate the
  // finished template (no redundant re-encoding per shard). The resulting
  // clause databases must be identical — the cross-blocking and learnt
  // exchange below are only sound because of it — so verify the cheap
  // invariant here.
#ifndef NDEBUG
  for (std::size_t s = 1; s < num_shards; ++s) {
    assert(shards[s].inst->solver.num_vars() ==
           shards[0].inst->solver.num_vars());
    assert(shards[s].inst->solver.num_clauses() ==
           shards[0].inst->solver.num_clauses());
  }
#endif
  // All worker instances are identical; report the first (it differs from
  // the serial instance only by the activation vars/clauses).
  result.num_vars =
      static_cast<std::size_t>(shards[0].inst->solver.num_vars());
  result.num_clauses = shards[0].inst->solver.num_clauses();

  enumerate_span.open("phase.enumerate");
  Timer solve_timer;
  bool first_recorded = false;
  std::atomic<std::int64_t> total_found{0};
  std::atomic<bool> truncated{false};
  for (unsigned bound = 1; bound <= options.k; ++bound) {
    obs::Span bound_span("bsat.bound", "bound", bound);
    exec::parallel_for(
        pool, num_shards,
        [&](std::size_t s, std::size_t) {
          BsatShard& shard = shards[s];
          shard.bound_solutions.clear();
          if (shard.exhausted) return;
          DiagnosisInstance& inst = *shard.inst;
          auto assumptions = inst.assume_at_most(bound);
          assumptions.push_back(shard.activate);
          for (;;) {
            if (options.deadline.expired() ||
                (options.max_solutions >= 0 &&
                 total_found.load(std::memory_order_relaxed) >=
                     options.max_solutions)) {
              truncated.store(true, std::memory_order_relaxed);
              return;
            }
            inst.solver.set_deadline(options.deadline);
            const sat::LBool status = inst.solver.solve(assumptions);
            if (status == sat::LBool::kUndef) {
              truncated.store(true, std::memory_order_relaxed);
              return;
            }
            if (status == sat::LBool::kFalse) return;  // bound exhausted
            std::vector<GateId> correction =
                inst.selected_gates_from_model();
            sat::Clause blocking;
            for (GateId g : correction) {
              blocking.push_back(
                  sat::neg(inst.select_var[inst.select_index[g]]));
            }
            shard.bound_solutions.push_back(std::move(correction));
            total_found.fetch_add(1, std::memory_order_relaxed);
            // The partition clause guarantees non-empty corrections.
            if (!inst.solver.block_model(std::move(blocking))) {
              shard.exhausted = true;
              return;
            }
          }
        },
        /*grain=*/1);

    // Barrier: merge this bound in partition order, canonicalize, and
    // cross-block SYMMETRICALLY — every shard receives every other shard's
    // solutions. Earlier shards need the clauses to not rediscover supersets
    // (a superset's minimum gate can move to an earlier partition); the
    // symmetric direction keeps all clause databases mutual supersets, the
    // precondition for the learnt exchange below.
    const std::size_t bound_start = result.solutions.size();
    for (std::size_t s = 0; s < num_shards; ++s) {
      for (std::size_t t = 0; t < num_shards; ++t) {
        if (t == s || shards[t].exhausted) continue;
        DiagnosisInstance& inst = *shards[t].inst;
        for (const auto& solution : shards[s].bound_solutions) {
          sat::Clause blocking;
          for (GateId g : solution) {
            blocking.push_back(
                sat::neg(inst.select_var[inst.select_index[g]]));
          }
          if (!inst.solver.add_clause(std::move(blocking))) {
            shards[t].exhausted = true;
            break;
          }
        }
      }
      for (auto& solution : shards[s].bound_solutions) {
        result.solutions.push_back(std::move(solution));
      }
      shards[s].bound_solutions.clear();
    }

    // Learnt exchange at the barrier. Sound here and only here: after the
    // symmetric cross-blocking every shard's irredundant clause set implies
    // every other's (identical instances + the same blocking clauses), so a
    // learnt derived in any shard is implied in all of them. Deterministic:
    // each shard's batch is a pure function of its own (single-threaded)
    // search, and imports happen in fixed shard order.
    if (options.share_learnts && num_shards > 1) {
      std::vector<std::vector<sat::SharedClause>> batches(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (shards[s].exhausted) continue;
        shards[s].inst->solver.export_learnts(
            kShardShareMaxLbd, kShardShareMaxClauses, batches[s]);
      }
      exec::parallel_for(
          pool, num_shards,
          [&](std::size_t t, std::size_t) {
            if (shards[t].exhausted) return;
            sat::Solver& solver = shards[t].inst->solver;
            std::set<sat::Clause> seen;  // dedup across producer batches
            for (std::size_t s = 0; s < num_shards; ++s) {
              if (s == t) continue;
              for (const sat::SharedClause& shared : batches[s]) {
                if (!seen.insert(shared.lits).second) continue;
                solver.import_clause(shared);
                if (!solver.ok()) {
                  shards[t].exhausted = true;
                  return;
                }
              }
            }
          },
          /*grain=*/1);
    }
    std::sort(result.solutions.begin() +
                  static_cast<std::ptrdiff_t>(bound_start),
              result.solutions.end());
    if (options.max_solutions >= 0 &&
        static_cast<std::int64_t>(result.solutions.size()) >
            options.max_solutions) {
      result.solutions.resize(
          static_cast<std::size_t>(options.max_solutions));
      truncated.store(true, std::memory_order_relaxed);
    }
    if (!first_recorded && result.solutions.size() > bound_start) {
      result.first_seconds = solve_timer.seconds();
      first_recorded = true;
    }
    if (truncated.load(std::memory_order_relaxed)) {
      result.complete = false;
      break;
    }
  }
  result.all_seconds = solve_timer.seconds();
  if (!first_recorded) result.first_seconds = result.all_seconds;
  for (const BsatShard& shard : shards) {
    result.solver_stats.merge(shard.inst->solver.stats());
  }
  return result;
}

}  // namespace

BsatResult basic_sat_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsatOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  assert(!tests.empty());
  if (options.num_threads > 1) {
    std::vector<GateId> universe = options.instance.instrumented;
    if (universe.empty()) {
      for (GateId g = 0; g < nl.size(); ++g) {
        if (nl.is_combinational(g)) universe.push_back(g);
      }
    } else {
      std::sort(universe.begin(), universe.end());
      universe.erase(std::unique(universe.begin(), universe.end()),
                     universe.end());
    }
    if (options.cone_of_influence) {
      // Pre-apply the instance builder's universe restriction so the
      // partition boundaries index the instrumented universe the shards
      // actually build (the activation clauses index select_var directly).
      // Must mirror the builder's root selection exactly: with
      // constrain_passing_outputs every copy constrains all outputs.
      std::vector<GateId> roots;
      if (options.instance.constrain_passing_outputs) {
        roots.assign(nl.outputs().begin(), nl.outputs().end());
      } else {
        for (const Test& test : tests) {
          roots.push_back(test_output_gate(nl, test));
        }
      }
      const std::vector<bool> cone = fanin_cone(nl, roots);
      std::erase_if(universe, [&](GateId g) { return !cone[g]; });
    }
    if (universe.size() > 1) {
      return parallel_sat_diagnose(nl, tests, options, universe);
    }
  }
  return serial_sat_diagnose(nl, tests, options);
}

}  // namespace satdiag
