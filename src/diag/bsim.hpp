// BSIM — basic simulation-based diagnosis (BasicSimDiagnose, Fig. 1).
//
// Simulates the implementation on every test (64 tests per parallel sweep)
// and runs path tracing from each erroneous output. Produces the candidate
// sets C_i, the per-gate mark counts M(g), their union, and the set Gmax of
// gates marked by the maximal number of tests — everything Table 3's BSIM
// columns report.
#pragma once

#include "diag/path_trace.hpp"
#include "netlist/testset.hpp"

namespace satdiag {

struct BsimOptions {
  PathTraceOptions trace;
  /// X-refinement of the path-trace marks: intersect every C_i with the
  /// gates whose injected X reaches test i's erroneous output (the X-list
  /// forward-propagation criterion applied to the marked candidates).
  /// Runs on the lane-batched sim3 injection mode — 64 / |tests| marked
  /// gates per sweep — so the extra cost is a small number of dirty-cone
  /// sweeps, not one per gate. Off by default: plain BasicSimDiagnose.
  bool x_refine = false;
  /// Worker lanes for the refinement sweeps (exec/ runtime); results are
  /// bit-identical for every thread count.
  std::size_t num_threads = 1;
};

struct BsimResult {
  /// C_i per test, sorted gate ids, sources excluded.
  std::vector<std::vector<GateId>> candidate_sets;
  /// M(g): number of tests whose C_i contains g.
  std::vector<std::uint32_t> mark_count;
  /// Union of all C_i (sorted).
  std::vector<GateId> marked_union;
  /// Gates with maximal M(g) among marked gates (Gmax in Table 3).
  std::vector<GateId> gmax;
  std::uint32_t max_marks = 0;
  /// BsimOptions::x_refine only: refined_sets[i] = C_i ∩ {g : X injected at
  /// g reaches test i's erroneous output}. A strict necessary condition for
  /// single error sites, so for a single-error instance the true site stays
  /// in every refined set it was marked in. Empty when x_refine is off.
  std::vector<std::vector<GateId>> refined_sets;
};

/// Run BasicSimDiagnose on implementation `nl` (combinational view) with
/// test-set `tests`. `rng` is only needed for MarkPolicy::kRandomControlling.
BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsimOptions& options, Rng* rng);

/// Back-compat overload: path-trace options only, no X-refinement.
BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const PathTraceOptions& options = {},
                              Rng* rng = nullptr);

}  // namespace satdiag
