// BSIM — basic simulation-based diagnosis (BasicSimDiagnose, Fig. 1).
//
// Simulates the implementation on every test (64 tests per parallel sweep)
// and runs path tracing from each erroneous output. Produces the candidate
// sets C_i, the per-gate mark counts M(g), their union, and the set Gmax of
// gates marked by the maximal number of tests — everything Table 3's BSIM
// columns report.
#pragma once

#include "diag/path_trace.hpp"
#include "netlist/testset.hpp"

namespace satdiag {

struct BsimResult {
  /// C_i per test, sorted gate ids, sources excluded.
  std::vector<std::vector<GateId>> candidate_sets;
  /// M(g): number of tests whose C_i contains g.
  std::vector<std::uint32_t> mark_count;
  /// Union of all C_i (sorted).
  std::vector<GateId> marked_union;
  /// Gates with maximal M(g) among marked gates (Gmax in Table 3).
  std::vector<GateId> gmax;
  std::uint32_t max_marks = 0;
};

/// Run BasicSimDiagnose on implementation `nl` (combinational view) with
/// test-set `tests`. `rng` is only needed for MarkPolicy::kRandomControlling.
BsimResult basic_sim_diagnose(const Netlist& nl, const TestSet& tests,
                              const PathTraceOptions& options = {},
                              Rng* rng = nullptr);

}  // namespace satdiag
