// Effect analysis: "determining whether changing the functionality of one or
// more internal circuit lines corrects the value of the erroneous output".
//
// Two engines:
//  * exact SAT check — the diagnosis instance restricted by assumptions
//    (selects of the candidate on, all others off) is satisfiable iff the
//    candidate is a valid correction (Definition 3),
//  * pessimistic 01X simulation check — injecting X at the candidate gates
//    must at least drive every erroneous output to X; a cheap necessary
//    condition used as a pre-filter (this is the forward-implication idea of
//    the X-list approach).
#pragma once

#include "cnf/mux_instrument.hpp"
#include "netlist/testset.hpp"
#include "sim/sim3.hpp"
#include "util/timer.hpp"

namespace satdiag {

class EffectAnalyzer {
 public:
  /// Builds one reusable diagnosis instance over all combinational gates.
  EffectAnalyzer(const Netlist& nl, const TestSet& tests);

  /// Exact: can some replacement of the candidate gates' functions rectify
  /// every test? (Definition 3.)
  bool is_valid_correction(const std::vector<GateId>& candidate,
                           Deadline deadline = {});

  /// Necessary condition via 01X simulation: X injected at the candidate
  /// gates reaches the erroneous output of every test. Linear time; never
  /// returns false for a valid correction. Const but not thread-safe: it
  /// resimulates through a mutable member simulator (use x_check_batch for
  /// candidate-parallel work).
  bool x_check(const std::vector<GateId>& candidate) const;

  /// Lane-batched, candidate-parallel x_check over the exec/ runtime:
  /// 64 / |tests| candidates are evaluated per sim3 sweep (one candidate
  /// per lane group, Sim3XBatch), whole batches are sharded across
  /// `num_threads` workers. Entry i answers x_check(candidates[i]);
  /// bit-identical to the serial calls for every thread count.
  std::vector<std::uint8_t> x_check_batch(
      const std::vector<std::vector<GateId>>& candidates,
      std::size_t num_threads) const;

  const Netlist& netlist() const { return *nl_; }
  std::size_t checks_performed() const { return checks_; }

 private:
  const Netlist* nl_;
  const TestSet* tests_;
  DiagnosisInstance inst_;
  // One long-lived 3-valued simulator across x_check calls: with at most 64
  // tests the input words survive between calls, so each check pays only the
  // injection cones of its candidate (dirty-cone resim), not a full sweep.
  mutable ThreeValuedSimulator sim3_;
  std::size_t checks_ = 0;
};

}  // namespace satdiag
