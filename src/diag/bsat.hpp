// BSAT — basic SAT-based diagnosis (BasicSATDiagnose, Fig. 3).
//
// Builds the multiplexer-instrumented instance (one circuit copy per test),
// then for i = 1..k enumerates all solutions under the cardinality
// assumption "at most i selects", blocking each solution. Blocking smaller
// corrections before increasing the limit guarantees that every returned
// correction contains only essential candidates (Lemma 3); every returned
// correction is valid by construction (Lemma 1).
#pragma once

#include "cnf/mux_instrument.hpp"
#include "diag/path_trace.hpp"
#include "netlist/testset.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct BsatOptions {
  unsigned k = 1;
  /// Instance construction knobs (instrumented set, gating clauses,
  /// cardinality encoding, ...). max_k inside is overridden with `k`.
  DiagnosisInstanceOptions instance;
  std::int64_t max_solutions = -1;  // unlimited when negative
  Deadline deadline;
  /// Hybrid hook (Sec. 6): per-gate weights (e.g. BSIM mark counts M(g));
  /// select variables of heavily marked gates are boosted in the decision
  /// heuristic and hinted to positive polarity. Empty = off.
  std::vector<std::uint32_t> select_activity_seed;
};

struct BsatResult {
  /// Essential valid corrections of size 1..k, in discovery order.
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;

  double build_seconds = 0.0;  // "CNF" column of Table 2
  double first_seconds = 0.0;  // "One"
  double all_seconds = 0.0;    // "All"

  std::size_t num_vars = 0;
  std::size_t num_clauses = 0;
  sat::Solver::Stats solver_stats;
};

/// Run BasicSATDiagnose(nl, tests, k).
BsatResult basic_sat_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsatOptions& options);

}  // namespace satdiag
