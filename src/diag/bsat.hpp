// BSAT — basic SAT-based diagnosis (BasicSATDiagnose, Fig. 3).
//
// Builds the multiplexer-instrumented instance (one circuit copy per test),
// then for i = 1..k enumerates all solutions under the cardinality
// assumption "at most i selects", blocking each solution. Blocking smaller
// corrections before increasing the limit guarantees that every returned
// correction contains only essential candidates (Lemma 3); every returned
// correction is valid by construction (Lemma 1).
#pragma once

#include "cnf/mux_instrument.hpp"
#include "diag/path_trace.hpp"
#include "netlist/testset.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct BsatOptions {
  unsigned k = 1;
  /// Instance construction knobs (instrumented set, gating clauses,
  /// cardinality encoding, ...). max_k inside is overridden with `k`.
  DiagnosisInstanceOptions instance;
  std::int64_t max_solutions = -1;  // unlimited when negative
  Deadline deadline;
  /// Cone-of-influence reduction of the diagnosis instance (see
  /// DiagnosisInstanceOptions::cone_of_influence): each test copy encodes
  /// only the fanin cone of its erroneous output and the candidate universe
  /// is restricted to the union of those cones. The enumerated solution
  /// sets are provably unchanged — a gate outside every cone is never
  /// essential — so this is on by default; switch off to reproduce the
  /// paper's unreduced instance sizes.
  bool cone_of_influence = true;
  /// Hybrid hook (Sec. 6): per-gate weights (e.g. BSIM mark counts M(g));
  /// select variables of heavily marked gates are boosted in the decision
  /// heuristic and hinted to positive polarity. Empty = off.
  std::vector<std::uint32_t> select_activity_seed;
  /// Candidate-parallel enumeration lanes (exec/ runtime). With N > 1 the
  /// instrumented set is partitioned by the minimum selected gate: every
  /// worker builds an identical full-universe instance and restricts itself
  /// to corrections whose lowest-indexed gate falls in its partition by
  /// assuming a per-partition activation variable. Bounds are synchronized
  /// at a barrier where every worker's solutions are merged (canonical
  /// order), cross-blocked into every other worker, and low-LBD learnts are
  /// exchanged (see share_learnts). Complete enumerations are bit-identical
  /// for every thread count; truncated runs (deadline / max_solutions) may
  /// differ in which solutions they kept.
  std::size_t num_threads = 1;
  /// Exchange low-glue learnt clauses between partition workers at each
  /// bound barrier (after symmetric cross-blocking, where every worker's
  /// clause database implies every other's, making the exchange sound).
  /// Deterministic; affects only search effort, never the solution sets.
  bool share_learnts = true;
};

struct BsatResult {
  /// Essential valid corrections of size 1..k: bounds in ascending order,
  /// each bound's solutions in canonical (lexicographically sorted) order —
  /// the thread-count-invariant order of the parallel enumeration.
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;

  double build_seconds = 0.0;  // "CNF" column of Table 2
  double first_seconds = 0.0;  // "One"
  double all_seconds = 0.0;    // "All"

  std::size_t num_vars = 0;
  std::size_t num_clauses = 0;
  sat::Solver::Stats solver_stats;
};

/// Run BasicSATDiagnose(nl, tests, k).
BsatResult basic_sat_diagnose(const Netlist& nl, const TestSet& tests,
                              const BsatOptions& options);

}  // namespace satdiag
