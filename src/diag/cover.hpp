// COV — diagnosis via set covering (SCDiagnose, Fig. 4).
//
// The candidate sets C_i from BSIM form a set covering instance S; every
// irredundant cover C* with |C*| <= k is a diagnosis. Like the paper (which
// fed the covering problem to Zchaff) the default solver is SAT: one selector
// variable per gate in the universe, one clause per C_i, a cardinality
// counter, and all-solutions enumeration with model minimization + subset
// blocking so exactly the irredundant covers are produced. An independent
// branch-and-bound solver cross-checks the SAT path in tests.
#pragma once

#include "cnf/cardinality.hpp"
#include "diag/bsim.hpp"
#include "util/timer.hpp"

namespace satdiag {

struct CovOptions {
  unsigned k = 1;
  CardEncoding card_encoding = CardEncoding::kSequential;
  std::int64_t max_solutions = -1;  // unlimited when negative
  Deadline deadline;
};

struct CovResult {
  /// All irredundant covers of size <= k (sorted gate ids, sorted list).
  std::vector<std::vector<GateId>> solutions;
  bool complete = true;

  // Timing split the way Table 2 reports it.
  double build_seconds = 0.0;  // "CNF" (excluding BSIM itself)
  double first_seconds = 0.0;  // "One"
  double all_seconds = 0.0;    // "All"
};

/// Solve the covering instance given the candidate sets (each set must be
/// non-empty; gates appearing in no set are ignored).
CovResult solve_covering_sat(const std::vector<std::vector<GateId>>& sets,
                             const CovOptions& options);

/// Exact branch-and-bound enumeration of all irredundant covers of size
/// <= k. Exponential; intended for cross-checking and small instances.
std::vector<std::vector<GateId>> solve_covering_bnb(
    const std::vector<std::vector<GateId>>& sets, unsigned k);

/// Convenience wrapper: BSIM then covering (the full SCDiagnose).
CovResult sc_diagnose(const Netlist& nl, const TestSet& tests,
                      const CovOptions& options,
                      const PathTraceOptions& trace_options = {},
                      Rng* rng = nullptr);

/// True when `cover` hits every set in `sets`.
bool is_cover(const std::vector<std::vector<GateId>>& sets,
              const std::vector<GateId>& cover);

/// True when removing any single element breaks the cover.
bool is_irredundant_cover(const std::vector<std::vector<GateId>>& sets,
                          const std::vector<GateId>& cover);

}  // namespace satdiag
