#include "diag/xlist.hpp"

#include <algorithm>
#include <cassert>

#include "diag/cover.hpp"
#include "exec/parallel.hpp"
#include "netlist/analysis.hpp"
#include "sim/sim3.hpp"

namespace satdiag {

std::vector<std::uint64_t> x_reach_masks(exec::ThreadPool& pool,
                                         const Netlist& nl,
                                         const TestSet& tests,
                                         std::span<const GateId> candidates,
                                         const Deadline& deadline) {
  assert(!tests.empty() && tests.size() <= 64);
  std::vector<std::uint64_t> masks(candidates.size(), 0);
  if (candidates.empty()) return masks;
  // The prototype pays the one full priming sweep (replicated test chunk,
  // no X); worker clones start from its warm value planes, so every batch
  // costs only the merged injection cones of 64 / |tests| candidates.
  const Sim3XBatch prototype(nl, tests);
  const std::size_t cap = prototype.capacity();
  const std::size_t num_batches = (candidates.size() + cap - 1) / cap;
  exec::LaneLocal<Sim3XBatch> lane_batch(pool.num_threads());
  exec::parallel_for(pool, num_batches, [&](std::size_t batch,
                                            std::size_t lane) {
    if (deadline.expired()) return;
    Sim3XBatch& xb = lane_batch.get(lane, [&] { return prototype; });
    const std::size_t begin = batch * cap;
    const std::size_t end = std::min(begin + cap, candidates.size());
    xb.run_singles(candidates.subspan(begin, end - begin), &masks[begin]);
  });
  return masks;
}

namespace {

/// For every combinational gate, a bitmask (over tests, up to 64) telling
/// which tests' erroneous outputs turn X when X is injected at that gate —
/// x_reach_masks scattered into a gate-indexed table.
std::vector<std::uint64_t> reach_masks(exec::ThreadPool& pool,
                                       const Netlist& nl, const TestSet& tests,
                                       const std::vector<GateId>& candidates,
                                       const Deadline& deadline) {
  std::vector<std::uint64_t> mask(nl.size(), 0);
  const auto per_candidate =
      x_reach_masks(pool, nl, tests, candidates, deadline);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    mask[candidates[i]] = per_candidate[i];
  }
  return mask;
}

std::vector<GateId> candidate_pool(const Netlist& nl, const TestSet& tests,
                                   const XListOptions& options) {
  std::vector<GateId> pool;
  if (options.restrict_to_fanin_cones) {
    std::vector<GateId> outs;
    for (const Test& t : tests) outs.push_back(test_output_gate(nl, t));
    const std::vector<bool> cone = fanin_cone(nl, outs);
    for (GateId g = 0; g < nl.size(); ++g) {
      if (cone[g] && nl.is_combinational(g)) pool.push_back(g);
    }
  } else {
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) pool.push_back(g);
    }
  }
  return pool;
}

/// Select the first `max_tuples` tuples (in `tuples` order) whose joint X
/// injection floods every test's erroneous output — the scalar per-tuple
/// criterion, evaluated lane-batched: one Sim3XBatch per 64-test chunk
/// (built once, the replicated inputs persist across batches), tuples
/// verified in capacity-sized batches, stopping as soon as enough have
/// passed or the deadline expires (unverified tuples are never returned,
/// exactly like the scalar loop's early exit).
std::vector<std::vector<GateId>> verify_joint_covers(
    const Netlist& nl, const TestSet& tests,
    std::span<const std::vector<GateId>> tuples, std::size_t max_tuples,
    const Deadline& deadline) {
  std::vector<std::vector<GateId>> kept;
  if (tuples.empty() || max_tuples == 0) return kept;
  std::vector<Sim3XBatch> chunks;
  std::size_t cap = 64;
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, tests.size() - base);
    if (deadline.expired()) return kept;  // priming sweeps are not free
    chunks.emplace_back(nl, tests, base, count);
    cap = std::min(cap, chunks.back().capacity());
  }
  std::uint64_t masks[64];
  for (std::size_t begin = 0;
       begin < tuples.size() && kept.size() < max_tuples; begin += cap) {
    if (deadline.expired()) break;
    const std::size_t n = std::min(cap, tuples.size() - begin);
    std::uint8_t ok[64];
    std::fill(ok, ok + n, 1);
    for (Sim3XBatch& chunk : chunks) {
      const std::uint64_t full = chunk.full_mask();
      chunk.run_tuples(tuples.subspan(begin, n), masks);
      for (std::size_t i = 0; i < n; ++i) {
        if (masks[i] != full) ok[i] = 0;
      }
    }
    for (std::size_t i = 0; i < n && kept.size() < max_tuples; ++i) {
      if (ok[i]) kept.push_back(tuples[begin + i]);
    }
  }
  return kept;
}

}  // namespace

std::vector<GateId> xlist_single_candidates(const Netlist& nl,
                                            const TestSet& tests,
                                            const XListOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  std::vector<GateId> result;
  if (tests.empty()) return result;
  const std::vector<GateId> pool = candidate_pool(nl, tests, options);
  exec::ThreadPool workers(options.num_threads);

  // Process tests in batches of 64 pattern slots; a candidate survives only
  // if it covers every batch completely.
  std::vector<bool> alive(nl.size(), false);
  for (GateId g : pool) alive[g] = true;
  // Exact structural pre-filter: a surviving candidate's X must reach every
  // test's erroneous output, so it must lie in the *intersection* of their
  // fanin cones — anything outside provably fails the criterion, so the
  // result set is unchanged (pinned against the unrestricted reference in
  // tests/sim/sim3_diff_test.cpp and the diff harness).
  {
    std::vector<GateId> outs;
    for (const Test& t : tests) outs.push_back(test_output_gate(nl, t));
    std::sort(outs.begin(), outs.end());
    outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
    for (const GateId out : outs) {
      const std::vector<bool> cone = fanin_cone(nl, {out});
      for (GateId g : pool) {
        if (!cone[g]) alive[g] = false;
      }
    }
  }
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch_size = std::min<std::size_t>(64, tests.size() - base);
    const TestSet batch(tests.begin() + static_cast<std::ptrdiff_t>(base),
                        tests.begin() +
                            static_cast<std::ptrdiff_t>(base + batch_size));
    std::vector<GateId> still;
    for (GateId g : pool) {
      if (alive[g]) still.push_back(g);
    }
    const std::uint64_t full = batch_size == 64
                                   ? ~0ULL
                                   : ((1ULL << batch_size) - 1);
    const auto masks = reach_masks(workers, nl, batch, still, options.deadline);
    for (GateId g : still) {
      if (masks[g] != full) alive[g] = false;
    }
    if (options.deadline.expired()) break;
  }
  for (GateId g : pool) {
    if (alive[g]) result.push_back(g);
  }
  return result;
}

std::vector<std::vector<GateId>> xlist_tuple_candidates(
    const Netlist& nl, const TestSet& tests, unsigned k,
    std::size_t max_tuples, const XListOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  std::vector<std::vector<GateId>> result;
  if (tests.empty()) return result;

  // Per-test X-lists (first 64 tests bound the covering stage; additional
  // tests are still enforced by the joint verification below).
  const std::size_t bound = std::min<std::size_t>(64, tests.size());
  const TestSet head(tests.begin(),
                     tests.begin() + static_cast<std::ptrdiff_t>(bound));
  const std::vector<GateId> pool = candidate_pool(nl, tests, options);
  exec::ThreadPool workers(options.num_threads);
  const auto masks = reach_masks(workers, nl, head, pool, options.deadline);

  std::vector<std::vector<GateId>> per_test(bound);
  for (GateId g : pool) {
    for (std::size_t b = 0; b < bound; ++b) {
      if ((masks[g] >> b) & 1ULL) per_test[b].push_back(g);
    }
  }
  for (const auto& list : per_test) {
    if (list.empty()) return result;  // some test unexplainable: no tuples
  }

  CovOptions cov;
  cov.k = k;
  cov.deadline = options.deadline;
  cov.max_solutions = static_cast<std::int64_t>(max_tuples) * 4;
  const CovResult covers = solve_covering_sat(per_test, cov);
  result = verify_joint_covers(nl, tests, covers.solutions, max_tuples,
                               options.deadline);
  return result;
}

}  // namespace satdiag
