#include "diag/xlist.hpp"

#include <algorithm>
#include <cassert>

#include "diag/cover.hpp"
#include "exec/parallel.hpp"
#include "netlist/analysis.hpp"
#include "sim/sim3.hpp"

namespace satdiag {
namespace {

/// For every combinational gate, a bitmask (over tests, up to 64) telling
/// which tests' erroneous outputs turn X when X is injected at that gate.
/// Candidate-parallel: one primed prototype simulator is cloned per worker
/// lane, each candidate's mask lands in its own slot — bit-identical for
/// every thread count.
std::vector<std::uint64_t> reach_masks(exec::ThreadPool& pool,
                                       const Netlist& nl, const TestSet& tests,
                                       const std::vector<GateId>& candidates,
                                       const Deadline& deadline) {
  assert(tests.size() <= 64);
  std::vector<std::uint64_t> mask(nl.size(), 0);
  // Prime the X-free evaluation once; worker clones start from the primed
  // value planes, so each candidate pays only for the cones of its own
  // injection and the lane's previous candidate's revert.
  ThreeValuedSimulator prototype(nl);
  for (std::size_t b = 0; b < tests.size(); ++b) {
    prototype.set_input_vector(b, tests[b].input_values);
  }
  prototype.run();
  exec::LaneLocal<ThreeValuedSimulator> lane_sim(pool.num_threads());
  exec::parallel_for(pool, candidates.size(), [&](std::size_t i,
                                                  std::size_t lane) {
    if (deadline.expired()) return;
    ThreeValuedSimulator& sim = lane_sim.get(lane, [&] { return prototype; });
    const GateId g = candidates[i];
    sim.clear_overrides();
    sim.inject_x(g);
    sim.run();
    std::uint64_t m = 0;
    for (std::size_t b = 0; b < tests.size(); ++b) {
      if (sim.value(test_output_gate(nl, tests[b])).is_x(b)) {
        m |= 1ULL << b;
      }
    }
    mask[g] = m;
  });
  return mask;
}

std::vector<GateId> candidate_pool(const Netlist& nl, const TestSet& tests,
                                   const XListOptions& options) {
  std::vector<GateId> pool;
  if (options.restrict_to_fanin_cones) {
    std::vector<GateId> outs;
    for (const Test& t : tests) outs.push_back(test_output_gate(nl, t));
    const std::vector<bool> cone = fanin_cone(nl, outs);
    for (GateId g = 0; g < nl.size(); ++g) {
      if (cone[g] && nl.is_combinational(g)) pool.push_back(g);
    }
  } else {
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) pool.push_back(g);
    }
  }
  return pool;
}

/// Joint X injection of `tuple` floods every test's erroneous output.
/// The caller passes one long-lived simulator across tuples: inputs stay in
/// place, so each verification costs only the tuple's injection cones.
/// Tests beyond the first 64 run in additional pattern batches.
bool joint_x_covers_all(ThreeValuedSimulator& sim, const TestSet& tests,
                        const std::vector<GateId>& tuple) {
  const Netlist& nl = sim.netlist();
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, tests.size() - base);
    for (std::size_t b = 0; b < batch; ++b) {
      sim.set_input_vector(b, tests[base + b].input_values);
    }
    sim.clear_overrides();
    for (GateId g : tuple) sim.inject_x(g);
    sim.run();
    for (std::size_t b = 0; b < batch; ++b) {
      if (!sim.value(test_output_gate(nl, tests[base + b])).is_x(b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::vector<GateId> xlist_single_candidates(const Netlist& nl,
                                            const TestSet& tests,
                                            const XListOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  std::vector<GateId> result;
  if (tests.empty()) return result;
  const std::vector<GateId> pool = candidate_pool(nl, tests, options);
  exec::ThreadPool workers(options.num_threads);

  // Process tests in batches of 64 pattern slots; a candidate survives only
  // if it covers every batch completely.
  std::vector<bool> alive(nl.size(), false);
  for (GateId g : pool) alive[g] = true;
  for (std::size_t base = 0; base < tests.size(); base += 64) {
    const std::size_t batch_size = std::min<std::size_t>(64, tests.size() - base);
    const TestSet batch(tests.begin() + static_cast<std::ptrdiff_t>(base),
                        tests.begin() +
                            static_cast<std::ptrdiff_t>(base + batch_size));
    std::vector<GateId> still;
    for (GateId g : pool) {
      if (alive[g]) still.push_back(g);
    }
    const std::uint64_t full = batch_size == 64
                                   ? ~0ULL
                                   : ((1ULL << batch_size) - 1);
    const auto masks = reach_masks(workers, nl, batch, still, options.deadline);
    for (GateId g : still) {
      if (masks[g] != full) alive[g] = false;
    }
    if (options.deadline.expired()) break;
  }
  for (GateId g : pool) {
    if (alive[g]) result.push_back(g);
  }
  return result;
}

std::vector<std::vector<GateId>> xlist_tuple_candidates(
    const Netlist& nl, const TestSet& tests, unsigned k,
    std::size_t max_tuples, const XListOptions& options) {
  assert(nl.dffs().empty() && "use the full-scan view for diagnosis");
  std::vector<std::vector<GateId>> result;
  if (tests.empty()) return result;

  // Per-test X-lists (first 64 tests bound the covering stage; additional
  // tests are still enforced by the joint verification below).
  const std::size_t bound = std::min<std::size_t>(64, tests.size());
  const TestSet head(tests.begin(),
                     tests.begin() + static_cast<std::ptrdiff_t>(bound));
  const std::vector<GateId> pool = candidate_pool(nl, tests, options);
  exec::ThreadPool workers(options.num_threads);
  const auto masks = reach_masks(workers, nl, head, pool, options.deadline);

  std::vector<std::vector<GateId>> per_test(bound);
  for (GateId g : pool) {
    for (std::size_t b = 0; b < bound; ++b) {
      if ((masks[g] >> b) & 1ULL) per_test[b].push_back(g);
    }
  }
  for (const auto& list : per_test) {
    if (list.empty()) return result;  // some test unexplainable: no tuples
  }

  CovOptions cov;
  cov.k = k;
  cov.deadline = options.deadline;
  cov.max_solutions = static_cast<std::int64_t>(max_tuples) * 4;
  const CovResult covers = solve_covering_sat(per_test, cov);
  ThreeValuedSimulator sim(nl);
  for (const auto& tuple : covers.solutions) {
    if (result.size() >= max_tuples || options.deadline.expired()) break;
    if (joint_x_covers_all(sim, tests, tuple)) result.push_back(tuple);
  }
  return result;
}

}  // namespace satdiag
