// Diagnosis quality metrics — the columns of Table 3.
//
// "For each of these gates the distance to the nearest error was determined,
//  i.e. the number of gates on a shortest path to any error." Distances are
// undirected structural BFS distances from the actual error sites.
#pragma once

#include <limits>

#include "diag/bsim.hpp"

namespace satdiag {

struct BsimQuality {
  std::size_t union_size = 0;  // |∪ C_i|
  double avg_all = 0.0;        // avgA: mean distance over all marked gates
  std::size_t gmax_size = 0;   // |Gmax|
  double min_g = 0.0;          // min distance within Gmax
  double max_g = 0.0;          // max distance within Gmax
  double avg_g = 0.0;          // avgG
  /// True when some actual error site is in Gmax (min_g == 0).
  bool error_in_gmax = false;
};

struct SolutionSetQuality {
  std::size_t num_solutions = 0;  // "#sol"
  /// Per solution the average distance a of its gates; these are the
  /// min / max / mean of a over all solutions ("min", "max", "avg").
  double min_avg = 0.0;
  double max_avg = 0.0;
  double mean_avg = 0.0;
  /// Fraction of solutions containing at least one actual error site.
  double hit_rate = 0.0;
};

/// Distances from the nearest error site for every gate.
std::vector<std::uint32_t> distances_to_errors(
    const Netlist& nl, const std::vector<GateId>& error_sites);

BsimQuality evaluate_bsim_quality(const Netlist& nl, const BsimResult& bsim,
                                  const std::vector<GateId>& error_sites);

SolutionSetQuality evaluate_solution_quality(
    const Netlist& nl, const std::vector<std::vector<GateId>>& solutions,
    const std::vector<GateId>& error_sites);

}  // namespace satdiag
