#include "diag/metrics.hpp"

#include <algorithm>

#include "netlist/analysis.hpp"
#include "util/stats.hpp"

namespace satdiag {

std::vector<std::uint32_t> distances_to_errors(
    const Netlist& nl, const std::vector<GateId>& error_sites) {
  return undirected_distances(nl, error_sites);
}

BsimQuality evaluate_bsim_quality(const Netlist& nl, const BsimResult& bsim,
                                  const std::vector<GateId>& error_sites) {
  BsimQuality q;
  const auto dist = distances_to_errors(nl, error_sites);
  q.union_size = bsim.marked_union.size();

  Summary all;
  for (GateId g : bsim.marked_union) {
    all.add(static_cast<double>(dist[g]));
  }
  q.avg_all = all.mean();

  Summary gmax;
  for (GateId g : bsim.gmax) {
    gmax.add(static_cast<double>(dist[g]));
  }
  q.gmax_size = bsim.gmax.size();
  if (!gmax.empty()) {
    q.min_g = gmax.min();
    q.max_g = gmax.max();
    q.avg_g = gmax.mean();
    q.error_in_gmax = gmax.min() == 0.0;
  }
  return q;
}

SolutionSetQuality evaluate_solution_quality(
    const Netlist& nl, const std::vector<std::vector<GateId>>& solutions,
    const std::vector<GateId>& error_sites) {
  SolutionSetQuality q;
  q.num_solutions = solutions.size();
  if (solutions.empty()) return q;
  const auto dist = distances_to_errors(nl, error_sites);

  Summary per_solution;
  std::size_t hits = 0;
  for (const auto& solution : solutions) {
    Summary inner;
    bool hit = false;
    for (GateId g : solution) {
      inner.add(static_cast<double>(dist[g]));
      hit = hit || dist[g] == 0;
    }
    if (!inner.empty()) per_solution.add(inner.mean());
    if (hit) ++hits;
  }
  q.min_avg = per_solution.empty() ? 0.0 : per_solution.min();
  q.max_avg = per_solution.empty() ? 0.0 : per_solution.max();
  q.mean_avg = per_solution.mean();
  q.hit_rate = static_cast<double>(hits) / static_cast<double>(solutions.size());
  return q;
}

}  // namespace satdiag
