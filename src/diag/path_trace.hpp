// Critical path tracing (PT), Figure 1 of the paper.
//
// Starting from the gate driving an erroneous primary output, PT walks
// backwards over sensitized paths: at a gate with inputs at controlling
// value it marks ONE of them (which one is a policy decision the paper
// leaves open); at a gate whose inputs are all non-controlling it marks all
// of them. The marked gates form the candidate set C_i of the test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace satdiag {

enum class MarkPolicy {
  kFirstControlling,   // deterministic: first controlling fanin in order
  kRandomControlling,  // uniformly random controlling fanin
  kLowestLevel,        // controlling fanin closest to the inputs
};

struct PathTraceOptions {
  MarkPolicy policy = MarkPolicy::kFirstControlling;
  /// Include source gates (PIs / pseudo-PIs) in the returned set. The
  /// diagnosis approaches correct gates, so sources are excluded by default.
  bool include_sources = false;
};

/// Trace from `erroneous_output` using the simulated values of the
/// implementation (`values[g]` bit `bit` = value of gate g under the test
/// vector). Returns the sorted set of marked candidate gates.
/// `rng` is required only for the kRandomControlling policy.
std::vector<GateId> path_trace(const Netlist& nl,
                               std::span<const std::uint64_t> values,
                               std::size_t bit, GateId erroneous_output,
                               const PathTraceOptions& options = {},
                               Rng* rng = nullptr);

}  // namespace satdiag
