// Event-driven incremental resimulation.
//
// Loads a baseline (from a full ParallelSimulator sweep), then propagates
// value or gate-type overrides through the affected cone only, with O(touched
// gates) revert. This is the fast what-if engine behind fault simulation and
// the simulation-side effect analysis of the advanced approaches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

class EventSimulator {
 public:
  explicit EventSimulator(const Netlist& nl);

  /// Snapshot `values` (one word per gate) as the baseline state.
  void load_baseline(std::span<const std::uint64_t> values);

  /// Stage overrides; they take effect on the next propagate().
  void set_value_override(GateId g, std::uint64_t word);
  void set_type_override(GateId g, GateType type);

  /// Propagate staged overrides level by level; only touched gates are
  /// recomputed. Safe to call repeatedly with additional overrides.
  void propagate();

  /// Restore the baseline and clear all overrides. O(#touched gates).
  void revert();

  std::uint64_t value(GateId g) const { return values_[g]; }

  /// Gates whose value currently differs from the baseline.
  const std::vector<GateId>& changed() const { return changed_; }

  /// XOR of current and baseline value (per-pattern difference mask).
  std::uint64_t diff_mask(GateId g) const {
    return values_[g] ^ baseline_[g];
  }

 private:
  void touch(GateId g, std::uint64_t new_value);
  void schedule_fanouts(GateId g);
  void schedule(GateId g);
  std::uint64_t evaluate(GateId g) const;

  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> baseline_;

  std::vector<bool> has_value_override_;
  std::vector<std::uint64_t> value_override_;
  std::vector<GateType> eval_type_;
  std::vector<GateId> override_trail_;  // gates with any override set

  // Level-bucketed event queue.
  std::vector<std::vector<GateId>> level_queue_;
  std::vector<bool> scheduled_;
  std::vector<GateId> touched_;  // gates written since load/revert
  std::vector<bool> touched_flag_;
  std::vector<GateId> changed_;
  mutable std::vector<std::uint64_t> fanin_buf_;
};

}  // namespace satdiag
