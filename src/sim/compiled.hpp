// Shared compiled-netlist core for every simulation backend.
//
// The constructor flattens a finalized netlist into an opcode stream over
// the topological order: specialized no-copy opcodes for 1- and 2-input
// gates, CSR fan-in slices for k-ary gates, and the combinational gates as a
// dense stream for full sweeps. Backends interpret the same stream with
// their own value planes — ParallelSimulator with one 64-pattern word per
// gate, ThreeValuedSimulator with dual (value, known) bitplanes — and share
// LevelWorklist for dirty-cone incremental scheduling.
//
// The netlist must not be mutated (substitute_type) after compilation: gate
// functions are baked into the opcode stream. Backends own their
// CompiledNetlist instance, so per-backend gate-substitution what-ifs
// (set_op) never interfere across simulators.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

/// Compiled gate opcodes. 1- and 2-input gates read their operands straight
/// from the backend's value planes (no fan-in copy); k-ary gates loop over a
/// CSR slice.
enum class SimOp : std::uint8_t {
  kSource,  // PI / DFF output / constant: never evaluated
  kBuf,
  kNot,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kXor2,
  kXnor2,
  kAndK,
  kNandK,
  kOrK,
  kNorK,
  kXorK,
  kXnorK,
};

struct SimInstr {
  std::uint32_t a = 0;  // fanin id (1/2-input) or CSR offset (k-ary)
  std::uint32_t b = 0;  // second fanin id (2-input) or fanin count (k-ary)
  SimOp op = SimOp::kSource;
};

class CompiledNetlist {
 public:
  explicit CompiledNetlist(const Netlist& nl);

  /// Rebind-copy: adopt another compilation's opcode stream for a
  /// structurally identical netlist (same gate types, fanins, and topo
  /// order — e.g. a copy of a cached golden circuit) without re-flattening.
  CompiledNetlist(const Netlist& nl, const CompiledNetlist& prototype)
      : nl_(&nl),
        instrs_(prototype.instrs_),
        fanin_csr_(prototype.fanin_csr_),
        comb_topo_(prototype.comb_topo_) {
    assert(nl.size() == prototype.nl_->size());
  }

  const Netlist& netlist() const { return *nl_; }

  /// Opcode for evaluating `type` at the given fan-in count. Unary AND/OR/
  /// XOR collapse to the identity, unary NAND/NOR/XNOR to the inverter.
  static SimOp opcode_for(GateType type, std::size_t arity);

  SimInstr instr(GateId g) const { return instrs_[g]; }

  /// Recompile one slot for a gate-substitution what-if (same arity).
  void set_op(GateId g, SimOp op) { instrs_[g].op = op; }

  GateId csr_fanin(std::uint32_t slot) const { return fanin_csr_[slot]; }

  /// Combinational gates of the topological order: the full-sweep stream.
  const std::vector<GateId>& comb_topo() const { return comb_topo_; }

 private:
  const Netlist* nl_;
  std::vector<SimInstr> instrs_;
  std::vector<GateId> fanin_csr_;
  std::vector<GateId> comb_topo_;
};

/// Lane-group packing plan for candidate-batched evaluation.
///
/// The 64 pattern lanes of one simulation word are divided into `groups`
/// contiguous groups of `group_size` lanes each. Every group carries the
/// same replicated stimulus (one test pattern per lane inside the group)
/// while per-group overrides — e.g. the X-injection masks of the 3-valued
/// backend — distinguish the candidates. Bitwise gate evaluation and
/// per-lane masks never mix lanes, so each group behaves exactly like an
/// independent simulator word: group i evaluating candidate i is
/// bit-identical to a scalar simulator evaluating candidate i alone.
/// Backend-agnostic: any 64-lane word backend can pack with the same plan.
struct LanePlan {
  std::size_t group_size = 64;  // stimulus slots per group
  std::size_t groups = 1;       // candidates per sweep = 64 / group_size

  /// Plan for `patterns` stimulus slots per group (1..64): group_size ==
  /// patterns, groups == 64 / patterns; any remaining lanes idle.
  static LanePlan for_patterns(std::size_t patterns) {
    assert(patterns >= 1 && patterns <= 64);
    LanePlan plan;
    plan.group_size = patterns;
    plan.groups = 64 / patterns;
    return plan;
  }

  /// Word lane of stimulus slot `pattern` inside `group`.
  std::size_t lane(std::size_t group, std::size_t pattern) const {
    return group * group_size + pattern;
  }

  /// All lanes of one group.
  std::uint64_t group_mask(std::size_t group) const {
    const std::uint64_t ones =
        group_size >= 64 ? ~0ULL : (1ULL << group_size) - 1;
    return ones << (group * group_size);
  }

  /// Replicate a group-local pattern mask into every group of the plan.
  std::uint64_t spread(std::uint64_t pattern_mask) const {
    std::uint64_t out = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      out |= pattern_mask << (g * group_size);
    }
    return out;
  }
};

/// Level-bucketed dirty-cone worklist shared by the incremental backends.
/// Gates drain strictly level by level; a recomputation can only schedule
/// strictly higher levels, so one sweep terminates.
class LevelWorklist {
 public:
  explicit LevelWorklist(const Netlist& nl)
      : nl_(&nl),
        buckets_(nl.depth() + 1),
        scheduled_(nl.size(), 0) {}

  void schedule(GateId g) {
    if (!scheduled_[g]) {
      scheduled_[g] = 1;
      buckets_[nl_->levels()[g]].push_back(g);
    }
  }

  /// Schedule the combinational fanouts of g. DFFs latch only on an explicit
  /// clock edge; the frame boundary stops the cone.
  void schedule_fanouts(GateId g) {
    for (GateId out : nl_->fanouts(g)) {
      if (nl_->is_source(out)) continue;
      schedule(out);
    }
  }

  /// Re-evaluate all scheduled gates in level order. `eval(g)` recomputes
  /// one gate and calls schedule_fanouts itself when the value changed.
  template <typename Eval>
  void drain(Eval&& eval) {
    for (auto& bucket : buckets_) {
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId g = bucket[i];
        scheduled_[g] = 0;
        eval(g);
      }
      bucket.clear();
    }
  }

  /// Drop all pending marks (a full sweep satisfies every dirty cone).
  void reset() {
    for (auto& bucket : buckets_) {
      for (GateId g : bucket) scheduled_[g] = 0;
      bucket.clear();
    }
  }

 private:
  const Netlist* nl_;
  std::vector<std::vector<GateId>> buckets_;
  std::vector<std::uint8_t> scheduled_;
};

}  // namespace satdiag
