// 64-way parallel-pattern logic simulation.
//
// Bit i of every 64-bit word is pattern i, so one topological sweep evaluates
// 64 test vectors — the "efficient parallel simulation techniques with linear
// runtimes" the paper attributes to simulation-based diagnosis.
//
// The evaluation core is the shared CompiledNetlist kernel (sim/compiled.hpp)
// interpreted over one 64-pattern word per gate, with dirty-cone incremental
// resimulation: sources and overrides changed since the last run() seed a
// level-ordered worklist; only the affected fanout cone is re-evaluated, and
// gates whose 64-pattern word comes out unchanged terminate their cone
// early. A diagnosis loop that flips one override per candidate therefore
// pays O(|fanout cone|) per run() instead of O(|circuit|). This same role —
// fast what-if resimulation after a baseline sweep — used to be a separate
// EventSimulator class; it is now simply this incremental mode
// (set_value_override / set_type_override, run(), clear_overrides()).
//
// The netlist must not be mutated (substitute_type) after the simulator is
// constructed: gate functions are compiled into the opcode stream. Use
// set_type_override for post-construction what-if changes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"

namespace satdiag {

class ParallelSimulator {
 public:
  explicit ParallelSimulator(const Netlist& nl);

  /// Construct by rebinding a cached compilation of a structurally
  /// identical netlist (see CompiledNetlist's rebind-copy constructor) —
  /// skips the flattening walk.
  ParallelSimulator(const Netlist& nl, const CompiledNetlist& prototype);

  const Netlist& netlist() const { return *nl_; }

  /// Assign the 64-pattern word of a source gate (input or DFF output).
  /// While a value override is active on `g` the word is ignored and
  /// dropped — re-assign sources after clear_overrides() if they changed
  /// while overridden. (No in-tree caller sources an overridden gate; the
  /// diagnosis loops always clear overrides before setting new inputs.)
  void set_source(GateId g, std::uint64_t word);

  /// Assign pattern slot `bit` of every primary input from `bits`
  /// (ordered like netlist.inputs()).
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);

  /// Force a gate to a value, masking its computed function (used for fault
  /// injection and what-if analysis). Cleared by clear_overrides().
  void set_value_override(GateId g, std::uint64_t word);

  /// Evaluate gate g with a different function (gate-substitution faults).
  void set_type_override(GateId g, GateType type);

  /// Drop all overrides; O(#overridden gates), and only their cones are
  /// re-evaluated by the next run().
  void clear_overrides();

  /// Evaluate the combinational frame. Incremental: only the fanout cones of
  /// sources/overrides changed since the previous run() are recomputed.
  void run();

  /// Reference evaluation path: a full topological resweep through the
  /// generic per-gate dispatch (the pre-kernel implementation). Kept as the
  /// semantic anchor for differential tests; equivalent to run() but always
  /// O(|circuit|).
  void run_full();

  /// Latch DFF data inputs into DFF outputs (one sequential clock edge).
  void step_state();

  std::uint64_t value(GateId g) const { return values_[g]; }
  bool value_bit(GateId g, std::size_t bit) const {
    return (values_[g] >> bit) & 1ULL;
  }
  std::span<const std::uint64_t> values() const { return values_; }

 private:
  void init_planes();
  std::uint64_t exec(GateId g) const;
  void schedule(GateId g);
  void schedule_fanouts(GateId g);
  void mark_override(GateId g);

  const Netlist* nl_;
  CompiledNetlist compiled_;
  LevelWorklist worklist_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> has_value_override_;
  std::vector<std::uint64_t> value_override_;
  std::vector<GateType> eval_type_;  // per-gate effective type
  std::vector<std::uint8_t> on_override_trail_;
  std::vector<GateId> override_trail_;  // gates with any override set

  bool all_dirty_ = true;  // first run() is a full stream sweep

  mutable std::vector<std::uint64_t> fanin_buf_;  // run_full() scratch
};

}  // namespace satdiag
