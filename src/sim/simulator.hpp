// 64-way parallel-pattern logic simulation.
//
// Bit i of every 64-bit word is pattern i, so one topological sweep evaluates
// 64 test vectors — the "efficient parallel simulation techniques with linear
// runtimes" the paper attributes to simulation-based diagnosis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

class ParallelSimulator {
 public:
  explicit ParallelSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Assign the 64-pattern word of a source gate (input or DFF output).
  void set_source(GateId g, std::uint64_t word);

  /// Assign pattern slot `bit` of every primary input from `bits`
  /// (ordered like netlist.inputs()).
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);

  /// Force a gate to a value, masking its computed function (used for fault
  /// injection and what-if analysis). Cleared by clear_overrides().
  void set_value_override(GateId g, std::uint64_t word);

  /// Evaluate gate g with a different function (gate-substitution faults).
  void set_type_override(GateId g, GateType type);

  void clear_overrides();

  /// Full topological evaluation of the combinational frame.
  void run();

  /// Latch DFF data inputs into DFF outputs (one sequential clock edge).
  void step_state();

  std::uint64_t value(GateId g) const { return values_[g]; }
  bool value_bit(GateId g, std::size_t bit) const {
    return (values_[g] >> bit) & 1ULL;
  }
  std::span<const std::uint64_t> values() const { return values_; }

 private:
  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
  std::vector<bool> has_value_override_;
  std::vector<std::uint64_t> value_override_;
  std::vector<GateType> eval_type_;  // per-gate effective type
  std::vector<std::uint64_t> fanin_buf_;
};

}  // namespace satdiag
