// 64-way parallel-pattern logic simulation.
//
// Bit i of every 64-bit word is pattern i, so one topological sweep evaluates
// 64 test vectors — the "efficient parallel simulation techniques with linear
// runtimes" the paper attributes to simulation-based diagnosis.
//
// The evaluation core is a kernel compiled once in the constructor: a
// flattened opcode stream over the topological order with CSR fan-in
// indices, specialized no-copy fast paths for 1- and 2-input gates, and
// dirty-cone incremental resimulation. Sources and overrides changed since
// the last run() seed a level-ordered worklist; only the affected fanout
// cone is re-evaluated, and gates whose 64-pattern word comes out unchanged
// terminate their cone early. A diagnosis loop that flips one override per
// candidate therefore pays O(|fanout cone|) per run() instead of
// O(|circuit|).
//
// The netlist must not be mutated (substitute_type) after the simulator is
// constructed: gate functions are compiled into the opcode stream. Use
// set_type_override for post-construction what-if changes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

class ParallelSimulator {
 public:
  explicit ParallelSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Assign the 64-pattern word of a source gate (input or DFF output).
  /// While a value override is active on `g` the word is ignored and
  /// dropped — re-assign sources after clear_overrides() if they changed
  /// while overridden. (No in-tree caller sources an overridden gate; the
  /// diagnosis loops always clear overrides before setting new inputs.)
  void set_source(GateId g, std::uint64_t word);

  /// Assign pattern slot `bit` of every primary input from `bits`
  /// (ordered like netlist.inputs()).
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);

  /// Force a gate to a value, masking its computed function (used for fault
  /// injection and what-if analysis). Cleared by clear_overrides().
  void set_value_override(GateId g, std::uint64_t word);

  /// Evaluate gate g with a different function (gate-substitution faults).
  void set_type_override(GateId g, GateType type);

  /// Drop all overrides; O(#overridden gates), and only their cones are
  /// re-evaluated by the next run().
  void clear_overrides();

  /// Evaluate the combinational frame. Incremental: only the fanout cones of
  /// sources/overrides changed since the previous run() are recomputed.
  void run();

  /// Reference evaluation path: a full topological resweep through the
  /// generic per-gate dispatch (the pre-kernel implementation). Kept as the
  /// semantic anchor for differential tests; equivalent to run() but always
  /// O(|circuit|).
  void run_full();

  /// Latch DFF data inputs into DFF outputs (one sequential clock edge).
  void step_state();

  std::uint64_t value(GateId g) const { return values_[g]; }
  bool value_bit(GateId g, std::size_t bit) const {
    return (values_[g] >> bit) & 1ULL;
  }
  std::span<const std::uint64_t> values() const { return values_; }

 private:
  // Compiled gate opcodes. 1- and 2-input gates read their operands straight
  // from values_ (no fan-in copy); k-ary gates loop over a CSR slice.
  enum class Op : std::uint8_t {
    kSource,  // PI / DFF output / constant: never evaluated
    kBuf,
    kNot,
    kAnd2,
    kNand2,
    kOr2,
    kNor2,
    kXor2,
    kXnor2,
    kAndK,
    kNandK,
    kOrK,
    kNorK,
    kXorK,
    kXnorK,
  };

  struct Instr {
    std::uint32_t a = 0;  // fanin id (1/2-input) or CSR offset (k-ary)
    std::uint32_t b = 0;  // second fanin id (2-input) or fanin count (k-ary)
    Op op = Op::kSource;
  };

  static Op opcode_for(GateType type, std::size_t arity);
  std::uint64_t exec(GateId g) const;
  void schedule(GateId g);
  void schedule_fanouts(GateId g);
  void mark_override(GateId g);
  void reset_worklist();

  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> has_value_override_;
  std::vector<std::uint64_t> value_override_;
  std::vector<GateType> eval_type_;  // per-gate effective type
  std::vector<std::uint8_t> on_override_trail_;
  std::vector<GateId> override_trail_;  // gates with any override set

  // Compiled kernel: per-gate instruction, flattened k-ary fanins, and the
  // combinational gates of the topological order (the full-sweep stream).
  std::vector<Instr> instrs_;
  std::vector<GateId> fanin_csr_;
  std::vector<GateId> comb_topo_;

  // Dirty-cone worklist: level-bucketed queue of gates to re-evaluate.
  std::vector<std::vector<GateId>> level_queue_;
  std::vector<std::uint8_t> scheduled_;
  bool all_dirty_ = true;  // first run() is a full stream sweep

  mutable std::vector<std::uint64_t> fanin_buf_;  // run_full() scratch
};

}  // namespace satdiag
