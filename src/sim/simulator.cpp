#include "sim/simulator.hpp"

#include <cassert>

namespace satdiag {

ParallelSimulator::ParallelSimulator(const Netlist& nl) : nl_(&nl) {
  assert(nl.finalized());
  values_.assign(nl.size(), 0);
  has_value_override_.assign(nl.size(), false);
  value_override_.assign(nl.size(), 0);
  eval_type_.assign(nl.size(), GateType::kInput);
  for (GateId g = 0; g < nl.size(); ++g) eval_type_[g] = nl.type(g);
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.type(g) == GateType::kConst1) values_[g] = ~0ULL;
  }
}

void ParallelSimulator::set_source(GateId g, std::uint64_t word) {
  assert(nl_->is_source(g));
  values_[g] = word;
}

void ParallelSimulator::set_input_vector(std::size_t bit,
                                         const std::vector<bool>& bits) {
  assert(bit < 64);
  assert(bits.size() == nl_->inputs().size());
  const std::uint64_t mask = 1ULL << bit;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const GateId g = nl_->inputs()[i];
    if (bits[i]) {
      values_[g] |= mask;
    } else {
      values_[g] &= ~mask;
    }
  }
}

void ParallelSimulator::set_value_override(GateId g, std::uint64_t word) {
  has_value_override_[g] = true;
  value_override_[g] = word;
}

void ParallelSimulator::set_type_override(GateId g, GateType type) {
  assert(nl_->is_combinational(g));
  assert(arity_ok(type, nl_->fanins(g).size()));
  eval_type_[g] = type;
}

void ParallelSimulator::clear_overrides() {
  has_value_override_.assign(nl_->size(), false);
  for (GateId g = 0; g < nl_->size(); ++g) eval_type_[g] = nl_->type(g);
}

void ParallelSimulator::run() {
  for (GateId g : nl_->topo_order()) {
    if (nl_->is_combinational(g)) {
      const auto fanins = nl_->fanins(g);
      fanin_buf_.resize(fanins.size());
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        fanin_buf_[i] = values_[fanins[i]];
      }
      values_[g] =
          eval_gate_words(eval_type_[g], fanin_buf_.data(), fanin_buf_.size());
    }
    if (has_value_override_[g]) values_[g] = value_override_[g];
  }
}

void ParallelSimulator::step_state() {
  for (GateId d : nl_->dffs()) {
    values_[d] = values_[nl_->fanins(d)[0]];
  }
}

}  // namespace satdiag
