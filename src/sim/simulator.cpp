#include "sim/simulator.hpp"

#include <cassert>

namespace satdiag {

// ---------------------------------------------------------------------------
// Kernel compilation

ParallelSimulator::Op ParallelSimulator::opcode_for(GateType type,
                                                    std::size_t arity) {
  if (arity == 1) {
    // Unary AND/OR/XOR are the identity, unary NAND/NOR/XNOR the inverter.
    switch (type) {
      case GateType::kBuf:
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
        return Op::kBuf;
      case GateType::kNot:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor:
        return Op::kNot;
      default:
        break;
    }
  } else if (arity == 2) {
    switch (type) {
      case GateType::kAnd:
        return Op::kAnd2;
      case GateType::kNand:
        return Op::kNand2;
      case GateType::kOr:
        return Op::kOr2;
      case GateType::kNor:
        return Op::kNor2;
      case GateType::kXor:
        return Op::kXor2;
      case GateType::kXnor:
        return Op::kXnor2;
      default:
        break;
    }
  } else {
    switch (type) {
      case GateType::kAnd:
        return Op::kAndK;
      case GateType::kNand:
        return Op::kNandK;
      case GateType::kOr:
        return Op::kOrK;
      case GateType::kNor:
        return Op::kNorK;
      case GateType::kXor:
        return Op::kXorK;
      case GateType::kXnor:
        return Op::kXnorK;
      default:
        break;
    }
  }
  assert(false && "no combinational opcode for this type/arity");
  return Op::kSource;
}

ParallelSimulator::ParallelSimulator(const Netlist& nl) : nl_(&nl) {
  assert(nl.finalized());
  const std::size_t n = nl.size();
  values_.assign(n, 0);
  has_value_override_.assign(n, 0);
  value_override_.assign(n, 0);
  on_override_trail_.assign(n, 0);
  eval_type_.resize(n);
  instrs_.resize(n);
  scheduled_.assign(n, 0);
  level_queue_.resize(nl.depth() + 1);
  comb_topo_.reserve(nl.num_combinational_gates());

  for (GateId g = 0; g < n; ++g) {
    eval_type_[g] = nl.type(g);
    if (nl.is_combinational(g)) {
      const auto fanins = nl.fanins(g);
      Instr in;
      in.op = opcode_for(nl.type(g), fanins.size());
      if (fanins.size() <= 2) {
        in.a = fanins[0];
        if (fanins.size() == 2) in.b = fanins[1];
      } else {
        in.a = static_cast<std::uint32_t>(fanin_csr_.size());
        in.b = static_cast<std::uint32_t>(fanins.size());
        fanin_csr_.insert(fanin_csr_.end(), fanins.begin(), fanins.end());
      }
      instrs_[g] = in;
    } else if (nl.type(g) == GateType::kConst1) {
      values_[g] = ~0ULL;
    }
  }
  for (GateId g : nl.topo_order()) {
    if (nl.is_combinational(g)) comb_topo_.push_back(g);
  }
}

std::uint64_t ParallelSimulator::exec(GateId g) const {
  const Instr in = instrs_[g];
  switch (in.op) {
    case Op::kSource:
      return values_[g];
    case Op::kBuf:
      return values_[in.a];
    case Op::kNot:
      return ~values_[in.a];
    case Op::kAnd2:
      return values_[in.a] & values_[in.b];
    case Op::kNand2:
      return ~(values_[in.a] & values_[in.b]);
    case Op::kOr2:
      return values_[in.a] | values_[in.b];
    case Op::kNor2:
      return ~(values_[in.a] | values_[in.b]);
    case Op::kXor2:
      return values_[in.a] ^ values_[in.b];
    case Op::kXnor2:
      return ~(values_[in.a] ^ values_[in.b]);
    case Op::kAndK:
    case Op::kNandK: {
      std::uint64_t acc = ~0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc &= values_[fanin_csr_[in.a + i]];
      }
      return in.op == Op::kAndK ? acc : ~acc;
    }
    case Op::kOrK:
    case Op::kNorK: {
      std::uint64_t acc = 0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc |= values_[fanin_csr_[in.a + i]];
      }
      return in.op == Op::kOrK ? acc : ~acc;
    }
    case Op::kXorK:
    case Op::kXnorK: {
      std::uint64_t acc = 0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc ^= values_[fanin_csr_[in.a + i]];
      }
      return in.op == Op::kXorK ? acc : ~acc;
    }
  }
  return 0ULL;
}

// ---------------------------------------------------------------------------
// Dirty-cone bookkeeping

void ParallelSimulator::schedule(GateId g) {
  if (all_dirty_ || scheduled_[g]) return;
  scheduled_[g] = 1;
  level_queue_[nl_->levels()[g]].push_back(g);
}

void ParallelSimulator::schedule_fanouts(GateId g) {
  for (GateId out : nl_->fanouts(g)) {
    // DFFs latch only on step_state(); the frame boundary stops the cone.
    if (nl_->is_source(out)) continue;
    schedule(out);
  }
}

void ParallelSimulator::mark_override(GateId g) {
  if (!on_override_trail_[g]) {
    on_override_trail_[g] = 1;
    override_trail_.push_back(g);
  }
}

void ParallelSimulator::reset_worklist() {
  for (auto& bucket : level_queue_) {
    for (GateId g : bucket) scheduled_[g] = 0;
    bucket.clear();
  }
}

// ---------------------------------------------------------------------------
// Mutators

void ParallelSimulator::set_source(GateId g, std::uint64_t word) {
  assert(nl_->is_source(g));
  if (all_dirty_) {
    values_[g] = word;
    return;
  }
  if (has_value_override_[g]) return;  // the override wins until cleared
  if (values_[g] != word) {
    values_[g] = word;
    schedule_fanouts(g);
  }
}

void ParallelSimulator::set_input_vector(std::size_t bit,
                                         const std::vector<bool>& bits) {
  assert(bit < 64);
  assert(bits.size() == nl_->inputs().size());
  const std::uint64_t mask = 1ULL << bit;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const GateId g = nl_->inputs()[i];
    if (!all_dirty_ && has_value_override_[g]) continue;
    const std::uint64_t next =
        bits[i] ? (values_[g] | mask) : (values_[g] & ~mask);
    if (next != values_[g]) {
      values_[g] = next;
      if (!all_dirty_) schedule_fanouts(g);
    }
  }
}

void ParallelSimulator::set_value_override(GateId g, std::uint64_t word) {
  mark_override(g);
  has_value_override_[g] = 1;
  value_override_[g] = word;
  schedule(g);
}

void ParallelSimulator::set_type_override(GateId g, GateType type) {
  assert(nl_->is_combinational(g));
  assert(arity_ok(type, nl_->fanins(g).size()));
  if (eval_type_[g] == type) return;
  mark_override(g);
  eval_type_[g] = type;
  instrs_[g].op = opcode_for(type, nl_->fanins(g).size());
  schedule(g);
}

void ParallelSimulator::clear_overrides() {
  for (GateId g : override_trail_) {
    on_override_trail_[g] = 0;
    has_value_override_[g] = 0;
    if (eval_type_[g] != nl_->type(g)) {
      eval_type_[g] = nl_->type(g);
      instrs_[g].op = opcode_for(nl_->type(g), nl_->fanins(g).size());
    }
    schedule(g);  // its cone reverts on the next run()
  }
  override_trail_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation

void ParallelSimulator::run() {
  if (all_dirty_) {
    // First evaluation: one pass over the compiled stream in topological
    // order. Overridden sources are fixed up front; combinational overrides
    // are applied in-stream.
    for (GateId g : override_trail_) {
      if (has_value_override_[g] && nl_->is_source(g)) {
        values_[g] = value_override_[g];
      }
    }
    for (GateId g : comb_topo_) {
      std::uint64_t v = exec(g);
      if (has_value_override_[g]) v = value_override_[g];
      values_[g] = v;
    }
    reset_worklist();
    all_dirty_ = false;
    return;
  }
  for (auto& bucket : level_queue_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      scheduled_[g] = 0;
      std::uint64_t v = exec(g);  // Op::kSource returns values_[g]
      if (has_value_override_[g]) v = value_override_[g];
      if (v != values_[g]) {
        values_[g] = v;
        schedule_fanouts(g);  // appends strictly higher levels only
      }
    }
    bucket.clear();
  }
}

void ParallelSimulator::run_full() {
  for (GateId g : nl_->topo_order()) {
    if (nl_->is_combinational(g)) {
      const auto fanins = nl_->fanins(g);
      fanin_buf_.resize(fanins.size());
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        fanin_buf_[i] = values_[fanins[i]];
      }
      values_[g] =
          eval_gate_words(eval_type_[g], fanin_buf_.data(), fanin_buf_.size());
    }
    if (has_value_override_[g]) values_[g] = value_override_[g];
  }
  // A full sweep satisfies every pending dirty mark.
  reset_worklist();
  all_dirty_ = false;
}

void ParallelSimulator::step_state() {
  for (GateId d : nl_->dffs()) {
    std::uint64_t v = values_[nl_->fanins(d)[0]];
    if (has_value_override_[d]) v = value_override_[d];
    if (all_dirty_) {
      values_[d] = v;  // the pending full sweep reads the latched value
    } else if (v != values_[d]) {
      values_[d] = v;
      schedule_fanouts(d);
    }
  }
}

}  // namespace satdiag
