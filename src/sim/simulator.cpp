#include "sim/simulator.hpp"

#include <cassert>

namespace satdiag {

ParallelSimulator::ParallelSimulator(const Netlist& nl)
    : nl_(&nl), compiled_(nl), worklist_(nl) {
  init_planes();
}

ParallelSimulator::ParallelSimulator(const Netlist& nl,
                                     const CompiledNetlist& prototype)
    : nl_(&nl), compiled_(nl, prototype), worklist_(nl) {
  init_planes();
}

void ParallelSimulator::init_planes() {
  const std::size_t n = nl_->size();
  values_.assign(n, 0);
  has_value_override_.assign(n, 0);
  value_override_.assign(n, 0);
  on_override_trail_.assign(n, 0);
  eval_type_.resize(n);
  for (GateId g = 0; g < n; ++g) {
    eval_type_[g] = nl_->type(g);
    if (nl_->type(g) == GateType::kConst1) values_[g] = ~0ULL;
  }
}

std::uint64_t ParallelSimulator::exec(GateId g) const {
  const SimInstr in = compiled_.instr(g);
  switch (in.op) {
    case SimOp::kSource:
      return values_[g];
    case SimOp::kBuf:
      return values_[in.a];
    case SimOp::kNot:
      return ~values_[in.a];
    case SimOp::kAnd2:
      return values_[in.a] & values_[in.b];
    case SimOp::kNand2:
      return ~(values_[in.a] & values_[in.b]);
    case SimOp::kOr2:
      return values_[in.a] | values_[in.b];
    case SimOp::kNor2:
      return ~(values_[in.a] | values_[in.b]);
    case SimOp::kXor2:
      return values_[in.a] ^ values_[in.b];
    case SimOp::kXnor2:
      return ~(values_[in.a] ^ values_[in.b]);
    case SimOp::kAndK:
    case SimOp::kNandK: {
      std::uint64_t acc = ~0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc &= values_[compiled_.csr_fanin(in.a + i)];
      }
      return in.op == SimOp::kAndK ? acc : ~acc;
    }
    case SimOp::kOrK:
    case SimOp::kNorK: {
      std::uint64_t acc = 0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc |= values_[compiled_.csr_fanin(in.a + i)];
      }
      return in.op == SimOp::kOrK ? acc : ~acc;
    }
    case SimOp::kXorK:
    case SimOp::kXnorK: {
      std::uint64_t acc = 0ULL;
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc ^= values_[compiled_.csr_fanin(in.a + i)];
      }
      return in.op == SimOp::kXorK ? acc : ~acc;
    }
  }
  return 0ULL;
}

// ---------------------------------------------------------------------------
// Dirty-cone bookkeeping

void ParallelSimulator::schedule(GateId g) {
  if (!all_dirty_) worklist_.schedule(g);
}

void ParallelSimulator::schedule_fanouts(GateId g) {
  if (!all_dirty_) worklist_.schedule_fanouts(g);
}

void ParallelSimulator::mark_override(GateId g) {
  if (!on_override_trail_[g]) {
    on_override_trail_[g] = 1;
    override_trail_.push_back(g);
  }
}

// ---------------------------------------------------------------------------
// Mutators

void ParallelSimulator::set_source(GateId g, std::uint64_t word) {
  assert(nl_->is_source(g));
  if (all_dirty_) {
    values_[g] = word;
    return;
  }
  if (has_value_override_[g]) return;  // the override wins until cleared
  if (values_[g] != word) {
    values_[g] = word;
    schedule_fanouts(g);
  }
}

void ParallelSimulator::set_input_vector(std::size_t bit,
                                         const std::vector<bool>& bits) {
  assert(bit < 64);
  assert(bits.size() == nl_->inputs().size());
  const std::uint64_t mask = 1ULL << bit;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const GateId g = nl_->inputs()[i];
    if (!all_dirty_ && has_value_override_[g]) continue;
    const std::uint64_t next =
        bits[i] ? (values_[g] | mask) : (values_[g] & ~mask);
    if (next != values_[g]) {
      values_[g] = next;
      schedule_fanouts(g);
    }
  }
}

void ParallelSimulator::set_value_override(GateId g, std::uint64_t word) {
  mark_override(g);
  has_value_override_[g] = 1;
  value_override_[g] = word;
  schedule(g);
}

void ParallelSimulator::set_type_override(GateId g, GateType type) {
  assert(nl_->is_combinational(g));
  assert(arity_ok(type, nl_->fanins(g).size()));
  if (eval_type_[g] == type) return;
  mark_override(g);
  eval_type_[g] = type;
  compiled_.set_op(g, CompiledNetlist::opcode_for(type, nl_->fanins(g).size()));
  schedule(g);
}

void ParallelSimulator::clear_overrides() {
  for (GateId g : override_trail_) {
    on_override_trail_[g] = 0;
    has_value_override_[g] = 0;
    if (eval_type_[g] != nl_->type(g)) {
      eval_type_[g] = nl_->type(g);
      compiled_.set_op(
          g, CompiledNetlist::opcode_for(nl_->type(g), nl_->fanins(g).size()));
    }
    schedule(g);  // its cone reverts on the next run()
  }
  override_trail_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation

void ParallelSimulator::run() {
  if (all_dirty_) {
    // First evaluation: one pass over the compiled stream in topological
    // order. Overridden sources are fixed up front; combinational overrides
    // are applied in-stream.
    for (GateId g : override_trail_) {
      if (has_value_override_[g] && nl_->is_source(g)) {
        values_[g] = value_override_[g];
      }
    }
    for (GateId g : compiled_.comb_topo()) {
      std::uint64_t v = exec(g);
      if (has_value_override_[g]) v = value_override_[g];
      values_[g] = v;
    }
    worklist_.reset();
    all_dirty_ = false;
    return;
  }
  worklist_.drain([this](GateId g) {
    std::uint64_t v = exec(g);  // SimOp::kSource returns values_[g]
    if (has_value_override_[g]) v = value_override_[g];
    if (v != values_[g]) {
      values_[g] = v;
      worklist_.schedule_fanouts(g);  // appends strictly higher levels only
    }
  });
}

void ParallelSimulator::run_full() {
  for (GateId g : nl_->topo_order()) {
    if (nl_->is_combinational(g)) {
      const auto fanins = nl_->fanins(g);
      fanin_buf_.resize(fanins.size());
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        fanin_buf_[i] = values_[fanins[i]];
      }
      values_[g] =
          eval_gate_words(eval_type_[g], fanin_buf_.data(), fanin_buf_.size());
    }
    if (has_value_override_[g]) values_[g] = value_override_[g];
  }
  // A full sweep satisfies every pending dirty mark.
  worklist_.reset();
  all_dirty_ = false;
}

void ParallelSimulator::step_state() {
  for (GateId d : nl_->dffs()) {
    std::uint64_t v = values_[nl_->fanins(d)[0]];
    if (has_value_override_[d]) v = value_override_[d];
    if (all_dirty_) {
      values_[d] = v;  // the pending full sweep reads the latched value
    } else if (v != values_[d]) {
      values_[d] = v;
      schedule_fanouts(d);
    }
  }
}

}  // namespace satdiag
