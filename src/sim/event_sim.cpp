#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>

namespace satdiag {

EventSimulator::EventSimulator(const Netlist& nl) : nl_(&nl) {
  assert(nl.finalized());
  const std::size_t n = nl.size();
  values_.assign(n, 0);
  baseline_.assign(n, 0);
  has_value_override_.assign(n, false);
  value_override_.assign(n, 0);
  eval_type_.assign(n, GateType::kInput);
  for (GateId g = 0; g < n; ++g) eval_type_[g] = nl.type(g);
  level_queue_.resize(nl.depth() + 1);
  scheduled_.assign(n, false);
  touched_flag_.assign(n, false);
}

void EventSimulator::load_baseline(std::span<const std::uint64_t> values) {
  assert(values.size() == nl_->size());
  std::copy(values.begin(), values.end(), baseline_.begin());
  std::copy(values.begin(), values.end(), values_.begin());
  revert();  // clears overrides/touched bookkeeping against the new baseline
}

void EventSimulator::set_value_override(GateId g, std::uint64_t word) {
  if (!has_value_override_[g]) override_trail_.push_back(g);
  has_value_override_[g] = true;
  value_override_[g] = word;
  schedule(g);
}

void EventSimulator::set_type_override(GateId g, GateType type) {
  assert(nl_->is_combinational(g));
  assert(arity_ok(type, nl_->fanins(g).size()));
  if (eval_type_[g] != type) {
    override_trail_.push_back(g);
    eval_type_[g] = type;
    schedule(g);
  }
}

std::uint64_t EventSimulator::evaluate(GateId g) const {
  const auto fanins = nl_->fanins(g);
  fanin_buf_.resize(fanins.size());
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    fanin_buf_[i] = values_[fanins[i]];
  }
  return eval_gate_words(eval_type_[g], fanin_buf_.data(), fanin_buf_.size());
}

void EventSimulator::schedule(GateId g) {
  if (!scheduled_[g]) {
    scheduled_[g] = true;
    level_queue_[nl_->levels()[g]].push_back(g);
  }
}

void EventSimulator::schedule_fanouts(GateId g) {
  for (GateId out : nl_->fanouts(g)) {
    if (nl_->is_source(out)) continue;  // stop at the DFF frame boundary
    schedule(out);
  }
}

void EventSimulator::touch(GateId g, std::uint64_t new_value) {
  if (!touched_flag_[g]) {
    touched_flag_[g] = true;
    touched_.push_back(g);
  }
  values_[g] = new_value;
}

void EventSimulator::propagate() {
  for (std::size_t level = 0; level < level_queue_.size(); ++level) {
    // Gates are processed strictly level by level; a recomputation can only
    // schedule strictly higher levels, so a plain sweep terminates.
    auto& bucket = level_queue_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      scheduled_[g] = false;
      std::uint64_t value =
          nl_->is_combinational(g) ? evaluate(g) : values_[g];
      if (has_value_override_[g]) value = value_override_[g];
      if (value != values_[g]) {
        touch(g, value);
        schedule_fanouts(g);
      } else if (has_value_override_[g] || eval_type_[g] != nl_->type(g)) {
        // Value unchanged but the gate is overridden: still record it as
        // touched so revert() restores bookkeeping cheaply.
        touch(g, value);
      }
    }
    bucket.clear();
  }
  changed_.clear();
  for (GateId g : touched_) {
    if (values_[g] != baseline_[g]) changed_.push_back(g);
  }
}

void EventSimulator::revert() {
  for (GateId g : touched_) {
    values_[g] = baseline_[g];
    touched_flag_[g] = false;
  }
  touched_.clear();
  for (GateId g : override_trail_) {
    has_value_override_[g] = false;
    eval_type_[g] = nl_->type(g);
  }
  override_trail_.clear();
  for (auto& bucket : level_queue_) {
    for (GateId g : bucket) scheduled_[g] = false;
    bucket.clear();
  }
  changed_.clear();
}

}  // namespace satdiag
