// Three-valued (0/1/X) parallel simulation in dual-rail encoding.
//
// Each gate carries two 64-bit words: `one` (patterns where the value is
// definitely 1) and `zero` (definitely 0); a pattern with neither bit set is
// X. Used by the X-list diagnosis baseline (Boppana et al., DAC'99) and by
// the simulation-side effect-analysis check: injecting X at a candidate and
// watching whether the X reaches the erroneous output is the pessimistic
// version of "can changing this gate affect the output".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

struct Val3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  static Val3 all(bool v) {
    return v ? Val3{~0ULL, 0ULL} : Val3{0ULL, ~0ULL};
  }
  static Val3 all_x() { return Val3{0, 0}; }

  std::uint64_t x_mask() const { return ~(one | zero); }
  bool is_one(std::size_t bit) const { return (one >> bit) & 1ULL; }
  bool is_zero(std::size_t bit) const { return (zero >> bit) & 1ULL; }
  bool is_x(std::size_t bit) const { return (x_mask() >> bit) & 1ULL; }

  friend bool operator==(const Val3&, const Val3&) = default;
};

/// Dual-rail gate evaluation.
Val3 eval_gate_val3(GateType type, const Val3* fanins, std::size_t arity);

class ThreeValuedSimulator {
 public:
  explicit ThreeValuedSimulator(const Netlist& nl);

  void set_source(GateId g, Val3 v);
  /// Pattern slot `bit` of every primary input.
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);

  /// Force a gate to X (in all pattern slots of `mask`); the override
  /// survives until clear_overrides().
  void inject_x(GateId g, std::uint64_t mask = ~0ULL);
  void clear_overrides();

  void run();

  Val3 value(GateId g) const { return values_[g]; }

 private:
  const Netlist* nl_;
  std::vector<Val3> values_;
  std::vector<std::uint64_t> x_mask_;  // per-gate forced-X pattern mask
  std::vector<Val3> fanin_buf_;
};

}  // namespace satdiag
