// Three-valued (0/1/X) parallel simulation.
//
// Each gate carries two 64-bit words. The public Val3 interface exposes the
// classic dual-rail view — `one` (patterns where the value is definitely 1)
// and `zero` (definitely 0); a pattern with neither bit set is X. Used by
// the X-list diagnosis baseline (Boppana et al., DAC'99) and by the
// simulation-side effect-analysis check: injecting X at a candidate and
// watching whether the X reaches the erroneous output is the pessimistic
// version of "can changing this gate affect the output".
//
// The engine is a backend of the shared CompiledNetlist kernel
// (sim/compiled.hpp): internally each gate stores dual (value, known)
// bitplanes — `value` holds the 1-bits, `known` the non-X bits, with the
// invariant value ⊆ known — evaluated over the same opcode stream as the
// 2-valued simulator. run() is dirty-cone incremental: X-injection sites,
// source changes, and cleared overrides seed a level-ordered worklist and
// only their fanout cones are re-evaluated, so an X-list loop that moves
// the injection site pays O(|fanout cone|) per candidate instead of
// O(|circuit|). The pre-kernel full-resweep path is retained as run_full(),
// the semantic anchor for the differential tests in
// tests/sim/sim3_diff_test.cpp.
//
// Caveat (same convention as ParallelSimulator value overrides on sources):
// injecting X directly at a *source* gate masks its stored word in place;
// after clear_overrides() the source stays X until re-assigned with
// set_source/set_input_vector. No in-tree caller injects X at sources —
// candidate pools contain combinational gates only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/testset.hpp"
#include "sim/compiled.hpp"

namespace satdiag {

struct Val3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  static Val3 all(bool v) {
    return v ? Val3{~0ULL, 0ULL} : Val3{0ULL, ~0ULL};
  }
  static Val3 all_x() { return Val3{0, 0}; }

  std::uint64_t x_mask() const { return ~(one | zero); }
  bool is_one(std::size_t bit) const { return (one >> bit) & 1ULL; }
  bool is_zero(std::size_t bit) const { return (zero >> bit) & 1ULL; }
  bool is_x(std::size_t bit) const { return (x_mask() >> bit) & 1ULL; }

  friend bool operator==(const Val3&, const Val3&) = default;
};

/// Dual-rail gate evaluation (generic dispatch; the run_full() reference and
/// unit tests use it directly).
Val3 eval_gate_val3(GateType type, const Val3* fanins, std::size_t arity);

class ThreeValuedSimulator {
 public:
  explicit ThreeValuedSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  void set_source(GateId g, Val3 v);
  /// Pattern slot `bit` of every primary input.
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);
  /// Broadcast one input vector into every pattern lane of `lanes`: bits[i]
  /// becomes the value of input i in all those lanes (known everywhere in
  /// the mask). set_input_vector is the lanes == 1<<bit special case; the
  /// lane-batched evaluator uses this to replicate a test chunk into every
  /// candidate group in one pass.
  void set_input_lanes(std::uint64_t lanes, const std::vector<bool>& bits);

  /// Force a gate to X (in all pattern slots of `mask`); the override
  /// survives until clear_overrides().
  void inject_x(GateId g, std::uint64_t mask = ~0ULL);

  /// Drop all X injections; O(#injected gates), and only their cones are
  /// re-evaluated by the next run().
  void clear_overrides();

  /// Evaluate the combinational frame. Incremental: only the fanout cones of
  /// sources/injections changed since the previous run() are recomputed.
  void run();

  /// Reference evaluation path: a full topological resweep through the
  /// generic dual-rail dispatch (the pre-kernel implementation). Kept as the
  /// semantic anchor for differential tests; equivalent to run() but always
  /// O(|circuit|).
  void run_full();

  Val3 value(GateId g) const {
    return Val3{val_[g], known_[g] & ~val_[g]};
  }

 private:
  // Dual bitplanes of one gate: `val` are the 1-lanes, `known` the non-X
  // lanes; val ⊆ known always holds (X lanes read 0 in val).
  struct Planes {
    std::uint64_t val = 0;
    std::uint64_t known = 0;

    friend bool operator==(const Planes&, const Planes&) = default;
  };

  Planes exec(GateId g) const;
  void store(GateId g, Planes p) {
    val_[g] = p.val;
    known_[g] = p.known;
  }
  void apply_mask(GateId g, Planes& p) const {
    p.val &= ~x_mask_[g];
    p.known &= ~x_mask_[g];
  }
  void schedule(GateId g);
  void schedule_fanouts(GateId g);

  const Netlist* nl_;
  CompiledNetlist compiled_;
  LevelWorklist worklist_;
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> known_;
  std::vector<std::uint64_t> x_mask_;  // per-gate forced-X pattern mask
  std::vector<std::uint8_t> on_x_trail_;
  std::vector<GateId> x_trail_;  // gates with any X injection set

  bool all_dirty_ = true;  // first run() is a full stream sweep

  mutable std::vector<Val3> fanin_buf_;  // run_full() scratch
};

/// Lane-batched candidate X-injection over the compiled 3-valued kernel —
/// the batched injection mode of the diagnosis engines.
///
/// One Sim3XBatch owns a ThreeValuedSimulator whose 64 pattern lanes are
/// packed by a LanePlan (sim/compiled.hpp): a chunk of up to 64 tests is
/// replicated into every lane group once at construction, and each
/// run_singles/run_tuples call then gives every candidate of the batch its
/// own group — the candidate's gates are forced to X only in that group's
/// lanes, and all candidates of the batch share ONE dirty-cone sweep (the
/// per-lane X masks are applied inside the opcode interpreter, and the
/// per-candidate dirty cones merge in the shared LevelWorklist). Because
/// bitwise evaluation and the masks never mix lanes, group i is
/// bit-identical to a scalar simulator evaluating candidate i alone — the
/// property pinned by tests/common/diff_harness.
///
/// Switching batches only moves X masks: the replicated inputs stay in
/// place, so every batch after the constructor's priming sweep costs the
/// merged fanout cones of the previous and current injection sites — not
/// |tests| input re-broadcasts, and not one sweep per candidate.
///
/// Copyable; copy-as-clone is the worker-state pattern of the exec/
/// runtime (a primed prototype is cloned into each worker lane, so clones
/// start from warm X-free value planes). Candidates must be combinational
/// gates (X at a source sticks across clear_overrides, which would poison
/// the next batch).
class Sim3XBatch {
 public:
  /// Packs tests[begin, begin + count); count must be in [1, 64]. The
  /// constructor replicates the chunk into every lane group and pays one
  /// full priming sweep.
  Sim3XBatch(const Netlist& nl, const TestSet& tests, std::size_t begin,
             std::size_t count);
  /// Whole test set (tests.size() in [1, 64]).
  Sim3XBatch(const Netlist& nl, const TestSet& tests)
      : Sim3XBatch(nl, tests, 0, tests.size()) {}

  /// Candidates evaluated per sweep: 64 / chunk size.
  std::size_t capacity() const { return plan_.groups; }
  std::size_t num_tests() const { return out_gates_.size(); }
  /// Mask with one bit per test of the chunk.
  std::uint64_t full_mask() const {
    return num_tests() >= 64 ? ~0ULL : (1ULL << num_tests()) - 1;
  }

  /// One sweep over a batch of single-gate candidates (batch.size() <=
  /// capacity()). masks[i] bit b is set iff test b's erroneous output
  /// evaluates to X in candidate i's lane group, i.e. masks[i] is exactly
  /// the scalar per-candidate reach mask. An empty batch is a no-op: the
  /// simulator is not touched and no masks are written. A partial batch
  /// leaves the remaining groups X-free (previous injections are cleared
  /// first), so no stale lanes leak into the extracted masks.
  void run_singles(std::span<const GateId> batch, std::uint64_t* masks);
  /// Same over gate-set candidates: group i carries the joint injection of
  /// every gate in batch[i].
  void run_tuples(std::span<const std::vector<GateId>> batch,
                  std::uint64_t* masks);

 private:
  void extract(std::size_t count, std::uint64_t* masks);

  LanePlan plan_;
  std::vector<GateId> out_gates_;  // erroneous output gate per chunk test
  ThreeValuedSimulator sim_;
};

}  // namespace satdiag
