// Three-valued (0/1/X) parallel simulation.
//
// Each gate carries two 64-bit words. The public Val3 interface exposes the
// classic dual-rail view — `one` (patterns where the value is definitely 1)
// and `zero` (definitely 0); a pattern with neither bit set is X. Used by
// the X-list diagnosis baseline (Boppana et al., DAC'99) and by the
// simulation-side effect-analysis check: injecting X at a candidate and
// watching whether the X reaches the erroneous output is the pessimistic
// version of "can changing this gate affect the output".
//
// The engine is a backend of the shared CompiledNetlist kernel
// (sim/compiled.hpp): internally each gate stores dual (value, known)
// bitplanes — `value` holds the 1-bits, `known` the non-X bits, with the
// invariant value ⊆ known — evaluated over the same opcode stream as the
// 2-valued simulator. run() is dirty-cone incremental: X-injection sites,
// source changes, and cleared overrides seed a level-ordered worklist and
// only their fanout cones are re-evaluated, so an X-list loop that moves
// the injection site pays O(|fanout cone|) per candidate instead of
// O(|circuit|). The pre-kernel full-resweep path is retained as run_full(),
// the semantic anchor for the differential tests in
// tests/sim/sim3_diff_test.cpp.
//
// Caveat (same convention as ParallelSimulator value overrides on sources):
// injecting X directly at a *source* gate masks its stored word in place;
// after clear_overrides() the source stays X until re-assigned with
// set_source/set_input_vector. No in-tree caller injects X at sources —
// candidate pools contain combinational gates only.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"

namespace satdiag {

struct Val3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  static Val3 all(bool v) {
    return v ? Val3{~0ULL, 0ULL} : Val3{0ULL, ~0ULL};
  }
  static Val3 all_x() { return Val3{0, 0}; }

  std::uint64_t x_mask() const { return ~(one | zero); }
  bool is_one(std::size_t bit) const { return (one >> bit) & 1ULL; }
  bool is_zero(std::size_t bit) const { return (zero >> bit) & 1ULL; }
  bool is_x(std::size_t bit) const { return (x_mask() >> bit) & 1ULL; }

  friend bool operator==(const Val3&, const Val3&) = default;
};

/// Dual-rail gate evaluation (generic dispatch; the run_full() reference and
/// unit tests use it directly).
Val3 eval_gate_val3(GateType type, const Val3* fanins, std::size_t arity);

class ThreeValuedSimulator {
 public:
  explicit ThreeValuedSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  void set_source(GateId g, Val3 v);
  /// Pattern slot `bit` of every primary input.
  void set_input_vector(std::size_t bit, const std::vector<bool>& bits);

  /// Force a gate to X (in all pattern slots of `mask`); the override
  /// survives until clear_overrides().
  void inject_x(GateId g, std::uint64_t mask = ~0ULL);

  /// Drop all X injections; O(#injected gates), and only their cones are
  /// re-evaluated by the next run().
  void clear_overrides();

  /// Evaluate the combinational frame. Incremental: only the fanout cones of
  /// sources/injections changed since the previous run() are recomputed.
  void run();

  /// Reference evaluation path: a full topological resweep through the
  /// generic dual-rail dispatch (the pre-kernel implementation). Kept as the
  /// semantic anchor for differential tests; equivalent to run() but always
  /// O(|circuit|).
  void run_full();

  Val3 value(GateId g) const {
    return Val3{val_[g], known_[g] & ~val_[g]};
  }

 private:
  // Dual bitplanes of one gate: `val` are the 1-lanes, `known` the non-X
  // lanes; val ⊆ known always holds (X lanes read 0 in val).
  struct Planes {
    std::uint64_t val = 0;
    std::uint64_t known = 0;

    friend bool operator==(const Planes&, const Planes&) = default;
  };

  Planes exec(GateId g) const;
  void store(GateId g, Planes p) {
    val_[g] = p.val;
    known_[g] = p.known;
  }
  void apply_mask(GateId g, Planes& p) const {
    p.val &= ~x_mask_[g];
    p.known &= ~x_mask_[g];
  }
  void schedule(GateId g);
  void schedule_fanouts(GateId g);

  const Netlist* nl_;
  CompiledNetlist compiled_;
  LevelWorklist worklist_;
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> known_;
  std::vector<std::uint64_t> x_mask_;  // per-gate forced-X pattern mask
  std::vector<std::uint8_t> on_x_trail_;
  std::vector<GateId> x_trail_;  // gates with any X injection set

  bool all_dirty_ = true;  // first run() is a full stream sweep

  mutable std::vector<Val3> fanin_buf_;  // run_full() scratch
};

}  // namespace satdiag
