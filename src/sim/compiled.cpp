#include "sim/compiled.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace satdiag {

SimOp CompiledNetlist::opcode_for(GateType type, std::size_t arity) {
  if (arity == 1) {
    // Unary AND/OR/XOR are the identity, unary NAND/NOR/XNOR the inverter.
    switch (type) {
      case GateType::kBuf:
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
        return SimOp::kBuf;
      case GateType::kNot:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor:
        return SimOp::kNot;
      default:
        break;
    }
  } else if (arity == 2) {
    switch (type) {
      case GateType::kAnd:
        return SimOp::kAnd2;
      case GateType::kNand:
        return SimOp::kNand2;
      case GateType::kOr:
        return SimOp::kOr2;
      case GateType::kNor:
        return SimOp::kNor2;
      case GateType::kXor:
        return SimOp::kXor2;
      case GateType::kXnor:
        return SimOp::kXnor2;
      default:
        break;
    }
  } else {
    switch (type) {
      case GateType::kAnd:
        return SimOp::kAndK;
      case GateType::kNand:
        return SimOp::kNandK;
      case GateType::kOr:
        return SimOp::kOrK;
      case GateType::kNor:
        return SimOp::kNorK;
      case GateType::kXor:
        return SimOp::kXorK;
      case GateType::kXnor:
        return SimOp::kXnorK;
      default:
        break;
    }
  }
  assert(false && "no combinational opcode for this type/arity");
  return SimOp::kSource;
}

CompiledNetlist::CompiledNetlist(const Netlist& nl) : nl_(&nl) {
  obs::Span span("sim.compile", "gates",
                 static_cast<std::int64_t>(nl.size()));
  assert(nl.finalized());
  const std::size_t n = nl.size();
  instrs_.resize(n);
  comb_topo_.reserve(nl.num_combinational_gates());

  for (GateId g = 0; g < n; ++g) {
    if (!nl.is_combinational(g)) continue;
    const auto fanins = nl.fanins(g);
    SimInstr in;
    in.op = opcode_for(nl.type(g), fanins.size());
    if (fanins.size() <= 2) {
      in.a = fanins[0];
      if (fanins.size() == 2) in.b = fanins[1];
    } else {
      in.a = static_cast<std::uint32_t>(fanin_csr_.size());
      in.b = static_cast<std::uint32_t>(fanins.size());
      fanin_csr_.insert(fanin_csr_.end(), fanins.begin(), fanins.end());
    }
    instrs_[g] = in;
  }
  for (GateId g : nl.topo_order()) {
    if (nl.is_combinational(g)) comb_topo_.push_back(g);
  }
}

}  // namespace satdiag
