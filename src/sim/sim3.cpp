#include "sim/sim3.hpp"

#include <cassert>

namespace satdiag {

Val3 eval_gate_val3(GateType type, const Val3* fanins, std::size_t arity) {
  switch (type) {
    case GateType::kConst0:
      return Val3::all(false);
    case GateType::kConst1:
      return Val3::all(true);
    case GateType::kInput:
    case GateType::kDff:
      assert(false && "source gates have no combinational function");
      return Val3::all_x();
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return Val3{fanins[0].zero, fanins[0].one};
    case GateType::kAnd:
    case GateType::kNand: {
      Val3 acc = Val3::all(true);
      for (std::size_t i = 0; i < arity; ++i) {
        acc = Val3{acc.one & fanins[i].one, acc.zero | fanins[i].zero};
      }
      return type == GateType::kAnd ? acc : Val3{acc.zero, acc.one};
    }
    case GateType::kOr:
    case GateType::kNor: {
      Val3 acc = Val3::all(false);
      for (std::size_t i = 0; i < arity; ++i) {
        acc = Val3{acc.one | fanins[i].one, acc.zero & fanins[i].zero};
      }
      return type == GateType::kOr ? acc : Val3{acc.zero, acc.one};
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Val3 acc = Val3::all(false);
      for (std::size_t i = 0; i < arity; ++i) {
        const Val3& b = fanins[i];
        acc = Val3{(acc.one & b.zero) | (acc.zero & b.one),
                   (acc.one & b.one) | (acc.zero & b.zero)};
      }
      return type == GateType::kXor ? acc : Val3{acc.zero, acc.one};
    }
  }
  return Val3::all_x();
}

ThreeValuedSimulator::ThreeValuedSimulator(const Netlist& nl) : nl_(&nl) {
  assert(nl.finalized());
  values_.assign(nl.size(), Val3::all_x());
  x_mask_.assign(nl.size(), 0);
  for (GateId g = 0; g < nl.size(); ++g) {
    if (nl.type(g) == GateType::kConst0) values_[g] = Val3::all(false);
    if (nl.type(g) == GateType::kConst1) values_[g] = Val3::all(true);
  }
}

void ThreeValuedSimulator::set_source(GateId g, Val3 v) {
  assert(nl_->is_source(g));
  values_[g] = v;
}

void ThreeValuedSimulator::set_input_vector(std::size_t bit,
                                            const std::vector<bool>& bits) {
  assert(bit < 64);
  assert(bits.size() == nl_->inputs().size());
  const std::uint64_t mask = 1ULL << bit;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    Val3& v = values_[nl_->inputs()[i]];
    v.one &= ~mask;
    v.zero &= ~mask;
    (bits[i] ? v.one : v.zero) |= mask;
  }
}

void ThreeValuedSimulator::inject_x(GateId g, std::uint64_t mask) {
  x_mask_[g] |= mask;
}

void ThreeValuedSimulator::clear_overrides() {
  x_mask_.assign(nl_->size(), 0);
}

void ThreeValuedSimulator::run() {
  for (GateId g : nl_->topo_order()) {
    if (nl_->is_combinational(g)) {
      const auto fanins = nl_->fanins(g);
      fanin_buf_.resize(fanins.size());
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        fanin_buf_[i] = values_[fanins[i]];
      }
      values_[g] =
          eval_gate_val3(nl_->type(g), fanin_buf_.data(), fanin_buf_.size());
    }
    if (x_mask_[g]) {
      values_[g].one &= ~x_mask_[g];
      values_[g].zero &= ~x_mask_[g];
    }
  }
}

}  // namespace satdiag
