#include "sim/sim3.hpp"

#include <cassert>

namespace satdiag {

Val3 eval_gate_val3(GateType type, const Val3* fanins, std::size_t arity) {
  switch (type) {
    case GateType::kConst0:
      return Val3::all(false);
    case GateType::kConst1:
      return Val3::all(true);
    case GateType::kInput:
    case GateType::kDff:
      assert(false && "source gates have no combinational function");
      return Val3::all_x();
    case GateType::kBuf:
      return fanins[0];
    case GateType::kNot:
      return Val3{fanins[0].zero, fanins[0].one};
    case GateType::kAnd:
    case GateType::kNand: {
      Val3 acc = Val3::all(true);
      for (std::size_t i = 0; i < arity; ++i) {
        acc = Val3{acc.one & fanins[i].one, acc.zero | fanins[i].zero};
      }
      return type == GateType::kAnd ? acc : Val3{acc.zero, acc.one};
    }
    case GateType::kOr:
    case GateType::kNor: {
      Val3 acc = Val3::all(false);
      for (std::size_t i = 0; i < arity; ++i) {
        acc = Val3{acc.one | fanins[i].one, acc.zero & fanins[i].zero};
      }
      return type == GateType::kOr ? acc : Val3{acc.zero, acc.one};
    }
    case GateType::kXor:
    case GateType::kXnor: {
      Val3 acc = Val3::all(false);
      for (std::size_t i = 0; i < arity; ++i) {
        const Val3& b = fanins[i];
        acc = Val3{(acc.one & b.zero) | (acc.zero & b.one),
                   (acc.one & b.one) | (acc.zero & b.zero)};
      }
      return type == GateType::kXor ? acc : Val3{acc.zero, acc.one};
    }
  }
  return Val3::all_x();
}

ThreeValuedSimulator::ThreeValuedSimulator(const Netlist& nl)
    : nl_(&nl), compiled_(nl), worklist_(nl) {
  const std::size_t n = nl.size();
  val_.assign(n, 0);
  known_.assign(n, 0);
  x_mask_.assign(n, 0);
  on_x_trail_.assign(n, 0);
  for (GateId g = 0; g < n; ++g) {
    if (nl.type(g) == GateType::kConst0) known_[g] = ~0ULL;
    if (nl.type(g) == GateType::kConst1) {
      val_[g] = ~0ULL;
      known_[g] = ~0ULL;
    }
  }
}

// ---------------------------------------------------------------------------
// Compiled (value, known) evaluation
//
// Bitplane algebra (operands normalized: val ⊆ known, X lanes read 0):
//   known-1 mask of a gate is `val`, known-0 mask is `known & ~val`.
//   AND:  1 iff all 1; known iff all known or some known-0.
//   OR:   1 iff some 1; known iff all known or some known-1.
//   XOR:  known iff all known.
//   Negation complements the value lanes inside `known` and preserves it.
// These match the dual-rail fold of eval_gate_val3 bit for bit, which the
// differential tests (run() vs run_full()) enforce.

ThreeValuedSimulator::Planes ThreeValuedSimulator::exec(GateId g) const {
  const SimInstr in = compiled_.instr(g);
  const auto fetch = [this](GateId f) {
    return Planes{val_[f], known_[f]};
  };
  const auto and2 = [](Planes a, Planes b) {
    return Planes{a.val & b.val, (a.known & b.known) | (a.known & ~a.val) |
                                     (b.known & ~b.val)};
  };
  const auto or2 = [](Planes a, Planes b) {
    return Planes{a.val | b.val, (a.known & b.known) | a.val | b.val};
  };
  const auto xor2 = [](Planes a, Planes b) {
    const std::uint64_t k = a.known & b.known;
    return Planes{(a.val ^ b.val) & k, k};
  };
  const auto invert = [](Planes p) {
    return Planes{p.known & ~p.val, p.known};
  };
  switch (in.op) {
    case SimOp::kSource:
      return fetch(g);
    case SimOp::kBuf:
      return fetch(in.a);
    case SimOp::kNot:
      return invert(fetch(in.a));
    case SimOp::kAnd2:
      return and2(fetch(in.a), fetch(in.b));
    case SimOp::kNand2:
      return invert(and2(fetch(in.a), fetch(in.b)));
    case SimOp::kOr2:
      return or2(fetch(in.a), fetch(in.b));
    case SimOp::kNor2:
      return invert(or2(fetch(in.a), fetch(in.b)));
    case SimOp::kXor2:
      return xor2(fetch(in.a), fetch(in.b));
    case SimOp::kXnor2:
      return invert(xor2(fetch(in.a), fetch(in.b)));
    case SimOp::kAndK:
    case SimOp::kNandK: {
      Planes acc{~0ULL, ~0ULL};
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc = and2(acc, fetch(compiled_.csr_fanin(in.a + i)));
      }
      return in.op == SimOp::kAndK ? acc : invert(acc);
    }
    case SimOp::kOrK:
    case SimOp::kNorK: {
      Planes acc{0ULL, ~0ULL};
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc = or2(acc, fetch(compiled_.csr_fanin(in.a + i)));
      }
      return in.op == SimOp::kOrK ? acc : invert(acc);
    }
    case SimOp::kXorK:
    case SimOp::kXnorK: {
      Planes acc{0ULL, ~0ULL};
      for (std::uint32_t i = 0; i < in.b; ++i) {
        acc = xor2(acc, fetch(compiled_.csr_fanin(in.a + i)));
      }
      return in.op == SimOp::kXorK ? acc : invert(acc);
    }
  }
  return Planes{};
}

// ---------------------------------------------------------------------------
// Dirty-cone bookkeeping

void ThreeValuedSimulator::schedule(GateId g) {
  if (!all_dirty_) worklist_.schedule(g);
}

void ThreeValuedSimulator::schedule_fanouts(GateId g) {
  if (!all_dirty_) worklist_.schedule_fanouts(g);
}

// ---------------------------------------------------------------------------
// Mutators

void ThreeValuedSimulator::set_source(GateId g, Val3 v) {
  assert(nl_->is_source(g));
  Planes p{v.one, v.one | v.zero};
  if (x_mask_[g]) apply_mask(g, p);  // a live injection keeps masking lanes
  if (p != Planes{val_[g], known_[g]}) {
    store(g, p);
    schedule_fanouts(g);
  }
}

void ThreeValuedSimulator::set_input_vector(std::size_t bit,
                                            const std::vector<bool>& bits) {
  assert(bit < 64);
  set_input_lanes(1ULL << bit, bits);
}

void ThreeValuedSimulator::set_input_lanes(std::uint64_t lanes,
                                           const std::vector<bool>& bits) {
  assert(bits.size() == nl_->inputs().size());
  if (lanes == 0) return;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const GateId g = nl_->inputs()[i];
    Planes p{val_[g], known_[g]};
    p.val = bits[i] ? (p.val | lanes) : (p.val & ~lanes);
    p.known |= lanes;
    if (x_mask_[g]) apply_mask(g, p);
    if (p != Planes{val_[g], known_[g]}) {
      store(g, p);
      schedule_fanouts(g);
    }
  }
}

void ThreeValuedSimulator::inject_x(GateId g, std::uint64_t mask) {
  if (!on_x_trail_[g]) {
    on_x_trail_[g] = 1;
    x_trail_.push_back(g);
  }
  x_mask_[g] |= mask;
  schedule(g);
}

void ThreeValuedSimulator::clear_overrides() {
  for (GateId g : x_trail_) {
    on_x_trail_[g] = 0;
    x_mask_[g] = 0;
    schedule(g);  // its cone reverts on the next run()
  }
  x_trail_.clear();
}

// ---------------------------------------------------------------------------
// Evaluation

void ThreeValuedSimulator::run() {
  if (all_dirty_) {
    // First evaluation: one pass over the compiled stream in topological
    // order. X-injected sources are masked up front; combinational
    // injections are applied in-stream.
    for (GateId g : x_trail_) {
      if (nl_->is_source(g)) {
        Planes p{val_[g], known_[g]};
        apply_mask(g, p);
        store(g, p);
      }
    }
    for (GateId g : compiled_.comb_topo()) {
      Planes p = exec(g);
      if (x_mask_[g]) apply_mask(g, p);
      store(g, p);
    }
    worklist_.reset();
    all_dirty_ = false;
    return;
  }
  worklist_.drain([this](GateId g) {
    Planes p = exec(g);  // SimOp::kSource returns the stored planes
    if (x_mask_[g]) apply_mask(g, p);
    if (p != Planes{val_[g], known_[g]}) {
      store(g, p);
      worklist_.schedule_fanouts(g);  // appends strictly higher levels only
    }
  });
}

void ThreeValuedSimulator::run_full() {
  for (GateId g : nl_->topo_order()) {
    if (nl_->is_combinational(g)) {
      const auto fanins = nl_->fanins(g);
      fanin_buf_.resize(fanins.size());
      for (std::size_t i = 0; i < fanins.size(); ++i) {
        fanin_buf_[i] = value(fanins[i]);
      }
      const Val3 v =
          eval_gate_val3(nl_->type(g), fanin_buf_.data(), fanin_buf_.size());
      store(g, Planes{v.one, v.one | v.zero});
    }
    if (x_mask_[g]) {
      Planes p{val_[g], known_[g]};
      apply_mask(g, p);
      store(g, p);
    }
  }
  // A full sweep satisfies every pending dirty mark.
  worklist_.reset();
  all_dirty_ = false;
}

// ---------------------------------------------------------------------------
// Lane-batched candidate X-injection

Sim3XBatch::Sim3XBatch(const Netlist& nl, const TestSet& tests,
                       std::size_t begin, std::size_t count)
    : plan_(LanePlan::for_patterns(count)), sim_(nl) {
  assert(count >= 1 && count <= 64);
  assert(begin + count <= tests.size());
  out_gates_.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    const Test& test = tests[begin + b];
    out_gates_.push_back(test_output_gate(nl, test));
    sim_.set_input_lanes(plan_.spread(1ULL << b), test.input_values);
  }
  sim_.run();  // prime the X-free planes; clones inherit them warm
}

void Sim3XBatch::run_singles(std::span<const GateId> batch,
                             std::uint64_t* masks) {
  if (batch.empty()) return;
  assert(batch.size() <= capacity());
  sim_.clear_overrides();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    assert(sim_.netlist().is_combinational(batch[i]));
    sim_.inject_x(batch[i], plan_.group_mask(i));
  }
  sim_.run();
  extract(batch.size(), masks);
}

void Sim3XBatch::run_tuples(std::span<const std::vector<GateId>> batch,
                            std::uint64_t* masks) {
  if (batch.empty()) return;
  assert(batch.size() <= capacity());
  sim_.clear_overrides();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const GateId g : batch[i]) {
      assert(sim_.netlist().is_combinational(g));
      sim_.inject_x(g, plan_.group_mask(i));
    }
  }
  sim_.run();
  extract(batch.size(), masks);
}

void Sim3XBatch::extract(std::size_t count, std::uint64_t* masks) {
  for (std::size_t i = 0; i < count; ++i) masks[i] = 0;
  for (std::size_t b = 0; b < out_gates_.size(); ++b) {
    const std::uint64_t x = sim_.value(out_gates_[b]).x_mask();
    for (std::size_t i = 0; i < count; ++i) {
      masks[i] |= ((x >> plan_.lane(i, b)) & 1ULL) << b;
    }
  }
}

}  // namespace satdiag
