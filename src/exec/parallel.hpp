// Deterministic sharded map-reduce over a ThreadPool.
//
// The determinism contract of the execution runtime: results are bit-identical
// for every thread count (including 1) because
//  * work is split into contiguous index shards whose boundaries are a pure
//    function of the item count and grain — never of the thread count,
//  * items are processed in index order within a shard, and per-item results
//    land in per-item (parallel_map) or per-shard (parallel_map_reduce)
//    slots, so the dynamic shard->lane assignment cannot reorder anything,
//  * the reduction folds shard accumulators left-to-right in shard order
//    after the join,
//  * stochastic shard bodies draw from a per-shard Rng stream derived from a
//    root seed (shard_rng), not from a shared generator.
// Lane indices exist only to address worker-owned scratch state (simulator
// clones, per-worker solvers); the values a body computes must not depend on
// them. Exceptions are deterministic too: every shard runs to completion (or
// throws), and the exception of the lowest-numbered throwing shard is
// rethrown after the join.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace satdiag::exec {

/// Contiguous index shards over [0, num_items): a pure function of the item
/// count and grain, independent of the thread count.
struct ShardPlan {
  std::size_t num_items = 0;
  std::size_t grain = 1;  // items per shard; the last shard may be short

  /// grain == 0 picks a default that bounds the plan at kDefaultMaxShards
  /// shards — enough slack for dynamic load balancing at any realistic lane
  /// count while keeping per-shard setup cost (state clones) amortized.
  static constexpr std::size_t kDefaultMaxShards = 64;
  static ShardPlan make(std::size_t num_items, std::size_t grain = 0);

  std::size_t num_shards() const {
    return num_items == 0 ? 0 : (num_items + grain - 1) / grain;
  }
  std::pair<std::size_t, std::size_t> bounds(std::size_t shard) const {
    const std::size_t begin = shard * grain;
    return {begin, std::min(begin + grain, num_items)};
  }
};

/// The deterministic Rng stream of one shard: derived from the root seed and
/// the shard index alone, so any thread count replays identical draws.
Rng shard_rng(std::uint64_t root_seed, std::size_t shard);

namespace detail {

/// Runs `body(shard)` for every shard of `plan`, pulling shard indices from
/// an atomic counter. Every shard runs (no cancellation); the exception of
/// the lowest-numbered throwing shard is rethrown after the join.
template <typename ShardBody>
void run_shards(ThreadPool& pool, const ShardPlan& plan, ShardBody&& body) {
  const std::size_t num_shards = plan.num_shards();
  if (num_shards == 0) return;
  std::vector<std::exception_ptr> errors(num_shards);
  std::atomic<std::size_t> next{0};
  // Registration is cold; the references stay valid for process lifetime.
  static obs::Counter& shards_run =
      obs::MetricsRegistry::global().counter("exec.shards_run");
  static constexpr std::uint64_t kShardUsBounds[] = {10,    100,    1000,
                                                     10000, 100000, 1000000};
  static obs::Histogram& shard_us =
      obs::MetricsRegistry::global().histogram("exec.shard_us", kShardUsBounds);
  pool.run_on_all([&](std::size_t lane) {
    for (;;) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= num_shards) return;
      obs::Span span("exec.shard", "shard", static_cast<std::int64_t>(shard),
                     "lane", static_cast<std::int64_t>(lane));
      const std::uint64_t t0 = obs::trace_now_ns();
      try {
        body(shard, lane);
      } catch (...) {
        errors[shard] = std::current_exception();
      }
      shards_run.add(1);
      shard_us.observe((obs::trace_now_ns() - t0) / 1000);
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

/// parallel_for: body(i, lane) for every i in [0, n), in index order within
/// each shard. The body communicates through per-item slots it owns.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body,
                  std::size_t grain = 0) {
  const ShardPlan plan = ShardPlan::make(n, grain);
  detail::run_shards(pool, plan, [&](std::size_t shard, std::size_t lane) {
    const auto [begin, end] = plan.bounds(shard);
    for (std::size_t i = begin; i < end; ++i) body(i, lane);
  });
}

/// parallel_map: collect fn(i, lane) into an index-ordered vector.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn,
                            std::size_t grain = 0) {
  std::vector<T> results(n);
  parallel_for(
      pool, n, [&](std::size_t i, std::size_t lane) { results[i] = fn(i, lane); },
      grain);
  return results;
}

/// parallel_map_reduce: each shard folds its items (in index order) into its
/// own accumulator seeded from `identity` via map(i, acc, lane); after the
/// join the shard accumulators are reduced left-to-right in shard order via
/// reduce(total, std::move(acc)). Stable: the result equals the serial fold.
template <typename R, typename Map, typename Reduce>
R parallel_map_reduce(ThreadPool& pool, std::size_t n, R identity, Map&& map,
                      Reduce&& reduce, std::size_t grain = 0) {
  const ShardPlan plan = ShardPlan::make(n, grain);
  std::vector<R> partials(plan.num_shards(), identity);
  detail::run_shards(pool, plan, [&](std::size_t shard, std::size_t lane) {
    const auto [begin, end] = plan.bounds(shard);
    R& acc = partials[shard];
    for (std::size_t i = begin; i < end; ++i) map(i, acc, lane);
  });
  R total = std::move(identity);
  for (R& partial : partials) reduce(total, std::move(partial));
  return total;
}

/// Worker-owned scratch state, created on first use per lane (e.g. simulator
/// clones over a shared CompiledNetlist, per-worker SAT solvers). The factory
/// must produce equivalent state for every lane: lane state carries no
/// result-relevant history across shards.
template <typename T>
class LaneLocal {
 public:
  explicit LaneLocal(std::size_t lanes) : slots_(lanes) {}

  template <typename Factory>
  T& get(std::size_t lane, Factory&& factory) {
    auto& slot = slots_[lane];
    if (!slot) slot.emplace(factory());
    return *slot;
  }

  /// Drop all lane state (e.g. between rounds whose baseline changed).
  void reset() {
    for (auto& slot : slots_) slot.reset();
  }

 private:
  std::vector<std::optional<T>> slots_;
};

}  // namespace satdiag::exec
