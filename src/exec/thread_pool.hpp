// Fixed-size worker pool for the deterministic execution runtime.
//
// The pool owns `num_threads - 1` worker threads; the calling thread always
// participates as lane 0, so `ThreadPool(1)` spawns nothing and runs every
// task inline. There is deliberately no task queue or future machinery: the
// single primitive is run_on_all(), a fork-join batch where every lane runs
// the same callable with its lane index. The sharded map-reduce layer
// (exec/parallel.hpp) builds deterministic work distribution on top of this;
// consumers use lane indices only to address worker-owned scratch state
// (simulator clones, per-worker SAT solvers), never to influence results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace satdiag::exec {

class ThreadPool {
 public:
  /// `num_threads` lanes in total (clamped to >= 1). Lane 0 is the caller;
  /// lanes 1..num_threads-1 are dedicated workers spawned here and joined in
  /// the destructor.
  explicit ThreadPool(std::size_t num_threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return lanes_; }

  /// Fork-join batch: invoke `task(lane)` once per lane in [0, num_threads())
  /// and block until every lane returned. The caller runs lane 0. When lanes
  /// throw, the exception of the lowest-numbered throwing lane is rethrown
  /// after the join (the batch always completes; no lane is torn down).
  /// Not reentrant: run_on_all must not be called from inside a task.
  void run_on_all(const std::function<void(std::size_t)>& task);

 private:
  void worker_main(std::size_t lane);

  const std::size_t lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // run_on_all waits for the join
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per batch; wakes the workers
  std::size_t outstanding_ = 0;   // workers still inside the current batch
  std::vector<std::exception_ptr> errors_;  // per lane, reset per batch
  bool shutdown_ = false;
};

}  // namespace satdiag::exec
