#include "exec/parallel.hpp"

namespace satdiag::exec {

ShardPlan ShardPlan::make(std::size_t num_items, std::size_t grain) {
  ShardPlan plan;
  plan.num_items = num_items;
  if (grain == 0) {
    grain = (num_items + kDefaultMaxShards - 1) / kDefaultMaxShards;
  }
  plan.grain = std::max<std::size_t>(1, grain);
  return plan;
}

Rng shard_rng(std::uint64_t root_seed, std::size_t shard) {
  // Same derivation shape as the experiment seed-retry stream: a distinct
  // odd-multiplier perturbation per shard, passed through the Rng's SplitMix
  // seeding so neighbouring shards decorrelate.
  return Rng((root_seed + static_cast<std::uint64_t>(shard + 1) *
                              0x517cc1b727220a95ULL) *
                 0x9e3779b97f4a7c15ULL +
             0x2545f4914f6cdd1dULL);
}

}  // namespace satdiag::exec
