#include "exec/thread_pool.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace satdiag::exec {

ThreadPool::ThreadPool(std::size_t num_threads)
    : lanes_(std::max<std::size_t>(1, num_threads)), errors_(lanes_) {
  workers_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_main(std::size_t lane) {
  set_log_lane(static_cast<int>(lane));
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    std::exception_ptr error;
    try {
      (*task)(lane);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_[lane] = error;
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& task) {
  if (lanes_ > 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    outstanding_ = lanes_ - 1;
    errors_.assign(lanes_, nullptr);
    ++generation_;
  } else {
    errors_.assign(lanes_, nullptr);
  }
  work_cv_.notify_all();

  // The caller is lane 0; its exception is stored like any worker's so the
  // lowest-lane rethrow rule below treats all lanes uniformly. Its log-lane
  // tag is scoped to the task: the caller thread outlives the pool.
  std::exception_ptr lane0_error;
  const int prev_lane = log_lane();
  set_log_lane(0);
  try {
    task(0);
  } catch (...) {
    lane0_error = std::current_exception();
  }
  set_log_lane(prev_lane);

  if (lanes_ > 1) {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    task_ = nullptr;
  }
  errors_[0] = lane0_error;
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace satdiag::exec
