#include "cnf/tseitin.hpp"

#include <cassert>

namespace satdiag {

using sat::Clause;
using sat::Lit;
using sat::Solver;

namespace {

// out <-> AND(ins) when `invert_out` is false, NAND otherwise.
void encode_and_like(Solver& solver, Lit out, std::span<const Lit> ins,
                     bool invert_out) {
  const Lit o = invert_out ? ~out : out;
  Clause big;
  big.reserve(ins.size() + 1);
  for (Lit in : ins) {
    solver.add_clause(~o, in);
    big.push_back(~in);
  }
  big.push_back(o);
  solver.add_clause(std::move(big));
}

// out <-> OR(ins) when `invert_out` is false, NOR otherwise.
void encode_or_like(Solver& solver, Lit out, std::span<const Lit> ins,
                    bool invert_out) {
  const Lit o = invert_out ? ~out : out;
  Clause big;
  big.reserve(ins.size() + 1);
  for (Lit in : ins) {
    solver.add_clause(o, ~in);
    big.push_back(in);
  }
  big.push_back(~o);
  solver.add_clause(std::move(big));
}

// z <-> a XOR b.
void encode_xor2(Solver& solver, Lit z, Lit a, Lit b) {
  solver.add_clause(~z, a, b);
  solver.add_clause(~z, ~a, ~b);
  solver.add_clause(z, ~a, b);
  solver.add_clause(z, a, ~b);
}

}  // namespace

void encode_gate_function(Solver& solver, GateType type, Lit out,
                          std::span<const Lit> ins) {
  assert(is_combinational_type(type));
  assert(arity_ok(type, ins.size()));
  switch (type) {
    case GateType::kBuf:
      solver.add_clause(~out, ins[0]);
      solver.add_clause(out, ~ins[0]);
      return;
    case GateType::kNot:
      solver.add_clause(~out, ~ins[0]);
      solver.add_clause(out, ins[0]);
      return;
    case GateType::kAnd:
    case GateType::kNand:
      encode_and_like(solver, out, ins, type == GateType::kNand);
      return;
    case GateType::kOr:
    case GateType::kNor:
      encode_or_like(solver, out, ins, type == GateType::kNor);
      return;
    case GateType::kXor:
    case GateType::kXnor: {
      // Chain pairwise with fresh intermediates.
      Lit acc = ins[0];
      for (std::size_t i = 1; i + 1 < ins.size(); ++i) {
        const Lit next = sat::pos(solver.new_var(/*decidable=*/false));
        encode_xor2(solver, next, acc, ins[i]);
        acc = next;
      }
      const Lit target = type == GateType::kXor ? out : ~out;
      if (ins.size() == 1) {
        solver.add_clause(~target, acc);
        solver.add_clause(target, ~acc);
      } else {
        encode_xor2(solver, target, acc, ins[ins.size() - 1]);
      }
      return;
    }
    default:
      assert(false && "not a combinational type");
  }
}

CircuitEncoding encode_circuit(Solver& solver, const Netlist& nl,
                               bool internal_decisions) {
  assert(nl.finalized());
  CircuitEncoding enc;
  enc.gate_var.resize(nl.size());
  for (GateId g = 0; g < nl.size(); ++g) {
    const bool decidable = internal_decisions || nl.is_source(g);
    enc.gate_var[g] = solver.new_var(decidable);
  }
  std::vector<Lit> ins;
  for (GateId g : nl.topo_order()) {
    switch (nl.type(g)) {
      case GateType::kInput:
      case GateType::kDff:
        break;  // free variable
      case GateType::kConst0:
        solver.add_clause(enc.lit(g, /*negated=*/true));
        break;
      case GateType::kConst1:
        solver.add_clause(enc.lit(g));
        break;
      default: {
        ins.clear();
        for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
        encode_gate_function(solver, nl.type(g), enc.lit(g), ins);
        break;
      }
    }
  }
  return enc;
}

}  // namespace satdiag
