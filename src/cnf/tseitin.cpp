#include "cnf/tseitin.hpp"

#include <cassert>

namespace satdiag {

using sat::Lit;
using sat::Solver;

void encode_gate_function(Solver& solver, GateType type, Lit out,
                          std::span<const Lit> ins) {
  encode_gate_function_into(solver, type, out, ins);
}

CircuitEncoding encode_circuit(Solver& solver, const Netlist& nl,
                               bool internal_decisions) {
  assert(nl.finalized());
  CircuitEncoding enc;
  enc.gate_var.resize(nl.size());
  for (GateId g = 0; g < nl.size(); ++g) {
    const bool decidable = internal_decisions || nl.is_source(g);
    enc.gate_var[g] = solver.new_var(decidable);
  }
  std::vector<Lit> ins;
  for (GateId g : nl.topo_order()) {
    switch (nl.type(g)) {
      case GateType::kInput:
      case GateType::kDff:
        break;  // free variable
      case GateType::kConst0:
        solver.add_clause(enc.lit(g, /*negated=*/true));
        break;
      case GateType::kConst1:
        solver.add_clause(enc.lit(g));
        break;
      default: {
        ins.clear();
        for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
        encode_gate_function(solver, nl.type(g), enc.lit(g), ins);
        break;
      }
    }
  }
  return enc;
}

}  // namespace satdiag
