// Cardinality ("at most k") constraint encodings.
//
// BSAT bounds the number of asserted multiplexer select lines (Fig. 2(b),
// "< k s"). Three encodings are provided:
//
//  * pairwise     — naive, clause count C(n, k+1); only sensible for tiny
//                   n or k (kept as the ablation baseline),
//  * sequential   — Sinz's LTseq counter, O(n*k) clauses,
//  * totalizer    — Bailleux-Boufkhad unary totalizer, O(n log n + n*k).
//
// The counter encodings expose "at least j" indicator literals, so a single
// instance supports the incremental k = 1..K loop of BasicSATDiagnose via
// assumptions (no re-encoding per k).
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace satdiag {

enum class CardEncoding {
  kPairwise,
  kSequential,
  kTotalizer,
};

const char* card_encoding_name(CardEncoding e);

/// Unary counter over a literal set.
struct CardinalityTracker {
  std::vector<sat::Lit> inputs;
  /// geq[j-1] is implied true whenever at least j inputs are true
  /// (one-directional; sufficient for enforcing upper bounds by assuming
  /// the negation). Available for j = 1 .. max_bound+1.
  std::vector<sat::Lit> geq;

  /// Assumptions enforcing "at most `bound` inputs true".
  /// bound must be <= max_bound used at construction.
  std::vector<sat::Lit> assume_at_most(unsigned bound) const;
};

/// Build a counter usable for bounds 0..max_bound. The counter output
/// variables (geq) are frozen against variable elimination — they appear in
/// future assumptions via assume_at_most.
///
/// kPairwise has no incremental form (no counter outputs to assume against):
/// requesting it substitutes the sequential counter, with a one-time warning.
/// The enforced bound semantics are identical; only the clause shape
/// differs. Callers that need actual pairwise clauses (the ablation
/// baseline) must use encode_at_most_static.
CardinalityTracker encode_cardinality_tracker(sat::Solver& solver,
                                              std::vector<sat::Lit> lits,
                                              unsigned max_bound,
                                              CardEncoding encoding);

/// Statically assert "at most `bound` of lits are true" with any encoding.
/// Returns false if the solver became UNSAT.
bool encode_at_most_static(sat::Solver& solver,
                           const std::vector<sat::Lit>& lits, unsigned bound,
                           CardEncoding encoding);

}  // namespace satdiag
