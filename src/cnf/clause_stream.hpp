// Relocatable CNF templates for diagnosis-instance construction.
//
// build_diagnosis_instance used to re-walk the netlist and re-run the
// Tseitin/mux encoder once per test copy — Θ(|I|·m) encoder work for an
// m-test instance, all of it re-deriving the same clauses at different
// variable offsets. A ClauseStream captures ONE instrumented circuit copy
// (mux clauses, gating clauses, correction/orig variables, gate functions)
// over *relative* variable indices, together with a per-copy variable-layout
// descriptor. Stamping a copy is then literal-offset relocation into the
// solver's bulk loader (sat::Solver::add_clause_stream) — near-memcpy —
// and the encoder walk happens once per (circuit, cone, universe, options)
// key, cached process-wide in cache::ArtifactCache.
//
// Two literal spaces:
//  * local variables — fresh per copy; index < kExternVarBase; relocated to
//    `base + index` where base is the stamping solver's variable watermark.
//    The local allocation order replicates the per-copy walk encoder's
//    new_var order exactly, so a stamped instance is variable-for-variable
//    identical to the walk-built one (pinned by the clause_stream diff
//    tests).
//  * extern slots — the shared select lines, encoded as variable
//    kExternVarBase + slot and resolved through `extern_gates` against the
//    instance's select variables at stamp time.
//
// Clauses are normalized at template-build time (sorted in template-code
// order, duplicates removed, tautologies dropped). Relocation maps variables
// injectively, so the normalized stream satisfies add_clause_stream's
// no-duplicate/no-tautology precondition after relocation too.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace satdiag {

struct ClauseStream {
  /// Template variables at or above this value are extern-slot references
  /// (slot = var - kExternVarBase); below it, relative local indices.
  static constexpr sat::Var kExternVarBase = 1 << 29;

  static constexpr std::uint8_t kDecidable = 1;
  static constexpr std::uint8_t kFrozen = 2;

  // ---- per-copy variable layout -------------------------------------------
  std::uint32_t num_locals = 0;
  std::vector<std::uint8_t> local_flags;  // kDecidable / kFrozen per local
  /// Gates carrying a mux in this copy (instrumented ∩ cone), in template
  /// slot order; extern slot j resolves to the select variable of
  /// extern_gates[j].
  std::vector<GateId> extern_gates;
  std::vector<std::uint32_t> correction_local;  // per extern slot: c_g local
  /// Post-mux value variable per gate (local index), -1 outside the cone.
  std::vector<std::int32_t> gate_local;
  /// In-cone primary inputs as (input position, local index) — the stamp
  /// site adds the per-test input unit constraints from these.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> input_locals;

  // ---- normalized clause payload ------------------------------------------
  std::vector<std::uint32_t> lits;   // Lit::index() codes, concatenated
  std::vector<std::uint32_t> sizes;  // clause lengths, in emission order
  /// Unit clauses in the stream (const gates). Zero — the standard case —
  /// means stamping into unassigned variables can take the solver's pristine
  /// bulk path: nothing simplifies or propagates mid-stream.
  std::uint32_t num_units = 0;

  /// Deferred watch attachments (two per clause of size >= 3 resp. == 2),
  /// over template codes, stable-sorted by watch list. Relocation is
  /// injective, so runs of equal watch_index stay contiguous after it and
  /// sat::Solver::add_clause_stream can fill each watch list in one
  /// sequential pass — see StreamWatchOp in sat/solver.hpp.
  std::vector<sat::StreamWatchOp> watch_plan_long;
  std::vector<sat::StreamWatchOp> watch_plan_bin;

  std::size_t bytes() const;
};

/// Encode one instrumented circuit copy into a template. `cone` restricts
/// the copy to a fanin cone (nullptr = every gate); `instrumented` flags the
/// mux-carrying gates (intersected with the cone by construction of the
/// walk). `internal_decisions`/`gating_clauses` mirror
/// DiagnosisInstanceOptions.
ClauseStream build_copy_template(const Netlist& nl,
                                 const std::vector<bool>* cone,
                                 const std::vector<bool>& instrumented,
                                 bool gating_clauses, bool internal_decisions);

/// Caller-owned relocation storage for stamp_clause_stream, reused across
/// copies so per-stamp allocation amortizes away.
struct StampScratch {
  std::vector<sat::Lit> lits;
  std::vector<sat::StreamWatchOp> plan_long;
  std::vector<sat::StreamWatchOp> plan_bin;
};

/// Stamp one copy into `solver`: allocate num_locals fresh variables in one
/// batch (flags/freezes from the layout descriptor), relocate the literal
/// stream and watch plan by the new variable base (extern slots through
/// `extern_vars`, one per extern_gates entry), and bulk-load it. Returns the
/// copy's variable base.
sat::Var stamp_clause_stream(sat::Solver& solver, const ClauseStream& ts,
                             std::span<const sat::Var> extern_vars,
                             StampScratch& scratch);

/// Process-wide stamping counters (CLI --stats / bench reporting).
struct ClauseStreamStats {
  std::uint64_t templates_built = 0;
  std::uint64_t copies_stamped = 0;
  std::uint64_t clauses_stamped = 0;
};
ClauseStreamStats clause_stream_stats();
void reset_clause_stream_stats();

}  // namespace satdiag
