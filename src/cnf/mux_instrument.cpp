#include "cnf/mux_instrument.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>
#include <utility>

#include "cache/artifact_cache.hpp"
#include "cnf/clause_stream.hpp"
#include "netlist/analysis.hpp"
#include "obs/trace.hpp"

namespace satdiag {

using sat::Lit;
using sat::Solver;
using sat::Var;

std::vector<GateId> DiagnosisInstance::selected_gates_from_model() const {
  std::vector<GateId> out;
  for (std::size_t i = 0; i < select_var.size(); ++i) {
    if (solver.model_value(select_var[i]) == sat::LBool::kTrue) {
      out.push_back(instrumented[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Sorted, deduplicated, validated instrumented gate set (empty request =
/// every combinational gate). Shared by the stamped and walk builders.
std::vector<GateId> resolve_instrumented(
    const Netlist& nl, const DiagnosisInstanceOptions& options) {
  std::vector<GateId> instrumented;
  if (options.instrumented.empty()) {
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) instrumented.push_back(g);
    }
  } else {
    instrumented = options.instrumented;
    std::sort(instrumented.begin(), instrumented.end());
    instrumented.erase(
        std::unique(instrumented.begin(), instrumented.end()),
        instrumented.end());
    for (GateId g : instrumented) {
      if (!nl.is_combinational(g)) {
        throw NetlistError("only combinational gates can be instrumented");
      }
    }
  }
  return instrumented;
}

// Cone cache tags. fanin_cone is a pure function of (netlist, roots), so
// (fingerprint, root tag) addresses a cone exactly; per-test cones use the
// erroneous output gate as tag, the constrain_passing_outputs cone covers
// all outputs at once.
constexpr std::uint64_t kNoConeTag = ~0ull;
constexpr std::uint64_t kAllOutputsTag = ~0ull - 1;

std::shared_ptr<const std::vector<bool>> cached_cone(
    const Netlist& nl, const cache::ArtifactKey& nl_fp, std::uint64_t tag,
    const std::vector<GateId>& roots) {
  cache::KeyBuilder kb(cache::ArtifactKind::kCone);
  kb.mix(nl_fp).mix(tag);
  return cache::ArtifactCache::global().get_or_build<std::vector<bool>>(
      kb.key(),
      [&]() -> std::pair<std::shared_ptr<const std::vector<bool>>,
                         std::size_t> {
        auto cone =
            std::make_shared<std::vector<bool>>(fanin_cone(nl, roots));
        const std::size_t bytes = sizeof(*cone) + cone->size() / 8;
        return {std::move(cone), bytes};
      });
}

std::shared_ptr<const ClauseStream> cached_copy_template(
    const Netlist& nl, const cache::ArtifactKey& nl_fp,
    const std::vector<bool>* cone, std::uint64_t cone_tag,
    const std::vector<bool>& instrumented_flags,
    const std::vector<GateId>& instrumented,
    const DiagnosisInstanceOptions& options) {
  cache::KeyBuilder kb(cache::ArtifactKind::kCopyTemplate);
  kb.mix(nl_fp).mix(cone_tag);
  // The (cone-restricted) universe, not the requested one: two requests
  // that restrict to the same final set share the template.
  kb.mix(instrumented.size());
  for (const GateId g : instrumented) kb.mix(g);
  kb.mix(options.gating_clauses ? 1 : 0);
  kb.mix(options.internal_decisions ? 1 : 0);
  return cache::ArtifactCache::global().get_or_build<ClauseStream>(
      kb.key(),
      [&]() -> std::pair<std::shared_ptr<const ClauseStream>, std::size_t> {
        auto ts = std::make_shared<ClauseStream>(
            build_copy_template(nl, cone, instrumented_flags,
                                options.gating_clauses,
                                options.internal_decisions));
        const std::size_t bytes = ts->bytes();
        return {std::move(ts), bytes};
      });
}

/// Template-stamped construction: identical variable numbering and clause
/// database as the walk below, but the per-copy encoder runs once per
/// distinct cone (process-wide, via the artifact cache) instead of once per
/// test.
DiagnosisInstance build_stamped_instance(
    const Netlist& nl, const TestSet& tests,
    const DiagnosisInstanceOptions& options) {
  DiagnosisInstance inst;
  Solver& solver = inst.solver;
  if (!options.inprocess) {
    sat::InprocessConfig cfg = solver.inprocess_config();
    cfg.enabled = false;
    solver.set_inprocess(cfg);
  }
  inst.instrumented = resolve_instrumented(nl, options);

  const cache::ArtifactKey nl_fp = cache::netlist_fingerprint(nl);

  // Cone-of-influence reduction (see the walk builder for semantics). Cones
  // are cache artifacts of their own: templates need the union-restricted
  // instrumented set before they can even be keyed.
  std::vector<std::shared_ptr<const std::vector<bool>>> cones;
  std::vector<std::uint64_t> cone_tags;
  if (options.cone_of_influence) {
    if (options.constrain_passing_outputs) {
      cones.push_back(cached_cone(nl, nl_fp, kAllOutputsTag, nl.outputs()));
      cone_tags.push_back(kAllOutputsTag);
    } else {
      cones.reserve(tests.size());
      cone_tags.reserve(tests.size());
      for (const Test& test : tests) {
        const GateId out_gate = test_output_gate(nl, test);
        cones.push_back(cached_cone(nl, nl_fp, out_gate, {out_gate}));
        cone_tags.push_back(out_gate);
      }
    }
    std::vector<bool> union_cone(nl.size(), false);
    for (const auto& cone : cones) {
      for (GateId g = 0; g < nl.size(); ++g) {
        if ((*cone)[g]) union_cone[g] = true;
      }
    }
    std::erase_if(inst.instrumented,
                  [&](GateId g) { return !union_cone[g]; });
  }

  // Shared select lines first — identical allocation order to the walk.
  inst.select_index.assign(nl.size(), DiagnosisInstance::kNoSelect);
  for (std::size_t i = 0; i < inst.instrumented.size(); ++i) {
    inst.select_var.push_back(solver.new_var(/*decidable=*/true));
    solver.freeze(inst.select_var.back());
    inst.select_index[inst.instrumented[i]] = static_cast<std::uint32_t>(i);
  }

  std::vector<bool> instrumented_flags(nl.size(), false);
  for (const GateId g : inst.instrumented) instrumented_flags[g] = true;

  // One template (+ its extern-slot → select-var map) per distinct cone tag.
  // Tests sharing an erroneous output share a plan; without COI every test
  // shares the single full-circuit plan.
  struct CopyPlan {
    std::shared_ptr<const ClauseStream> ts;
    std::vector<Var> extern_vars;
  };
  std::unordered_map<std::uint64_t, CopyPlan> plans;
  const auto plan_for = [&](std::size_t t) -> const CopyPlan& {
    const std::uint64_t tag =
        cones.empty() ? kNoConeTag
                      : (cones.size() == 1 ? cone_tags[0] : cone_tags[t]);
    auto [it, inserted] = plans.try_emplace(tag);
    if (inserted) {
      const std::vector<bool>* cone =
          cones.empty() ? nullptr
                        : (cones.size() == 1 ? cones[0].get()
                                             : cones[t].get());
      it->second.ts = cached_copy_template(nl, nl_fp, cone, tag,
                                           instrumented_flags,
                                           inst.instrumented, options);
      it->second.extern_vars.reserve(it->second.ts->extern_gates.size());
      for (const GateId g : it->second.ts->extern_gates) {
        it->second.extern_vars.push_back(
            inst.select_var[inst.select_index[g]]);
      }
    }
    return it->second;
  };

  // One exact variable reservation covering every upcoming copy: each
  // variable owns four watch-list objects, and letting those tables grow
  // geometrically across m stamps re-moves millions of vector headers —
  // measurably the most expensive part of batch variable allocation.
  {
    std::size_t upcoming = 0;
    for (std::size_t t = 0; t < tests.size(); ++t) {
      upcoming += plan_for(t).ts->num_locals;
    }
    // Cardinality counter aux variables (<= (max_k + 1) rows per select for
    // both counter encodings): left out, the counter's first new_var would
    // re-move every just-reserved table.
    const std::size_t rows = std::min<std::size_t>(inst.select_var.size(),
                                                   options.max_k + 1);
    upcoming += rows * inst.select_var.size();
    solver.reserve_vars(upcoming);
  }

  StampScratch scratch;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    const Test& test = tests[t];
    assert(test.input_values.size() == nl.inputs().size());

    const CopyPlan& plan = plan_for(t);
    const ClauseStream& ts = *plan.ts;
    const Var base =
        stamp_clause_stream(solver, ts, plan.extern_vars, scratch);

    CircuitEncoding enc;
    enc.gate_var.assign(nl.size(), -1);
    for (GateId g = 0; g < nl.size(); ++g) {
      if (ts.gate_local[g] >= 0) {
        enc.gate_var[g] = base + static_cast<Var>(ts.gate_local[g]);
      }
    }
    std::vector<Var>& corrections = inst.correction_var.emplace_back();
    corrections.resize(inst.instrumented.size(), -1);
    for (std::size_t j = 0; j < ts.extern_gates.size(); ++j) {
      corrections[inst.select_index[ts.extern_gates[j]]] =
          base + static_cast<Var>(ts.correction_local[j]);
    }

    // Per-test unit constraints, in the walk's order: inputs, erroneous
    // output, passing outputs.
    for (const auto& [input_pos, local] : ts.input_locals) {
      solver.add_clause(Lit(base + static_cast<Var>(local),
                            /*negated=*/!test.input_values[input_pos]));
    }
    const GateId out_gate = test_output_gate(nl, test);
    solver.add_clause(enc.lit(out_gate, /*negated=*/!test.correct_value));

    if (options.constrain_passing_outputs) {
      assert(options.expected_outputs.size() == tests.size());
      const auto& golden = options.expected_outputs[t];
      assert(golden.size() == nl.outputs().size());
      for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        if (o == test.output_index) continue;
        solver.add_clause(enc.lit(nl.outputs()[o], /*negated=*/!golden[o]));
      }
    }

    inst.copies.push_back(std::move(enc));
  }

  std::vector<Lit> select_lits;
  select_lits.reserve(inst.select_var.size());
  for (Var s : inst.select_var) select_lits.push_back(sat::pos(s));
  inst.cardinality = encode_cardinality_tracker(
      solver, std::move(select_lits), options.max_k, options.card_encoding);

  return inst;
}

}  // namespace

DiagnosisInstance build_diagnosis_instance(
    const Netlist& nl, const TestSet& tests,
    const DiagnosisInstanceOptions& options) {
  obs::Span span("cnf.build_instance", "tests",
                 static_cast<std::int64_t>(tests.size()));
  assert(nl.finalized());
  assert(!tests.empty());
  if (options.template_stamped) {
    return build_stamped_instance(nl, tests, options);
  }

  // Reference walk encoder: one netlist traversal per test copy. Kept (under
  // template_stamped=false) as the anchor the stamped path is differentially
  // tested against — every change here must be mirrored in
  // build_copy_template and vice versa.
  DiagnosisInstance inst;
  Solver& solver = inst.solver;
  if (!options.inprocess) {
    sat::InprocessConfig cfg = solver.inprocess_config();
    cfg.enabled = false;
    solver.set_inprocess(cfg);
  }

  inst.instrumented = resolve_instrumented(nl, options);

  // Cone-of-influence reduction: per-copy cones of the constrained outputs,
  // instrumented set restricted to their union. `cones` stays empty (and
  // every gate is encoded in every copy) when the reduction is off; with
  // constrain_passing_outputs every copy constrains all outputs, so one
  // shared cone serves every copy.
  std::vector<std::vector<bool>> cones;
  if (options.cone_of_influence) {
    std::vector<bool> union_cone(nl.size(), false);
    if (options.constrain_passing_outputs) {
      cones.push_back(fanin_cone(nl, nl.outputs()));
      union_cone = cones.back();
    } else {
      cones.reserve(tests.size());
      for (const Test& test : tests) {
        cones.push_back(fanin_cone(nl, {test_output_gate(nl, test)}));
        for (GateId g = 0; g < nl.size(); ++g) {
          if (cones.back()[g]) union_cone[g] = true;
        }
      }
    }
    std::erase_if(inst.instrumented,
                  [&](GateId g) { return !union_cone[g]; });
  }
  const auto in_copy = [&](std::size_t t, GateId g) -> bool {
    if (cones.empty()) return true;
    return cones.size() == 1 ? cones[0][g] : cones[t][g];
  };

  // Shared select lines (free/decision variables). Frozen: the diagnosis
  // layers mention them in assumptions, blocking clauses, and partition
  // clauses long after inprocessing has started.
  inst.select_index.assign(nl.size(), DiagnosisInstance::kNoSelect);
  for (std::size_t i = 0; i < inst.instrumented.size(); ++i) {
    inst.select_var.push_back(solver.new_var(/*decidable=*/true));
    solver.freeze(inst.select_var.back());
    inst.select_index[inst.instrumented[i]] =
        static_cast<std::uint32_t>(i);
  }

  std::vector<Lit> ins;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    const Test& test = tests[t];
    assert(test.input_values.size() == nl.inputs().size());

    CircuitEncoding enc;
    enc.gate_var.assign(nl.size(), -1);
    std::vector<Var>& corrections = inst.correction_var.emplace_back();
    corrections.resize(inst.instrumented.size(), -1);

    for (GateId g : nl.topo_order()) {
      if (!in_copy(t, g)) continue;  // cannot influence this copy's outputs
      // Variable carrying the value seen by fanouts (post-mux).
      enc.gate_var[g] = solver.new_var(options.internal_decisions);
    }
    for (GateId g : nl.topo_order()) {
      if (!in_copy(t, g)) continue;
      const std::uint32_t sel = inst.select_index[g];
      Lit function_out = enc.lit(g);
      if (sel != DiagnosisInstance::kNoSelect) {
        // Correction value c_g^t: a genuinely free variable. Frozen: the
        // effect/repair layers assume it and read its model value.
        const Var c = solver.new_var(/*decidable=*/true);
        solver.freeze(c);
        corrections[sel] = c;
        const Lit s = sat::pos(inst.select_var[sel]);
        const Lit out = enc.lit(g);
        // s -> (out == c);  !s -> (out == original function value).
        solver.add_clause(~s, ~out, sat::pos(c));
        solver.add_clause(~s, out, sat::neg(c));
        if (options.gating_clauses) {
          solver.add_clause(s, sat::neg(c));  // c == 0 while s == 0
        }
        // The original function drives a fresh internal node.
        const Var orig = solver.new_var(/*decidable=*/false);
        solver.add_clause(s, ~out, sat::pos(orig));
        solver.add_clause(s, out, sat::neg(orig));
        function_out = sat::pos(orig);
      }
      switch (nl.type(g)) {
        case GateType::kInput:
        case GateType::kDff:
          break;  // constrained below / free
        case GateType::kConst0:
          solver.add_clause(~function_out);
          break;
        case GateType::kConst1:
          solver.add_clause(function_out);
          break;
        default: {
          ins.clear();
          for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
          encode_gate_function(solver, nl.type(g), function_out, ins);
          break;
        }
      }
    }

    // Constrain primary inputs to the test vector.
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const GateId in = nl.inputs()[i];
      if (!in_copy(t, in)) continue;  // outside the cone: unencoded
      solver.add_clause(enc.lit(in, /*negated=*/!test.input_values[i]));
    }
    // Constrain the erroneous output to its correct value.
    const GateId out_gate = test_output_gate(nl, test);
    solver.add_clause(enc.lit(out_gate, /*negated=*/!test.correct_value));

    if (options.constrain_passing_outputs) {
      assert(options.expected_outputs.size() == tests.size());
      const auto& golden = options.expected_outputs[t];
      assert(golden.size() == nl.outputs().size());
      for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        if (o == test.output_index) continue;
        solver.add_clause(enc.lit(nl.outputs()[o], /*negated=*/!golden[o]));
      }
    }

    inst.copies.push_back(std::move(enc));
  }

  // Cardinality over the select lines.
  std::vector<Lit> select_lits;
  select_lits.reserve(inst.select_var.size());
  for (Var s : inst.select_var) select_lits.push_back(sat::pos(s));
  inst.cardinality = encode_cardinality_tracker(
      solver, std::move(select_lits), options.max_k, options.card_encoding);

  return inst;
}

}  // namespace satdiag
