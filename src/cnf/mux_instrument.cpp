#include "cnf/mux_instrument.hpp"

#include <algorithm>
#include <cassert>

#include "netlist/analysis.hpp"

namespace satdiag {

using sat::Lit;
using sat::Solver;
using sat::Var;

std::vector<GateId> DiagnosisInstance::selected_gates_from_model() const {
  std::vector<GateId> out;
  for (std::size_t i = 0; i < select_var.size(); ++i) {
    if (solver.model_value(select_var[i]) == sat::LBool::kTrue) {
      out.push_back(instrumented[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

DiagnosisInstance build_diagnosis_instance(
    const Netlist& nl, const TestSet& tests,
    const DiagnosisInstanceOptions& options) {
  assert(nl.finalized());
  assert(!tests.empty());
  DiagnosisInstance inst;
  Solver& solver = inst.solver;
  if (!options.inprocess) {
    sat::InprocessConfig cfg = solver.inprocess_config();
    cfg.enabled = false;
    solver.set_inprocess(cfg);
  }

  // Instrumented gate set.
  if (options.instrumented.empty()) {
    for (GateId g = 0; g < nl.size(); ++g) {
      if (nl.is_combinational(g)) inst.instrumented.push_back(g);
    }
  } else {
    inst.instrumented = options.instrumented;
    std::sort(inst.instrumented.begin(), inst.instrumented.end());
    inst.instrumented.erase(
        std::unique(inst.instrumented.begin(), inst.instrumented.end()),
        inst.instrumented.end());
    for (GateId g : inst.instrumented) {
      if (!nl.is_combinational(g)) {
        throw NetlistError("only combinational gates can be instrumented");
      }
    }
  }

  // Cone-of-influence reduction: per-copy cones of the constrained outputs,
  // instrumented set restricted to their union. `cones` stays empty (and
  // every gate is encoded in every copy) when the reduction is off; with
  // constrain_passing_outputs every copy constrains all outputs, so one
  // shared cone serves every copy.
  std::vector<std::vector<bool>> cones;
  if (options.cone_of_influence) {
    std::vector<bool> union_cone(nl.size(), false);
    if (options.constrain_passing_outputs) {
      cones.push_back(fanin_cone(nl, nl.outputs()));
      union_cone = cones.back();
    } else {
      cones.reserve(tests.size());
      for (const Test& test : tests) {
        cones.push_back(fanin_cone(nl, {test_output_gate(nl, test)}));
        for (GateId g = 0; g < nl.size(); ++g) {
          if (cones.back()[g]) union_cone[g] = true;
        }
      }
    }
    std::erase_if(inst.instrumented,
                  [&](GateId g) { return !union_cone[g]; });
  }
  const auto in_copy = [&](std::size_t t, GateId g) -> bool {
    if (cones.empty()) return true;
    return cones.size() == 1 ? cones[0][g] : cones[t][g];
  };

  // Shared select lines (free/decision variables). Frozen: the diagnosis
  // layers mention them in assumptions, blocking clauses, and partition
  // clauses long after inprocessing has started.
  inst.select_index.assign(nl.size(), DiagnosisInstance::kNoSelect);
  for (std::size_t i = 0; i < inst.instrumented.size(); ++i) {
    inst.select_var.push_back(solver.new_var(/*decidable=*/true));
    solver.freeze(inst.select_var.back());
    inst.select_index[inst.instrumented[i]] =
        static_cast<std::uint32_t>(i);
  }

  std::vector<Lit> ins;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    const Test& test = tests[t];
    assert(test.input_values.size() == nl.inputs().size());

    CircuitEncoding enc;
    enc.gate_var.assign(nl.size(), -1);
    std::vector<Var>& corrections = inst.correction_var.emplace_back();
    corrections.resize(inst.instrumented.size(), -1);

    for (GateId g : nl.topo_order()) {
      if (!in_copy(t, g)) continue;  // cannot influence this copy's outputs
      // Variable carrying the value seen by fanouts (post-mux).
      enc.gate_var[g] = solver.new_var(options.internal_decisions);
    }
    for (GateId g : nl.topo_order()) {
      if (!in_copy(t, g)) continue;
      const std::uint32_t sel = inst.select_index[g];
      Lit function_out = enc.lit(g);
      if (sel != DiagnosisInstance::kNoSelect) {
        // Correction value c_g^t: a genuinely free variable. Frozen: the
        // effect/repair layers assume it and read its model value.
        const Var c = solver.new_var(/*decidable=*/true);
        solver.freeze(c);
        corrections[sel] = c;
        const Lit s = sat::pos(inst.select_var[sel]);
        const Lit out = enc.lit(g);
        // s -> (out == c);  !s -> (out == original function value).
        solver.add_clause(~s, ~out, sat::pos(c));
        solver.add_clause(~s, out, sat::neg(c));
        if (options.gating_clauses) {
          solver.add_clause(s, sat::neg(c));  // c == 0 while s == 0
        }
        // The original function drives a fresh internal node.
        const Var orig = solver.new_var(/*decidable=*/false);
        solver.add_clause(s, ~out, sat::pos(orig));
        solver.add_clause(s, out, sat::neg(orig));
        function_out = sat::pos(orig);
      }
      switch (nl.type(g)) {
        case GateType::kInput:
        case GateType::kDff:
          break;  // constrained below / free
        case GateType::kConst0:
          solver.add_clause(~function_out);
          break;
        case GateType::kConst1:
          solver.add_clause(function_out);
          break;
        default: {
          ins.clear();
          for (GateId f : nl.fanins(g)) ins.push_back(enc.lit(f));
          encode_gate_function(solver, nl.type(g), function_out, ins);
          break;
        }
      }
    }

    // Constrain primary inputs to the test vector.
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      const GateId in = nl.inputs()[i];
      if (!in_copy(t, in)) continue;  // outside the cone: unencoded
      solver.add_clause(enc.lit(in, /*negated=*/!test.input_values[i]));
    }
    // Constrain the erroneous output to its correct value.
    const GateId out_gate = test_output_gate(nl, test);
    solver.add_clause(enc.lit(out_gate, /*negated=*/!test.correct_value));

    if (options.constrain_passing_outputs) {
      assert(options.expected_outputs.size() == tests.size());
      const auto& golden = options.expected_outputs[t];
      assert(golden.size() == nl.outputs().size());
      for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
        if (o == test.output_index) continue;
        solver.add_clause(enc.lit(nl.outputs()[o], /*negated=*/!golden[o]));
      }
    }

    inst.copies.push_back(std::move(enc));
  }

  // Cardinality over the select lines.
  std::vector<Lit> select_lits;
  select_lits.reserve(inst.select_var.size());
  for (Var s : inst.select_var) select_lits.push_back(sat::pos(s));
  inst.cardinality = encode_cardinality_tracker(
      solver, std::move(select_lits), options.max_k, options.card_encoding);

  return inst;
}

}  // namespace satdiag
