// Construction of the SAT-based diagnosis instance (Fig. 2 of the paper).
//
// One circuit copy per test; a correction multiplexer at every instrumented
// gate g: select s_g shared by all copies, free correction value c_g^i per
// copy. Copy i is constrained to test vector t_i at the primary inputs and to
// the correct value v_i at the erroneous output o_i. A cardinality counter
// over the select lines bounds the correction size; "at most k" is enforced
// with assumptions so the k = 1..K loop of BasicSATDiagnose reuses one
// instance incrementally.
//
// Options mirror the advanced technique of Smith et al. (ASP-DAC'04):
//  * gating clauses force c_g^i = 0 while s_g = 0 ("prevents up to |I|
//    decisions of the SAT solver"),
//  * restricting the instrumented set (e.g. to dominators) shrinks the
//    search space for a first coarse pass,
//  * internal gate variables can be excluded from decisions — the free
//    variables are then exactly the select lines and correction inputs, as
//    in the paper's description of F.
#pragma once

#include <vector>

#include "cnf/cardinality.hpp"
#include "cnf/tseitin.hpp"
#include "netlist/testset.hpp"

namespace satdiag {

struct DiagnosisInstanceOptions {
  /// Gates carrying a correction multiplexer; empty = every combinational
  /// gate (the basic BSAT configuration).
  std::vector<GateId> instrumented;
  /// Largest correction size the instance must support.
  unsigned max_k = 1;
  CardEncoding card_encoding = CardEncoding::kSequential;
  /// Advanced heuristic: clause (s_g | ~c_g^i) per copy.
  bool gating_clauses = true;
  /// When false, internal gate variables are not decision variables.
  bool internal_decisions = false;
  /// Cone-of-influence reduction: each test copy encodes only the fanin
  /// cone of that copy's constrained output(s), and the instrumented set is
  /// intersected with the union of those cones. A gate outside every cone
  /// can never influence a constrained output, so it is never part of a
  /// valid *essential* correction and never changes the satisfiability of a
  /// validity query — the enumerated solution sets are unchanged while the
  /// instance shrinks to the relevant logic (pinned by
  /// tests/integration/engine_agreement_test.cpp). Off by default: consumers
  /// that read model values of arbitrary gates from the copies
  /// (repair/realize.cpp) need the full encodings.
  bool cone_of_influence = false;
  /// Extension beyond the paper: also pin every non-erroneous output of each
  /// test copy to its golden value (requires expected_outputs).
  bool constrain_passing_outputs = false;
  /// Golden output values per test (over netlist.outputs()), used only with
  /// constrain_passing_outputs.
  std::vector<std::vector<bool>> expected_outputs;
  /// Inprocessing (probing / vivification / subsumption / bounded variable
  /// elimination between restarts) in the instance solver. Ablation knob;
  /// solution sets are inprocessing-invariant.
  bool inprocess = true;
  /// Build copies by stamping cached ClauseStream templates (one encoder
  /// walk per distinct (circuit, cone, universe, options) key, relocated per
  /// copy) instead of re-walking the netlist per test. Produces a
  /// variable-for-variable and clause-for-clause identical instance — pinned
  /// by tests/cnf/clause_stream_test.cpp, which is why the walk path is kept
  /// as the reference anchor rather than deleted.
  bool template_stamped = true;
};

struct DiagnosisInstance {
  sat::Solver solver;

  /// Instrumented gates; index in this vector == select index.
  std::vector<GateId> instrumented;
  std::vector<sat::Var> select_var;           // per instrumented gate
  std::vector<std::uint32_t> select_index;    // per GateId; kNoSelect if none
  static constexpr std::uint32_t kNoSelect = 0xffffffffu;

  /// Per test copy: variable of every gate (the *post-mux* value that feeds
  /// fanouts), plus the free correction variables.
  std::vector<CircuitEncoding> copies;
  std::vector<std::vector<sat::Var>> correction_var;  // [test][select index]

  CardinalityTracker cardinality;

  /// Assumptions enforcing |correction| <= k.
  std::vector<sat::Lit> assume_at_most(unsigned k) const {
    return cardinality.assume_at_most(k);
  }

  /// Decode a model's asserted select lines into gate ids (sorted).
  std::vector<GateId> selected_gates_from_model() const;

  std::size_t num_tests() const { return copies.size(); }
};

/// Build the instance. `tests` must be non-empty; test input_values must
/// cover nl.inputs().
DiagnosisInstance build_diagnosis_instance(
    const Netlist& nl, const TestSet& tests,
    const DiagnosisInstanceOptions& options);

}  // namespace satdiag
