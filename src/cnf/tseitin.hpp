// Tseitin encoding of netlists into CNF.
//
// Used standalone (equivalence-miter ATPG, validity checks) and by the
// diagnosis-instance builder, which re-encodes one circuit copy per test.
#pragma once

#include <span>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace satdiag {

/// Add clauses asserting `out` equals the gate function over `ins`.
/// `type` must be combinational; arity must match the type.
void encode_gate_function(sat::Solver& solver, GateType type, sat::Lit out,
                          std::span<const sat::Lit> ins);

/// One solver variable per gate of one combinational circuit copy.
struct CircuitEncoding {
  std::vector<sat::Var> gate_var;  // indexed by GateId

  sat::Lit lit(GateId g, bool negated = false) const {
    return sat::Lit(gate_var[g], negated);
  }
};

/// Encode every combinational gate of `nl`. Sources get free variables
/// (constants are fixed with unit clauses). `decision_vars` controls whether
/// internal gate variables may be picked as decisions (BSAT switches this
/// off: all internal values are implied by inputs and corrections).
CircuitEncoding encode_circuit(sat::Solver& solver, const Netlist& nl,
                               bool internal_decisions = true);

}  // namespace satdiag
