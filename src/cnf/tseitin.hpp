// Tseitin encoding of netlists into CNF.
//
// Used standalone (equivalence-miter ATPG, validity checks) and by the
// diagnosis-instance builder, which re-encodes one circuit copy per test.
#pragma once

#include <cassert>
#include <span>
#include <utility>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace satdiag {

/// Add clauses asserting `out` equals the gate function over `ins`.
/// `type` must be combinational; arity must match the type.
void encode_gate_function(sat::Solver& solver, GateType type, sat::Lit out,
                          std::span<const sat::Lit> ins);

/// Generic form of encode_gate_function over any clause sink providing
/// `new_var(bool decidable)` and the `add_clause` overloads of sat::Solver.
/// One body serves both the solver (direct encoding) and the ClauseStream
/// template builder (relative-index encoding) — the two paths cannot
/// diverge because they share this function.
template <typename Sink>
void encode_gate_function_into(Sink& sink, GateType type, sat::Lit out,
                               std::span<const sat::Lit> ins) {
  using sat::Clause;
  using sat::Lit;
  assert(is_combinational_type(type));
  assert(arity_ok(type, ins.size()));
  // out <-> AND/OR(ins), with NAND/NOR inverting the output literal.
  const auto and_or_like = [&](bool or_gate, bool invert_out) {
    const Lit o = invert_out ? ~out : out;
    Clause big;
    big.reserve(ins.size() + 1);
    for (Lit in : ins) {
      if (or_gate) {
        sink.add_clause(o, ~in);
        big.push_back(in);
      } else {
        sink.add_clause(~o, in);
        big.push_back(~in);
      }
    }
    big.push_back(or_gate ? ~o : o);
    sink.add_clause(std::move(big));
  };
  const auto xor2 = [&](Lit z, Lit a, Lit b) {
    sink.add_clause(~z, a, b);
    sink.add_clause(~z, ~a, ~b);
    sink.add_clause(z, ~a, b);
    sink.add_clause(z, a, ~b);
  };
  switch (type) {
    case GateType::kBuf:
      sink.add_clause(~out, ins[0]);
      sink.add_clause(out, ~ins[0]);
      return;
    case GateType::kNot:
      sink.add_clause(~out, ~ins[0]);
      sink.add_clause(out, ins[0]);
      return;
    case GateType::kAnd:
    case GateType::kNand:
      and_or_like(/*or_gate=*/false, type == GateType::kNand);
      return;
    case GateType::kOr:
    case GateType::kNor:
      and_or_like(/*or_gate=*/true, type == GateType::kNor);
      return;
    case GateType::kXor:
    case GateType::kXnor: {
      // Chain pairwise with fresh intermediates.
      Lit acc = ins[0];
      for (std::size_t i = 1; i + 1 < ins.size(); ++i) {
        const Lit next = sat::pos(sink.new_var(/*decidable=*/false));
        xor2(next, acc, ins[i]);
        acc = next;
      }
      const Lit target = type == GateType::kXor ? out : ~out;
      if (ins.size() == 1) {
        sink.add_clause(~target, acc);
        sink.add_clause(target, ~acc);
      } else {
        xor2(target, acc, ins[ins.size() - 1]);
      }
      return;
    }
    default:
      assert(false && "not a combinational type");
  }
}

/// One solver variable per gate of one combinational circuit copy.
struct CircuitEncoding {
  std::vector<sat::Var> gate_var;  // indexed by GateId

  sat::Lit lit(GateId g, bool negated = false) const {
    return sat::Lit(gate_var[g], negated);
  }
};

/// Encode every combinational gate of `nl`. Sources get free variables
/// (constants are fixed with unit clauses). `decision_vars` controls whether
/// internal gate variables may be picked as decisions (BSAT switches this
/// off: all internal values are implied by inputs and corrections).
CircuitEncoding encode_circuit(sat::Solver& solver, const Netlist& nl,
                               bool internal_decisions = true);

}  // namespace satdiag
