#include "cnf/cardinality.hpp"

#include <atomic>
#include <cassert>
#include <functional>

#include "util/logging.hpp"

namespace satdiag {

using sat::Lit;
using sat::Solver;

const char* card_encoding_name(CardEncoding e) {
  switch (e) {
    case CardEncoding::kPairwise:
      return "pairwise";
    case CardEncoding::kSequential:
      return "sequential";
    case CardEncoding::kTotalizer:
      return "totalizer";
  }
  return "?";
}

std::vector<Lit> CardinalityTracker::assume_at_most(unsigned bound) const {
  // "at most bound" == NOT "at least bound+1"; monotonicity of the counter
  // makes the single strongest assumption sufficient.
  if (bound >= geq.size()) return {};
  return {~geq[bound]};
}

namespace {

CardinalityTracker encode_sequential(Solver& solver, std::vector<Lit> lits,
                                     unsigned max_bound) {
  CardinalityTracker tracker;
  tracker.inputs = std::move(lits);
  const std::size_t n = tracker.inputs.size();
  if (n == 0) return tracker;
  const std::size_t m = std::min<std::size_t>(n, max_bound + 1);

  // s[j-1] after step i: "at least j of the first i+1 inputs are true".
  std::vector<Lit> prev;  // counts for the prefix ending at i-1
  std::vector<Lit> cur;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rows = std::min<std::size_t>(i + 1, m);
    cur.clear();
    for (std::size_t j = 1; j <= rows; ++j) {
      cur.push_back(sat::pos(solver.new_var(/*decidable=*/false)));
    }
    const Lit li = tracker.inputs[i];
    // j = 1: li -> s1 ; prev s1 -> s1.
    solver.add_clause(~li, cur[0]);
    if (!prev.empty()) solver.add_clause(~prev[0], cur[0]);
    for (std::size_t j = 2; j <= rows; ++j) {
      // li and (j-1 among prefix) -> j ; (j among prefix) -> j.
      solver.add_clause(~li, ~prev[j - 2], cur[j - 1]);
      if (prev.size() >= j) solver.add_clause(~prev[j - 1], cur[j - 1]);
    }
    std::swap(prev, cur);
  }
  tracker.geq = prev;
  return tracker;
}

CardinalityTracker encode_totalizer(Solver& solver, std::vector<Lit> lits,
                                    unsigned max_bound) {
  CardinalityTracker tracker;
  tracker.inputs = std::move(lits);
  const std::size_t n = tracker.inputs.size();
  if (n == 0) return tracker;
  const std::size_t cap = std::min<std::size_t>(n, max_bound + 1);

  // Recursive balanced merge; outputs are capped unary counts.
  std::function<std::vector<Lit>(std::size_t, std::size_t)> build =
      [&](std::size_t begin, std::size_t end) -> std::vector<Lit> {
    if (end - begin == 1) return {tracker.inputs[begin]};
    const std::size_t mid = begin + (end - begin) / 2;
    const std::vector<Lit> left = build(begin, mid);
    const std::vector<Lit> right = build(mid, end);
    const std::size_t out_size =
        std::min<std::size_t>(left.size() + right.size(), cap);
    std::vector<Lit> out;
    out.reserve(out_size);
    for (std::size_t j = 0; j < out_size; ++j) {
      out.push_back(sat::pos(solver.new_var(/*decidable=*/false)));
    }
    // (>=i on the left) and (>=j on the right) imply >= min(i+j, cap).
    for (std::size_t i = 0; i <= left.size(); ++i) {
      for (std::size_t j = 0; j <= right.size(); ++j) {
        if (i + j == 0) continue;
        const std::size_t t = std::min(i + j, cap);
        sat::Clause clause;
        if (i > 0) clause.push_back(~left[i - 1]);
        if (j > 0) clause.push_back(~right[j - 1]);
        clause.push_back(out[t - 1]);
        solver.add_clause(std::move(clause));
        if (i + j > cap) break;  // higher j only repeats the capped clause
      }
    }
    return out;
  };
  tracker.geq = build(0, n);
  return tracker;
}

// Enumerate all (bound+1)-subsets and forbid each. Exponential; falls back to
// the sequential encoding when the clause count would be excessive.
bool encode_pairwise(Solver& solver, const std::vector<Lit>& lits,
                     unsigned bound) {
  const std::size_t n = lits.size();
  const std::size_t k = bound + 1;
  // C(n, k) guard.
  double count = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    count *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  if (count > 2e6) {
    SATDIAG_WARN() << "pairwise at-most-" << bound << " over " << n
                   << " literals needs ~" << count
                   << " clauses; falling back to sequential";
    return false;
  }
  std::vector<std::size_t> idx(k);
  sat::Clause clause(k);
  std::function<bool(std::size_t, std::size_t)> rec =
      [&](std::size_t depth, std::size_t start) -> bool {
    if (depth == k) {
      for (std::size_t i = 0; i < k; ++i) clause[i] = ~lits[idx[i]];
      return solver.add_clause(clause);
    }
    for (std::size_t i = start; i + (k - depth) <= n; ++i) {
      idx[depth] = i;
      if (!rec(depth + 1, i + 1) && !solver.ok()) return false;
    }
    return true;
  };
  rec(0, 0);
  return solver.ok();
}

}  // namespace

CardinalityTracker encode_cardinality_tracker(Solver& solver,
                                              std::vector<Lit> lits,
                                              unsigned max_bound,
                                              CardEncoding encoding) {
  CardinalityTracker tracker;
  switch (encoding) {
    case CardEncoding::kSequential:
      tracker = encode_sequential(solver, std::move(lits), max_bound);
      break;
    case CardEncoding::kTotalizer:
      tracker = encode_totalizer(solver, std::move(lits), max_bound);
      break;
    case CardEncoding::kPairwise: {
      // The pairwise encoding has no incremental form (no counter outputs to
      // assume against), so the tracker substitutes the sequential counter;
      // see cardinality.hpp. Static-bound callers that really want pairwise
      // clauses go through encode_at_most_static.
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        SATDIAG_WARN() << "pairwise cardinality encoding has no incremental "
                          "tracker form; substituting the sequential counter "
                          "(bound semantics are unchanged)";
      }
      tracker = encode_sequential(solver, std::move(lits), max_bound);
      break;
    }
  }
  // Freeze the counter outputs: assume_at_most mentions them in future
  // assumptions, which variable elimination must never invalidate.
  for (Lit g : tracker.geq) solver.freeze(g.var());
  return tracker;
}

bool encode_at_most_static(sat::Solver& solver,
                           const std::vector<sat::Lit>& lits, unsigned bound,
                           CardEncoding encoding) {
  if (bound >= lits.size()) return solver.ok();  // vacuous
  if (encoding == CardEncoding::kPairwise && encode_pairwise(solver, lits, bound)) {
    return solver.ok();
  }
  CardinalityTracker tracker = encode_cardinality_tracker(
      solver, lits,
      bound,
      encoding == CardEncoding::kPairwise ? CardEncoding::kSequential
                                          : encoding);
  for (sat::Lit a : tracker.assume_at_most(bound)) {
    if (!solver.add_clause(a)) return false;
  }
  return solver.ok();
}

}  // namespace satdiag
