#include "cnf/clause_stream.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "cnf/tseitin.hpp"
#include "obs/trace.hpp"

namespace satdiag {

namespace {

using sat::Lit;
using sat::Var;

std::atomic<std::uint64_t> g_templates_built{0};
std::atomic<std::uint64_t> g_copies_stamped{0};
std::atomic<std::uint64_t> g_clauses_stamped{0};

/// Clause sink with the sat::Solver surface encode_gate_function_into needs,
/// writing normalized clauses over relative indices into a ClauseStream.
class TemplateSink {
 public:
  explicit TemplateSink(ClauseStream& out) : out_(&out) {}

  Var new_var(bool decidable = true, bool default_phase = false) {
    (void)default_phase;  // instance building never sets a phase hint
    out_->local_flags.push_back(decidable ? ClauseStream::kDecidable : 0);
    return static_cast<Var>(out_->num_locals++);
  }

  void freeze(Var v) {
    assert(v >= 0 && static_cast<std::uint32_t>(v) < out_->num_locals);
    out_->local_flags[static_cast<std::size_t>(v)] |= ClauseStream::kFrozen;
  }

  bool add_clause(sat::Clause lits) {
    // Same normalization add_clause applies (sort, dedup, tautology drop),
    // minus root-value filtering — templates have no assignments. Gate
    // fanins may repeat (e.g. AND(a, a)), so this is required, not cosmetic.
    std::sort(lits.begin(), lits.end());
    std::size_t out_n = 0;
    Lit prev = Lit::undef();
    for (const Lit l : lits) {
      if (l == ~prev) return true;  // tautology: drop clause
      if (l == prev) continue;
      lits[out_n++] = prev = l;
    }
    out_->sizes.push_back(static_cast<std::uint32_t>(out_n));
    for (std::size_t i = 0; i < out_n; ++i) {
      out_->lits.push_back(static_cast<std::uint32_t>(lits[i].index()));
    }
    return true;
  }
  bool add_clause(Lit a) { return add_clause(sat::Clause{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(sat::Clause{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) {
    return add_clause(sat::Clause{a, b, c});
  }

 private:
  ClauseStream* out_;
};

}  // namespace

std::size_t ClauseStream::bytes() const {
  return sizeof(ClauseStream) + local_flags.capacity() +
         extern_gates.capacity() * sizeof(GateId) +
         correction_local.capacity() * sizeof(std::uint32_t) +
         gate_local.capacity() * sizeof(std::int32_t) +
         input_locals.capacity() * sizeof(input_locals[0]) +
         lits.capacity() * sizeof(std::uint32_t) +
         sizes.capacity() * sizeof(std::uint32_t) +
         watch_plan_long.capacity() * sizeof(sat::StreamWatchOp) +
         watch_plan_bin.capacity() * sizeof(sat::StreamWatchOp);
}

ClauseStream build_copy_template(const Netlist& nl,
                                 const std::vector<bool>* cone,
                                 const std::vector<bool>& instrumented,
                                 bool gating_clauses,
                                 bool internal_decisions) {
  obs::Span span("cnf.template_build", "gates",
                 static_cast<std::int64_t>(nl.size()));
  assert(nl.finalized());
  assert(instrumented.size() == nl.size());
  assert(cone == nullptr || cone->size() == nl.size());

  ClauseStream ts;
  ts.gate_local.assign(nl.size(), -1);
  TemplateSink sink(ts);
  const auto in_copy = [&](GateId g) { return cone == nullptr || (*cone)[g]; };

  // The two passes replicate build_diagnosis_instance's per-copy walk in
  // lockstep: identical new_var order, identical clause emission order. Any
  // edit here must keep the walk encoder (template_stamped=false) in sync —
  // the clause_stream differential tests pin the two paths together.

  // Pass 1: one post-mux value variable per in-cone gate, topo order.
  for (const GateId g : nl.topo_order()) {
    if (!in_copy(g)) continue;
    ts.gate_local[g] = sink.new_var(internal_decisions);
  }

  // Pass 2: mux instrumentation + gate functions, topo order.
  std::vector<Lit> ins;
  for (const GateId g : nl.topo_order()) {
    if (!in_copy(g)) continue;
    const Lit out = Lit(static_cast<Var>(ts.gate_local[g]), false);
    Lit function_out = out;
    if (instrumented[g]) {
      const auto slot = static_cast<std::uint32_t>(ts.extern_gates.size());
      ts.extern_gates.push_back(g);
      const Lit s = sat::pos(ClauseStream::kExternVarBase +
                             static_cast<Var>(slot));
      const Var correction = sink.new_var(/*decidable=*/true);
      sink.freeze(correction);
      ts.correction_local.push_back(static_cast<std::uint32_t>(correction));
      // s -> (out != orig) via correction: c <-> (s & (out xor orig)).
      sink.add_clause(~s, ~out, sat::pos(correction));
      sink.add_clause(~s, out, sat::neg(correction));
      if (gating_clauses) sink.add_clause(s, sat::neg(correction));
      const Var orig = sink.new_var(/*decidable=*/false);
      sink.add_clause(s, ~out, sat::pos(orig));
      sink.add_clause(s, out, sat::neg(orig));
      function_out = sat::pos(orig);
    }
    switch (nl.type(g)) {
      case GateType::kInput:
      case GateType::kDff:
        break;  // free variable
      case GateType::kConst0:
        sink.add_clause(~function_out);
        break;
      case GateType::kConst1:
        sink.add_clause(function_out);
        break;
      default: {
        ins.clear();
        for (const GateId f : nl.fanins(g)) {
          assert(ts.gate_local[f] >= 0 && "cone must be fanin-closed");
          ins.push_back(Lit(static_cast<Var>(ts.gate_local[f]), false));
        }
        encode_gate_function_into(sink, nl.type(g), function_out, ins);
        break;
      }
    }
  }

  const auto& inputs = nl.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!in_copy(inputs[i])) continue;
    ts.input_locals.emplace_back(
        static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(ts.gate_local[inputs[i]]));
  }

  // Watch plan: the two watched literals of every clause of size >= 2 are
  // its first two (the stream is normalized, and no template literal is
  // assigned), grouped by watch list so stamping fills each list in one run.
  {
    std::size_t pos = 0;
    std::uint32_t arena_off = 0;  // stream-relative arena word of the clause
    for (std::uint32_t ci = 0; ci < ts.sizes.size(); ++ci) {
      const std::uint32_t size = ts.sizes[ci];
      if (size < 2) {
        ++ts.num_units;
      } else {
        const std::uint32_t c0 = ts.lits[pos];
        const std::uint32_t c1 = ts.lits[pos + 1];
        auto& plan = size == 2 ? ts.watch_plan_bin : ts.watch_plan_long;
        const std::uint32_t off = size == 2 ? 0 : arena_off;
        plan.push_back({c0 ^ 1u, c1, ci, off});  // watch list of ~lit: code^1
        plan.push_back({c1 ^ 1u, c0, ci, off});
        if (size >= 3) arena_off += size + sat::kStampClauseOverhead;
      }
      pos += size;
    }
    const auto by_list = [](const sat::StreamWatchOp& a,
                            const sat::StreamWatchOp& b) {
      return a.watch_index < b.watch_index;
    };
    std::stable_sort(ts.watch_plan_long.begin(), ts.watch_plan_long.end(),
                     by_list);
    std::stable_sort(ts.watch_plan_bin.begin(), ts.watch_plan_bin.end(),
                     by_list);
  }

  g_templates_built.fetch_add(1, std::memory_order_relaxed);
  return ts;
}

sat::Var stamp_clause_stream(sat::Solver& solver, const ClauseStream& ts,
                             std::span<const sat::Var> extern_vars,
                             StampScratch& scratch) {
  obs::Span span("cnf.stamp_copy", "clauses",
                 static_cast<std::int64_t>(ts.sizes.size()));
  assert(extern_vars.size() == ts.extern_gates.size());
  static_assert(ClauseStream::kDecidable == sat::Solver::kVarDecidable &&
                ClauseStream::kFrozen == sat::Solver::kVarFrozen);
  assert(ts.local_flags.size() == ts.num_locals);
  const Var base = solver.new_vars(ts.local_flags);

  // Every local is fresh (unassigned); with no template units and no extern
  // assigned at the root, no stream literal has a value and the solver's
  // fused stamped load applies: it relocates template codes and the watch
  // plan inline, with no intermediate buffers.
  if (ts.num_units == 0 && !solver.any_assigned(extern_vars)) {
    solver.add_stamped_stream(ts.lits, ts.sizes, ts.watch_plan_long,
                              ts.watch_plan_bin, base,
                              ClauseStream::kExternVarBase, extern_vars);
    g_copies_stamped.fetch_add(1, std::memory_order_relaxed);
    g_clauses_stamped.fetch_add(ts.sizes.size(), std::memory_order_relaxed);
    return base;
  }

  // Rare general case (template units or assigned selects, e.g. restricted
  // universes after assumptions were fixed at the root): relocate into
  // scratch and take the simplifying bulk load.
  const auto relocate = [&](std::uint32_t code) {
    const auto as_lit = Lit::from_index(static_cast<int>(code));
    const Var v = as_lit.var();
    const Var resolved =
        v >= ClauseStream::kExternVarBase
            ? extern_vars[static_cast<std::size_t>(
                  v - ClauseStream::kExternVarBase)]
            : base + v;
    return Lit(resolved, as_lit.sign());
  };
  scratch.lits.clear();
  scratch.lits.reserve(ts.lits.size());
  for (const std::uint32_t code : ts.lits) {
    scratch.lits.push_back(relocate(code));
  }
  // Relocating a watch index is the same map: ~l shares l's variable, and
  // the code layout is (var << 1) | sign.
  const auto relocate_plan = [&](const std::vector<sat::StreamWatchOp>& in,
                                 std::vector<sat::StreamWatchOp>& out) {
    out.clear();
    out.reserve(in.size());
    for (const sat::StreamWatchOp& op : in) {
      out.push_back(
          {static_cast<std::uint32_t>(relocate(op.watch_index).index()),
           static_cast<std::uint32_t>(relocate(op.other_index).index()),
           op.clause, op.arena_offset});
    }
  };
  relocate_plan(ts.watch_plan_long, scratch.plan_long);
  relocate_plan(ts.watch_plan_bin, scratch.plan_bin);
  solver.add_clause_stream(scratch.lits, ts.sizes, scratch.plan_long,
                           scratch.plan_bin);

  g_copies_stamped.fetch_add(1, std::memory_order_relaxed);
  g_clauses_stamped.fetch_add(ts.sizes.size(), std::memory_order_relaxed);
  return base;
}

ClauseStreamStats clause_stream_stats() {
  ClauseStreamStats s;
  s.templates_built = g_templates_built.load(std::memory_order_relaxed);
  s.copies_stamped = g_copies_stamped.load(std::memory_order_relaxed);
  s.clauses_stamped = g_clauses_stamped.load(std::memory_order_relaxed);
  return s;
}

void reset_clause_stream_stats() {
  g_templates_built.store(0, std::memory_order_relaxed);
  g_copies_stamped.store(0, std::memory_order_relaxed);
  g_clauses_stamped.store(0, std::memory_order_relaxed);
}

}  // namespace satdiag
