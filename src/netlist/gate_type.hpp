// Gate primitives of the ISCAS89 netlist model.
//
// The diagnosis algorithms need three per-type facts: the Boolean function
// (for simulation and CNF encoding), the controlling value (for critical path
// tracing, Fig. 1 of the paper), and the arity constraints (for the
// gate-substitution error model).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace satdiag {

enum class GateType : std::uint8_t {
  kInput,   // primary input (or pseudo-PI after scan conversion)
  kDff,     // D flip-flop; output is a combinational source, fanin[0] = data
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,   // k-ary parity
  kXnor,  // k-ary inverted parity
};

/// Upper-case ISCAS89 .bench mnemonic ("AND", "DFF", ...).
std::string_view gate_type_name(GateType type);

/// Inverse of gate_type_name (case-insensitive); nullopt for unknown names.
std::optional<GateType> gate_type_from_name(std::string_view name);

/// True for gates whose value is not computed from fanins (PI, DFF, consts).
/// Inline: the dirty-cone schedulers test this per visited fanout.
constexpr bool is_source_type(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kDff:
    case GateType::kConst0:
    case GateType::kConst1:
      return true;
    default:
      return false;
  }
}

/// True for AND/NAND/OR/NOR/XOR/XNOR/BUF/NOT.
constexpr bool is_combinational_type(GateType type) {
  return !is_source_type(type);
}

/// Controlling input value (0 for AND/NAND, 1 for OR/NOR), or nullopt for
/// types without one (XOR/XNOR/BUF/NOT). Per footnote 1 in the paper.
std::optional<bool> controlling_value(GateType type);

/// Whether `arity` fanins are legal for the type.
bool arity_ok(GateType type, std::size_t arity);

/// Evaluate the gate function on single-bit fanin values.
bool eval_gate(GateType type, const std::vector<bool>& fanins);

/// Evaluate 64 patterns at once (bit i of each word = pattern i).
std::uint64_t eval_gate_words(GateType type, const std::uint64_t* fanins,
                              std::size_t arity);

/// All combinational types that accept the given arity — the candidate pool
/// for the gate-substitution error model.
std::vector<GateType> substitutable_types(std::size_t arity);

}  // namespace satdiag
