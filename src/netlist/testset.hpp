// Tests and test-sets, Definition 1 of the paper.
//
// A test is a triple (t, o, v): an input vector t that causes an erroneous
// value at primary output o, together with the correct value v for that
// output. A test-set is an ordered collection of tests; indices into it
// identify the candidate sets C_i produced by path tracing.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace satdiag {

struct Test {
  /// Input values over netlist.inputs(), in order (for scan views this
  /// includes the pseudo-primary inputs).
  std::vector<bool> input_values;
  /// Index into netlist.outputs() of the erroneous output.
  std::size_t output_index = 0;
  /// The value the specification demands at that output.
  bool correct_value = false;
};

using TestSet = std::vector<Test>;

/// The primary-output gate a test observes.
inline GateId test_output_gate(const Netlist& nl, const Test& test) {
  return nl.outputs()[test.output_index];
}

}  // namespace satdiag
